// Unit tests for check::Checker: vector-clock maintenance, phantom-access
// classification, the lock graph, the move/forwarding/transport/reply
// protocol invariants, and report determinism. Every test that provokes a
// violation runs with abort_on_violation off so the report can be asserted;
// the abort path itself is covered by death tests.
#include "check/checker.h"

#include <gtest/gtest.h>

#include <string>

#include "check/report.h"
#include "sim/engine.h"

namespace cm::check {
namespace {

CheckConfig no_abort() {
  CheckConfig cfg;
  cfg.abort_on_violation = false;
  return cfg;
}

bool detail_contains(const ViolationRecord& r, const char* needle) {
  return r.detail.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Happens-before
// ---------------------------------------------------------------------------

TEST(CheckClock, MessageDeliveryJoinsSenderClockIntoReceiver) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  const std::uint64_t t = ck.on_send(0, 1);
  EXPECT_EQ(ck.clock(0)[0], 1u);  // send ticks the sender
  EXPECT_EQ(ck.clock(1)[0], 0u);  // nothing learned yet
  ck.on_deliver(1, t);
  EXPECT_EQ(ck.clock(1)[1], 1u);  // delivery ticks the receiver...
  EXPECT_EQ(ck.clock(1)[0], 1u);  // ...and joins the sender's snapshot
  EXPECT_EQ(ck.stats().sends, 1u);
  EXPECT_EQ(ck.stats().delivers, 1u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckClock, DroppedMessageOpensNoEdge) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  (void)ck.on_send(0, 1);  // never delivered: the receiver learns nothing
  const std::uint64_t t2 = ck.on_send(2, 1);
  ck.on_deliver(1, t2);
  EXPECT_EQ(ck.clock(1)[0], 0u);
  EXPECT_EQ(ck.clock(1)[2], 1u);
}

TEST(CheckClock, DuplicatedDeliveryJoinsOnlyOnce) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  const std::uint64_t t = ck.on_send(0, 1);
  ck.on_deliver(1, t);
  ck.on_deliver(1, t);  // duplicate copy: local tick, token already closed
  EXPECT_EQ(ck.clock(1)[1], 2u);
  EXPECT_EQ(ck.clock(1)[0], 1u);
  EXPECT_EQ(ck.violations(), 0u);
}

// ---------------------------------------------------------------------------
// Phantom object accesses
// ---------------------------------------------------------------------------

TEST(CheckPhantom, LocalAccessIsClean) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_object_access(2, 7, 2, /*write=*/true);
  ck.on_object_access(2, 7, 2, /*write=*/false);
  EXPECT_EQ(ck.stats().accesses, 2u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckPhantom, RemoteAccessWithNoRelocationIsFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_object_access(1, 7, 0, /*write=*/true);
  ASSERT_EQ(ck.count(Violation::kPhantomWrite), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "no relocation observed"));
  ck.on_object_access(1, 7, 0, /*write=*/false);
  EXPECT_EQ(ck.count(Violation::kPhantomRead), 1u);
}

TEST(CheckPhantom, StaleBindingClassifiedAgainstCommitClock) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  // Object 9 relocates to proc 2, and proc 0 HEARS about it (a message from
  // 2 reaches 0 after the commit) — yet still accesses the old binding:
  // causally after the relocation, i.e. a stale pointer kept live.
  ck.on_move_begin(9, 2);
  ck.on_move_commit(9, 0, 2);
  ck.on_move_end(9);
  const std::uint64_t t = ck.on_send(2, 0);
  ck.on_deliver(0, t);
  ck.on_object_access(0, 9, 2, /*write=*/false);
  ASSERT_EQ(ck.count(Violation::kPhantomRead), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "causally after"));
}

TEST(CheckPhantom, ConcurrentRelocationClassifiedAsRace) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  // Proc 2's clock advances before the commit, and proc 0 never hears from
  // it: the access is concurrent with the relocation — a genuine race.
  (void)ck.on_send(2, 3);
  ck.on_move_begin(9, 2);
  ck.on_move_commit(9, 0, 2);
  ck.on_move_end(9);
  ck.on_object_access(0, 9, 2, /*write=*/true);
  ASSERT_EQ(ck.count(Violation::kPhantomWrite), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "concurrent"));
}

TEST(CheckPhantom, HostDriftWithoutCommitIsOwnerDivergence) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_object_access(0, 5, 0, /*write=*/true);
  // Ground truth now claims proc 1 without any on_move_commit in between.
  ck.on_object_access(1, 5, 1, /*write=*/true);
  EXPECT_EQ(ck.count(Violation::kOwnerDivergence), 1u);
  EXPECT_EQ(ck.count(Violation::kPhantomWrite), 0u);  // proc == host both times
}

// ---------------------------------------------------------------------------
// Lock graph
// ---------------------------------------------------------------------------

TEST(CheckLocks, ConsistentOrderIsClean) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  int a1 = 0, a2 = 0, m1 = 0, m2 = 0;
  for (int* agent : {&a1, &a2}) {
    ck.on_lock_attempt(agent, &m1, "m1");
    ck.on_lock_acquired(agent, &m1, "m1");
    ck.on_lock_attempt(agent, &m2, "m2");
    ck.on_lock_acquired(agent, &m2, "m2");
    ck.on_lock_released(agent, &m2);
    ck.on_lock_released(agent, &m1);
  }
  EXPECT_EQ(ck.stats().lock_acquires, 4u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckLocks, InvertedOrderIsFlaggedOnceAndNamed) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  int a1 = 0, a2 = 0, m1 = 0, m2 = 0;
  // Agent 1 establishes m1 -> m2.
  ck.on_lock_attempt(&a1, &m1, "first");
  ck.on_lock_acquired(&a1, &m1, "first");
  ck.on_lock_attempt(&a1, &m2, "second");
  ck.on_lock_acquired(&a1, &m2, "second");
  ck.on_lock_released(&a1, &m2);
  ck.on_lock_released(&a1, &m1);
  // Agent 2 takes them the other way round — flagged at the attempt.
  ck.on_lock_attempt(&a2, &m2, "second");
  ck.on_lock_acquired(&a2, &m2, "second");
  ck.on_lock_attempt(&a2, &m1, "first");
  ASSERT_EQ(ck.count(Violation::kLockOrderInversion), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "'first'"));
  EXPECT_TRUE(detail_contains(ck.records()[0], "'second'"));
  ck.on_lock_acquired(&a2, &m1, "first");
  ck.on_lock_released(&a2, &m1);
  ck.on_lock_released(&a2, &m2);
  // The same pair reported again would be noise: deduplicated.
  ck.on_lock_attempt(&a2, &m2, "second");
  ck.on_lock_acquired(&a2, &m2, "second");
  ck.on_lock_attempt(&a2, &m1, "first");
  EXPECT_EQ(ck.count(Violation::kLockOrderInversion), 1u);
}

TEST(CheckLocks, WaitForCycleIsDeadlock) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  int a1 = 0, a2 = 0, m1 = 0, m2 = 0;
  ck.on_lock_attempt(&a1, &m1, "m1");
  ck.on_lock_acquired(&a1, &m1, "m1");
  ck.on_lock_attempt(&a2, &m2, "m2");
  ck.on_lock_acquired(&a2, &m2, "m2");
  ck.on_lock_attempt(&a1, &m2, "m2");  // a1 waits on a2: no cycle yet
  EXPECT_EQ(ck.count(Violation::kDeadlock), 0u);
  ck.on_lock_attempt(&a2, &m1, "m1");  // a2 waits on a1: cycle closes
  EXPECT_EQ(ck.count(Violation::kDeadlock), 1u);
}

// ---------------------------------------------------------------------------
// Move protocol
// ---------------------------------------------------------------------------

TEST(CheckMoves, SerialisedMovesAreClean) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_move_begin(3, 1);
  ck.on_move_commit(3, 0, 1);
  ck.on_move_end(3);
  ck.on_move_begin(3, 2);
  ck.on_move_commit(3, 1, 2);
  ck.on_move_end(3);
  EXPECT_EQ(ck.stats().moves, 2u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckMoves, OverlappingWindowsAreFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_move_begin(3, 1);
  ck.on_move_begin(3, 2);  // second mover before the first window closed
  EXPECT_EQ(ck.count(Violation::kMoveOverlap), 1u);
}

TEST(CheckMoves, CommitFromNonOwnerIsFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_move_commit(4, 0, 1);  // owner now 1
  ck.on_move_commit(4, 0, 2);  // claims to move it from 0 again
  EXPECT_EQ(ck.count(Violation::kMoveFromNonOwner), 1u);
}

// ---------------------------------------------------------------------------
// Forwarding chains
// ---------------------------------------------------------------------------

TEST(CheckChase, CompressedChainIsClean) {
  sim::Engine eng;
  Checker ck(eng, 8, no_abort());
  const std::uint64_t c = ck.on_chase_begin(8, 0);
  ck.on_chase_hop(c, 0, 1);
  ck.on_chase_hop(c, 1, 2);
  ck.on_fwd_pointer(0, 8, 2);  // compression: every crossed hop points at 2
  ck.on_fwd_pointer(1, 8, 2);
  ck.on_chase_end(c, 2);
  EXPECT_EQ(ck.stats().chases, 1u);
  EXPECT_EQ(ck.stats().chase_hops, 2u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckChase, RevisitingAProcessorIsLegitimate) {
  sim::Engine eng;
  Checker ck(eng, 8, no_abort());
  // The object moved back to 0 mid-chase and 1's pointer was freshened:
  // the chase crosses 0 twice but never follows the same pointer twice.
  const std::uint64_t c = ck.on_chase_begin(8, 0);
  ck.on_chase_hop(c, 0, 1);
  ck.on_chase_hop(c, 1, 0);
  ck.on_fwd_pointer(1, 8, 0);
  ck.on_chase_end(c, 0);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckChase, FollowingTheSamePointerTwiceIsACycle) {
  sim::Engine eng;
  Checker ck(eng, 8, no_abort());
  const std::uint64_t c = ck.on_chase_begin(8, 0);
  ck.on_chase_hop(c, 0, 1);
  ck.on_chase_hop(c, 1, 0);
  ck.on_chase_hop(c, 0, 1);  // same edge again: this chase never terminates
  EXPECT_EQ(ck.count(Violation::kForwardCycle), 1u);
}

TEST(CheckChase, UncompressedHopIsFlaggedOnArrival) {
  sim::Engine eng;
  Checker ck(eng, 8, no_abort());
  const std::uint64_t c = ck.on_chase_begin(8, 0);
  ck.on_chase_hop(c, 0, 1);
  ck.on_chase_hop(c, 1, 2);
  ck.on_fwd_pointer(0, 8, 1);  // still points one hop behind
  ck.on_fwd_pointer(1, 8, 2);
  ck.on_chase_end(c, 2);
  ASSERT_EQ(ck.count(Violation::kChainNotCompressed), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "still points at 1"));
}

// ---------------------------------------------------------------------------
// Reliable-transport sequence numbers
// ---------------------------------------------------------------------------

TEST(CheckSeq, ExactlyOnceDeliveryIsClean) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_seq_sent(0, 1, 0);
  ck.on_seq_delivered(0, 1, 0, /*fresh=*/true);
  ck.on_seq_sent(0, 1, 1);
  ck.on_seq_delivered(0, 1, 1, /*fresh=*/true);
  // A retransmitted copy correctly deduped by the transport is fine too.
  ck.on_seq_delivered(0, 1, 1, /*fresh=*/false);
  ck.finalize();
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckSeq, DedupVerdictDisagreementIsFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_seq_sent(0, 1, 5);
  ck.on_seq_delivered(0, 1, 5, /*fresh=*/true);
  ck.on_seq_delivered(0, 1, 5, /*fresh=*/true);  // duplicate surfaced as fresh
  EXPECT_EQ(ck.count(Violation::kSeqDuplicate), 1u);
}

TEST(CheckSeq, DeliveryOfUnsentSeqIsFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_seq_delivered(0, 1, 7, /*fresh=*/true);
  ASSERT_EQ(ck.count(Violation::kSeqDuplicate), 1u);
  EXPECT_TRUE(detail_contains(ck.records()[0], "never sent"));
}

TEST(CheckSeq, UndeliveredSeqIsAGapUnlessAbandoned) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_seq_sent(0, 1, 0);
  ck.on_seq_sent(0, 1, 1);
  ck.on_seq_delivered(0, 1, 0, /*fresh=*/true);
  ck.finalize();
  EXPECT_EQ(ck.count(Violation::kSeqGap), 1u);

  sim::Engine eng2;
  Checker ck2(eng2, 4, no_abort());
  ck2.on_seq_sent(0, 1, 0);
  ck2.on_seq_abandoned(0, 1, 0);  // bounded budget exhausted: excused
  ck2.finalize();
  EXPECT_EQ(ck2.violations(), 0u);
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

TEST(CheckReply, ExactlyOnceIsClean) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  const std::uint64_t call = ck.on_call_begin(0, 42);
  ck.on_reply(call, 0);
  ck.finalize();
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckReply, SecondReplyIsFlagged) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  const std::uint64_t call = ck.on_call_begin(0, 42);
  ck.on_reply(call, 0);
  ck.on_reply(call, 0);
  EXPECT_EQ(ck.count(Violation::kDuplicateReply), 1u);
}

TEST(CheckReply, MissingReplyIsFlaggedAtFinalize) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  (void)ck.on_call_begin(3, 42);
  ck.finalize();
  EXPECT_EQ(ck.count(Violation::kLostReply), 1u);
  EXPECT_EQ(ck.records()[0].proc, 3u);
}

// ---------------------------------------------------------------------------
// Coherence directory
// ---------------------------------------------------------------------------

TEST(CheckCoherence, DirectoryInvariants) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_line_state(1, /*modified=*/true, 1, true, true);    // sole owner: ok
  ck.on_line_state(2, /*modified=*/false, 3, false, false); // shared clean: ok
  EXPECT_EQ(ck.violations(), 0u);
  ck.on_line_state(3, /*modified=*/true, 2, true, true);    // 2 sharers
  EXPECT_EQ(ck.count(Violation::kCoherenceConflict), 1u);
  ck.on_line_state(4, /*modified=*/false, 1, true, true);   // clean + owner
  EXPECT_EQ(ck.count(Violation::kCoherenceConflict), 2u);
}

// ---------------------------------------------------------------------------
// Lifecycle, report, abort
// ---------------------------------------------------------------------------

TEST(CheckReport, FinalizeIsIdempotent) {
  sim::Engine eng;
  Checker ck(eng, 4, no_abort());
  ck.on_seq_sent(0, 1, 0);
  ck.finalize();
  ck.finalize();
  EXPECT_EQ(ck.count(Violation::kSeqGap), 1u);
}

TEST(CheckReport, RecordListIsBounded) {
  sim::Engine eng;
  CheckConfig cfg = no_abort();
  cfg.max_records = 2;
  Checker ck(eng, 4, cfg);
  for (std::uint64_t obj = 0; obj < 5; ++obj) {
    ck.on_object_access(1, obj, 0, /*write=*/true);
  }
  EXPECT_EQ(ck.records().size(), 2u);           // records are bounded...
  EXPECT_EQ(ck.count(Violation::kPhantomWrite), 5u);  // ...counting is exact
}

TEST(CheckReport, IdenticalHistoriesProduceByteIdenticalReports) {
  auto run = [] {
    sim::Engine eng;
    Checker ck(eng, 4, no_abort());
    const std::uint64_t t = ck.on_send(0, 1);
    ck.on_deliver(1, t);
    ck.on_object_access(1, 7, 0, /*write=*/true);
    const std::uint64_t call = ck.on_call_begin(0, 7);
    ck.on_reply(call, 0);
    ck.finalize();
    return check_report_json(ck);
  };
  const std::string a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(a.find("\"kind\": \"phantom_write\""), std::string::npos);
  EXPECT_NE(a.find("\"check.violations\": 1"), std::string::npos);
}

TEST(CheckAbortDeath, ExplicitAbortConfigAbortsOnViolation) {
  sim::Engine eng;
  CheckConfig cfg;
  cfg.abort_on_violation = true;
  Checker ck(eng, 4, cfg);
  EXPECT_DEATH_IF_SUPPORTED(ck.on_object_access(1, 7, 0, /*write=*/true),
                            "VIOLATION phantom_write");
}

#ifndef NDEBUG
TEST(CheckAbortDeath, DebugBuildsAbortByDefault) {
  sim::Engine eng;
  Checker ck(eng, 4);  // default config: abort_on_violation on in Debug
  EXPECT_DEATH_IF_SUPPORTED(ck.on_object_access(1, 7, 0, /*write=*/true),
                            "VIOLATION phantom_write");
}
#endif

}  // namespace
}  // namespace cm::check
