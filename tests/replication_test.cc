#include "core/replication.h"

#include <gtest/gtest.h>

#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::core {
namespace {

using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  ObjectSpace objects;
  Runtime rt;

  explicit World(ProcId nprocs)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, CostModel::software()) {}
};

Task<> ensure_at(World* w, Replicated* r, ProcId p) {
  Ctx ctx{&w->rt, p};
  co_await r->ensure(ctx);
}

Task<> invalidate_from(World* w, Replicated* r, ProcId p) {
  Ctx ctx{&w->rt, p};
  co_await r->invalidate_all(ctx);
}

TEST(Replicated, HomeAlwaysValidAndFree) {
  World w(8);
  Replicated r(w.rt, w.objects.create(3), 12);
  EXPECT_TRUE(r.valid_at(3));
  sim::detach(ensure_at(&w, &r, 3));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 0u);
  EXPECT_EQ(w.rt.stats().replica_hits, 1u);
}

TEST(Replicated, FirstUseFetchesThenHits) {
  World w(8);
  Replicated r(w.rt, w.objects.create(3), 12);
  EXPECT_FALSE(r.valid_at(5));
  sim::detach(ensure_at(&w, &r, 5));
  w.eng.run();
  EXPECT_TRUE(r.valid_at(5));
  EXPECT_EQ(w.net.stats().messages, 2u);  // request + contents
  EXPECT_EQ(w.rt.stats().replica_fetches, 1u);

  sim::detach(ensure_at(&w, &r, 5));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 2u);  // no further traffic
  EXPECT_EQ(w.rt.stats().replica_hits, 1u);
}

TEST(Replicated, InvalidateAllClearsEveryRemoteReplica) {
  World w(8);
  Replicated r(w.rt, w.objects.create(0), 12);
  for (ProcId p = 1; p < 5; ++p) {
    sim::detach(ensure_at(&w, &r, p));
    w.eng.run();
  }
  const auto msgs_before = w.net.stats().messages;
  sim::detach(invalidate_from(&w, &r, 0));
  w.eng.run();
  for (ProcId p = 1; p < 5; ++p) EXPECT_FALSE(r.valid_at(p));
  EXPECT_TRUE(r.valid_at(0));
  // 4 invalidations + 4 acks.
  EXPECT_EQ(w.net.stats().messages - msgs_before, 8u);
  EXPECT_EQ(w.rt.stats().replica_invalidations, 4u);
}

TEST(Replicated, InvalidateWithNoReplicasIsFree) {
  World w(8);
  Replicated r(w.rt, w.objects.create(0), 12);
  sim::detach(invalidate_from(&w, &r, 0));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 0u);
}

TEST(Replicated, RefetchAfterInvalidation) {
  World w(4);
  Replicated r(w.rt, w.objects.create(0), 12);
  sim::detach(ensure_at(&w, &r, 2));
  w.eng.run();
  sim::detach(invalidate_from(&w, &r, 0));
  w.eng.run();
  const auto before = w.rt.stats().replica_fetches;
  sim::detach(ensure_at(&w, &r, 2));
  w.eng.run();
  EXPECT_EQ(w.rt.stats().replica_fetches, before + 1);
  EXPECT_TRUE(r.valid_at(2));
}

TEST(Replicated, RebindMovesPrimaryAndInvalidates) {
  World w(8);
  const ObjectId a = w.objects.create(1);
  const ObjectId b = w.objects.create(6);
  Replicated r(w.rt, a, 12);
  sim::detach(ensure_at(&w, &r, 4));
  w.eng.run();
  r.rebind(b);
  EXPECT_EQ(r.primary(), b);
  EXPECT_EQ(r.home(), 6u);
  EXPECT_FALSE(r.valid_at(4));
  EXPECT_TRUE(r.valid_at(6));
}

TEST(Replicated, FetchLatencyScalesWithObjectSize) {
  auto fetch_time = [](unsigned words) {
    World w(4);
    Replicated r(w.rt, w.objects.create(0), words);
    sim::detach(ensure_at(&w, &r, 2));
    w.eng.run();
    return w.eng.now();
  };
  EXPECT_LT(fetch_time(4), fetch_time(64));
}

}  // namespace
}  // namespace cm::core
