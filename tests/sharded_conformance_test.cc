// Sharded-engine conformance (DESIGN.md §12): the one contract everything
// else leans on is that shard count and shard backend are *pure host-side
// knobs* — same-seed runs produce bit-identical simulation results at every
// shard count and on both backends. These tests pin that contract over the
// paper's two workloads with every observer installed:
//
//  * run-level results (ops, traffic, completion time, app end state) and
//    the full exported metrics record match across shards {1, 2, 4};
//  * the Chrome trace JSON is byte-identical across shard counts — the
//    tracer's per-shard buffers merge back into the global (t, label) order;
//  * the checker's report JSON is byte-identical across shard counts — the
//    deferred-replay path sees hooks in the same order the classic engine
//    fired them in;
//  * kThreads == kSequential at the same shard count, including at
//    nshards == 1 under chaos (how the fault stack rides under TSan).
//
// Only sim.cross_shard_msgs and sim.window_count legitimately vary with the
// shard count, so the cross-N metrics comparison scrubs those two keys.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "check/report.h"
#include "core/metrics.h"

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;
using sim::ShardBackend;

CountingConfig counting_cfg() {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.mesh = false;  // mesh link contention is global state, single-shard only
  cfg.requesters = 32;
  cfg.think = 0;
  cfg.window = Window{10'000, 60'000};
  cfg.check = true;
  return cfg;
}

BTreeConfig btree_cfg() {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.mesh = false;
  cfg.requesters = 16;
  cfg.nkeys = 2000;
  cfg.max_entries = 20;
  cfg.insert_ratio = 0.0;  // multi-shard B-tree runs are lookup-only
  cfg.ops_per_requester = 40;
  cfg.check = true;
  return cfg;
}

std::string metrics_json(const RunStats& r) {
  core::Metrics m;
  put_run_stats(m, r);
  std::string out;
  m.append_json_fields(out);
  return out;
}

// Drop keys that legitimately differ between the compared runs from an
// exported metrics record, leaving everything else for a byte comparison:
// the two shard-count-dependent counters and the per-run trace file path.
std::string scrub(std::string json, std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    const std::size_t at = json.find(key);
    if (at == std::string::npos) continue;
    std::size_t val = at + std::string(key).size();
    while (val < json.size() && json[val] == ' ') ++val;
    if (val < json.size() && json[val] == '"') {  // string value
      val = json.find('"', val + 1);
    }
    std::size_t end = json.find(',', val);
    end = end == std::string::npos ? json.size() : end + 2;  // ", "
    json.erase(at, end - at);
  }
  return json;
}

std::string scrub_trace_path(std::string json) {
  return scrub(std::move(json), {"\"trace\":"});
}

std::string scrub_shard_counters(std::string json) {
  return scrub(std::move(json), {"\"sim.cross_shard_msgs\":",
                                 "\"sim.window_count\":", "\"trace\":"});
}

std::string report_of(const RunStats& r) {
  return check::check_report_json(r.check, r.check_violations);
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot read " << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string trace_path_for(const char* stem, unsigned shards, bool threads) {
  return testing::TempDir() + stem + "_s" + std::to_string(shards) +
         (threads ? "_thr" : "_seq") + ".json";
}

// ---------------------------------------------------------------------------
// Shard count is invisible: counting network, shards in {1, 2, 4}
// ---------------------------------------------------------------------------

TEST(ShardedConformance, CountingRunIsIdenticalAcrossShardCounts) {
  std::vector<RunStats> runs;
  for (unsigned s : {1u, 2u, 4u}) {
    CountingConfig cfg = counting_cfg();
    cfg.nshards = s;
    cfg.trace_path = trace_path_for("shard_counting", s, false);
    runs.push_back(run_counting(cfg));
  }
  const RunStats& ref = runs[0];
  EXPECT_EQ(ref.check.total_violations, 0u);
  EXPECT_GT(ref.check.delivers, 0u);  // the checker really ran
  EXPECT_GT(ref.ops, 0);
  const std::string ref_metrics = scrub_shard_counters(metrics_json(ref));
  const std::string ref_report = report_of(ref);
  const std::string ref_trace = slurp(ref.trace_path);
  EXPECT_FALSE(ref_trace.empty());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunStats& r = runs[i];
    EXPECT_EQ(r.ops, ref.ops);
    EXPECT_EQ(r.words, ref.words);
    EXPECT_EQ(r.messages, ref.messages);
    EXPECT_EQ(r.completed_at, ref.completed_at);
    EXPECT_EQ(r.events_executed, ref.events_executed);
    EXPECT_EQ(r.total_exited, ref.total_exited);
    EXPECT_EQ(r.step_property, ref.step_property);
    EXPECT_GT(r.cross_shard_msgs, 0u);  // shards really talked
    EXPECT_GT(r.window_count, 0u);      // windows really turned
    EXPECT_EQ(scrub_shard_counters(metrics_json(r)), ref_metrics);
    EXPECT_EQ(report_of(r), ref_report);
    EXPECT_EQ(slurp(r.trace_path), ref_trace);
  }
}

TEST(ShardedConformance, BTreeLookupRunIsIdenticalAcrossShardCounts) {
  std::vector<RunStats> runs;
  for (unsigned s : {1u, 2u, 4u}) {
    BTreeConfig cfg = btree_cfg();
    cfg.nshards = s;
    cfg.trace_path = trace_path_for("shard_btree", s, false);
    runs.push_back(run_btree(cfg));
  }
  const RunStats& ref = runs[0];
  EXPECT_EQ(ref.check.total_violations, 0u);
  EXPECT_GT(ref.check.calls, 0u);
  EXPECT_TRUE(ref.invariants_ok);
  const std::string ref_metrics = scrub_shard_counters(metrics_json(ref));
  const std::string ref_report = report_of(ref);
  const std::string ref_trace = slurp(ref.trace_path);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const RunStats& r = runs[i];
    EXPECT_EQ(r.btree_digest, ref.btree_digest);
    EXPECT_EQ(r.btree_keys, ref.btree_keys);
    EXPECT_EQ(r.completed_at, ref.completed_at);
    EXPECT_EQ(r.events_executed, ref.events_executed);
    EXPECT_EQ(scrub_shard_counters(metrics_json(r)), ref_metrics);
    EXPECT_EQ(report_of(r), ref_report);
    EXPECT_EQ(slurp(r.trace_path), ref_trace);
  }
}

// ---------------------------------------------------------------------------
// Backend is invisible: kThreads == kSequential, byte for byte
// ---------------------------------------------------------------------------

TEST(ShardedConformance, ThreadsBackendMatchesSequentialAt4Shards) {
  RunStats seq;
  RunStats thr;
  {
    CountingConfig cfg = counting_cfg();
    cfg.nshards = 4;
    cfg.shard_backend = ShardBackend::kSequential;
    cfg.trace_path = trace_path_for("shard_backend", 4, false);
    seq = run_counting(cfg);
    cfg.shard_backend = ShardBackend::kThreads;
    cfg.trace_path = trace_path_for("shard_backend", 4, true);
    thr = run_counting(cfg);
  }
  // Same shard count on both sides: the full metrics record must match,
  // cross-shard counters included (only the trace path differs by design).
  EXPECT_EQ(scrub_trace_path(metrics_json(thr)),
            scrub_trace_path(metrics_json(seq)));
  EXPECT_EQ(report_of(thr), report_of(seq));
  EXPECT_EQ(slurp(thr.trace_path), slurp(seq.trace_path));
  EXPECT_EQ(thr.check.total_violations, 0u);
}

TEST(ShardedConformance, ThreadsBackendMatchesSequentialForBTree) {
  BTreeConfig cfg = btree_cfg();
  cfg.nshards = 4;
  cfg.shard_backend = ShardBackend::kSequential;
  const RunStats seq = run_btree(cfg);
  cfg.shard_backend = ShardBackend::kThreads;
  const RunStats thr = run_btree(cfg);
  EXPECT_EQ(metrics_json(thr), metrics_json(seq));
  EXPECT_EQ(report_of(thr), report_of(seq));
  EXPECT_EQ(thr.btree_digest, seq.btree_digest);
}

// ---------------------------------------------------------------------------
// kThreads at nshards == 1 runs the classic loop on a worker thread and so
// admits every feature — this is how the chaos stack rides under TSan.
// ---------------------------------------------------------------------------

TEST(ShardedConformance, ChaosSoakOnThreadsBackendMatchesClassic) {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 25;
  cfg.faults.rates.drop = 0.05;
  cfg.faults.rates.duplicate = 0.025;
  cfg.faults.rates.delay = 0.05;
  cfg.faults.seed = 0xc4a05;
  cfg.check = true;
  const RunStats classic = run_counting(cfg);
  cfg.shard_backend = ShardBackend::kThreads;  // nshards stays 1
  const RunStats threaded = run_counting(cfg);

  EXPECT_GT(classic.net.faults_dropped, 0u);  // faults really fired
  EXPECT_EQ(metrics_json(threaded), metrics_json(classic));
  EXPECT_EQ(report_of(threaded), report_of(classic));
  EXPECT_EQ(threaded.window_count, 0u);  // classic loop, no windows
  EXPECT_EQ(threaded.check.total_violations, 0u);
}

TEST(ShardedConformance, LocatorChaosSoakOnThreadsBackendMatchesClassic) {
  // The deepest single-shard stack — distributed locator, message loss,
  // retransmission, checker — on the worker thread. This is the TSan job's
  // widest net: every layer's state is exercised under the thread the
  // sanitizer watches.
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 25;
  cfg.locator.mode = loc::Locality::kDistributed;
  cfg.faults.rates.drop = 0.05;
  cfg.faults.rates.delay = 0.05;
  cfg.faults.seed = 0xc4a05;
  cfg.check = true;
  const RunStats classic = run_btree(cfg);
  cfg.shard_backend = ShardBackend::kThreads;  // nshards stays 1
  const RunStats threaded = run_btree(cfg);

  EXPECT_GT(classic.loc.dir_queries, 0u);
  EXPECT_GT(classic.runtime.retransmits, 0u);
  EXPECT_EQ(metrics_json(threaded), metrics_json(classic));
  EXPECT_EQ(report_of(threaded), report_of(classic));
  EXPECT_EQ(threaded.check.total_violations, 0u);
}

}  // namespace
}  // namespace cm::apps
