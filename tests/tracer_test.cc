// Tracer smoke tests: a traced run writes valid Chrome trace-event JSON
// containing every core event type on per-processor tracks, the trace is
// deterministic across same-seed runs, and installing the tracer does not
// perturb simulation results at all.
#include "sim/tracer.h"

// GCC 12 reports spurious -Wmaybe-uninitialized from std::variant's storage
// under -O2 (GCC PR 105562); this TU exercises those paths heavily through
// the JSON value type below and core::Metrics.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "apps/workload.h"
#include "core/metrics.h"
#include "sim/engine.h"

namespace cm {
namespace {

// ---- a minimal recursive-descent JSON parser -------------------------------
// Genuinely parses the emitted file (no regex shortcuts), so a malformed
// escape, trailing comma, or unbalanced bracket fails the test.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<JsonObject>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return std::get<JsonObject>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return std::get<JsonArray>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : s_(text) {}

  /// Parses the whole input; sets ok=false on any syntax error.
  JsonValue parse(bool& ok) {
    ok = true;
    JsonValue v = value(ok);
    skip_ws();
    if (pos_ != s_.size()) ok = false;
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue value(bool& ok) {
    skip_ws();
    if (pos_ >= s_.size()) {
      ok = false;
      return {};
    }
    const char c = s_[pos_];
    if (c == '{') return object(ok);
    if (c == '[') return array(ok);
    if (c == '"') return string(ok);
    if (c == 't') {
      ok = ok && literal("true");
      return {true};
    }
    if (c == 'f') {
      ok = ok && literal("false");
      return {false};
    }
    if (c == 'n') {
      ok = ok && literal("null");
      return {nullptr};
    }
    return number(ok);
  }

  JsonValue object(bool& ok) {
    JsonObject out;
    if (!consume('{')) {
      ok = false;
      return {};
    }
    skip_ws();
    if (consume('}')) return {std::move(out)};
    do {
      skip_ws();
      JsonValue key = string(ok);
      if (!ok || !consume(':')) {
        ok = false;
        return {};
      }
      out[key.str()] = value(ok);
      if (!ok) return {};
    } while (consume(','));
    if (!consume('}')) ok = false;
    return {std::move(out)};
  }

  JsonValue array(bool& ok) {
    JsonArray out;
    if (!consume('[')) {
      ok = false;
      return {};
    }
    skip_ws();
    if (consume(']')) return {std::move(out)};
    do {
      out.push_back(value(ok));
      if (!ok) return {};
    } while (consume(','));
    if (!consume(']')) ok = false;
    return {std::move(out)};
  }

  JsonValue string(bool& ok) {
    if (!consume('"')) {
      ok = false;
      return {};
    }
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) {
          ok = false;
          return {};
        }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) {
              ok = false;
              return {};
            }
            pos_ += 4;  // validated as hex, decoded as '?' (ASCII traces)
            out += '?';
            break;
          default:
            ok = false;
            return {};
        }
      } else {
        out += c;
      }
    }
    if (!consume('"')) ok = false;
    return {std::move(out)};
  }

  JsonValue number(bool& ok) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '-' ||
            s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      ok = false;
      return {};
    }
    try {
      return {std::stod(std::string(s_.substr(start, pos_ - start)))};
    } catch (...) {
      ok = false;
      return {};
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream out;
  out << f.rdbuf();
  return out.str();
}

JsonValue parse_trace_file(const std::string& path) {
  const std::string text = slurp(path);
  EXPECT_FALSE(text.empty()) << path;
  bool ok = false;
  JsonParser parser(text);
  JsonValue root = parser.parse(ok);
  EXPECT_TRUE(ok) << "trace is not valid JSON: " << path;
  EXPECT_TRUE(root.is_object());
  return root;
}

/// name -> count over the instant ("ph":"i") events; also checks per-event
/// shape: required keys, pid 0, integer-valued ts.
std::map<std::string, int> instant_event_counts(const JsonValue& root,
                                                std::set<double>* tids) {
  std::map<std::string, int> counts;
  const auto& events = root.object().at("traceEvents").array();
  for (const JsonValue& ev : events) {
    const JsonObject& o = ev.object();
    const std::string& ph = o.at("ph").str();
    if (ph == "M") continue;  // metadata: process/thread names
    EXPECT_EQ(ph, "i");
    EXPECT_EQ(o.at("s").str(), "t");
    EXPECT_EQ(o.at("pid").num(), 0.0);
    const double ts = o.at("ts").num();
    EXPECT_GE(ts, 0.0);
    EXPECT_EQ(ts, static_cast<double>(static_cast<std::uint64_t>(ts)));
    if (tids != nullptr) tids->insert(o.at("tid").num());
    ++counts[o.at("name").str()];
  }
  return counts;
}

// ---- tracer unit behaviour -------------------------------------------------

TEST(Tracer, RecordsCountsAndEmitsValidJson) {
  sim::Engine eng;
  sim::Tracer tracer(eng);
  eng.set_tracer(&tracer);
  eng.at(5, [&] {
    tracer.record(sim::TraceEvent::kMsgSend, 1,
                  {{"dst", 2}, {"msg", tracer.next_msg_id()}});
  });
  eng.at(9, [&] { tracer.record(sim::TraceEvent::kMsgDeliver, 2, {{"msg", 1}}); });
  eng.run();

  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.count(sim::TraceEvent::kMsgSend), 1u);
  EXPECT_EQ(tracer.count(sim::TraceEvent::kMsgDeliver), 1u);
  EXPECT_EQ(tracer.count(sim::TraceEvent::kMigrateBegin), 0u);

  bool ok = false;
  const std::string json = tracer.chrome_json();  // parser keeps a view
  JsonParser parser(json);
  const JsonValue root = parser.parse(ok);
  ASSERT_TRUE(ok);
  std::set<double> tids;
  const auto counts = instant_event_counts(root, &tids);
  EXPECT_EQ(counts.at("msg.send"), 1);
  EXPECT_EQ(counts.at("msg.deliver"), 1);
  EXPECT_EQ(tids, (std::set<double>{1.0, 2.0}));
}

TEST(Tracer, EngineDefaultsToNoTracer) {
  sim::Engine eng;
  EXPECT_EQ(eng.tracer(), nullptr);
}

// ---- unified metrics export ------------------------------------------------

TEST(MetricsRegistry, EmitsOneFlatObjectPerRecordAsValidJson) {
  core::MetricsRegistry reg;
  core::Metrics& a = reg.record("run \"a\"");  // label needs escaping
  a.put("ops", std::uint64_t{42});
  a.put("rate", 0.5);
  a.put("ok", true);
  a.put("note", "hello\nworld");
  core::RtStats rt;
  rt.migrations = 7;
  core::put_rt_stats(a, rt);
  net::NetStats nt;
  nt.words = 99;
  core::put_net_stats(a, nt);
  reg.record("empty");

  bool ok = false;
  const std::string json = reg.to_json();  // parser keeps a view
  JsonParser parser(json);
  const JsonValue root = parser.parse(ok);
  ASSERT_TRUE(ok) << "metrics JSON failed to parse";
  const JsonArray& rows = root.array();
  ASSERT_EQ(rows.size(), 2u);
  const JsonObject& row = rows[0].object();
  EXPECT_EQ(row.at("label").str(), "run \"a\"");
  EXPECT_EQ(row.at("ops").num(), 42.0);
  EXPECT_EQ(row.at("rate").num(), 0.5);
  EXPECT_EQ(std::get<bool>(row.at("ok").v), true);
  EXPECT_EQ(row.at("note").str(), "hello\nworld");
  EXPECT_EQ(row.at("rt.migrations").num(), 7.0);
  EXPECT_EQ(row.at("net.words").num(), 99.0);
  EXPECT_GT(row.count("breakdown.user_code"), 0u);
  EXPECT_EQ(rows[1].object().at("label").str(), "empty");
}

// ---- end-to-end: traced workload runs --------------------------------------

apps::CountingConfig traced_counting(core::Mechanism mech,
                                     const std::string& trace_path) {
  apps::CountingConfig cfg;
  cfg.scheme = core::Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.window = apps::Window{5'000, 40'000};
  cfg.trace_path = trace_path;
  return cfg;
}

TEST(TracerSmoke, MigrationRunCoversCoreEventTypes) {
  const std::string path = testing::TempDir() + "trace_migration.json";
  const apps::RunStats r =
      run_counting(traced_counting(core::Mechanism::kMigration, path));
  EXPECT_EQ(r.trace_path, path);

  const JsonValue root = parse_trace_file(path);
  std::set<double> tids;
  const auto counts = instant_event_counts(root, &tids);
  for (const char* name :
       {"msg.send", "msg.deliver", "migrate.begin", "migrate.arrive",
        "migrate.short_circuit", "thread.create", "balancer.visit"}) {
    EXPECT_GT(counts.count(name), 0u) << "missing event type " << name;
  }
  // send/deliver pair up: nothing is lost on a fault-free network.
  EXPECT_EQ(counts.at("msg.send"), counts.at("msg.deliver"));
  // Tracks are per-processor ids within the simulated machine.
  ASSERT_FALSE(tids.empty());
  EXPECT_GE(*tids.begin(), 0.0);
  EXPECT_GT(tids.size(), 1u);
}

TEST(TracerSmoke, RpcRunHasRpcIssueAndReply) {
  const std::string path = testing::TempDir() + "trace_rpc.json";
  (void)run_counting(traced_counting(core::Mechanism::kRpc, path));
  const auto counts =
      instant_event_counts(parse_trace_file(path), nullptr);
  EXPECT_GT(counts.count("rpc.issue"), 0u);
  EXPECT_GT(counts.count("rpc.reply"), 0u);
  EXPECT_EQ(counts.at("rpc.issue"), counts.at("rpc.reply"));
  EXPECT_EQ(counts.count("migrate.begin"), 0u);
}

TEST(TracerSmoke, BTreeRunHasNodeVisits) {
  const std::string path = testing::TempDir() + "trace_btree.json";
  apps::BTreeConfig cfg;
  cfg.scheme = core::Scheme{core::Mechanism::kMigration, false, false};
  cfg.requesters = 4;
  cfg.nkeys = 500;
  cfg.window = apps::Window{5'000, 30'000};
  cfg.trace_path = path;
  (void)run_btree(cfg);
  const auto counts =
      instant_event_counts(parse_trace_file(path), nullptr);
  EXPECT_GT(counts.count("btree.node_visit"), 0u);
}

TEST(TracerSmoke, TraceIsDeterministicAcrossSameSeedRuns) {
  const std::string a = testing::TempDir() + "trace_det_a.json";
  const std::string b = testing::TempDir() + "trace_det_b.json";
  (void)run_counting(traced_counting(core::Mechanism::kMigration, a));
  (void)run_counting(traced_counting(core::Mechanism::kMigration, b));
  const std::string ta = slurp(a);
  EXPECT_FALSE(ta.empty());
  EXPECT_EQ(ta, slurp(b));
}

TEST(TracerSmoke, TracingDoesNotPerturbSimulationResults) {
  apps::CountingConfig cfg =
      traced_counting(core::Mechanism::kMigration, "");
  const apps::RunStats off = run_counting(cfg);
  cfg.trace_path = testing::TempDir() + "trace_perturb.json";
  const apps::RunStats on = run_counting(cfg);
  EXPECT_EQ(off.ops, on.ops);
  EXPECT_EQ(off.words, on.words);
  EXPECT_EQ(off.messages, on.messages);
  EXPECT_EQ(off.completed_at, on.completed_at);
  EXPECT_EQ(off.total_exited, on.total_exited);
  EXPECT_EQ(off.runtime.migrations, on.runtime.migrations);
  EXPECT_TRUE(off.trace_path.empty());
}

TEST(TracerSmoke, ChaosRunRecordsFaultAndReliabilityEvents) {
  const std::string path = testing::TempDir() + "trace_chaos.json";
  apps::CountingConfig cfg;
  cfg.scheme = core::Scheme{core::Mechanism::kMigration, false, false};
  cfg.requesters = 8;
  cfg.ops_per_requester = 20;
  cfg.faults.rates.drop = 0.05;
  cfg.faults.rates.duplicate = 0.02;
  cfg.faults.rates.delay = 0.05;
  cfg.faults.seed = 42;
  cfg.trace_path = path;
  const apps::RunStats r = run_counting(cfg);
  EXPECT_EQ(r.total_exited, 8 * 20);

  const auto counts =
      instant_event_counts(parse_trace_file(path), nullptr);
  EXPECT_GT(counts.count("fault.drop"), 0u);
  EXPECT_GT(counts.count("reliable.retransmit"), 0u);
  EXPECT_GT(counts.count("reliable.timeout"), 0u);
}

}  // namespace
}  // namespace cm
