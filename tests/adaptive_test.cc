#include "core/adaptive.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace cm::core {
namespace {

constexpr ObjectId kObj = 7;

TEST(AdaptiveChooser, DefaultsToMigrationWithoutHistory) {
  AdaptiveChooser c;
  EXPECT_EQ(c.recommend(kObj, 8, 16), Mechanism::kMigration);
  c.record(kObj, 1, true);  // too little history to decide
  EXPECT_EQ(c.recommend(kObj, 8, 16), Mechanism::kMigration);
}

TEST(AdaptiveChooser, ReadMostlyDataGoesToSharedMemory) {
  AdaptiveChooser c;
  // Many processors reading, hardly ever writing: replication territory.
  for (int i = 0; i < 100; ++i) {
    c.record(kObj, static_cast<sim::ProcId>(i % 8), /*write=*/i % 50 == 0);
  }
  EXPECT_LT(c.write_ratio(kObj), 0.15);
  EXPECT_EQ(c.recommend(kObj, 8, 16), Mechanism::kSharedMemory);
}

TEST(AdaptiveChooser, DominantAccessorAttractsTheObject) {
  AdaptiveChooser c;
  // One processor does ~95% of the (write-heavy) accessing.
  for (int i = 0; i < 100; ++i) {
    c.record(kObj, i % 20 == 0 ? 3u : 5u, /*write=*/true);
  }
  EXPECT_GT(c.dominant_share(kObj), 0.8);
  EXPECT_EQ(c.recommend(kObj, 8, 16), Mechanism::kObjectMigration);
}

TEST(AdaptiveChooser, PingPongingObjectsAreNotAttracted) {
  AdaptiveChooser c;
  // Same dominant-accessor pattern that normally yields object migration...
  for (int i = 0; i < 100; ++i) {
    c.record(kObj, i % 20 == 0 ? 3u : 5u, /*write=*/true);
  }
  ASSERT_EQ(c.recommend(kObj, 8, 16), Mechanism::kObjectMigration);
  // ...but the locator reports that most requests land on stale hosts: the
  // object moves faster than hints spread, so attracting it is pathological.
  for (int i = 0; i < 60; ++i) c.record_bounce(kObj);
  EXPECT_GT(c.bounce_rate(kObj), 0.5);
  EXPECT_NE(c.recommend(kObj, 8, 16), Mechanism::kObjectMigration);
}

TEST(AdaptiveChooser, HugeObjectsAreNotAttracted) {
  AdaptiveChooser c;
  for (int i = 0; i < 100; ++i) {
    c.record(kObj, i % 20 == 0 ? 3u : 5u, true);
  }
  // Same dominant accessor, but the object is enormous relative to a frame.
  EXPECT_NE(c.recommend(kObj, 8, 4096), Mechanism::kObjectMigration);
}

TEST(AdaptiveChooser, WriteSharedTraversalsMigrateComputation) {
  AdaptiveChooser c;
  // Every access writes; accessors take turns in short runs (like
  // balancers); frames are small.
  for (int i = 0; i < 120; ++i) {
    c.record(kObj, static_cast<sim::ProcId>((i / 2) % 6), true);
  }
  EXPECT_NEAR(c.avg_run_length(kObj), 2.0, 0.1);
  EXPECT_EQ(c.recommend(kObj, 8, 16), Mechanism::kMigration);
}

TEST(AdaptiveChooser, HugeFramesFallBackToRpc) {
  AdaptiveChooser c;
  for (int i = 0; i < 120; ++i) {
    c.record(kObj, static_cast<sim::ProcId>(i % 6), true);  // run length 1
  }
  EXPECT_EQ(c.recommend(kObj, /*frame=*/256, /*object=*/16), Mechanism::kRpc);
}

TEST(AdaptiveChooser, ProfileAccountingIsExact) {
  AdaptiveChooser c;
  c.record(kObj, 1, true);
  c.record(kObj, 1, false);
  c.record(kObj, 2, false);
  c.record(kObj, 1, false);
  EXPECT_EQ(c.accesses(kObj), 4u);
  EXPECT_DOUBLE_EQ(c.write_ratio(kObj), 0.25);
  EXPECT_DOUBLE_EQ(c.avg_run_length(kObj), 4.0 / 3.0);  // runs: 1,1 | 2 | 1
  EXPECT_DOUBLE_EQ(c.dominant_share(kObj), 0.75);
}

TEST(AdaptiveChooser, ObjectsAreProfiledIndependently) {
  AdaptiveChooser c;
  for (int i = 0; i < 50; ++i) {
    c.record(1, static_cast<sim::ProcId>(i % 4), false);  // read-mostly
    c.record(2, 9, true);                                 // single writer
  }
  EXPECT_EQ(c.recommend(1, 8, 16), Mechanism::kSharedMemory);
  EXPECT_EQ(c.recommend(2, 8, 16), Mechanism::kObjectMigration);
}

// Property: the recommendation is always one of the five mechanisms and is
// stable under repeated queries (no hidden state mutation in recommend).
TEST(AdaptiveChooser, RecommendIsPureAndTotal) {
  AdaptiveChooser c;
  sim::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    c.record(static_cast<ObjectId>(rng.below(10)),
             static_cast<sim::ProcId>(rng.below(6)), rng.chance(0.4));
  }
  for (ObjectId o = 0; o < 10; ++o) {
    const Mechanism first = c.recommend(o, 8, 32);
    for (int q = 0; q < 5; ++q) EXPECT_EQ(c.recommend(o, 8, 32), first);
  }
}

}  // namespace
}  // namespace cm::core
