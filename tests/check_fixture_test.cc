// Seeded-bug fixtures: each test plants one protocol bug the benches could
// never see (end states stay correct) and asserts the checker catches it
// with the exact violation kind. In Debug builds the same bugs abort the
// process (death tests); with abort_on_violation off they surface in the
// structured report, which is what Release builds assert.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/checker.h"
#include "core/location.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::check {
namespace {

using core::CallOpts;
using core::Ctx;
using core::ObjectId;
using sim::ProcId;
using sim::Task;

CheckConfig cfg_with(bool abort_on) {
  CheckConfig cfg;
  cfg.abort_on_violation = abort_on;
  return cfg;
}

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  core::ObjectSpace objects;
  core::Runtime rt;
  Checker ck;

  World(ProcId nprocs, bool abort_on)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, core::CostModel::software()),
        ck(eng, nprocs, cfg_with(abort_on)) {
    eng.set_checker(&ck);
  }
};

// ---------------------------------------------------------------------------
// Seeded bug 1: stale-host write. A broken location service claims every
// object is local to whoever asks, so the dispatcher runs method bodies
// against state that lives on another processor — the exact bug class the
// omniscient oracle hides and the phantom check exists for.
// ---------------------------------------------------------------------------

class LyingLocalService : public core::LocationService {
 public:
  Task<ProcId> resolve(Ctx& ctx, ObjectId) override { co_return ctx.proc; }
  Task<ProcId> forward(ObjectId, ProcId at, unsigned, ProcId) override {
    co_return at;
  }
  Task<bool> move_object(Ctx&, ObjectId, unsigned) override {
    co_return false;
  }
};

std::uint64_t run_stale_host_write(bool abort_on) {
  World w(4, abort_on);
  LyingLocalService svc;
  w.rt.set_locator(&svc);
  const ObjectId id = w.objects.create(2);  // truth: the object lives on 2
  sim::detach([](World* w, ObjectId id) -> Task<> {
    Ctx ctx{&w->rt, 0};
    (void)co_await w->rt.call(ctx, id, CallOpts{2, 2, true},
                              [w](Ctx& c) -> Task<int> {
                                co_await w->rt.compute(c, 5);
                                co_return 0;
                              });
  }(&w, id));
  w.eng.run();
  w.ck.finalize();
  return w.ck.count(Violation::kPhantomWrite);
}

TEST(CheckFixture, StaleHostWriteIsReported) {
  World w(4, /*abort_on=*/false);
  LyingLocalService svc;
  w.rt.set_locator(&svc);
  const ObjectId id = w.objects.create(2);
  sim::detach([](World* w, ObjectId id) -> Task<> {
    Ctx ctx{&w->rt, 0};
    (void)co_await w->rt.call(ctx, id, CallOpts{2, 2, true},
                              [w](Ctx& c) -> Task<int> {
                                co_await w->rt.compute(c, 5);
                                co_return 0;
                              });
  }(&w, id));
  w.eng.run();
  w.ck.finalize();
  ASSERT_GE(w.ck.count(Violation::kPhantomWrite), 1u);
  const ViolationRecord& r = w.ck.records()[0];
  EXPECT_EQ(r.kind, Violation::kPhantomWrite);
  EXPECT_EQ(r.proc, 0u);  // the caller ran the body at home=0...
  EXPECT_NE(r.detail.find("hosted on 2"), std::string::npos);  // ...truth: 2
}

// A subtler variant: resolution is honestly remote but the forward step
// never chases the chain, so the request "arrives" at a stale processor.
class LazyForwardService : public core::LocationService {
 public:
  Task<ProcId> resolve(Ctx&, ObjectId) override {
    co_return 1;  // stale hint: the object long since left proc 1
  }
  Task<ProcId> forward(ObjectId, ProcId at, unsigned, ProcId) override {
    co_return at;  // bug: no chase, no compression
  }
  Task<bool> move_object(Ctx&, ObjectId, unsigned) override {
    co_return false;
  }
};

TEST(CheckFixture, ForwardingToAStaleHostIsReported) {
  World w(4, /*abort_on=*/false);
  LazyForwardService svc;
  w.rt.set_locator(&svc);
  const ObjectId id = w.objects.create(2);
  sim::detach([](World* w, ObjectId id) -> Task<> {
    Ctx ctx{&w->rt, 0};
    (void)co_await w->rt.call(ctx, id, CallOpts{2, 2, true},
                              [w](Ctx& c) -> Task<int> {
                                co_await w->rt.compute(c, 5);
                                co_return 0;
                              });
  }(&w, id));
  w.eng.run();
  w.ck.finalize();
  ASSERT_GE(w.ck.count(Violation::kPhantomWrite), 1u);
  EXPECT_EQ(w.ck.records()[0].proc, 1u);  // flagged where the request landed
  // The call itself still completed and replied exactly once: without the
  // checker this run is indistinguishable from a healthy one.
  EXPECT_EQ(w.ck.count(Violation::kDuplicateReply), 0u);
  EXPECT_EQ(w.ck.count(Violation::kLostReply), 0u);
}

// ---------------------------------------------------------------------------
// Seeded bug 2: inverted lock order. Two agents take the same two locks in
// opposite orders — the schedule that happens to run deadlocks only under
// the right interleaving, which is why the order graph flags it always.
// ---------------------------------------------------------------------------

std::uint64_t run_inverted_lock_order(bool abort_on) {
  sim::Engine eng;
  Checker ck(eng, 4, cfg_with(abort_on));
  int a1 = 0, a2 = 0, dir_lock = 0, transfer_lock = 0;
  ck.on_lock_attempt(&a1, &dir_lock, "loc.dir_movers");
  ck.on_lock_acquired(&a1, &dir_lock, "loc.dir_movers");
  ck.on_lock_attempt(&a1, &transfer_lock, "MobileObject.transfer_lock");
  ck.on_lock_acquired(&a1, &transfer_lock, "MobileObject.transfer_lock");
  ck.on_lock_released(&a1, &transfer_lock);
  ck.on_lock_released(&a1, &dir_lock);
  ck.on_lock_attempt(&a2, &transfer_lock, "MobileObject.transfer_lock");
  ck.on_lock_acquired(&a2, &transfer_lock, "MobileObject.transfer_lock");
  ck.on_lock_attempt(&a2, &dir_lock, "loc.dir_movers");  // inversion
  return ck.count(Violation::kLockOrderInversion);
}

TEST(CheckFixture, InvertedLockOrderIsReported) {
  EXPECT_EQ(run_inverted_lock_order(/*abort_on=*/false), 1u);
}

// ---------------------------------------------------------------------------
// Seeded bug 3: duplicated reply. A retransmitted reply that slips past
// dedup wakes the blocked caller twice — end state often survives, the
// exactly-once window does not.
// ---------------------------------------------------------------------------

std::uint64_t run_duplicated_reply(bool abort_on) {
  sim::Engine eng;
  Checker ck(eng, 4, cfg_with(abort_on));
  const std::uint64_t call = ck.on_call_begin(0, 42);
  ck.on_reply(call, 0);
  ck.on_reply(call, 0);
  return ck.count(Violation::kDuplicateReply);
}

TEST(CheckFixture, DuplicatedReplyIsReported) {
  EXPECT_EQ(run_duplicated_reply(/*abort_on=*/false), 1u);
}

// The transport-level cousin: a replayed sequence number the dedup filter
// wrongly surfaces as fresh.
std::uint64_t run_replayed_seq(bool abort_on) {
  sim::Engine eng;
  Checker ck(eng, 4, cfg_with(abort_on));
  ck.on_seq_sent(0, 1, 3);
  ck.on_seq_delivered(0, 1, 3, /*fresh=*/true);
  ck.on_seq_delivered(0, 1, 3, /*fresh=*/true);
  return ck.count(Violation::kSeqDuplicate);
}

TEST(CheckFixture, ReplayedSeqIsReported) {
  EXPECT_EQ(run_replayed_seq(/*abort_on=*/false), 1u);
}

// ---------------------------------------------------------------------------
// Abort path: the same seeded bugs kill the process when abort_on_violation
// is set — the Debug default, so a broken protocol stops a Debug soak cold.
// ---------------------------------------------------------------------------

TEST(CheckFixtureDeath, SeededBugsAbortWhenConfigured) {
  EXPECT_DEATH_IF_SUPPORTED((void)run_stale_host_write(true),
                            "VIOLATION phantom_write");
  EXPECT_DEATH_IF_SUPPORTED((void)run_inverted_lock_order(true),
                            "VIOLATION lock_order");
  EXPECT_DEATH_IF_SUPPORTED((void)run_duplicated_reply(true),
                            "VIOLATION duplicate_reply");
  EXPECT_DEATH_IF_SUPPORTED((void)run_replayed_seq(true),
                            "VIOLATION seq_duplicate");
}

#ifndef NDEBUG
TEST(CheckFixtureDeath, DebugDefaultConfigAborts) {
  // No explicit config: Debug builds abort on the first violation.
  EXPECT_DEATH_IF_SUPPORTED(
      {
        sim::Engine eng;
        Checker ck(eng, 4);
        ck.on_object_access(1, 7, 0, /*write=*/true);
      },
      "VIOLATION phantom_write");
}
#endif

}  // namespace
}  // namespace cm::check
