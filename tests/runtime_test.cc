#include "core/runtime.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/object.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::core {
namespace {

using sim::Cycles;
using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  ObjectSpace objects;
  Runtime rt;

  explicit World(ProcId nprocs, CostModel cost = CostModel::software())
      : machine(eng, nprocs), net(eng), rt(machine, net, objects, cost) {}
};

TEST(ObjectSpace, AssignsIdsAndHomes) {
  ObjectSpace os;
  const ObjectId a = os.create(3);
  const ObjectId b = os.create(7);
  EXPECT_NE(a, b);
  EXPECT_EQ(os.home_of(a), 3u);
  EXPECT_EQ(os.home_of(b), 7u);
  EXPECT_EQ(os.size(), 2u);
}

Task<> call_once(World* w, ObjectId obj, ProcId from, int* result,
                 Cycles work) {
  Ctx ctx{&w->rt, from};
  *result = co_await w->rt.call(
      ctx, obj, CallOpts{4, 2, false},
      [w, work](Ctx& callee) -> Task<int> {
        co_await w->rt.compute(callee, work);
        co_return static_cast<int>(callee.proc);
      });
}

TEST(Runtime, LocalCallSendsNoMessages) {
  World w(4);
  const ObjectId obj = w.objects.create(2);
  int result = -1;
  sim::detach(call_once(&w, obj, /*from=*/2, &result, 10));
  w.eng.run();
  EXPECT_EQ(result, 2);  // body ran at the object's home
  EXPECT_EQ(w.net.stats().messages, 0u);
  EXPECT_EQ(w.rt.stats().local_calls, 1u);
  EXPECT_EQ(w.rt.stats().remote_calls, 0u);
}

TEST(Runtime, RemoteCallIsTwoMessages) {
  World w(4);
  const ObjectId obj = w.objects.create(2);
  int result = -1;
  sim::detach(call_once(&w, obj, /*from=*/0, &result, 10));
  w.eng.run();
  EXPECT_EQ(result, 2);
  EXPECT_EQ(w.net.stats().messages, 2u);  // request + reply
  EXPECT_EQ(w.net.stats().runtime_messages, 2u);
  EXPECT_EQ(w.rt.stats().remote_calls, 1u);
  EXPECT_EQ(w.rt.stats().threads_created, 1u);
}

TEST(Runtime, RemoteWorkRunsOnServerCpu) {
  World w(4);
  const ObjectId obj = w.objects.create(2);
  int result = -1;
  sim::detach(call_once(&w, obj, 0, &result, 500));
  w.eng.run();
  // The 500 cycles of user code were charged to processor 2, not 0.
  EXPECT_GE(w.machine.proc(2).busy_cycles(), 500u);
  EXPECT_LT(w.machine.proc(0).busy_cycles(), 500u);
}

Task<> short_call(World* w, ObjectId obj, ProcId from) {
  Ctx ctx{&w->rt, from};
  (void)co_await w->rt.call(ctx, obj, CallOpts{2, 2, /*short_method=*/true},
                            [w](Ctx& callee) -> Task<int> {
                              co_await w->rt.compute(callee, 5);
                              co_return 0;
                            });
}

TEST(Runtime, ShortMethodSkipsThreadCreation) {
  World w(4);
  const ObjectId obj = w.objects.create(1);
  sim::detach(short_call(&w, obj, 0));
  w.eng.run();
  EXPECT_EQ(w.rt.stats().fast_path_calls, 1u);
  EXPECT_EQ(w.rt.stats().threads_created, 0u);
  EXPECT_EQ(w.rt.stats().breakdown.get(Category::kThreadCreation), 0u);
}

Task<> migrate_once(World* w, ObjectId obj, ProcId from, ProcId* end_proc) {
  Ctx ctx{&w->rt, from};
  co_await w->rt.migrate(ctx, obj, 8);
  *end_proc = ctx.proc;
}

TEST(Runtime, MigrationMovesActivationInOneMessage) {
  World w(4);
  const ObjectId obj = w.objects.create(3);
  ProcId end = 99;
  sim::detach(migrate_once(&w, obj, 0, &end));
  w.eng.run();
  EXPECT_EQ(end, 3u);
  EXPECT_EQ(w.net.stats().messages, 1u);  // one message, no reply
  EXPECT_EQ(w.rt.stats().migrations, 1u);
  EXPECT_EQ(w.rt.stats().migrated_words, 8u);
}

TEST(Runtime, MigrationToLocalObjectIsFree) {
  World w(4);
  const ObjectId obj = w.objects.create(0);
  ProcId end = 99;
  const Cycles before = w.machine.proc(0).busy_cycles();
  sim::detach(migrate_once(&w, obj, 0, &end));
  w.eng.run();
  EXPECT_EQ(end, 0u);
  EXPECT_EQ(w.net.stats().messages, 0u);
  EXPECT_EQ(w.rt.stats().migrations, 0u);
  EXPECT_EQ(w.rt.stats().migrations_local, 1u);
  // Only the locality check (paid by every mechanism) was charged.
  EXPECT_LE(w.machine.proc(0).busy_cycles() - before, 5u);
}

// ---------------------------------------------------------------------------
// The paper's §2.5 message-count model (Figure 1): one thread makes n
// consecutive accesses to each of m data items on m distinct processors.
//   RPC:                  2 * n * m messages
//   computation migration: m hops + 1 return
// ---------------------------------------------------------------------------

Task<> sweep_rpc(World* w, std::vector<ObjectId> objs, unsigned n) {
  Ctx ctx{&w->rt, 0};
  for (const ObjectId obj : objs) {
    for (unsigned i = 0; i < n; ++i) {
      (void)co_await w->rt.call(ctx, obj, CallOpts{2, 2, true},
                                [w](Ctx& callee) -> Task<int> {
                                  co_await w->rt.compute(callee, 10);
                                  co_return 0;
                                });
    }
  }
}

Task<> sweep_migrate(World* w, std::vector<ObjectId> objs, unsigned n) {
  Ctx ctx{&w->rt, 0};
  for (const ObjectId obj : objs) {
    co_await w->rt.migrate(ctx, obj, 8);
    for (unsigned i = 0; i < n; ++i) {
      (void)co_await w->rt.call(ctx, obj, CallOpts{2, 2, true},
                                [w](Ctx& callee) -> Task<int> {
                                  co_await w->rt.compute(callee, 10);
                                  co_return 0;
                                });
    }
  }
  co_await w->rt.return_home(ctx, 0, 2);
}

class MessageModel
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(MessageModel, RpcCostsTwoPerAccessMigrationOnePerDatum) {
  const auto [m, n] = GetParam();
  World w1(static_cast<ProcId>(m + 1));
  std::vector<ObjectId> objs1;
  for (unsigned i = 0; i < m; ++i) {
    objs1.push_back(w1.objects.create(static_cast<ProcId>(i + 1)));
  }
  sim::detach(sweep_rpc(&w1, objs1, n));
  w1.eng.run();
  EXPECT_EQ(w1.net.stats().messages, 2ull * n * m);

  World w2(static_cast<ProcId>(m + 1));
  std::vector<ObjectId> objs2;
  for (unsigned i = 0; i < m; ++i) {
    objs2.push_back(w2.objects.create(static_cast<ProcId>(i + 1)));
  }
  sim::detach(sweep_migrate(&w2, objs2, n));
  w2.eng.run();
  EXPECT_EQ(w2.net.stats().messages, static_cast<std::uint64_t>(m) + 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MessageModel,
                         ::testing::Values(std::pair{1u, 1u}, std::pair{3u, 1u},
                                           std::pair{3u, 4u}, std::pair{8u, 2u},
                                           std::pair{16u, 8u}));

// Reply short-circuiting: a method body that migrates sends its reply from
// its final location, not back through the original callee processor.
Task<> call_with_migrating_body(World* w, ObjectId first, ObjectId second,
                                ProcId* reply_seen_at) {
  Ctx ctx{&w->rt, 0};
  (void)co_await w->rt.call(
      ctx, first, CallOpts{2, 2, false},
      [w, second, reply_seen_at](Ctx& callee) -> Task<int> {
        co_await w->rt.migrate(callee, second, 8);
        *reply_seen_at = callee.proc;
        co_return 1;
      });
}

TEST(Runtime, ReplyShortCircuitsAfterBodyMigration) {
  World w(4);
  const ObjectId first = w.objects.create(1);
  const ObjectId second = w.objects.create(2);
  ProcId final_proc = 99;
  sim::detach(call_with_migrating_body(&w, first, second, &final_proc));
  w.eng.run();
  EXPECT_EQ(final_proc, 2u);
  // request (0->1) + migration (1->2) + reply (2->0): three messages total,
  // not four (no relay through processor 1).
  EXPECT_EQ(w.net.stats().messages, 3u);
}

TEST(Runtime, ReturnHomeIsFreeWhenNeverMigrated) {
  World w(2);
  sim::detach([](World* w) -> Task<> {
    Ctx ctx{&w->rt, 1};
    co_await w->rt.return_home(ctx, 1, 2);
  }(&w));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 0u);
}

// A multi-hop activation pays one message per hop plus ONE short-circuit
// return from its final location — intermediate processors never relay.
Task<> multi_hop_then_home(World* w, ObjectId first, ObjectId second,
                           ProcId* end) {
  Ctx ctx{&w->rt, 0};
  co_await w->rt.migrate(ctx, first, 8);
  co_await w->rt.migrate(ctx, second, 8);
  co_await w->rt.return_home(ctx, 0, 2);
  *end = ctx.proc;
}

TEST(Runtime, ReturnHomeAfterMultiHopIsOneMessage) {
  World w(4);
  const ObjectId first = w.objects.create(1);
  const ObjectId second = w.objects.create(2);
  ProcId end = 99;
  sim::detach(multi_hop_then_home(&w, first, second, &end));
  w.eng.run();
  EXPECT_EQ(end, 0u);  // context re-bound to origin
  // hop 0->1, hop 1->2, return 2->0: three messages, no relay through 1.
  EXPECT_EQ(w.net.stats().messages, 3u);
  EXPECT_EQ(w.rt.stats().migrations, 2u);
  EXPECT_EQ(w.rt.stats().replies, 1u);
}

TEST(Runtime, ReturnHomeIsIdempotentAfterArrival) {
  World w(4);
  const ObjectId obj = w.objects.create(2);
  sim::detach([](World* w, ObjectId obj) -> Task<> {
    Ctx ctx{&w->rt, 0};
    co_await w->rt.migrate(ctx, obj, 8);
    co_await w->rt.return_home(ctx, 0, 2);
    co_await w->rt.return_home(ctx, 0, 2);  // already home: free
  }(&w, obj));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 2u);  // hop + one return only
  EXPECT_EQ(w.rt.stats().replies, 1u);
}

TEST(Runtime, EmptyGroupMigrationIsANoOp) {
  World w(4);
  const ObjectId obj = w.objects.create(3);
  sim::detach([](World* w, ObjectId obj) -> Task<> {
    std::vector<Ctx*> group;
    co_await w->rt.migrate_group(group, obj, 20);
  }(&w, obj));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, 0u);
  EXPECT_EQ(w.rt.stats().migrations, 0u);
  EXPECT_EQ(w.rt.stats().migrations_local, 0u);
}

TEST(Runtime, GroupMigrationToLocalObjectIsFree) {
  World w(4);
  const ObjectId obj = w.objects.create(0);
  ProcId a_end = 99, b_end = 99;
  sim::detach([](World* w, ObjectId obj, ProcId* a_end,
                 ProcId* b_end) -> Task<> {
    Ctx a{&w->rt, 0};
    Ctx b{&w->rt, 0};
    std::vector<Ctx*> group{&a, &b};
    co_await w->rt.migrate_group(group, obj, 20);
    *a_end = a.proc;
    *b_end = b.proc;
  }(&w, obj, &a_end, &b_end));
  w.eng.run();
  EXPECT_EQ(a_end, 0u);
  EXPECT_EQ(b_end, 0u);
  EXPECT_EQ(w.net.stats().messages, 0u);
  EXPECT_EQ(w.rt.stats().migrations_local, 1u);
  EXPECT_EQ(w.rt.stats().migrated_words, 0u);
}

Task<> group_migrate(World* w, ObjectId obj, ProcId* a_end, ProcId* b_end) {
  Ctx a{&w->rt, 0};
  Ctx b{&w->rt, 0};
  std::vector<Ctx*> group{&a, &b};
  co_await w->rt.migrate_group(group, obj, 20);
  *a_end = a.proc;
  *b_end = b.proc;
}

TEST(Runtime, GroupMigrationMovesAllFramesInOneMessage) {
  World w(4);
  const ObjectId obj = w.objects.create(3);
  ProcId a = 99, b = 99;
  sim::detach(group_migrate(&w, obj, &a, &b));
  w.eng.run();
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 3u);
  EXPECT_EQ(w.net.stats().messages, 1u);
  EXPECT_EQ(w.rt.stats().migrated_words, 20u);
}

TEST(Runtime, BreakdownAccumulatesPerCategory) {
  World w(4);
  const ObjectId obj = w.objects.create(3);
  ProcId end = 0;
  sim::detach(migrate_once(&w, obj, 0, &end));
  w.eng.run();
  const Breakdown& bd = w.rt.stats().breakdown;
  const CostModel m = CostModel::software();
  EXPECT_EQ(bd.get(Category::kMarshal), m.marshal(8));
  EXPECT_EQ(bd.get(Category::kCopyPacket), m.copy(8));
  EXPECT_EQ(bd.get(Category::kThreadCreation), m.thread_creation);
  EXPECT_EQ(bd.get(Category::kUnmarshal), m.unmarshal(8));
  EXPECT_EQ(bd.get(Category::kOidTranslation), m.oid());
  EXPECT_EQ(bd.get(Category::kSendLinkage), m.send_linkage);
  EXPECT_GT(bd.get(Category::kNetworkTransit), 0u);
  EXPECT_GT(bd.total(), 0u);
  EXPECT_GT(bd.overhead(), 0u);
}

Task<> throwing_call(World* w, ObjectId obj, bool* caught) {
  Ctx ctx{&w->rt, 0};
  try {
    (void)co_await w->rt.call(ctx, obj, CallOpts{4, 2, false},
                              [](Ctx&) -> Task<int> {
                                throw std::runtime_error("server fault");
                                co_return 0;  // unreachable
                              });
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Runtime, ExceptionsInRemoteBodiesPropagateToCaller) {
  World w(4);
  const ObjectId obj = w.objects.create(2);
  bool caught = false;
  sim::detach(throwing_call(&w, obj, &caught));
  w.eng.run();
  EXPECT_TRUE(caught);
}

Task<> deep_chain(World* w, std::vector<ObjectId> objs, std::size_t i,
                  int* depth_reached) {
  if (i >= objs.size()) co_return;
  Ctx ctx{&w->rt, 0};
  (void)co_await w->rt.call(
      ctx, objs[i], CallOpts{4, 2, false},
      [w, &objs, i, depth_reached](Ctx& callee) -> Task<int> {
        co_await w->rt.compute(callee, 5);
        ++*depth_reached;
        // Nested remote call from within a method body: the callee's own
        // activation becomes the caller of the next level.
        if (i + 1 < objs.size()) {
          (void)co_await w->rt.call(callee, objs[i + 1],
                                    CallOpts{4, 2, false},
                                    [w, depth_reached](Ctx& c2) -> Task<int> {
                                      co_await w->rt.compute(c2, 5);
                                      ++*depth_reached;
                                      co_return 0;
                                    });
        }
        co_return 0;
      });
}

TEST(Runtime, NestedRemoteCallsRelayThroughIntermediateProcessors) {
  World w(4);
  std::vector<ObjectId> objs{w.objects.create(1), w.objects.create(2)};
  int depth = 0;
  sim::detach(deep_chain(&w, objs, 0, &depth));
  w.eng.run();
  EXPECT_EQ(depth, 2);
  // 0->1 call, 1->2 nested call, 2->1 reply, 1->0 reply: four messages —
  // nested RPC does NOT short-circuit; only migration does.
  EXPECT_EQ(w.net.stats().messages, 4u);
}

TEST(Runtime, HwCostModelSpeedsUpMigration) {
  auto run = [](CostModel cost) {
    World w(4, cost);
    const ObjectId obj = w.objects.create(3);
    ProcId end = 0;
    sim::detach(migrate_once(&w, obj, 0, &end));
    w.eng.run();
    return w.eng.now();
  };
  const Cycles sw = run(CostModel::software());
  const Cycles hw = run(CostModel::software().with_hw_message().with_hw_oid());
  EXPECT_LT(hw, sw);
  EXPECT_GT(static_cast<double>(sw - hw) / static_cast<double>(sw), 0.2);
}

}  // namespace
}  // namespace cm::core
