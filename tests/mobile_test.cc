#include "core/mobile.h"

#include <gtest/gtest.h>

#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm::core {
namespace {

using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  ObjectSpace objects;
  Runtime rt;

  explicit World(ProcId nprocs)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, CostModel::software()) {}
};

Task<> attract_from(World* w, MobileObject* m, ProcId p) {
  Ctx ctx{&w->rt, p};
  co_await m->attract(ctx);
}

TEST(MobileObject, LocalAttractIsFree) {
  World w(4);
  MobileObject m(w.rt, w.objects.create(2), 16);
  sim::detach(attract_from(&w, &m, 2));
  w.eng.run();
  EXPECT_EQ(m.home(), 2u);
  EXPECT_EQ(m.moves(), 0u);
  EXPECT_EQ(w.net.stats().messages, 0u);
}

TEST(MobileObject, RemoteAttractMovesObjectInTwoMessages) {
  World w(4);
  const ObjectId id = w.objects.create(2);
  MobileObject m(w.rt, id, 16);
  sim::detach(attract_from(&w, &m, 0));
  w.eng.run();
  EXPECT_EQ(m.home(), 0u);
  EXPECT_EQ(w.objects.home_of(id), 0u);
  EXPECT_EQ(m.moves(), 1u);
  EXPECT_EQ(w.net.stats().messages, 2u);  // control request + object state
  EXPECT_EQ(w.rt.stats().object_moves, 1u);
  EXPECT_EQ(w.rt.stats().moved_object_words, 16u);
}

TEST(MobileObject, SecondAttractFromSameProcIsFree) {
  World w(4);
  MobileObject m(w.rt, w.objects.create(2), 16);
  sim::detach(attract_from(&w, &m, 0));
  w.eng.run();
  const auto msgs = w.net.stats().messages;
  sim::detach(attract_from(&w, &m, 0));
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, msgs);
  EXPECT_EQ(m.moves(), 1u);
}

TEST(MobileObject, PingPongBetweenProcessors) {
  World w(4);
  MobileObject m(w.rt, w.objects.create(3), 8);
  for (int round = 0; round < 5; ++round) {
    sim::detach(attract_from(&w, &m, 0));
    w.eng.run();
    sim::detach(attract_from(&w, &m, 1));
    w.eng.run();
  }
  EXPECT_EQ(m.moves(), 10u);
  EXPECT_EQ(m.home(), 1u);
}

TEST(MobileObject, ConcurrentAttractsSerialiseAndConverge) {
  World w(8);
  MobileObject m(w.rt, w.objects.create(7), 8);
  for (ProcId p = 0; p < 4; ++p) sim::detach(attract_from(&w, &m, p));
  w.eng.run();
  // Everyone completed; the object ends at one of the requesters and moved
  // at most once per requester.
  EXPECT_LT(m.home(), 4u);
  EXPECT_LE(m.moves(), 4u);
  EXPECT_GE(m.moves(), 1u);
}

TEST(MobileObject, RacingAttractorsFromOneProcessorMoveOnce) {
  World w(4);
  const ObjectId id = w.objects.create(3);
  MobileObject m(w.rt, id, 16);
  // Both attractors pass the free locality check (the object is at 3) and
  // queue on the transfer lock; the second one's post-lock re-check finds
  // the object already here and pays nothing further.
  sim::detach(attract_from(&w, &m, 0));
  sim::detach(attract_from(&w, &m, 0));
  w.eng.run();
  EXPECT_EQ(m.home(), 0u);
  EXPECT_EQ(m.moves(), 1u);
  EXPECT_EQ(w.rt.stats().object_moves, 1u);
  EXPECT_EQ(w.rt.stats().moved_object_words, 16u);
  EXPECT_EQ(w.net.stats().messages, 2u);  // one control + one state transfer
}

TEST(MobileObject, RacingAttractorsFromTwoProcessorsMoveTwice) {
  World w(4);
  const ObjectId id = w.objects.create(3);
  MobileObject m(w.rt, id, 16);
  // Distinct destinations: the second mover's post-lock re-check finds the
  // object at the first mover's processor and performs a second full move.
  sim::detach(attract_from(&w, &m, 0));
  sim::detach(attract_from(&w, &m, 1));
  w.eng.run();
  EXPECT_LT(m.home(), 2u);
  EXPECT_EQ(m.moves(), 2u);
  EXPECT_EQ(w.rt.stats().object_moves, 2u);
  EXPECT_EQ(w.rt.stats().moved_object_words, 32u);
  EXPECT_EQ(w.net.stats().messages, 4u);
}

TEST(MobileObject, BigObjectsTakeLongerToMove) {
  auto move_time = [](unsigned words) {
    World w(2);
    MobileObject m(w.rt, w.objects.create(1), words);
    sim::detach(attract_from(&w, &m, 0));
    w.eng.run();
    return w.eng.now();
  };
  EXPECT_LT(move_time(4), move_time(512));
}

TEST(MobileObject, CallAfterAttractIsLocal) {
  World w(4);
  const ObjectId id = w.objects.create(3);
  MobileObject m(w.rt, id, 8);
  bool done = false;
  sim::detach([](World* w, MobileObject* m, ObjectId id,
                 bool* done) -> Task<> {
    Ctx ctx{&w->rt, 0};
    co_await m->attract(ctx);
    const auto msgs = w->net.stats().messages;
    (void)co_await w->rt.call(ctx, id, CallOpts{2, 2, true},
                              [w](Ctx& c) -> Task<int> {
                                co_await w->rt.compute(c, 5);
                                co_return 0;
                              });
    EXPECT_EQ(w->net.stats().messages, msgs);  // no traffic: it is here
    *done = true;
  }(&w, &m, id, &done));
  w.eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace cm::core
