// Placement-policy determinism and end-to-end behaviour over the real
// workloads (DESIGN.md §13):
//
//  1. Policy off is free — a config carrying non-default policy knobs with
//     `enabled == false` produces byte-identical metrics to a pristine
//     config (the PolicyEngine is never constructed).
//  2. Observe mode is a pure host-side knob — same-seed observe runs are
//     byte-identical across shard counts {1, 2} and both shard backends
//     (all cross-processor load knowledge travels in messages).
//  3. Actuating mode is deterministic — two same-seed runs with the
//     rebalancer and phase detector on produce byte-identical metrics,
//     check reports and Chrome traces.
//  4. The rebalancer earns its keep — on a skewed B-tree (high
//     `key_affinity`) it completes moves and reduces remote calls versus
//     static placement; on the write-shared counting network (no dominant
//     accessor) it correctly never moves anything.
//  5. Policy soak — rebalancer + phase detector under a FaultyNetwork
//     report zero checker violations and fault-invariant application
//     results. When CM_CHECK_REPORT is set (CI), the report is written as
//     a JSON artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/workload.h"
#include "check/report.h"
#include "core/metrics.h"

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;
using sim::ShardBackend;

std::string metrics_json(const RunStats& r) {
  core::Metrics m;
  put_run_stats(m, r);
  std::string out;
  m.append_json_fields(out);
  return out;
}

std::string scrub(std::string json, std::initializer_list<const char*> keys) {
  for (const char* key : keys) {
    const std::size_t at = json.find(key);
    if (at == std::string::npos) continue;
    std::size_t val = at + std::string(key).size();
    while (val < json.size() && json[val] == ' ') ++val;
    if (val < json.size() && json[val] == '"') {  // string value
      val = json.find('"', val + 1);
    }
    std::size_t end = json.find(',', val);
    end = end == std::string::npos ? json.size() : end + 2;  // ", "
    json.erase(at, end - at);
  }
  return json;
}

std::string scrub_trace_path(std::string json) {
  return scrub(std::move(json), {"\"trace\":"});
}

std::string scrub_shard_counters(std::string json) {
  return scrub(std::move(json), {"\"sim.cross_shard_msgs\":",
                                 "\"sim.window_count\":", "\"trace\":"});
}

std::string report_of(const RunStats& r) {
  return check::check_report_json(r.check, r.check_violations);
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "cannot read " << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// Write a soak's check report where CI can pick it up as an artifact.
// CM_CHECK_REPORT names a path prefix; each soak appends its own suffix.
void maybe_write_report(const RunStats& r, const char* suffix) {
  const char* prefix = std::getenv("CM_CHECK_REPORT");
  if (prefix == nullptr) return;
  const std::string path = std::string(prefix) + "." + suffix + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << path;
  const std::string json = report_of(r);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

/// The rebalancer's showcase workload: a lookup-only RPC B-tree where each
/// requester hammers its own contiguous key slice (key_affinity), giving
/// every leaf a dominant remote accessor. Few keys on purpose: a requester's
/// slice maps to only a couple of leaves, so per-window access counts clear
/// the decision thresholds.
BTreeConfig skewed_cfg() {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.mesh = false;
  cfg.requesters = 8;
  cfg.nkeys = 200;
  cfg.max_entries = 20;
  cfg.insert_ratio = 0.0;
  cfg.key_affinity = 0.95;
  cfg.node_procs = 8;
  cfg.ops_per_requester = 80;
  cfg.check = true;
  return cfg;
}

policy::PolicyConfig rebalance_policy() {
  policy::PolicyConfig p;
  p.enabled = true;
  p.sample_interval = 15'000;
  p.global_every = 1;
  p.min_accesses = 3;
  p.attract_share = 0.55;
  p.degree_of_migration = 4;
  return p;
}

// ---------------------------------------------------------------------------
// 1. Policy off is free
// ---------------------------------------------------------------------------

TEST(PolicyDeterminism, DisabledPolicyIsByteIdenticalToPristineConfig) {
  BTreeConfig pristine = skewed_cfg();
  BTreeConfig carried = skewed_cfg();
  // Every knob set, nothing enabled: the engine must never be constructed.
  carried.policy = rebalance_policy();
  carried.policy.enabled = false;
  carried.policy.phase_adaptive = true;
  carried.policy.observe_only = true;
  const RunStats a = run_btree(pristine);
  const RunStats b = run_btree(carried);
  EXPECT_FALSE(a.policy_enabled);
  EXPECT_FALSE(b.policy_enabled);
  EXPECT_EQ(metrics_json(b), metrics_json(a));
  EXPECT_EQ(report_of(b), report_of(a));
}

// ---------------------------------------------------------------------------
// 2. Observe mode across shard counts and backends
// ---------------------------------------------------------------------------

TEST(PolicyDeterminism, ObserveModeIsIdenticalAcrossShardsAndBackends) {
  // The skewed tree again (lookup-only, uniform-latency: multi-shard legal),
  // so the observe-mode runs reach real move verdicts — and must not act.
  BTreeConfig base = skewed_cfg();
  base.policy = rebalance_policy();
  base.policy.observe_only = true;
  base.policy.phase_adaptive = true;

  std::vector<RunStats> runs;
  for (const auto& [shards, backend] :
       std::vector<std::pair<unsigned, ShardBackend>>{
           {1u, ShardBackend::kSequential},
           {1u, ShardBackend::kThreads},
           {2u, ShardBackend::kSequential},
           {2u, ShardBackend::kThreads}}) {
    BTreeConfig cfg = base;
    cfg.nshards = shards;
    cfg.shard_backend = backend;
    runs.push_back(run_btree(cfg));
  }
  const RunStats& ref = runs[0];
  EXPECT_TRUE(ref.policy_enabled);
  EXPECT_GT(ref.policy.samples, 0u);
  EXPECT_GT(ref.policy.accesses, 0u);
  EXPECT_GT(ref.policy.decisions, 0u);      // it wanted to move things ...
  EXPECT_EQ(ref.policy.moves_issued, 0u);   // ... and never did
  EXPECT_EQ(ref.policy.flips_on, 0u);
  EXPECT_EQ(ref.check.total_violations, 0u);
  const std::string ref_metrics = scrub_shard_counters(metrics_json(ref));
  const std::string ref_report = report_of(ref);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(scrub_shard_counters(metrics_json(runs[i])), ref_metrics)
        << "variant " << i;
    EXPECT_EQ(report_of(runs[i]), ref_report) << "variant " << i;
  }
}

// ---------------------------------------------------------------------------
// 3. Actuating mode: same seed, same bytes (metrics, report, trace)
// ---------------------------------------------------------------------------

TEST(PolicyDeterminism, ActuatingRunIsBitIdenticalAcrossRepeats) {
  BTreeConfig cfg = skewed_cfg();
  cfg.policy = rebalance_policy();
  cfg.policy.phase_adaptive = true;
  cfg.trace_path = testing::TempDir() + "policy_actuate_a.json";
  const RunStats a = run_btree(cfg);
  cfg.trace_path = testing::TempDir() + "policy_actuate_b.json";
  const RunStats b = run_btree(cfg);
  EXPECT_TRUE(a.policy_enabled);
  EXPECT_GT(a.policy.moves_completed, 0u);
  EXPECT_EQ(scrub_trace_path(metrics_json(b)),
            scrub_trace_path(metrics_json(a)));
  EXPECT_EQ(report_of(b), report_of(a));
  EXPECT_EQ(slurp(b.trace_path), slurp(a.trace_path));
}

// ---------------------------------------------------------------------------
// 4. The rebalancer earns its keep (and knows when to do nothing)
// ---------------------------------------------------------------------------

TEST(PolicyDeterminism, RebalancerReducesRemoteCallsOnSkewedTree) {
  BTreeConfig cfg = skewed_cfg();
  const RunStats stat = run_btree(cfg);  // static placement baseline
  cfg.policy = rebalance_policy();
  const RunStats reb = run_btree(cfg);
  EXPECT_TRUE(reb.policy_enabled);
  EXPECT_GT(reb.policy.samples, 0u);
  EXPECT_GT(reb.policy.moves_completed, 0u);
  // Policy moves are the only object moves under RPC.
  EXPECT_EQ(reb.runtime.object_moves, reb.policy.moves_completed);
  EXPECT_EQ(stat.runtime.object_moves, 0u);
  // Moved leaves serve their dominant requester locally from then on.
  EXPECT_LT(reb.remote_calls, stat.remote_calls);
  // Same work either way.
  EXPECT_EQ(reb.ops, stat.ops);
  EXPECT_EQ(reb.btree_digest, stat.btree_digest);
  EXPECT_EQ(reb.check.total_violations, 0u);
}

TEST(PolicyDeterminism, WriteSharedCountingNetworkIsNeverRebalanced) {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.mesh = false;
  cfg.requesters = 16;
  cfg.ops_per_requester = 30;
  cfg.check = true;
  cfg.policy = rebalance_policy();
  // Paper-default hysteresis: a balancer fed by several wires never gives
  // one processor 80% of a window, so nothing qualifies for a move.
  cfg.policy.min_accesses = 12;
  cfg.policy.attract_share = 0.8;
  const RunStats r = run_counting(cfg);
  EXPECT_TRUE(r.policy_enabled);
  EXPECT_GT(r.policy.accesses, 0u);
  EXPECT_GT(r.policy.samples, 0u);
  // Balancers and counters are write-shared by construction: no processor
  // ever reaches a dominant-accessor share, so the rebalancer stays quiet.
  EXPECT_EQ(r.policy.moves_issued, 0u);
  EXPECT_EQ(r.check.total_violations, 0u);
}

// ---------------------------------------------------------------------------
// 5. Policy soak under a faulty network
// ---------------------------------------------------------------------------

TEST(PolicyDeterminism, PolicySoakUnderFaultyNetworkKeepsInvariants) {
  BTreeConfig cfg = skewed_cfg();
  cfg.insert_ratio = 0.3;  // splits register fresh nodes mid-run
  cfg.policy = rebalance_policy();
  cfg.policy.phase_adaptive = true;
  const RunStats calm = run_btree(cfg);
  cfg.faults.rates.drop = 0.05;
  cfg.faults.rates.duplicate = 0.025;
  cfg.faults.rates.delay = 0.05;
  cfg.faults.seed = 0xc4a05;
  const RunStats r = run_btree(cfg);
  EXPECT_GT(r.net.faults_dropped, 0u);  // faults really fired
  EXPECT_TRUE(r.policy_enabled);
  EXPECT_GT(r.policy.moves_completed, 0u);
  EXPECT_EQ(r.check.total_violations, 0u);
  EXPECT_TRUE(r.invariants_ok);
  // Fixed work: injected faults (and the policy's fault-shifted decision
  // history) never change application-level results.
  EXPECT_EQ(r.btree_keys, calm.btree_keys);
  EXPECT_EQ(r.btree_digest, calm.btree_digest);
  maybe_write_report(r, "policy_soak");
}

}  // namespace
}  // namespace cm::apps
