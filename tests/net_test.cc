#include <gtest/gtest.h>

#include "net/constant_net.h"
#include "net/mesh_net.h"
#include "sim/engine.h"

namespace cm::net {
namespace {

using sim::Cycles;
using sim::Engine;
using sim::ProcId;

TEST(ConstantNetwork, LatencyIsLaunchPlusPerWord) {
  Engine eng;
  ConstantNetwork net(eng, {.launch = 9, .per_word = 1});
  EXPECT_EQ(net.latency(0, 5, 8), 17u);  // the paper's Table-5 transit value
  EXPECT_EQ(net.latency(0, 5, 0), 9u);
  EXPECT_EQ(net.latency(3, 3, 100), 0u);  // loopback
}

TEST(ConstantNetwork, DeliversAtLatency) {
  Engine eng;
  ConstantNetwork net(eng, {.launch = 9, .per_word = 1});
  Cycles delivered = 0;
  net.send(0, 1, 8, Traffic::kRuntime, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_EQ(delivered, 17u);
}

TEST(ConstantNetwork, CountsMessagesAndWordsByKind) {
  Engine eng;
  ConstantNetwork net(eng);
  net.send(0, 1, 10, Traffic::kRuntime, [] {});
  net.send(1, 2, 6, Traffic::kCoherence, [] {});
  net.send(2, 0, 4, Traffic::kCoherence, [] {});
  eng.run();
  const NetStats& s = net.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.words, 20u);
  EXPECT_EQ(s.runtime_messages, 1u);
  EXPECT_EQ(s.runtime_words, 10u);
  EXPECT_EQ(s.coherence_messages, 2u);
  EXPECT_EQ(s.coherence_words, 10u);
}

TEST(ConstantNetwork, LoopbackIsFreeAndUncounted) {
  Engine eng;
  ConstantNetwork net(eng);
  Cycles delivered = 99;
  net.send(4, 4, 8, Traffic::kRuntime, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().words, 0u);
}

TEST(MeshNetwork, HopsAreManhattanDistance) {
  Engine eng;
  MeshNetwork net(eng, 64, {.width = 8});
  EXPECT_EQ(net.hops(0, 0), 0u);
  EXPECT_EQ(net.hops(0, 7), 7u);    // same row
  EXPECT_EQ(net.hops(0, 56), 7u);   // same column
  EXPECT_EQ(net.hops(0, 63), 14u);  // opposite corner
  EXPECT_EQ(net.hops(9, 18), 2u);   // (1,1) -> (2,2)
  EXPECT_EQ(net.hops(18, 9), 2u);   // symmetric
}

TEST(MeshNetwork, ZeroLoadLatencyScalesWithHopsAndWords) {
  Engine eng;
  MeshConfig cfg{.width = 4, .launch = 4, .per_hop = 2, .per_word = 1,
                 .contention = false};
  MeshNetwork net(eng, 16, cfg);
  // 0 -> 3: 3 hops. latency = 4 + 3*2 + 5 = 15.
  EXPECT_EQ(net.latency(0, 3, 5), 15u);
  // One more hop adds per_hop.
  EXPECT_EQ(net.latency(0, 7, 5), 17u);
  // One more word adds per_word.
  EXPECT_EQ(net.latency(0, 3, 6), 16u);
}

TEST(MeshNetwork, LatencyQueryIsPureUnderLoad) {
  Engine eng;
  MeshConfig cfg{.width = 4, .launch = 4, .per_hop = 2, .per_word = 1,
                 .contention = true};
  MeshNetwork net(eng, 16, cfg);
  const Cycles zero_load = net.latency(0, 3, 8);
  // Saturate the 0 -> 3 row, then re-query: latency() is a zero-load
  // closed form that must neither change under load nor mutate link state
  // (it used to const_cast its way into the routing walk).
  for (int i = 0; i < 4; ++i) net.send(0, 3, 8, Traffic::kRuntime, [] {});
  eng.run();
  const std::uint64_t link_words = net.max_link_words();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(net.latency(0, 3, 8), zero_load);
  EXPECT_EQ(net.max_link_words(), link_words);
}

TEST(MeshNetwork, DeliveryMatchesLatencyUnderZeroLoad) {
  Engine eng;
  MeshNetwork net(eng, 16, {.width = 4});
  const Cycles expect = net.latency(1, 14, 6);
  Cycles got = 0;
  net.send(1, 14, 6, Traffic::kRuntime, [&] { got = eng.now(); });
  eng.run();
  EXPECT_EQ(got, expect);
}

TEST(MeshNetwork, ContentionDelaysSecondMessageOnSharedLink) {
  Engine eng;
  MeshConfig cfg{.width = 4, .launch = 4, .per_hop = 2, .per_word = 1,
                 .contention = true};
  MeshNetwork net(eng, 16, cfg);
  Cycles first = 0, second = 0;
  // Both messages cross link (0 -> 1); the second must queue behind the
  // first's occupancy.
  net.send(0, 1, 10, Traffic::kRuntime, [&] { first = eng.now(); });
  net.send(0, 1, 10, Traffic::kRuntime, [&] { second = eng.now(); });
  eng.run();
  EXPECT_GT(second, first);
}

TEST(MeshNetwork, DisjointPathsDoNotInterfere) {
  Engine eng;
  MeshConfig cfg{.width = 4, .contention = true};
  MeshNetwork net(eng, 16, cfg);
  Cycles a = 0, b = 0;
  net.send(0, 1, 10, Traffic::kRuntime, [&] { a = eng.now(); });
  net.send(8, 9, 10, Traffic::kRuntime, [&] { b = eng.now(); });
  eng.run();
  EXPECT_EQ(a, b);  // identical geometry, no shared links
}

TEST(MeshNetwork, TracksPerLinkWords) {
  Engine eng;
  MeshNetwork net(eng, 16, {.width = 4});
  net.send(0, 1, 10, Traffic::kRuntime, [] {});
  net.send(0, 1, 10, Traffic::kRuntime, [] {});
  eng.run();
  EXPECT_EQ(net.max_link_words(), 20u);
}

TEST(MeshNetwork, NonSquareMachineRoutes) {
  Engine eng;
  MeshNetwork net(eng, 24, {.width = 8});  // 8x3 mesh
  EXPECT_EQ(net.height(), 3u);
  EXPECT_EQ(net.hops(0, 23), 9u);  // (0,0)->(7,2)
  Cycles got = 0;
  net.send(0, 23, 4, Traffic::kCoherence, [&] { got = eng.now(); });
  eng.run();
  EXPECT_GT(got, 0u);
}

}  // namespace
}  // namespace cm::net
