#include "shmem/coherent_memory.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/constant_net.h"
#include "shmem/addr.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace cm::shmem {
namespace {

using sim::Cycles;
using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  CoherentMemory mem;

  explicit World(ProcId nprocs, CacheParams cp = {})
      : machine(eng, nprocs), net(eng), mem(machine, net, cp) {}
};

Task<> do_read(CoherentMemory* mem, ProcId p, Addr a, unsigned bytes,
               Cycles* done_at, sim::Engine* eng) {
  co_await mem->read(p, a, bytes);
  if (done_at) *done_at = eng->now();
}

Task<> do_write(CoherentMemory* mem, ProcId p, Addr a, unsigned bytes,
                Cycles* done_at, sim::Engine* eng) {
  co_await mem->write(p, a, bytes);
  if (done_at) *done_at = eng->now();
}

TEST(Coherence, FirstReadMissesThenHits) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().read_misses, 1u);
  EXPECT_EQ(w.mem.stats().read_hits, 0u);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().read_misses, 1u);
  EXPECT_EQ(w.mem.stats().read_hits, 1u);
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kShared);
}

TEST(Coherence, ReadMissTakesTime) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  Cycles t = 0;
  sim::detach(do_read(&w.mem, 0, a, 16, &t, &w.eng));
  w.eng.run();
  EXPECT_GT(t, 0u);  // request + controller + data reply
}

TEST(Coherence, TwoReadersShare) {
  World w(4);
  const Addr a = w.mem.alloc(2, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  sim::detach(do_read(&w.mem, 1, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kShared);
  EXPECT_EQ(w.mem.cache(1).lookup(line_of(a)), LineState::kShared);
  const auto d = w.mem.dir_snapshot(line_of(a));
  EXPECT_FALSE(d.modified);
  EXPECT_TRUE(d.sharers.test(0));
  EXPECT_TRUE(d.sharers.test(1));
}

TEST(Coherence, WriteInvalidatesSharers) {
  World w(4);
  const Addr a = w.mem.alloc(2, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  sim::detach(do_read(&w.mem, 1, a, 16, nullptr, &w.eng));
  w.eng.run();
  sim::detach(do_write(&w.mem, 3, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kInvalid);
  EXPECT_EQ(w.mem.cache(1).lookup(line_of(a)), LineState::kInvalid);
  EXPECT_EQ(w.mem.cache(3).lookup(line_of(a)), LineState::kModified);
  EXPECT_EQ(w.mem.stats().invalidations, 2u);
  const auto d = w.mem.dir_snapshot(line_of(a));
  EXPECT_TRUE(d.modified);
  EXPECT_EQ(d.owner, 3u);
}

TEST(Coherence, ReadOfDirtyLineFetchesFromOwner) {
  World w(4);
  const Addr a = w.mem.alloc(2, 16);
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kModified);
  sim::detach(do_read(&w.mem, 1, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().fetches, 1u);
  // Owner downgraded, both share now.
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kShared);
  EXPECT_EQ(w.mem.cache(1).lookup(line_of(a)), LineState::kShared);
  EXPECT_FALSE(w.mem.dir_snapshot(line_of(a)).modified);
}

TEST(Coherence, MigratoryWritesPassOwnership) {
  World w(4);
  const Addr a = w.mem.alloc(3, 16);
  for (ProcId p = 0; p < 4; ++p) {
    sim::detach(do_write(&w.mem, p, a, 16, nullptr, &w.eng));
    w.eng.run();
    EXPECT_EQ(w.mem.cache(p).lookup(line_of(a)), LineState::kModified);
    for (ProcId q = 0; q < 4; ++q) {
      if (q != p) {
        EXPECT_EQ(w.mem.cache(q).lookup(line_of(a)), LineState::kInvalid);
      }
    }
  }
  // 3 ownership transfers from a dirty owner.
  EXPECT_EQ(w.mem.stats().fetches, 3u);
}

TEST(Coherence, UpgradeCountsAndKeepsLine) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().upgrades, 1u);
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kModified);
}

TEST(Coherence, WriteHitWhenAlreadyModified) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  const auto words_before = w.net.stats().words;
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().write_hits, 1u);
  EXPECT_EQ(w.net.stats().words, words_before);  // no traffic for a hit
}

TEST(Coherence, LocallyHomedMissProducesNoNetworkTraffic) {
  World w(4);
  const Addr a = w.mem.alloc(0, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().read_misses, 1u);
  EXPECT_EQ(w.net.stats().messages, 0u);
}

TEST(Coherence, MultiLineAccessTouchesEachLine) {
  World w(4);
  const Addr a = w.mem.alloc(1, 160);  // 10 lines
  sim::detach(do_read(&w.mem, 0, a, 160, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().read_misses, 10u);
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_EQ(w.mem.cache(0).lookup(line_of(a) + i), LineState::kShared);
  }
}

TEST(Coherence, AllTrafficIsClassifiedCoherence) {
  World w(4);
  const Addr a = w.mem.alloc(2, 16);
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_GT(w.net.stats().coherence_messages, 0u);
  EXPECT_EQ(w.net.stats().runtime_messages, 0u);
}

TEST(Coherence, DirtyEvictionWritesBack) {
  // Tiny cache: 2 lines, direct-mapped.
  World w(2, CacheParams{.size_bytes = 32, .associativity = 1});
  // Two addresses on home 1 that collide in proc 0's cache (same set):
  // with 2 sets, lines two apart map to the same set.
  const Addr a = w.mem.alloc(1, 16);
  (void)w.mem.alloc(1, 16);  // spacer line
  const Addr b = w.mem.alloc(1, 16);
  ASSERT_EQ(line_of(a) % 2, line_of(b) % 2);  // same set by construction
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  sim::detach(do_write(&w.mem, 0, b, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().writebacks, 1u);
  EXPECT_EQ(w.mem.stats().evictions, 1u);
  // Directory forgot the evicted line's owner.
  const auto d = w.mem.dir_snapshot(line_of(a));
  EXPECT_FALSE(d.modified);
}

TEST(Coherence, RemoteDirtyReadSlowerThanCleanRead) {
  World w1(4);
  const Addr a1 = w1.mem.alloc(1, 16);
  Cycles clean = 0;
  sim::detach(do_read(&w1.mem, 0, a1, 16, &clean, &w1.eng));
  w1.eng.run();

  World w2(4);
  const Addr a2 = w2.mem.alloc(1, 16);
  sim::detach(do_write(&w2.mem, 2, a2, 16, nullptr, &w2.eng));
  w2.eng.run();
  const Cycles start = w2.eng.now();
  Cycles dirty_done = 0;
  sim::detach(do_read(&w2.mem, 0, a2, 16, &dirty_done, &w2.eng));
  w2.eng.run();
  EXPECT_GT(dirty_done - start, clean);  // 4-hop vs 2-hop
}

// ---------------------------------------------------------------------------
// Property test: single-writer/multiple-reader invariant under a random
// workload, checked at quiescent points.
// ---------------------------------------------------------------------------

struct RandomOp {
  ProcId p;
  Addr a;
  bool write;
};

Task<> run_ops(CoherentMemory* mem, std::vector<RandomOp> ops) {
  for (const auto& op : ops) {
    if (op.write) {
      co_await mem->write(op.p, op.a, 16);
    } else {
      co_await mem->read(op.p, op.a, 16);
    }
  }
}

class CoherenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoherenceProperty, SwmrInvariantHolds) {
  constexpr ProcId kProcs = 8;
  constexpr int kAddrs = 6;
  World w(kProcs);
  sim::Rng rng(GetParam());

  std::vector<Addr> addrs;
  for (int i = 0; i < kAddrs; ++i) {
    addrs.push_back(w.mem.alloc(static_cast<ProcId>(rng.below(kProcs)), 16));
  }

  // One op stream per processor, all running concurrently.
  for (ProcId p = 0; p < kProcs; ++p) {
    std::vector<RandomOp> ops;
    for (int i = 0; i < 50; ++i) {
      ops.push_back(RandomOp{p, addrs[rng.below(kAddrs)], rng.chance(0.4)});
    }
    sim::detach(run_ops(&w.mem, std::move(ops)));
  }
  w.eng.run();

  for (const Addr a : addrs) {
    const Line l = line_of(a);
    int modified = 0, shared = 0;
    for (ProcId p = 0; p < kProcs; ++p) {
      const LineState st = w.mem.cache(p).lookup(l);
      if (st == LineState::kModified) ++modified;
      if (st == LineState::kShared) ++shared;
    }
    EXPECT_LE(modified, 1) << "two modified copies of line " << l;
    if (modified == 1) {
      EXPECT_EQ(shared, 0) << "dirty line " << l << " also shared";
    }
    const auto d = w.mem.dir_snapshot(l);
    EXPECT_FALSE(d.busy) << "transaction leaked on line " << l;
    if (d.modified) {
      EXPECT_EQ(w.mem.cache(d.owner).lookup(l), LineState::kModified);
    }
  }
  // Sanity: the workload did something.
  EXPECT_GT(w.mem.stats().misses(), 0u);
  EXPECT_GT(w.net.stats().coherence_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoherenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 99u, 1234u));

// ---------------------------------------------------------------------------
// Prefetching and MSHR request merging (§2.5: "prefetching will lower the
// relative cost of performing data migration")
// ---------------------------------------------------------------------------

Task<> prefetch_then_read(CoherentMemory* mem, ProcId p, Addr a,
                          unsigned bytes, sim::Machine* m, Cycles gap,
                          Cycles* read_latency) {
  mem->prefetch(p, a, bytes);
  if (gap > 0) co_await m->sleep(gap);
  const Cycles start = m->engine().now();
  co_await mem->read(p, a, bytes);
  *read_latency = m->engine().now() - start;
}

TEST(Prefetch, HidesMissLatency) {
  // Demand-read 10 remote lines serially vs. after a prefetch that has had
  // time to complete: the prefetched read costs nothing.
  Cycles cold = 0, warm = 0;
  {
    World w(4);
    const Addr a = w.mem.alloc(2, 160);
    sim::detach(prefetch_then_read(&w.mem, 0, a, 160, &w.machine, 0, &cold));
    w.eng.run();
  }
  {
    World w(4);
    const Addr a = w.mem.alloc(2, 160);
    sim::detach(
        prefetch_then_read(&w.mem, 0, a, 160, &w.machine, 5000, &warm));
    w.eng.run();
    EXPECT_EQ(w.mem.stats().prefetches, 10u);
  }
  EXPECT_EQ(warm, 0u);  // everything hit
  EXPECT_GT(cold, 0u);
}

TEST(Prefetch, OverlapsInFlightMissesViaMshr) {
  // Even with no gap, prefetching issues all line transactions in parallel;
  // the demand read merges with them instead of serialising the misses.
  Cycles serial = 0, overlapped = 0;
  {
    World w(4);
    const Addr a = w.mem.alloc(2, 160);
    Cycles dummy = 0;
    sim::detach(prefetch_then_read(&w.mem, 0, a, 0, &w.machine, 0, &dummy));
    const Cycles start = w.eng.now();
    sim::detach(do_read(&w.mem, 0, a, 160, &serial, &w.eng));
    w.eng.run();
    serial -= start;
  }
  {
    World w(4);
    const Addr a = w.mem.alloc(2, 160);
    sim::detach(
        prefetch_then_read(&w.mem, 0, a, 160, &w.machine, 0, &overlapped));
    w.eng.run();
    EXPECT_GT(w.mem.stats().mshr_merges, 0u);
  }
  EXPECT_LT(overlapped, serial);
}

TEST(Prefetch, DoesNotDuplicateTransactions) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  w.mem.prefetch(0, a, 16);
  w.mem.prefetch(0, a, 16);  // second prefetch merges/no-ops
  w.eng.run();
  EXPECT_EQ(w.mem.stats().prefetches, 1u);
  EXPECT_EQ(w.mem.stats().read_misses, 1u);
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kShared);
}

TEST(Prefetch, PrefetchOfPresentLineIsFree) {
  World w(4);
  const Addr a = w.mem.alloc(1, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  const auto msgs = w.net.stats().messages;
  w.mem.prefetch(0, a, 16);
  w.eng.run();
  EXPECT_EQ(w.net.stats().messages, msgs);
}

TEST(Mshr, ConcurrentReadersOfOneLineShareOneTransaction) {
  World w(4);
  const Addr a = w.mem.alloc(3, 16);
  // Two threads on the SAME processor read the same line concurrently.
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().mshr_merges, 1u);
  // One request + one data reply only.
  EXPECT_EQ(w.net.stats().messages, 2u);
}

TEST(Mshr, WriteAfterInFlightReadUpgrades) {
  World w(4);
  const Addr a = w.mem.alloc(3, 16);
  sim::detach(do_read(&w.mem, 0, a, 16, nullptr, &w.eng));
  sim::detach(do_write(&w.mem, 0, a, 16, nullptr, &w.eng));
  w.eng.run();
  EXPECT_EQ(w.mem.cache(0).lookup(line_of(a)), LineState::kModified);
  EXPECT_GE(w.mem.stats().mshr_merges, 1u);
  const auto d = w.mem.dir_snapshot(line_of(a));
  EXPECT_TRUE(d.modified);
  EXPECT_EQ(d.owner, 0u);
}

// ---------------------------------------------------------------------------
// LimitLESS limited directories [CKA91]
// ---------------------------------------------------------------------------

Task<> read_all(CoherentMemory* mem, Addr a, ProcId nprocs) {
  for (ProcId p = 0; p < nprocs; ++p) co_await mem->read(p, a, 16);
}

TEST(LimitLess, FullMapNeverTraps) {
  World w(8);
  const Addr a = w.mem.alloc(0, 16);
  sim::detach(read_all(&w.mem, a, 8));
  w.eng.run();
  EXPECT_EQ(w.mem.stats().limitless_traps, 0u);
}

TEST(LimitLess, OverflowingSharersTrapsToSoftware) {
  ProtocolParams pp;
  pp.hw_sharer_pointers = 2;
  sim::Engine eng;
  sim::Machine machine(eng, 8);
  net::ConstantNetwork net(eng);
  CoherentMemory mem(machine, net, {}, pp);
  const Addr a = mem.alloc(0, 16);
  sim::detach(read_all(&mem, a, 8));
  eng.run();
  // Sharers 3..8 each overflow the 2-pointer hardware set.
  EXPECT_EQ(mem.stats().limitless_traps, 6u);
  // The trap handler runs on the home CPU.
  EXPECT_GE(machine.proc(0).busy_cycles(), 6u * pp.limitless_trap);
  // Coherence is unaffected: everyone shares the line.
  for (ProcId p = 0; p < 8; ++p) {
    EXPECT_EQ(mem.cache(p).lookup(line_of(a)), LineState::kShared);
  }
}

TEST(LimitLess, InvalidatingOverflowedSetTrapsToo) {
  ProtocolParams pp;
  pp.hw_sharer_pointers = 2;
  sim::Engine eng;
  sim::Machine machine(eng, 8);
  net::ConstantNetwork net(eng);
  CoherentMemory mem(machine, net, {}, pp);
  const Addr a = mem.alloc(0, 16);
  sim::detach(read_all(&mem, a, 8));
  eng.run();
  const auto traps = mem.stats().limitless_traps;
  sim::detach(do_write(&mem, 3, a, 16, nullptr, &eng));
  eng.run();
  EXPECT_GT(mem.stats().limitless_traps, traps);
  // SWMR still holds after the trap-assisted invalidation.
  for (ProcId p = 0; p < 8; ++p) {
    EXPECT_EQ(mem.cache(p).lookup(line_of(a)),
              p == 3 ? LineState::kModified : LineState::kInvalid);
  }
}

TEST(LimitLess, TrapsSlowWidelySharedReads) {
  auto total_time = [](unsigned ptrs) {
    ProtocolParams pp;
    pp.hw_sharer_pointers = ptrs;
    sim::Engine eng;
    sim::Machine machine(eng, 16);
    net::ConstantNetwork net(eng);
    CoherentMemory mem(machine, net, {}, pp);
    const Addr a = mem.alloc(0, 16);
    sim::detach(read_all(&mem, a, 16));
    eng.run();
    return eng.now();
  };
  EXPECT_GT(total_time(2), total_time(0));
}

// Determinism: identical seeds must give byte-identical statistics.
TEST(Coherence, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    World w(8);
    sim::Rng rng(seed);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4; ++i) addrs.push_back(w.mem.alloc(rng.below(8), 16));
    for (ProcId p = 0; p < 8; ++p) {
      std::vector<RandomOp> ops;
      for (int i = 0; i < 30; ++i) {
        ops.push_back(RandomOp{p, addrs[rng.below(4)], rng.chance(0.5)});
      }
      sim::detach(run_ops(&w.mem, std::move(ops)));
    }
    w.eng.run();
    return std::tuple{w.eng.now(), w.net.stats().words, w.mem.stats().misses()};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and seeds matter
}

}  // namespace
}  // namespace cm::shmem
