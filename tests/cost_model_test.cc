#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace cm::core {
namespace {

// The counting-network migration message carries 32 bytes = 8 words; the
// size-dependent cost models are calibrated to reproduce Table 5 exactly at
// that size.
constexpr unsigned kFrame = 8;

TEST(CostModel, Table5SizeDependentEntries) {
  const CostModel m = CostModel::software();
  EXPECT_EQ(m.copy(kFrame), 76u);       // "Copy packet (32 bytes)  76"
  EXPECT_EQ(m.marshal(kFrame), 22u);    // "Marshaling              22"
  EXPECT_EQ(m.unmarshal(kFrame), 51u);  // "Unmarshaling            51"
}

TEST(CostModel, Table5FixedEntries) {
  const CostModel m = CostModel::software();
  EXPECT_EQ(m.thread_creation, 66u);
  EXPECT_EQ(m.recv_linkage, 66u);
  EXPECT_EQ(m.oid(), 36u);
  EXPECT_EQ(m.scheduler, 36u);
  EXPECT_EQ(m.forwarding_check, 23u);
  EXPECT_EQ(m.alloc_packet_recv(), 16u);
  EXPECT_EQ(m.send_linkage, 44u);
  EXPECT_EQ(m.alloc_packet_send(), 35u);
  EXPECT_EQ(m.message_send, 23u);
}

TEST(CostModel, SenderTotalNearTable5) {
  // Paper reports sender total 143; the component rows sum to 124 (the
  // paper's totals are "approximate"). We reproduce the component sum.
  const CostModel m = CostModel::software();
  EXPECT_EQ(m.sender_total(kFrame), 44u + 22u + 35u + 23u);
}

TEST(CostModel, ReceiverTotalSumsComponents) {
  const CostModel m = CostModel::software();
  EXPECT_EQ(m.receiver_total(kFrame, true),
            76u + 66u + 66u + 51u + 36u + 36u + 23u + 16u);
  // Short-method fast path: no thread creation.
  EXPECT_EQ(m.receiver_total(kFrame, false),
            m.receiver_total(kFrame, true) - 66u);
}

TEST(CostModel, HwMessageSupportEffects) {
  const CostModel hw = CostModel::software().with_hw_message();
  // "we assumed that we could reduce the copying overhead to approximately
  // twelve cycles"
  EXPECT_EQ(hw.copy(kFrame), 12u);
  // "the registers also remove the need to allocate packets"
  EXPECT_EQ(hw.alloc_packet_send(), 0u);
  EXPECT_EQ(hw.alloc_packet_recv(), 0u);
  // "marshaling and unmarshaling costs are reduced by about half"
  EXPECT_EQ(hw.marshal(kFrame), 11u);
  EXPECT_EQ(hw.unmarshal(kFrame), 26u);
  // Untouched categories stay.
  EXPECT_EQ(hw.thread_creation, 66u);
  EXPECT_EQ(hw.oid(), 36u);
}

TEST(CostModel, HwOidTranslationOnlyRemovesTranslation) {
  const CostModel sw = CostModel::software();
  const CostModel hw = sw.with_hw_oid();
  EXPECT_EQ(hw.oid(), 0u);
  EXPECT_EQ(hw.receiver_total(kFrame, true),
            sw.receiver_total(kFrame, true) - 36u);
  EXPECT_EQ(hw.sender_total(kFrame), sw.sender_total(kFrame));
}

TEST(CostModel, HwMessageRemovesAboutTwentyPercentOfMigration) {
  // Paper §4.3: the register-mapped NI estimate "improved our results by
  // about twenty percent" of the 651-cycle migration (user code 150 +
  // transit 17 + overhead).
  const CostModel sw = CostModel::software();
  const CostModel hw = sw.with_hw_message();
  const double sw_total = 150.0 + 17.0 + sw.sender_total(kFrame) +
                          sw.receiver_total(kFrame, true);
  const double hw_total = 150.0 + 17.0 + hw.sender_total(kFrame) +
                          hw.receiver_total(kFrame, true);
  const double saved = (sw_total - hw_total) / sw_total;
  EXPECT_GT(saved, 0.15);
  EXPECT_LT(saved, 0.30);
}

TEST(CostModel, OverheadDominatesAsInTable5) {
  // Table 5: message overhead is ~74% of the end-to-end migration time.
  const CostModel m = CostModel::software();
  const double overhead =
      static_cast<double>(m.sender_total(kFrame) + m.receiver_total(kFrame, true));
  const double total = 150.0 + 17.0 + overhead;
  EXPECT_GT(overhead / total, 0.65);
  EXPECT_LT(overhead / total, 0.85);
}

TEST(CostModel, MarshalingScalesWithWords) {
  const CostModel m = CostModel::software();
  EXPECT_LT(m.marshal(2), m.marshal(16));
  EXPECT_LT(m.unmarshal(2), m.unmarshal(16));
  EXPECT_LT(m.copy(2), m.copy(16));
}

TEST(CostModel, VariantsCompose) {
  const CostModel both = CostModel::software().with_hw_message().with_hw_oid();
  EXPECT_TRUE(both.hw_message);
  EXPECT_TRUE(both.hw_oid);
  EXPECT_EQ(both.oid(), 0u);
  EXPECT_EQ(both.copy(kFrame), 12u);
}

}  // namespace
}  // namespace cm::core
