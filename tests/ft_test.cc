// Unit tests for the fail-stop crash-tolerance layer (ft::FtLayer): the
// deterministic lease/heartbeat failure detector, suspicion- and
// deadline-based send cancellation, object recovery (replica promotion,
// backup restore, condemnation) and directory-shard failover in the
// locator. Every scenario is driven by a planned NIC death in a
// net::FaultyNetwork — the host side of the "dead" processor keeps its
// state, the network just stops carrying its messages.
#include "ft/ft.h"

#include <gtest/gtest.h>

#include "core/replication.h"
#include "net/constant_net.h"
#include "net/faulty_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm::ft {
namespace {

using core::Ctx;
using core::ObjectId;
using sim::ProcId;
using sim::Task;

net::FaultPlan kill_at(ProcId p, Cycles at) {
  net::FaultPlan plan;
  plan.nic_fail_at[p] = at;
  return plan;
}

FtConfig enabled_cfg() {
  FtConfig cfg;
  cfg.enabled = true;
  return cfg;
}

// A small machine whose interconnect can fail-stop NICs. Reliability is on
// (as in every chaos run) so sends to a dead peer retransmit until the
// detector cancels them instead of silently vanishing.
struct FtWorld {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork base;
  net::FaultyNetwork net;
  core::ObjectSpace objects;
  core::Runtime rt;

  FtWorld(ProcId nprocs, net::FaultPlan plan)
      : machine(eng, nprocs),
        base(eng),
        net(eng, base, std::move(plan)),
        rt(machine, net, objects, core::CostModel::software()) {
    rt.enable_reliability();
  }
};

Task<> send_from(FtWorld* w, ProcId src, ProcId dst, unsigned words,
                 bool* out) {
  *out = co_await w->rt.transfer(src, dst, words);
}

Task<> call_value(FtWorld* w, ObjectId obj, ProcId from, int* out) {
  Ctx ctx{&w->rt, from};
  *out = co_await w->rt.call(ctx, obj, core::CallOpts{2, 2, true},
                             [w](Ctx& c) -> Task<int> {
                               co_await w->rt.compute(c, 5);
                               co_return 42;
                             });
}

Task<> call_expect_lost(FtWorld* w, ObjectId obj, ProcId from, bool* threw,
                        ObjectId* which) {
  Ctx ctx{&w->rt, from};
  try {
    (void)co_await w->rt.call(ctx, obj, core::CallOpts{2, 2, true},
                              [w](Ctx& c) -> Task<int> {
                                co_await w->rt.compute(c, 5);
                                co_return 0;
                              });
  } catch (const core::ObjectLostError& e) {
    *threw = true;
    *which = e.object();
  }
}

Task<> ensure_from(FtWorld* w, core::Replicated* r, ProcId p) {
  Ctx ctx{&w->rt, p};
  co_await r->ensure(ctx);
}

// ---------------------------------------------------------------------------
// Installation gating
// ---------------------------------------------------------------------------

TEST(FtLayer, DisabledLayerNeverInstallsOrRuns) {
  FtWorld w(4, net::FaultPlan{});
  FtLayer ftl(w.rt, FtConfig{});  // enabled defaults to false

  EXPECT_EQ(w.rt.fault_tolerance(), nullptr);
  ftl.start();  // must be a no-op
  EXPECT_FALSE(ftl.running());
  w.eng.run();
  EXPECT_EQ(ftl.stats().heartbeats_sent, 0u);
  EXPECT_FALSE(ftl.suspected(0));
}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

TEST(FtLayer, HeartbeatsKeepLiveProcessorsUnsuspected) {
  FtWorld w(4, net::FaultPlan{});
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.start();

  w.eng.run_until(30'000);
  ftl.stop();
  w.eng.run();

  EXPECT_GT(ftl.stats().heartbeats_sent, 0u);
  EXPECT_GT(ftl.stats().leases_renewed, 0u);
  EXPECT_EQ(ftl.stats().suspicions, 0u);
  for (ProcId p = 0; p < 4; ++p) EXPECT_FALSE(ftl.suspected(p));
}

TEST(FtLayer, DetectorSuspectsPlannedFailureDeterministically) {
  constexpr Cycles kFail = 10'000;
  Cycles epochs[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    FtWorld w(4, kill_at(2, kFail));
    FtLayer ftl(w.rt, enabled_cfg());
    ftl.note_plan(w.net.plan());
    ftl.start();

    w.eng.run_until(40'000);
    ftl.stop();
    w.eng.run();

    EXPECT_TRUE(ftl.suspected(2));
    EXPECT_FALSE(ftl.suspected(0));
    EXPECT_FALSE(ftl.suspected(1));
    EXPECT_FALSE(ftl.suspected(3));
    EXPECT_EQ(ftl.stats().suspicions, 1u);
    EXPECT_EQ(ftl.stats().detected, 1u);
    EXPECT_EQ(ftl.stats().planned_failures, 1u);

    // Suspicion lands after the lease expires and before the sweep after
    // that: detection latency is bounded by the detector's parameters.
    const Cycles lease = ftl.config().heartbeat_interval *
                         ftl.config().lease_misses;
    EXPECT_GE(ftl.failure_epoch(2), kFail);
    EXPECT_LE(ftl.failure_epoch(2),
              kFail + lease + 2 * ftl.config().heartbeat_interval);
    EXPECT_GT(ftl.stats().mean_detect_latency(), 0.0);
    epochs[run] = ftl.failure_epoch(2);
  }
  EXPECT_EQ(epochs[0], epochs[1]);  // same seed, same suspicion cycle
}

// ---------------------------------------------------------------------------
// Cancellation: no send waits unboundedly on a dead peer
// ---------------------------------------------------------------------------

TEST(FtLayer, SuspectedPeerAbortsUnboundedSend) {
  // The pre-fault-tolerance hazard: ReliableTransport::send with budget 0
  // retransmits forever into a dead NIC. Both flavours must now resolve
  // false — a send already in flight when suspicion lands, and a send
  // issued afterwards (which fails fast without touching the wire).
  FtWorld w(4, kill_at(2, 1'000));
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.note_plan(w.net.plan());
  ftl.start();

  bool in_flight = true;
  bool post_suspicion = true;
  w.eng.at(2'000, [&] { sim::detach(send_from(&w, 0, 2, 4, &in_flight)); });
  w.eng.at(20'000,
           [&] { sim::detach(send_from(&w, 1, 2, 4, &post_suspicion)); });

  w.eng.run_until(30'000);
  ftl.stop();
  w.eng.run();

  EXPECT_TRUE(ftl.suspected(2));
  EXPECT_FALSE(in_flight);
  EXPECT_FALSE(post_suspicion);
  EXPECT_GE(w.rt.stats().ft_suspect_aborts, 2u);
  EXPECT_GE(w.rt.stats().delivery_failures, 2u);
}

TEST(FtLayer, DeadlineExpiryAbortsSendBeforeSuspicion) {
  // With the detector effectively off (huge interval), only the per-send
  // deadline can cancel — and it must, long before any suspicion exists.
  FtConfig cfg = enabled_cfg();
  cfg.heartbeat_interval = 1'000'000;
  cfg.send_deadline = 3'000;
  FtWorld w(4, kill_at(2, 1'000));
  FtLayer ftl(w.rt, cfg);
  ftl.note_plan(w.net.plan());
  ftl.start();

  bool delivered = true;
  w.eng.at(2'000, [&] { sim::detach(send_from(&w, 0, 2, 4, &delivered)); });

  w.eng.run_until(20'000);
  EXPECT_FALSE(delivered);
  EXPECT_FALSE(ftl.suspected(2));  // detector never got to run
  EXPECT_GE(w.rt.stats().ft_deadline_aborts, 1u);
  ftl.stop();
  w.eng.run();
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

TEST(FtLayer, RecoveryRehomesObjectsFromDeadProcessor) {
  FtWorld w(6, kill_at(2, 5'000));
  const ObjectId a = w.objects.create(2);
  const ObjectId b = w.objects.create(2);
  const ObjectId c = w.objects.create(4);  // bystander: must not move
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.note_plan(w.net.plan());
  ftl.start();

  w.eng.run_until(40'000);
  ftl.stop();
  w.eng.run();

  EXPECT_TRUE(ftl.suspected(2));
  EXPECT_NE(w.objects.home_of(a), 2u);
  EXPECT_NE(w.objects.home_of(b), 2u);
  EXPECT_FALSE(ftl.suspected(w.objects.home_of(a)));
  EXPECT_FALSE(ftl.suspected(w.objects.home_of(b)));
  EXPECT_EQ(w.objects.home_of(c), 4u);
  EXPECT_EQ(ftl.stats().rehomes, 2u);
  EXPECT_EQ(ftl.stats().recoveries, 2u);
  EXPECT_EQ(ftl.stats().objects_lost, 0u);
  EXPECT_FALSE(ftl.recovery_pending(a));
  EXPECT_FALSE(ftl.recovery_pending(b));
  EXPECT_GT(ftl.stats().mean_rehome_latency(), 0.0);
}

TEST(FtLayer, CallOnDeadHomeRetriesAndCompletesAfterRecovery) {
  FtWorld w(4, kill_at(2, 5'000));
  const ObjectId obj = w.objects.create(2);
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.note_plan(w.net.plan());
  ftl.start();

  // Issued after the NIC dies but before suspicion: the request transfer
  // retransmits into the void, aborts at suspicion, parks on the recovery
  // window, and re-issues against the object's new home.
  int result = 0;
  w.eng.at(6'000, [&] { sim::detach(call_value(&w, obj, 0, &result)); });

  w.eng.run_until(60'000);
  ftl.stop();
  w.eng.run();

  EXPECT_EQ(result, 42);
  EXPECT_NE(w.objects.home_of(obj), 2u);
  EXPECT_GE(w.rt.stats().ft_call_retries, 1u);
  EXPECT_GE(w.rt.stats().ft_suspect_aborts, 1u);
  EXPECT_EQ(ftl.stats().recoveries, 1u);
}

TEST(FtLayer, ReplicaPromotionWinsOverBackupRestore) {
  FtWorld w(4, kill_at(2, 10'000));
  const ObjectId obj = w.objects.create(2);
  core::Replicated repl(w.rt, obj, /*object_words=*/8);
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.note_plan(w.net.plan());
  ftl.start();

  // Validate proc 1's replica while the home is still alive.
  sim::detach(ensure_from(&w, &repl, 1));

  w.eng.run_until(40'000);
  ftl.stop();
  w.eng.run();

  EXPECT_TRUE(repl.valid_at(1));
  EXPECT_EQ(repl.home(), 1u);  // lowest live processor with a valid copy
  EXPECT_EQ(w.objects.home_of(obj), 1u);
  EXPECT_EQ(ftl.stats().replica_promotions, 1u);
  EXPECT_EQ(ftl.stats().rehomes, 0u);  // promotion, not restore
  EXPECT_EQ(ftl.stats().recoveries, 1u);
}

TEST(FtLayer, LostModeCondemnsWithTypedError) {
  FtConfig cfg = enabled_cfg();
  cfg.rehome_unreplicated = false;
  FtWorld w(4, kill_at(2, 5'000));
  const ObjectId obj = w.objects.create(2);
  FtLayer ftl(w.rt, cfg);
  ftl.note_plan(w.net.plan());
  ftl.start();

  bool threw = false;
  ObjectId which = 9999;
  w.eng.at(30'000,
           [&] { sim::detach(call_expect_lost(&w, obj, 0, &threw, &which)); });

  w.eng.run_until(50'000);
  ftl.stop();
  w.eng.run();

  EXPECT_TRUE(ftl.object_lost(obj));
  EXPECT_EQ(ftl.stats().objects_lost, 1u);
  EXPECT_EQ(ftl.stats().recoveries, 0u);
  EXPECT_TRUE(threw);
  EXPECT_EQ(which, obj);
}

TEST(FtLayer, EvacuationTargetIsNextLiveRingSuccessor) {
  FtWorld w(4, kill_at(2, 5'000));
  FtLayer ftl(w.rt, enabled_cfg());
  ftl.note_plan(w.net.plan());
  ftl.start();

  w.eng.run_until(30'000);
  ftl.stop();
  w.eng.run();

  ASSERT_TRUE(ftl.suspected(2));
  EXPECT_EQ(ftl.evacuation_target(2), 3u);
  EXPECT_EQ(ftl.evacuation_target(3), 0u);  // 3 is alive; ring wraps past it
}

// ---------------------------------------------------------------------------
// Locator integration: directory failover and metadata scrubbing
// ---------------------------------------------------------------------------

TEST(FtLayer, LocatorFailsOverQueriesAndScrubsRehomedEntries) {
  FtWorld w(4, kill_at(2, 5'000));
  // ids 0..3 homed on proc 1 (shard = id % 4 under kHashHome, so id 2's
  // directory entry lives on the processor about to die); id 4 homed on
  // the dying processor itself.
  for (int i = 0; i < 4; ++i) (void)w.objects.create(1);
  const ObjectId victim = w.objects.create(2);
  loc::LocatorConfig loc_cfg;
  loc_cfg.mode = loc::Locality::kDistributed;
  loc::Locator locator(w.rt, loc_cfg);
  FtLayer ftl(w.rt, enabled_cfg(), &locator);
  ftl.note_plan(w.net.plan());
  ftl.start();

  // After suspicion: a query whose primary shard is dead re-routes to the
  // replica shard, and a call on the re-homed object resolves its new home
  // through the patched directory.
  int via_replica = 0;
  int via_rehomed = 0;
  w.eng.at(25'000, [&] { sim::detach(call_value(&w, 2, 0, &via_replica)); });
  w.eng.at(25'000,
           [&] { sim::detach(call_value(&w, victim, 0, &via_rehomed)); });

  w.eng.run_until(80'000);
  ftl.stop();
  w.eng.run();

  ASSERT_TRUE(ftl.suspected(2));
  EXPECT_EQ(via_replica, 42);
  EXPECT_EQ(via_rehomed, 42);
  EXPECT_GE(locator.stats().dir_failovers, 1u);

  // Recovery patched the directory: the entry agrees with ground truth and
  // no longer names the dead processor.
  EXPECT_NE(w.objects.home_of(victim), 2u);
  EXPECT_EQ(locator.directory_owner(victim), w.objects.home_of(victim));
  EXPECT_EQ(ftl.stats().recoveries, 1u);
}

}  // namespace
}  // namespace cm::ft
