#include "apps/workload.h"

#include <gtest/gtest.h>

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;

Window quick() { return Window{5'000, 40'000}; }

TEST(CountingWorkload, ProducesThroughput) {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.requesters = 8;
  cfg.window = quick();
  const RunStats s = run_counting(cfg);
  EXPECT_GT(s.ops, 0);
  EXPECT_GT(s.words, 0u);
  EXPECT_GT(s.throughput_per_1000(), 0.0);
  EXPECT_GT(s.words_per_10(), 0.0);
}

TEST(CountingWorkload, Deterministic) {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.window = quick();
  const RunStats a = run_counting(cfg);
  const RunStats b = run_counting(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.words, b.words);
}

TEST(CountingWorkload, MigrationBeatsRpcUnderContention) {
  CountingConfig cfg;
  cfg.requesters = 32;
  cfg.think = 0;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  const RunStats rpc = run_counting(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  const RunStats mig = run_counting(cfg);
  EXPECT_GT(mig.throughput_per_1000(), rpc.throughput_per_1000());
  EXPECT_LT(mig.words_per_10(), rpc.words_per_10());
}

TEST(CountingWorkload, HardwareSupportHelps) {
  CountingConfig cfg;
  cfg.requesters = 32;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  const RunStats sw = run_counting(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, true, false};
  const RunStats hw = run_counting(cfg);
  EXPECT_GT(hw.throughput_per_1000(), sw.throughput_per_1000());
}

TEST(CountingWorkload, SharedMemoryBurnsBandwidth) {
  CountingConfig cfg;
  cfg.requesters = 32;
  cfg.think = 0;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
  const RunStats sm = run_counting(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  const RunStats mig = run_counting(cfg);
  EXPECT_GT(sm.words_per_10(), 2.0 * mig.words_per_10());
  EXPECT_LT(sm.cache_hit_rate, 0.7);  // balancers are write-shared
}

TEST(CountingWorkload, ThinkTimeLowersLoad) {
  CountingConfig cfg;
  cfg.requesters = 16;
  cfg.window = Window{5'000, 80'000};
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.think = 0;
  const RunStats hot = run_counting(cfg);
  cfg.think = 10'000;
  const RunStats cold = run_counting(cfg);
  EXPECT_LT(cold.ops, hot.ops);
}

TEST(CountingWorkload, FixedAndTimedWindowsAgree) {
  // The measurement window is half-open [warm_at, end_at) for ops, words,
  // and messages alike. A fixed-work run (one requester, 3 ops) and a timed
  // run whose window closes one cycle after the fixed run drained replay
  // the same event sequence through that point — the requester's 4th op
  // cannot start until a full think time later — so every counter must
  // agree exactly, including ops completing on the window boundary itself.
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 1;
  cfg.think = 10'000;
  cfg.ops_per_requester = 3;
  const RunStats fixed = run_counting(cfg);
  EXPECT_EQ(fixed.ops, 3);
  EXPECT_EQ(fixed.total_exited, 3);

  CountingConfig timed = cfg;
  timed.ops_per_requester = 0;
  timed.window = Window{0, fixed.completed_at + 1};
  const RunStats t = run_counting(timed);
  EXPECT_EQ(t.ops, fixed.ops);
  EXPECT_EQ(t.words, fixed.words);
  EXPECT_EQ(t.messages, fixed.messages);
}

TEST(BTreeWorkload, ProducesThroughputAndStaysValid) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.nkeys = 2'000;
  cfg.window = quick();
  const RunStats s = run_btree(cfg);
  EXPECT_GT(s.ops, 0);
  EXPECT_GT(s.migrations, 0u);
}

TEST(BTreeWorkload, Deterministic) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.nkeys = 1'000;
  cfg.window = quick();
  const RunStats a = run_btree(cfg);
  const RunStats b = run_btree(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.words, b.words);
}

TEST(BTreeWorkload, MigrationBeatsRpc) {
  BTreeConfig cfg;
  cfg.nkeys = 2'000;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  const RunStats rpc = run_btree(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  const RunStats mig = run_btree(cfg);
  EXPECT_GT(mig.throughput_per_1000(), rpc.throughput_per_1000());
}

TEST(BTreeWorkload, ReplicationHelpsMigration) {
  BTreeConfig cfg;
  cfg.nkeys = 2'000;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  const RunStats plain = run_btree(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, false, true};
  const RunStats repl = run_btree(cfg);
  EXPECT_GT(repl.throughput_per_1000(), plain.throughput_per_1000());
}

TEST(BTreeWorkload, SharedMemoryUsesMostBandwidth) {
  BTreeConfig cfg;
  cfg.nkeys = 2'000;
  cfg.window = quick();
  cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
  const RunStats sm = run_btree(cfg);
  cfg.scheme = Scheme{Mechanism::kMigration, false, true};
  const RunStats cp = run_btree(cfg);
  EXPECT_GT(sm.words_per_10(), cp.words_per_10());
}

}  // namespace
}  // namespace cm::apps
