#include "apps/counting_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::apps {
namespace {

using core::Ctx;
using core::Mechanism;
using sim::ProcId;
using sim::Task;

// ---------------------------------------------------------------------------
// Wiring construction
// ---------------------------------------------------------------------------

TEST(BitonicWiring, Width8MatchesPaperGeometry) {
  const BitonicWiring w = BitonicWiring::build(8);
  // "an eight-by-eight counting network ... essentially a six-stage
  // pipeline; each stage has four balancers" -> 24 balancers.
  EXPECT_EQ(w.balancers.size(), 24u);
  EXPECT_EQ(w.depth, 6u);
  EXPECT_EQ(w.width, 8u);
}

class WiringWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(WiringWidths, SizeAndDepthFollowTheBitonicFormulae) {
  const unsigned width = GetParam();
  const BitonicWiring w = BitonicWiring::build(width);
  unsigned lg = 0;
  while ((1u << lg) < width) ++lg;
  // depth = lg(lg+1)/2, balancers = (width/2) * depth.
  EXPECT_EQ(w.depth, lg * (lg + 1) / 2);
  EXPECT_EQ(w.balancers.size(), (width / 2) * w.depth);
  EXPECT_EQ(w.entry.size(), width);
}

TEST_P(WiringWidths, EveryBalancerOutputIsWired) {
  const BitonicWiring w = BitonicWiring::build(GetParam());
  unsigned outputs_seen = 0;
  for (const auto& b : w.balancers) {
    for (const Target& t : b.out) {
      if (t.is_output) {
        ++outputs_seen;
        EXPECT_LT(t.index, w.width);
      } else {
        EXPECT_LT(t.index, w.balancers.size());
      }
    }
  }
  EXPECT_EQ(outputs_seen, w.width);
}

TEST_P(WiringWidths, StagesOnlyIncreaseAlongEdges) {
  const BitonicWiring w = BitonicWiring::build(GetParam());
  for (const auto& b : w.balancers) {
    for (const Target& t : b.out) {
      if (!t.is_output) {
        EXPECT_LT(b.stage, w.balancers[t.index].stage);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, WiringWidths,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ---------------------------------------------------------------------------
// Counting semantics under every mechanism
// ---------------------------------------------------------------------------

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;
  CountingNetwork cn;

  World(unsigned width, unsigned requesters,
        core::CostModel cost = core::CostModel::software())
      : machine(eng, static_cast<ProcId>(3 * width + requesters)),
        net(eng),
        mem(machine, net),
        rt(machine, net, objects, cost),
        cn(rt, &mem, make_params(width)) {}

  static CountingNetwork::Params make_params(unsigned width) {
    CountingNetwork::Params p;
    p.width = width;
    p.first_balancer_proc = 0;
    return p;
  }
  [[nodiscard]] ProcId requester_proc(unsigned i) const {
    return static_cast<ProcId>(cn.num_balancers() + i);
  }
};

Task<> take_values(World* w, Mechanism mech, ProcId home, unsigned wire,
                   int count, std::vector<long>* out) {
  Ctx ctx{&w->rt, home};
  for (int i = 0; i < count; ++i) {
    const long v = co_await w->cn.get_next(ctx, mech, wire);
    co_await w->rt.return_home(ctx, home, 2);
    out->push_back(v);
  }
}

class Mechanisms : public ::testing::TestWithParam<Mechanism> {};

TEST_P(Mechanisms, SingleThreadCountsSequentially) {
  World w(8, 1);
  std::vector<long> vals;
  sim::detach(take_values(&w, GetParam(), w.requester_proc(0), 0, 16, &vals));
  w.eng.run();
  ASSERT_EQ(vals.size(), 16u);
  // One thread injecting on one wire still receives distinct values, and at
  // quiescence the network has the step property.
  std::set<long> uniq(vals.begin(), vals.end());
  EXPECT_EQ(uniq.size(), vals.size());
  EXPECT_TRUE(w.cn.has_step_property());
  EXPECT_EQ(w.cn.total_exited(), 16);
}

TEST_P(Mechanisms, ConcurrentThreadsGetExactlyOnceContiguousValues) {
  constexpr unsigned kThreads = 12;
  constexpr int kPer = 9;
  World w(8, kThreads);
  std::vector<std::vector<long>> vals(kThreads);
  for (unsigned i = 0; i < kThreads; ++i) {
    sim::detach(take_values(&w, GetParam(), w.requester_proc(i), i % 8, kPer,
                            &vals[i]));
  }
  w.eng.run();
  std::vector<long> all;
  for (const auto& v : vals) all.insert(all.end(), v.begin(), v.end());
  ASSERT_EQ(all.size(), kThreads * kPer);
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<long>(i)) << "values must be the exact "
                                               "range 0..n-1 (exactly-once "
                                               "counting)";
  }
  EXPECT_TRUE(w.cn.has_step_property());
}

INSTANTIATE_TEST_SUITE_P(All, Mechanisms,
                         ::testing::Values(Mechanism::kRpc,
                                           Mechanism::kMigration,
                                           Mechanism::kSharedMemory,
                                           Mechanism::kObjectMigration,
                                           Mechanism::kThreadMigration));

TEST(CountingNetwork, MechanismDoesNotChangeSemantics) {
  // Paper §3.1: "the annotation affects only the performance of a program,
  // not its semantics". Same workload, same totals, different traffic.
  auto run = [](Mechanism mech) {
    World w(8, 4);
    std::vector<std::vector<long>> vals(4);
    for (unsigned i = 0; i < 4; ++i) {
      sim::detach(
          take_values(&w, mech, w.requester_proc(i), i % 8, 5, &vals[i]));
    }
    w.eng.run();
    std::vector<long> all;
    for (auto& v : vals) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    return all;
  };
  const auto rpc = run(Mechanism::kRpc);
  const auto mig = run(Mechanism::kMigration);
  const auto sm = run(Mechanism::kSharedMemory);
  const auto obj = run(Mechanism::kObjectMigration);
  const auto tm = run(Mechanism::kThreadMigration);
  EXPECT_EQ(rpc, mig);
  EXPECT_EQ(rpc, sm);
  EXPECT_EQ(rpc, obj);
  EXPECT_EQ(rpc, tm);
}

TEST(CountingNetwork, MigrationUsesFewerMessagesThanRpc) {
  auto messages = [](Mechanism mech) {
    World w(8, 4);
    std::vector<long> sink;
    for (unsigned i = 0; i < 4; ++i) {
      sim::detach(take_values(&w, mech, w.requester_proc(i), i % 8, 6, &sink));
    }
    w.eng.run();
    return w.net.stats().messages;
  };
  const auto rpc = messages(Mechanism::kRpc);
  const auto mig = messages(Mechanism::kMigration);
  // Per op: RPC = 2 per balancer/counter access; CM = 1 per hop + 1 return.
  EXPECT_LT(mig, rpc);
  EXPECT_LT(static_cast<double>(mig), 0.65 * static_cast<double>(rpc));
}

TEST(CountingNetwork, MigrationUsesLessBandwidthThanSharedMemory) {
  auto words = [](Mechanism mech) {
    World w(8, 8);
    std::vector<long> sink;
    for (unsigned i = 0; i < 8; ++i) {
      sim::detach(take_values(&w, mech, w.requester_proc(i), i % 8, 6, &sink));
    }
    w.eng.run();
    return w.net.stats().words;
  };
  EXPECT_LT(words(Mechanism::kMigration), words(Mechanism::kSharedMemory));
}

TEST(CountingNetwork, BalancersAreWriteShared) {
  // Under shared memory every balancer access modifies the toggle, so the
  // data-object hit rate stays low (the paper measured ~12%).
  World w(8, 8);
  std::vector<long> sink;
  for (unsigned i = 0; i < 8; ++i) {
    sim::detach(take_values(&w, Mechanism::kSharedMemory,
                            w.requester_proc(i), i % 8, 10, &sink));
  }
  w.eng.run();
  EXPECT_LT(w.mem.stats().hit_rate(), 0.6);
  EXPECT_GT(w.mem.stats().write_misses, 100u);
}

TEST(CountingNetwork, TokensPerBalancerAreBalanced) {
  // Each stage-0 balancer sees the tokens of its two input wires; a
  // balancer's two outputs then differ by at most one token.
  World w(8, 8);
  std::vector<long> sink;
  for (unsigned i = 0; i < 8; ++i) {
    sim::detach(take_values(&w, Mechanism::kRpc, w.requester_proc(i), i % 8,
                            8, &sink));
  }
  w.eng.run();
  EXPECT_EQ(w.cn.total_exited(), 64);
  EXPECT_TRUE(w.cn.has_step_property());
}

}  // namespace
}  // namespace cm::apps
