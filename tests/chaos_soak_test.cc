// Chaos soak tests: the counting network and the B-tree run a fixed amount
// of work under injected message loss / duplication and must produce exactly
// the application-level results of the fault-free run — the reliable
// transport makes faults a performance event, never a semantics event.
// Fault-path counters are asserted nonzero so a silently-ineffective
// injector cannot produce a vacuous pass, and a zero-rate plan is asserted
// bit-identical to no plan at all (the no-overhead guarantee).
#include <gtest/gtest.h>

#include "apps/workload.h"

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;

net::FaultPlan loss_plan(double rate) {
  net::FaultPlan plan;
  plan.rates.drop = rate;
  plan.rates.duplicate = rate / 2;
  plan.rates.delay = rate;
  plan.seed = 0xc4a05;
  return plan;
}

// ---------------------------------------------------------------------------
// Counting network
// ---------------------------------------------------------------------------

CountingConfig counting_cfg(Mechanism mech) {
  CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 25;  // fixed work: results comparable across plans
  return cfg;
}

class CountingSoak : public ::testing::TestWithParam<double> {};

TEST_P(CountingSoak, LossPreservesExactTotalsUnderMigration) {
  const double rate = GetParam();
  const RunStats clean = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig chaos = counting_cfg(Mechanism::kMigration);
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_counting(chaos);

  // Exact application-level equivalence.
  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_EQ(faulty.total_exited, 16 * 25);
  EXPECT_TRUE(faulty.step_property);
  EXPECT_TRUE(clean.step_property);

  // The fault path was genuinely exercised.
  EXPECT_GT(faulty.net.faults_dropped, 0u);
  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_GT(faulty.runtime.dedup_hits, 0u);
  EXPECT_EQ(faulty.runtime.stale_deliveries, 0u);  // nothing gave up
  // Reliability costs time and messages; it must not cost correctness.
  EXPECT_GT(faulty.completed_at, clean.completed_at);
}

TEST_P(CountingSoak, LossPreservesExactTotalsUnderRpc) {
  const double rate = GetParam();
  const RunStats clean = run_counting(counting_cfg(Mechanism::kRpc));

  CountingConfig chaos = counting_cfg(Mechanism::kRpc);
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_counting(chaos);

  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_TRUE(faulty.step_property);
  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_GT(faulty.runtime.dedup_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, CountingSoak,
                         ::testing::Values(0.01, 0.05));

TEST(CountingSoak, ZeroRatePlanIsBitIdenticalToNoPlan) {
  const RunStats plain = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig zero = counting_cfg(Mechanism::kMigration);
  zero.faults = net::FaultPlan{};  // inactive: no wrapper, no reliability
  const RunStats gated = run_counting(zero);

  EXPECT_EQ(gated.completed_at, plain.completed_at);
  EXPECT_EQ(gated.net.messages, plain.net.messages);
  EXPECT_EQ(gated.net.words, plain.net.words);
  EXPECT_EQ(gated.total_exited, plain.total_exited);
  EXPECT_EQ(gated.runtime.breakdown.total(), plain.runtime.breakdown.total());
  EXPECT_EQ(gated.runtime.reliable_sends, 0u);
  EXPECT_EQ(gated.runtime.acks_sent, 0u);
}

// ---------------------------------------------------------------------------
// B-tree
// ---------------------------------------------------------------------------

BTreeConfig btree_cfg(Mechanism mech) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;  // a few levels even at 1000 keys
  cfg.ops_per_requester = 25;
  return cfg;
}

class BTreeSoak : public ::testing::TestWithParam<double> {};

TEST_P(BTreeSoak, LossPreservesExactContentsUnderMigration) {
  const double rate = GetParam();
  const RunStats clean = run_btree(btree_cfg(Mechanism::kMigration));

  BTreeConfig chaos = btree_cfg(Mechanism::kMigration);
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_btree(chaos);

  // The stored key/value contents are exactly those of the fault-free run:
  // the op streams are fixed per requester, inserts are idempotent
  // (insert(k, k)), and the reliable layer delivers each effect once.
  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_TRUE(clean.invariants_ok);

  EXPECT_GT(faulty.net.faults_dropped, 0u);
  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_GT(faulty.runtime.dedup_hits, 0u);
}

TEST_P(BTreeSoak, LossPreservesExactContentsUnderRpc) {
  const double rate = GetParam();
  const RunStats clean = run_btree(btree_cfg(Mechanism::kRpc));

  BTreeConfig chaos = btree_cfg(Mechanism::kRpc);
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_btree(chaos);

  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_GT(faulty.runtime.retransmits, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, BTreeSoak, ::testing::Values(0.01, 0.05));

TEST(BTreeSoak, ZeroRatePlanIsBitIdenticalToNoPlan) {
  const RunStats plain = run_btree(btree_cfg(Mechanism::kMigration));

  BTreeConfig zero = btree_cfg(Mechanism::kMigration);
  zero.faults = net::FaultPlan{};
  const RunStats gated = run_btree(zero);

  EXPECT_EQ(gated.completed_at, plain.completed_at);
  EXPECT_EQ(gated.net.messages, plain.net.messages);
  EXPECT_EQ(gated.net.words, plain.net.words);
  EXPECT_EQ(gated.btree_digest, plain.btree_digest);
  EXPECT_EQ(gated.runtime.breakdown.total(), plain.runtime.breakdown.total());
  EXPECT_EQ(gated.runtime.reliable_sends, 0u);
}

// ---------------------------------------------------------------------------
// Distributed object location under chaos: directory queries, move protocol
// legs and forwarding bounces all ride the reliable transport, so message
// loss must not change what the locator resolves — only when.
// ---------------------------------------------------------------------------

class LocatorSoak : public ::testing::TestWithParam<double> {};

TEST_P(LocatorSoak, LossPreservesExactTotalsWithLocatorUnderMigration) {
  const double rate = GetParam();
  CountingConfig base = counting_cfg(Mechanism::kMigration);
  base.locator.mode = loc::Locality::kDistributed;
  const RunStats clean = run_counting(base);

  CountingConfig chaos = base;
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_counting(chaos);

  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_EQ(faulty.total_exited, 16 * 25);
  EXPECT_TRUE(faulty.step_property);
  EXPECT_TRUE(clean.step_property);

  // Both the fault path and the location path were genuinely exercised.
  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_TRUE(faulty.locator_enabled);
  EXPECT_GT(faulty.loc.lookups, 0u);
  EXPECT_GT(faulty.loc.dir_queries, 0u);
}

TEST_P(LocatorSoak, LossPreservesExactTotalsWithLocatorUnderObjectMigration) {
  const double rate = GetParam();
  CountingConfig base = counting_cfg(Mechanism::kObjectMigration);
  base.locator.mode = loc::Locality::kDistributed;
  const RunStats clean = run_counting(base);

  CountingConfig chaos = base;
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_counting(chaos);

  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_TRUE(faulty.step_property);

  // Objects really moved through the 4-leg protocol while messages dropped,
  // and every move still committed exactly once.
  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_GT(faulty.loc.moves, 0u);
  EXPECT_EQ(faulty.runtime.stale_deliveries, 0u);
}

TEST_P(LocatorSoak, LossPreservesExactContentsWithLocatorOnBTree) {
  const double rate = GetParam();
  BTreeConfig base = btree_cfg(Mechanism::kMigration);
  base.locator.mode = loc::Locality::kDistributed;
  const RunStats clean = run_btree(base);

  BTreeConfig chaos = base;
  chaos.faults = loss_plan(rate);
  const RunStats faulty = run_btree(chaos);

  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_TRUE(clean.invariants_ok);

  EXPECT_GT(faulty.runtime.retransmits, 0u);
  EXPECT_GT(faulty.loc.dir_queries, 0u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LocatorSoak,
                         ::testing::Values(0.01, 0.05));

TEST(BTreeSoak, MigrationFallbackInsideFaultWindowStillCorrect) {
  // Brutal loss confined to a window: MOVEs that exhaust their budget fall
  // back to RPC at the object's home, and the final contents still match.
  const RunStats clean = run_btree(btree_cfg(Mechanism::kMigration));

  BTreeConfig chaos = btree_cfg(Mechanism::kMigration);
  chaos.faults.rates.drop = 0.9;
  chaos.faults.window_start = 0;
  chaos.faults.window_end = 40'000;
  chaos.faults.seed = 99;
  chaos.reliable.base_timeout = 200;
  chaos.reliable.move_retry_budget = 2;
  const RunStats faulty = run_btree(chaos);

  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_GT(faulty.runtime.migration_fallbacks, 0u);
}

}  // namespace
}  // namespace cm::apps
