// Fail-stop soak tests: whole workloads run fixed work while planned NIC
// deaths kill processors mid-run, and — with the ft layer recovering homes
// from replicas or simulated backups — must produce exactly the
// application-level results of the crash-free run. Suites are named
// FailStopSoak* so CI can select them with `ctest -R FailStopSoak`.
//
// Crash plans only kill non-adjacent balancer/node processors: monitors are
// ring successors, so adjacent simultaneous deaths could falsely expire the
// lease of the processor between them (documented detector limitation).
// Requester processors are never killed — fail-stop tolerance recovers
// objects, not the requesters' own program state.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/workload.h"
#include "check/report.h"

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;

CountingConfig counting_cfg(Mechanism mech) {
  CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 25;  // fixed work: results comparable across plans
  return cfg;
}

BTreeConfig btree_cfg(Mechanism mech) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 25;
  return cfg;
}

// Two non-adjacent balancer processors die mid-run (width 8 puts balancers
// on procs 0..23 and requesters on 24..39).
net::FaultPlan counting_crashes() {
  net::FaultPlan plan;
  plan.nic_fail_at[2] = 10'000;
  plan.nic_fail_at[9] = 20'000;
  return plan;
}

ft::FtConfig ft_on() {
  ft::FtConfig cfg;
  cfg.enabled = true;
  return cfg;
}

std::string report_of(const RunStats& r) {
  return check::check_report_json(r.check, r.check_violations);
}

// Write a soak's check report where CI can pick it up as an artifact.
// CM_CHECK_REPORT names a path prefix; each soak appends its own suffix.
void maybe_write_report(const RunStats& r, const char* suffix) {
  const char* prefix = std::getenv("CM_CHECK_REPORT");
  if (prefix == nullptr) return;
  const std::string path = std::string(prefix) + "." + suffix + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << path;
  const std::string json = report_of(r);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Counting network
// ---------------------------------------------------------------------------

TEST(FailStopSoakCounting, CrashPreservesExactTotalsUnderMigration) {
  const RunStats clean = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig chaos = counting_cfg(Mechanism::kMigration);
  chaos.faults = counting_crashes();
  chaos.ft = ft_on();
  const RunStats faulty = run_counting(chaos);

  // Exact application-level equivalence: balancer and counter state live on
  // the hosts (the NIC died, not the memory), so restore-based recovery
  // re-homes them intact and every token still drains.
  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_EQ(faulty.total_exited, 16 * 25);
  EXPECT_TRUE(faulty.step_property);
  EXPECT_TRUE(clean.step_property);
  EXPECT_EQ(faulty.ft_lost_ops, 0);  // re-home mode: nothing is condemned

  // Both crashes were detected and their objects recovered.
  EXPECT_TRUE(faulty.ft_enabled);
  EXPECT_EQ(faulty.ft.suspicions, 2u);
  EXPECT_EQ(faulty.ft.detected, 2u);
  EXPECT_GT(faulty.ft.recoveries, 0u);
  EXPECT_EQ(faulty.ft.objects_lost, 0u);
  EXPECT_GT(faulty.runtime.ft_suspect_aborts, 0u);

  // Recovery costs time; it must not cost correctness.
  EXPECT_GT(faulty.completed_at, clean.completed_at);
}

TEST(FailStopSoakCounting, CrashPreservesExactTotalsUnderRpc) {
  const RunStats clean = run_counting(counting_cfg(Mechanism::kRpc));

  CountingConfig chaos = counting_cfg(Mechanism::kRpc);
  chaos.faults = counting_crashes();
  chaos.ft = ft_on();
  const RunStats faulty = run_counting(chaos);

  EXPECT_EQ(faulty.total_exited, clean.total_exited);
  EXPECT_TRUE(faulty.step_property);
  EXPECT_EQ(faulty.ft_lost_ops, 0);
  EXPECT_EQ(faulty.ft.suspicions, 2u);
  EXPECT_GT(faulty.ft.recoveries, 0u);
}

TEST(FailStopSoakCounting, SameSeedCrashRunsAreBitIdentical) {
  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.faults = counting_crashes();
  cfg.ft = ft_on();
  const RunStats a = run_counting(cfg);
  const RunStats b = run_counting(cfg);

  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.net.messages, b.net.messages);
  EXPECT_EQ(a.net.words, b.net.words);
  EXPECT_EQ(a.total_exited, b.total_exited);
  EXPECT_EQ(a.ft.suspicions, b.ft.suspicions);
  EXPECT_EQ(a.ft.detect_latency_sum, b.ft.detect_latency_sum);
  EXPECT_EQ(a.ft.recoveries, b.ft.recoveries);
  EXPECT_EQ(a.ft.rehome_latency_sum, b.ft.rehome_latency_sum);
  EXPECT_EQ(a.runtime.ft_call_retries, b.runtime.ft_call_retries);
}

TEST(FailStopSoakCounting, DisabledFtIsBitIdenticalToPlainRun) {
  // The opt-in gate: a default-constructed FtConfig must leave the run
  // byte-identical to one that never heard of fault tolerance — no
  // heartbeats, no detector, no new counters.
  const RunStats plain = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig gated_cfg = counting_cfg(Mechanism::kMigration);
  gated_cfg.ft = ft::FtConfig{};  // enabled = false
  const RunStats gated = run_counting(gated_cfg);

  EXPECT_FALSE(gated.ft_enabled);
  EXPECT_EQ(gated.completed_at, plain.completed_at);
  EXPECT_EQ(gated.net.messages, plain.net.messages);
  EXPECT_EQ(gated.net.words, plain.net.words);
  EXPECT_EQ(gated.total_exited, plain.total_exited);
  EXPECT_EQ(gated.runtime.ft_suspect_aborts, 0u);
  EXPECT_EQ(gated.runtime.ft_call_retries, 0u);
}

TEST(FailStopSoakCounting, FtOnWithoutCrashesPreservesTotals) {
  // The detector itself must be semantically free: heartbeats add traffic,
  // never suspicion or state change, when nothing actually dies.
  const RunStats clean = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.ft = ft_on();
  const RunStats watched = run_counting(cfg);

  EXPECT_EQ(watched.total_exited, clean.total_exited);
  EXPECT_TRUE(watched.step_property);
  EXPECT_GT(watched.ft.heartbeats_sent, 0u);
  EXPECT_GT(watched.ft.leases_renewed, 0u);
  EXPECT_EQ(watched.ft.suspicions, 0u);
  EXPECT_EQ(watched.ft.recoveries, 0u);
  EXPECT_EQ(watched.ft_lost_ops, 0);
}

TEST(FailStopSoakCounting, LostModeDegradesGracefully) {
  // With restore disabled, objects on the dead processor are condemned:
  // requesters catch the typed ObjectLostError per operation, skip it, and
  // the run still drains cleanly with exactly the uncondemned work done.
  CountingConfig cfg = counting_cfg(Mechanism::kRpc);
  net::FaultPlan plan;
  plan.nic_fail_at[2] = 10'000;
  cfg.faults = plan;
  cfg.ft = ft_on();
  cfg.ft.rehome_unreplicated = false;
  const RunStats lossy = run_counting(cfg);

  EXPECT_EQ(lossy.ft.suspicions, 1u);
  EXPECT_GT(lossy.ft.objects_lost, 0u);
  EXPECT_GT(lossy.ft_lost_ops, 0);
  EXPECT_EQ(lossy.total_exited,
            16 * 25 - lossy.ft_lost_ops);  // every op accounted for
}

// ---------------------------------------------------------------------------
// B-tree
// ---------------------------------------------------------------------------

TEST(FailStopSoakBTree, CrashPreservesExactContentsUnderMigration) {
  const RunStats clean = run_btree(btree_cfg(Mechanism::kMigration));

  BTreeConfig chaos = btree_cfg(Mechanism::kMigration);
  net::FaultPlan plan;
  // Proc 18 hosts several nodes under seed 1; requesters live on 48+.
  plan.nic_fail_at[18] = 15'000;
  chaos.faults = plan;
  chaos.ft = ft_on();
  const RunStats faulty = run_btree(chaos);

  // Node contents survive the NIC death on the host side, so the recovered
  // tree stores exactly the clean run's key/value pairs.
  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_TRUE(clean.invariants_ok);
  EXPECT_EQ(faulty.ft_lost_ops, 0);

  EXPECT_EQ(faulty.ft.suspicions, 1u);
  EXPECT_EQ(faulty.ft.detected, 1u);
  EXPECT_GT(faulty.ft.recoveries, 0u);
  EXPECT_EQ(faulty.ft.objects_lost, 0u);
}

TEST(FailStopSoakBTree, CrashPreservesExactContentsUnderRpc) {
  const RunStats clean = run_btree(btree_cfg(Mechanism::kRpc));

  BTreeConfig chaos = btree_cfg(Mechanism::kRpc);
  net::FaultPlan plan;
  plan.nic_fail_at[18] = 15'000;
  chaos.faults = plan;
  chaos.ft = ft_on();
  const RunStats faulty = run_btree(chaos);

  EXPECT_EQ(faulty.btree_keys, clean.btree_keys);
  EXPECT_EQ(faulty.btree_digest, clean.btree_digest);
  EXPECT_TRUE(faulty.invariants_ok);
  EXPECT_EQ(faulty.ft.suspicions, 1u);
  EXPECT_GT(faulty.ft.recoveries, 0u);
}

// ---------------------------------------------------------------------------
// Checked soaks: the invariant checker rides along and must stay silent —
// no delivery after a failure epoch, at-most-once re-homes, monotone leases.
// ---------------------------------------------------------------------------

TEST(FailStopSoakChecked, CountingCrashSoakIsViolationFree) {
  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.faults = counting_crashes();
  cfg.ft = ft_on();
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  EXPECT_EQ(on.total_exited, 16 * 25);
  EXPECT_TRUE(on.step_property);
  EXPECT_EQ(on.check.fail_stops, 2u);
  EXPECT_EQ(on.check.suspicions, 2u);
  EXPECT_GT(on.check.leases, 0u);
  EXPECT_GT(on.check.rehomes, 0u);
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "failstop");
}

TEST(FailStopSoakChecked, LocatorCrashSoakIsViolationFree) {
  // The distributed locator under crashes: directory queries fail over to
  // replica shards, forwarding chains through the dead processors are cut,
  // and the checker's ownership mirror must still agree everywhere.
  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.locator.mode = loc::Locality::kDistributed;
  cfg.faults = counting_crashes();
  cfg.ft = ft_on();
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  EXPECT_EQ(on.total_exited, 16 * 25);
  EXPECT_TRUE(on.step_property);
  EXPECT_TRUE(on.locator_enabled);
  EXPECT_GT(on.loc.dir_queries, 0u);
  EXPECT_EQ(on.check.fail_stops, 2u);
  EXPECT_GT(on.check.rehomes, 0u);
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "failstop-locator");
}

TEST(FailStopSoakChecked, BTreeCrashSoakIsViolationFree) {
  BTreeConfig cfg = btree_cfg(Mechanism::kMigration);
  net::FaultPlan plan;
  plan.nic_fail_at[18] = 15'000;
  cfg.faults = plan;
  cfg.ft = ft_on();
  cfg.check = true;
  const RunStats on = run_btree(cfg);

  EXPECT_TRUE(on.invariants_ok);
  EXPECT_EQ(on.check.fail_stops, 1u);
  EXPECT_GT(on.check.rehomes, 0u);
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "failstop-btree");
}

}  // namespace
}  // namespace cm::apps
