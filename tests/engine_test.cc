#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace cm::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.pending(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30u);
  EXPECT_EQ(eng.events_executed(), 3u);
}

TEST(Engine, EqualTimestampsRunInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    eng.at(5, [&, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, AfterSchedulesRelativeToNow) {
  Engine eng;
  Cycles observed = 0;
  eng.at(100, [&] {
    eng.after(50, [&] { observed = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(observed, 150u);
}

TEST(Engine, SchedulingAtNowIsNotAClamp) {
  // A zero-latency round-trip lands exactly on now(): legal, not counted.
  Engine eng;
  Cycles observed = 0;
  eng.at(100, [&] {
    eng.at(eng.now(), [&] { observed = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(observed, 100u);
  EXPECT_EQ(eng.clamped_events(), 0u);
}

TEST(Engine, PastTimestampsClampToNowAndAreCounted) {
  // Scheduling strictly into the past is a causality bug: Debug builds
  // assert; Release builds clamp to now() and expose the count.
  Engine eng;
  Cycles observed = 0;
  eng.at(100, [&] {
    eng.at(10, [&] { observed = eng.now(); });  // in the past
  });
#ifdef NDEBUG
  eng.run();
  EXPECT_EQ(observed, 100u);
  EXPECT_EQ(eng.clamped_events(), 1u);
#else
  EXPECT_DEATH(eng.run(), "scheduled in the past");
#endif
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) eng.after(1, chain);
  };
  eng.after(1, chain);
  eng.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(eng.now(), 10u);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  int count = 0;
  for (Cycles t = 10; t <= 100; t += 10) eng.at(t, [&] { ++count; });
  eng.run_until(50);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(eng.now(), 50u);
  EXPECT_EQ(eng.pending(), 5u);
  eng.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilAdvancesClockWhenQueueEmpty) {
  Engine eng;
  eng.run_until(1234);
  EXPECT_EQ(eng.now(), 1234u);
}

TEST(Engine, RunUntilDoesNotAdvancePastPendingEvents) {
  // Regression: run_until(t) used to set now() = t even with unexecuted
  // events pending past t, letting the clock run ahead of owed work. With
  // events remaining, now() must stay at the last executed event's time.
  Engine eng;
  eng.at(40, [] {});
  eng.at(90, [] {});
  eng.run_until(55);
  EXPECT_EQ(eng.now(), 40u);  // not 55: the event at 90 is still pending
  EXPECT_EQ(eng.pending(), 1u);

  // A relative schedule after the partial run hangs off the last executed
  // event's time, so it still lands before the pending event.
  Cycles fired_at = 0;
  eng.after(10, [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, 50u);
  EXPECT_EQ(eng.now(), 90u);
}

TEST(Engine, RunUntilWithNoRunnableEventsKeepsClock) {
  Engine eng;
  eng.at(100, [] {});
  eng.run_until(99);
  EXPECT_EQ(eng.now(), 0u);  // nothing executed, nothing drained
  eng.run_until(100);
  EXPECT_EQ(eng.now(), 100u);  // drained exactly at the boundary
}

TEST(Engine, RunBoundedLimitsEventCount) {
  Engine eng;
  int count = 0;
  // A self-perpetuating event: run_bounded must still terminate.
  std::function<void()> loop = [&] {
    ++count;
    eng.after(1, loop);
  };
  eng.after(1, loop);
  eng.run_bounded(25);
  EXPECT_EQ(count, 25);
}

TEST(Engine, InterleavedTimesAndInsertions) {
  // Stress the (time, seq) ordering with a deterministic pseudo-random
  // insertion pattern.
  Engine eng;
  std::vector<std::pair<Cycles, int>> fired;
  int id = 0;
  std::uint64_t x = 12345;
  for (int i = 0; i < 500; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const Cycles t = (x >> 33) % 97;
    eng.at(t, [&fired, &eng, t, me = id++] { fired.emplace_back(eng.now(), me); });
  }
  eng.run();
  ASSERT_EQ(fired.size(), 500u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
    if (fired[i - 1].first == fired[i].first) {
      EXPECT_LT(fired[i - 1].second, fired[i].second);  // FIFO within a tick
    }
  }
}

}  // namespace
}  // namespace cm::sim
