#include "apps/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace cm::apps {
namespace {

using core::Ctx;
using core::Mechanism;
using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;
  DistributedBTree bt;

  explicit World(DistributedBTree::Params p, ProcId nprocs = 16)
      : machine(eng, nprocs),
        net(eng),
        mem(machine, net),
        rt(machine, net, objects, core::CostModel::software()),
        bt(rt, &mem, p) {}
};

DistributedBTree::Params small_params(unsigned max_entries = 4,
                                      bool repl = false) {
  DistributedBTree::Params p;
  p.max_entries = max_entries;
  p.node_procs = 8;
  p.seed = 42;
  p.replication = repl;
  return p;
}

std::vector<std::uint64_t> make_keys(std::size_t n, std::uint64_t stride = 2) {
  std::vector<std::uint64_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) keys[i] = 1 + i * stride;
  return keys;
}

Task<> do_lookup(World* w, Mechanism mech, ProcId home, std::uint64_t key,
                 bool* found, std::uint64_t* val = nullptr) {
  Ctx ctx{&w->rt, home};
  *found = co_await w->bt.lookup(ctx, mech, key, val);
}

Task<> do_insert(World* w, Mechanism mech, ProcId home, std::uint64_t key,
                 std::uint64_t value, bool* fresh = nullptr) {
  Ctx ctx{&w->rt, home};
  const bool f = co_await w->bt.insert(ctx, mech, key, value);
  if (fresh != nullptr) *fresh = f;
}

// ---------------------------------------------------------------------------
// Construction / host-level logic
// ---------------------------------------------------------------------------

TEST(BTreeBuild, EmptyTreeIsAValidLeaf) {
  World w(small_params());
  EXPECT_EQ(w.bt.height(), 1u);
  EXPECT_EQ(w.bt.num_keys(), 0u);
  EXPECT_TRUE(w.bt.check_invariants());
}

TEST(BTreeBuild, BulkLoadPreservesKeysAndInvariants) {
  World w(small_params());
  const auto keys = make_keys(100);
  w.bt.bulk_load(keys);
  std::string why;
  EXPECT_TRUE(w.bt.check_invariants(&why)) << why;
  EXPECT_EQ(w.bt.keys_host(), keys);
  EXPECT_GT(w.bt.height(), 1u);
  for (const auto k : keys) EXPECT_TRUE(w.bt.contains_host(k));
  EXPECT_FALSE(w.bt.contains_host(0));
  EXPECT_FALSE(w.bt.contains_host(keys.back() + 1));
}

TEST(BTreeBuild, PaperGeometryRootHasFewChildren) {
  // 10,000 keys, branching <= 100, 2/3 fill: the paper observes a root with
  // three children ("the root node has only three children").
  DistributedBTree::Params p;
  p.max_entries = 100;
  p.node_procs = 8;
  World w(p);
  std::vector<std::uint64_t> keys(10'000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 2 * i + 2;
  w.bt.bulk_load(keys);
  EXPECT_TRUE(w.bt.check_invariants());
  EXPECT_EQ(w.bt.height(), 3u);
  EXPECT_EQ(w.bt.root_children(), 3u);
}

TEST(BTreeBuild, SmallBranchingGivesDeeperTreeWithWiderRoot) {
  // The §4.2 ablation: branching <= 10 yields a root with more children.
  DistributedBTree::Params p;
  p.max_entries = 10;
  p.node_procs = 8;
  World w(p);
  std::vector<std::uint64_t> keys(10'000);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 2 * i + 2;
  w.bt.bulk_load(keys);
  EXPECT_TRUE(w.bt.check_invariants());
  EXPECT_GT(w.bt.height(), 3u);
  EXPECT_GE(w.bt.root_children(), 4u);
}

// ---------------------------------------------------------------------------
// Simulated operations, single-threaded
// ---------------------------------------------------------------------------

class BTreeMechanism : public ::testing::TestWithParam<Mechanism> {};

TEST_P(BTreeMechanism, LookupAgreesWithOracle) {
  World w(small_params());
  w.bt.bulk_load(make_keys(60));
  for (std::uint64_t k = 0; k < 130; ++k) {
    bool found = false;
    std::uint64_t val = 0;
    sim::detach(do_lookup(&w, GetParam(), 12, k, &found, &val));
    w.eng.run();
    EXPECT_EQ(found, w.bt.contains_host(k)) << "key " << k;
    if (found) {
      EXPECT_EQ(val, k);
    }
  }
}

TEST_P(BTreeMechanism, InsertGrowsTreeThroughSplits) {
  World w(small_params(4));
  std::set<std::uint64_t> oracle;
  sim::Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t k = rng.below(10'000);
    bool fresh = false;
    sim::detach(do_insert(&w, GetParam(), 12, k, k, &fresh));
    w.eng.run();
    EXPECT_EQ(fresh, oracle.insert(k).second);
  }
  std::string why;
  EXPECT_TRUE(w.bt.check_invariants(&why)) << why;
  const auto keys = w.bt.keys_host();
  EXPECT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
  EXPECT_GT(w.bt.height(), 2u);  // fanout 4 + 300 keys forces root splits
}

TEST_P(BTreeMechanism, AscendingInsertsStressRightmostPath) {
  World w(small_params(4));
  for (std::uint64_t k = 1; k <= 200; ++k) {
    sim::detach(do_insert(&w, GetParam(), 9, k * 10, k));
    w.eng.run();
  }
  EXPECT_TRUE(w.bt.check_invariants());
  EXPECT_EQ(w.bt.num_keys(), 200u);
}

TEST_P(BTreeMechanism, DuplicateInsertOverwritesValue) {
  World w(small_params());
  w.bt.bulk_load(make_keys(20));
  bool fresh = true;
  sim::detach(do_insert(&w, GetParam(), 9, 5, 999, &fresh));
  w.eng.run();
  EXPECT_FALSE(fresh);
  bool found = false;
  std::uint64_t val = 0;
  sim::detach(do_lookup(&w, GetParam(), 9, 5, &found, &val));
  w.eng.run();
  EXPECT_TRUE(found);
  EXPECT_EQ(val, 999u);
  EXPECT_EQ(w.bt.num_keys(), 20u);
}

INSTANTIATE_TEST_SUITE_P(All, BTreeMechanism,
                         ::testing::Values(Mechanism::kRpc,
                                           Mechanism::kMigration,
                                           Mechanism::kSharedMemory,
                                           Mechanism::kObjectMigration,
                                           Mechanism::kThreadMigration));

Task<> do_remove(World* w, Mechanism mech, ProcId home, std::uint64_t key,
                 bool* removed) {
  Ctx ctx{&w->rt, home};
  *removed = co_await w->bt.remove(ctx, mech, key);
}

TEST_P(BTreeMechanism, RemoveDeletesExactlyThePresentKeys) {
  World w(small_params());
  w.bt.bulk_load(make_keys(40));
  bool r = false;
  sim::detach(do_remove(&w, GetParam(), 12, 5, &r));  // present
  w.eng.run();
  EXPECT_TRUE(r);
  sim::detach(do_remove(&w, GetParam(), 12, 5, &r));  // already gone
  w.eng.run();
  EXPECT_FALSE(r);
  sim::detach(do_remove(&w, GetParam(), 12, 4, &r));  // never existed
  w.eng.run();
  EXPECT_FALSE(r);
  EXPECT_EQ(w.bt.num_keys(), 39u);
  EXPECT_FALSE(w.bt.contains_host(5));
  EXPECT_TRUE(w.bt.check_invariants());
}

TEST_P(BTreeMechanism, InsertRemoveRoundTrip) {
  World w(small_params(4));
  std::set<std::uint64_t> oracle;
  sim::Rng rng(21);
  for (int i = 0; i < 250; ++i) {
    const std::uint64_t k = 1 + rng.below(400);
    if (rng.chance(0.6)) {
      bool fresh = false;
      sim::detach(do_insert(&w, GetParam(), 12, k, k, &fresh));
      w.eng.run();
      EXPECT_EQ(fresh, oracle.insert(k).second);
    } else {
      bool removed = false;
      sim::detach(do_remove(&w, GetParam(), 12, k, &removed));
      w.eng.run();
      EXPECT_EQ(removed, oracle.erase(k) > 0);
    }
  }
  std::string why;
  ASSERT_TRUE(w.bt.check_invariants(&why)) << why;
  const auto keys = w.bt.keys_host();
  EXPECT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
}

TEST(BTreeRemove, CanEmptyTheTree) {
  World w(small_params(4));
  const auto keys = make_keys(30);
  w.bt.bulk_load(keys);
  bool r = false;
  for (const auto k : keys) {
    sim::detach(do_remove(&w, Mechanism::kMigration, 12, k, &r));
    w.eng.run();
    EXPECT_TRUE(r);
  }
  EXPECT_EQ(w.bt.num_keys(), 0u);
  EXPECT_TRUE(w.bt.check_invariants());
  // The emptied tree still accepts new keys.
  sim::detach(do_insert(&w, Mechanism::kMigration, 12, 7, 7));
  w.eng.run();
  EXPECT_TRUE(w.bt.contains_host(7));
}

// ---------------------------------------------------------------------------
// Concurrency properties
// ---------------------------------------------------------------------------

Task<> op_stream(World* w, Mechanism mech, ProcId home, std::uint64_t seed,
                 int nops, std::uint64_t key_space,
                 std::set<std::uint64_t>* inserted, int* bad_lookups) {
  Ctx ctx{&w->rt, home};
  sim::Rng rng(seed);
  for (int i = 0; i < nops; ++i) {
    const std::uint64_t key = 1 + rng.below(key_space);
    if (rng.chance(0.5)) {
      (void)co_await w->bt.insert(ctx, mech, key, key);
      inserted->insert(key);
    } else {
      std::uint64_t val = 0;
      const bool found = co_await w->bt.lookup(ctx, mech, key, &val);
      if (found && val != key) ++*bad_lookups;
    }
  }
}

struct ConcurrencyCase {
  Mechanism mech;
  std::uint64_t seed;
  bool replication;
};

class BTreeConcurrency : public ::testing::TestWithParam<ConcurrencyCase> {};

TEST_P(BTreeConcurrency, RandomStreamsConvergeToOracle) {
  const auto c = GetParam();
  World w(small_params(4, c.replication));
  const auto bulk = make_keys(40, 4);
  w.bt.bulk_load(bulk);

  constexpr int kThreads = 8;
  std::set<std::uint64_t> inserted[kThreads];
  int bad = 0;
  for (int t = 0; t < kThreads; ++t) {
    sim::detach(op_stream(&w, c.mech, static_cast<ProcId>(8 + t),
                          c.seed * 100 + t, 60, 500, &inserted[t], &bad));
  }
  w.eng.run();

  EXPECT_EQ(bad, 0) << "lookup returned a value that was never stored";
  std::string why;
  ASSERT_TRUE(w.bt.check_invariants(&why)) << why;

  std::set<std::uint64_t> oracle(bulk.begin(), bulk.end());
  for (const auto& s : inserted) oracle.insert(s.begin(), s.end());
  const auto keys = w.bt.keys_host();
  ASSERT_EQ(keys.size(), oracle.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), oracle.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BTreeConcurrency,
    ::testing::Values(ConcurrencyCase{Mechanism::kRpc, 1, false},
                      ConcurrencyCase{Mechanism::kRpc, 2, true},
                      ConcurrencyCase{Mechanism::kMigration, 3, false},
                      ConcurrencyCase{Mechanism::kMigration, 4, true},
                      ConcurrencyCase{Mechanism::kMigration, 5, true},
                      ConcurrencyCase{Mechanism::kSharedMemory, 6, false},
                      ConcurrencyCase{Mechanism::kSharedMemory, 7, false},
                      ConcurrencyCase{Mechanism::kRpc, 8, false},
                      ConcurrencyCase{Mechanism::kMigration, 9, false},
                      ConcurrencyCase{Mechanism::kObjectMigration, 10, false},
                      ConcurrencyCase{Mechanism::kObjectMigration, 11, false},
                      ConcurrencyCase{Mechanism::kThreadMigration, 12, false}));

Task<> partition_stream(World* w, Mechanism mech, ProcId home, unsigned tid,
                        unsigned nthreads, int nops,
                        std::set<std::uint64_t>* oracle, int* errors) {
  Ctx ctx{&w->rt, home};
  sim::Rng rng(5000 + tid);
  for (int i = 0; i < nops; ++i) {
    // Each thread owns the keys congruent to tid (mod nthreads), so its
    // private oracle stays exact under full concurrency.
    const std::uint64_t key = 1 + tid + nthreads * rng.below(60);
    if (rng.chance(0.55)) {
      const bool fresh = co_await w->bt.insert(ctx, mech, key, key);
      if (fresh != oracle->insert(key).second) ++*errors;
    } else {
      const bool removed = co_await w->bt.remove(ctx, mech, key);
      if (removed != (oracle->erase(key) > 0)) ++*errors;
    }
  }
}

class BTreeConcurrentRemoves : public ::testing::TestWithParam<Mechanism> {};

TEST_P(BTreeConcurrentRemoves, DisjointPartitionsStayExact) {
  World w(small_params(4));
  constexpr unsigned kThreads = 6;
  std::set<std::uint64_t> oracle[kThreads];
  int errors = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(partition_stream(&w, GetParam(),
                                 static_cast<ProcId>(8 + t), t, kThreads,
                                 80, &oracle[t], &errors));
  }
  w.eng.run();
  EXPECT_EQ(errors, 0) << "insert/remove return values disagreed with the "
                          "per-partition oracle";
  std::string why;
  ASSERT_TRUE(w.bt.check_invariants(&why)) << why;
  std::set<std::uint64_t> all;
  for (const auto& o : oracle) all.insert(o.begin(), o.end());
  const auto keys = w.bt.keys_host();
  EXPECT_EQ(keys.size(), all.size());
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), all.begin()));
}

INSTANTIATE_TEST_SUITE_P(All, BTreeConcurrentRemoves,
                         ::testing::Values(Mechanism::kRpc,
                                           Mechanism::kMigration,
                                           Mechanism::kSharedMemory));

TEST(BTreeSemantics, MechanismsProduceIdenticalTrees) {
  // The annotation must not change results (paper §3.1): the same seeded
  // concurrent workload leaves the same key set under every mechanism.
  auto final_keys = [](Mechanism mech) {
    World w(small_params(4));
    w.bt.bulk_load(make_keys(30, 3));
    std::set<std::uint64_t> sink[4];
    int bad = 0;
    for (int t = 0; t < 4; ++t) {
      sim::detach(op_stream(&w, mech, static_cast<ProcId>(8 + t), 77 + t, 40,
                            300, &sink[t], &bad));
    }
    w.eng.run();
    EXPECT_TRUE(w.bt.check_invariants());
    return w.bt.keys_host();
  };
  const auto rpc = final_keys(Mechanism::kRpc);
  const auto mig = final_keys(Mechanism::kMigration);
  const auto sm = final_keys(Mechanism::kSharedMemory);
  EXPECT_EQ(rpc, mig);
  EXPECT_EQ(rpc, sm);
}

TEST(BTreeTraffic, MigrationSendsFewerMessagesThanRpc) {
  auto messages = [](Mechanism mech) {
    World w(small_params(8));
    w.bt.bulk_load(make_keys(200));
    bool found = false;
    for (std::uint64_t k = 0; k < 40; ++k) {
      sim::detach(do_lookup(&w, mech, 12, 1 + 2 * k, &found));
      w.eng.run();
    }
    return w.net.stats().messages;
  };
  EXPECT_LT(messages(Mechanism::kMigration), messages(Mechanism::kRpc));
}

TEST(BTreeReplication, RootReplicaCutsRootTraffic) {
  auto root_home_busy = [](bool repl) {
    World w(small_params(8, repl));
    w.bt.bulk_load(make_keys(200));
    bool found = false;
    for (std::uint64_t k = 0; k < 30; ++k) {
      sim::detach(do_lookup(&w, Mechanism::kMigration, 12, 1 + 2 * k, &found));
      w.eng.run();
    }
    return w.rt.stats().migrations;
  };
  // With the root replicated, descents skip the migration to the root.
  EXPECT_LT(root_home_busy(true), root_home_busy(false));
}

TEST(BTreeReplication, RootSplitInvalidatesAndRebinds) {
  World w(small_params(3, true));
  // Grow from empty through several root splits under replication; the
  // interleaved lookups populate replicas (reads use them; updates descend
  // via the primary), which the root changes must then invalidate.
  bool found = false;
  for (std::uint64_t k = 1; k <= 60; ++k) {
    sim::detach(do_insert(&w, Mechanism::kMigration, 9, k * 7, k));
    w.eng.run();
    sim::detach(do_lookup(&w, Mechanism::kMigration, 10 + (k % 4), k * 7,
                          &found));
    w.eng.run();
    EXPECT_TRUE(found);
  }
  EXPECT_TRUE(w.bt.check_invariants());
  EXPECT_GT(w.bt.height(), 2u);
  EXPECT_GT(w.rt.stats().replica_invalidations, 0u);
  // Lookups after the rebinds still work.
  found = false;
  sim::detach(do_lookup(&w, Mechanism::kMigration, 10, 7, &found));
  w.eng.run();
  EXPECT_TRUE(found);
}

TEST(BTreeDeterminism, FixedSeedsGiveIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    World w(small_params(4));
    w.bt.bulk_load(make_keys(30));
    std::set<std::uint64_t> sink[3];
    int bad = 0;
    for (int t = 0; t < 3; ++t) {
      sim::detach(op_stream(&w, Mechanism::kMigration,
                            static_cast<ProcId>(8 + t), seed + t, 30, 200,
                            &sink[t], &bad));
    }
    w.eng.run();
    return std::tuple{w.eng.now(), w.net.stats().words, w.bt.num_keys()};
  };
  EXPECT_EQ(run(5), run(5));
}

TEST(BTreeSharedMemory, UpperLevelsCacheWell) {
  // Read-only traversals replicate the root/internal lines in the
  // requester's cache: a second identical lookup misses far less.
  World w(small_params(16));
  w.bt.bulk_load(make_keys(400));
  bool found = false;
  sim::detach(do_lookup(&w, Mechanism::kSharedMemory, 12, 101, &found));
  w.eng.run();
  const auto miss1 = w.mem.stats().misses();
  sim::detach(do_lookup(&w, Mechanism::kSharedMemory, 12, 101, &found));
  w.eng.run();
  const auto miss2 = w.mem.stats().misses() - miss1;
  EXPECT_LT(miss2, miss1 / 4);
}

}  // namespace
}  // namespace cm::apps
