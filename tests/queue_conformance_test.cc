// Conformance suite for the engine's two event-queue backends.
//
// The calendar/arena hot path (QueueBackend::kCalendar) and the legacy
// binary heap of std::functions (kHeap) must implement one contract:
// events fire in (time, insertion-sequence) order, equal timestamps FIFO,
// and run()/run_until()/run_bounded()/idle()/pending() observe identical
// states. The heap is the reference implementation; these tests pit the
// two against each other on hand-built schedules, randomized schedules
// (including events scheduled from inside handlers), and the full fig2 /
// table1_2 workload configurations, where the exported metric JSON must be
// byte-identical across backends.

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/workload.h"
#include "core/metrics.h"
#include "sim/engine.h"
#include "sim/event_queue.h"

namespace cm::sim {
namespace {

class QueueConformance : public ::testing::TestWithParam<QueueBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, QueueConformance,
                         ::testing::Values(QueueBackend::kCalendar,
                                           QueueBackend::kHeap),
                         [](const auto& info) {
                           return info.param == QueueBackend::kCalendar
                                      ? "Calendar"
                                      : "Heap";
                         });

TEST_P(QueueConformance, EqualTimestampsFireInInsertionOrder) {
  Engine eng(GetParam());
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    eng.at(100, [&order, i] { order.push_back(i); });
  }
  eng.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(QueueConformance, InterleavedTimesStillFifoWithinATime) {
  Engine eng(GetParam());
  std::vector<std::pair<Cycles, int>> order;
  // Alternate between two timestamps so same-time events are separated by
  // other insertions — FIFO must hold per timestamp, not just globally.
  for (int i = 0; i < 32; ++i) {
    const Cycles t = (i % 2 == 0) ? 10 : 20;
    eng.at(t, [&order, t, i] { order.emplace_back(t, i); });
  }
  eng.run();
  ASSERT_EQ(order.size(), 32u);
  int last10 = -1;
  int last20 = -1;
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (order[k].first == 10) {
      EXPECT_LT(last10, order[k].second);
      last10 = order[k].second;
      EXPECT_LT(k, 16u);  // all t=10 events precede all t=20 events
    } else {
      EXPECT_LT(last20, order[k].second);
      last20 = order[k].second;
    }
  }
}

TEST_P(QueueConformance, EventsScheduledFromHandlersKeepOrdering) {
  Engine eng(GetParam());
  std::vector<int> order;
  eng.at(10, [&] {
    order.push_back(0);
    eng.at(10, [&] { order.push_back(1); });  // same time, scheduled later
    eng.after(5, [&] { order.push_back(3); });
  });
  eng.at(10, [&] { order.push_back(2); });  // pre-scheduled, earlier seq...
  eng.run();
  // ...but seq 2's handler-scheduled sibling (seq for push 1) is later
  // still, so: 0 (first at 10), 2 (second at 10), 1 (third at 10), 3 (15).
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 3);
}

// A deterministic xorshift so the "random" schedules are identical across
// both backends and across runs.
struct Rand {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

struct Fired {
  Cycles t;
  int id;
  bool operator==(const Fired&) const = default;
};

// Drive one engine through a randomized schedule: a seed set of events, a
// fraction of which schedule follow-up events (some at the current time,
// some ahead) from inside their handlers. Interleave run_until /
// run_bounded and snapshot (now, pending, idle) at every checkpoint.
struct Observed {
  std::vector<Fired> fired;
  std::vector<std::tuple<Cycles, std::size_t, bool>> checkpoints;
};

Observed drive(QueueBackend backend, std::uint64_t seed) {
  Engine eng(backend);
  Observed obs;
  Rand rng{seed};
  int next_id = 0;
  // Self-referential scheduling needs a stable callable; recursion depth is
  // bounded by `budget`.
  struct Spawner {
    Engine* eng;
    Observed* obs;
    Rand* rng;
    int* next_id;
    void spawn(int budget) const {
      const int id = (*next_id)++;
      const Cycles t = eng->now() + (rng->next() % 400);
      eng->at(t, [this, id, budget] {
        obs->fired.push_back({eng->now(), id});
        if (budget > 0 && rng->next() % 4 == 0) spawn(budget - 1);
        if (budget > 0 && rng->next() % 8 == 0) {
          // Same-time follow-up: lands at now() with a later seq.
          const int fid = (*next_id)++;
          eng->at(eng->now(), [this, fid] {
            obs->fired.push_back({eng->now(), fid});
          });
        }
      });
    }
  };
  Spawner sp{&eng, &obs, &rng, &next_id};
  for (int i = 0; i < 200; ++i) sp.spawn(3);
  while (!eng.idle()) {
    if (rng.next() % 2 == 0) {
      eng.run_until(eng.now() + rng.next() % 150);
    } else {
      eng.run_bounded(1 + rng.next() % 16);
    }
    obs.checkpoints.emplace_back(eng.now(), eng.pending(), eng.idle());
  }
  return obs;
}

TEST(QueueAgreement, RandomizedSchedulesAgreeAcrossBackends) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1993ull}) {
    const Observed cal = drive(QueueBackend::kCalendar, seed);
    const Observed heap = drive(QueueBackend::kHeap, seed);
    ASSERT_EQ(cal.fired.size(), heap.fired.size()) << "seed " << seed;
    EXPECT_EQ(cal.fired, heap.fired) << "seed " << seed;
    EXPECT_EQ(cal.checkpoints, heap.checkpoints) << "seed " << seed;
  }
}

TEST(QueueAgreement, LargeMonotoneBurstsAgree) {
  // Stress the calendar's refill path: bursts far beyond the current
  // horizon followed by full drains, repeated so the rung is rebuilt many
  // times with varying widths. The schedule (deltas from now) is generated
  // once and replayed into both backends.
  Engine cal(QueueBackend::kCalendar);
  Engine heap(QueueBackend::kHeap);
  std::vector<Fired> a;
  std::vector<Fired> b;
  Rand rng{99};
  int id = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<Cycles> deltas(3'000);
    for (Cycles& d : deltas) d = rng.next() % 100'000;
    for (const Cycles d : deltas) {
      const int eid = id++;
      cal.at(cal.now() + d, [&a, &cal, eid] { a.push_back({cal.now(), eid}); });
      heap.at(heap.now() + d,
              [&b, &heap, eid] { b.push_back({heap.now(), eid}); });
    }
    cal.run();
    heap.run();
    ASSERT_EQ(cal.now(), heap.now()) << "round " << round;
  }
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  EXPECT_EQ(cal.events_executed(), heap.events_executed());
}

}  // namespace
}  // namespace cm::sim

namespace cm::apps {
namespace {

// The strongest conformance statement: the full fig2 / table1_2 workloads
// produce byte-identical metric exports (every counter, cycle total, and
// checker report field) whichever backend runs them. The bench goldens pin
// the calendar backend to the committed outputs; this pins the two
// backends to each other at test speed.
std::string metrics_json(const RunStats& s, const char* label) {
  core::MetricsRegistry reg;
  put_run_stats(reg.record(label), s);
  return reg.to_json();
}

TEST(WorkloadAgreement, Fig2CountingConfigIsByteIdenticalAcrossBackends) {
  CountingConfig cfg;
  cfg.scheme = core::Scheme{core::Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.window = Window{5'000, 40'000};
  cfg.queue_backend = sim::QueueBackend::kCalendar;
  const RunStats cal = run_counting(cfg);
  cfg.queue_backend = sim::QueueBackend::kHeap;
  const RunStats heap = run_counting(cfg);
  EXPECT_EQ(metrics_json(cal, "fig2"), metrics_json(heap, "fig2"));
  EXPECT_EQ(cal.events_executed, heap.events_executed);
  EXPECT_EQ(cal.completed_at, heap.completed_at);
}

TEST(WorkloadAgreement, Table12BTreeWithCheckerIsByteIdenticalAcrossBackends) {
  BTreeConfig cfg;
  cfg.scheme = core::Scheme{core::Mechanism::kRpc, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 500;
  cfg.window = Window{5'000, 30'000};
  cfg.check = true;  // checker reports must agree byte-for-byte too
  cfg.queue_backend = sim::QueueBackend::kCalendar;
  const RunStats cal = run_btree(cfg);
  cfg.queue_backend = sim::QueueBackend::kHeap;
  const RunStats heap = run_btree(cfg);
  EXPECT_EQ(metrics_json(cal, "table1_2"), metrics_json(heap, "table1_2"));
  EXPECT_EQ(cal.btree_digest, heap.btree_digest);
  EXPECT_EQ(cal.check_violations.size(), heap.check_violations.size());
}

}  // namespace
}  // namespace cm::apps
