#include "shmem/cache.h"

#include <gtest/gtest.h>

#include "shmem/addr.h"

namespace cm::shmem {
namespace {

TEST(AddrHelpers, LineAndHomeExtraction) {
  GlobalHeap heap(8);
  const Addr a = heap.alloc(3, 100);
  EXPECT_EQ(home_of_addr(a), 3u);
  EXPECT_EQ(home_of_line(line_of(a)), 3u);
  EXPECT_EQ(a & (kLineBytes - 1), 0u);  // line-aligned
}

TEST(AddrHelpers, AllocationsDoNotShareLines) {
  GlobalHeap heap(4);
  const Addr a = heap.alloc(0, 1);
  const Addr b = heap.alloc(0, 1);
  EXPECT_NE(line_of(a), line_of(b));
}

TEST(AddrHelpers, LinesTouched) {
  EXPECT_EQ(lines_touched(0, 0), 0u);
  EXPECT_EQ(lines_touched(0, 1), 1u);
  EXPECT_EQ(lines_touched(0, 16), 1u);
  EXPECT_EQ(lines_touched(0, 17), 2u);
  EXPECT_EQ(lines_touched(8, 16), 2u);  // straddles a boundary
  EXPECT_EQ(lines_touched(0, 160), 10u);
}

TEST(Cache, MissesWhenEmpty) {
  Cache c;
  EXPECT_EQ(c.lookup(123), LineState::kInvalid);
}

TEST(Cache, InstallThenHit) {
  Cache c;
  EXPECT_FALSE(c.install(123, LineState::kShared).has_value());
  EXPECT_EQ(c.lookup(123), LineState::kShared);
  EXPECT_EQ(c.occupancy(), 1u);
}

TEST(Cache, SetStateTransitions) {
  Cache c;
  c.install(5, LineState::kShared);
  EXPECT_TRUE(c.set_state(5, LineState::kModified));
  EXPECT_EQ(c.lookup(5), LineState::kModified);
  EXPECT_TRUE(c.set_state(5, LineState::kInvalid));
  EXPECT_EQ(c.lookup(5), LineState::kInvalid);
  EXPECT_EQ(c.occupancy(), 0u);
  EXPECT_FALSE(c.set_state(999, LineState::kShared));  // absent line
}

TEST(Cache, GeometryMatchesPaper) {
  Cache c;  // defaults: 64 KB, 16-byte lines, 2-way
  EXPECT_EQ(c.num_sets(), 64u * 1024 / 16 / 2);
}

TEST(Cache, ConflictEvictsLruWay) {
  CacheParams p{.size_bytes = 64, .associativity = 2};  // 2 sets, 2 ways
  Cache c(p);
  // Lines 0, 2, 4 all map to set 0.
  c.install(0, LineState::kShared);
  c.install(2, LineState::kModified);
  c.touch(0);  // 2 is now LRU
  auto ev = c.install(4, LineState::kShared);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 2u);
  EXPECT_TRUE(ev->dirty);  // was Modified
  EXPECT_EQ(c.lookup(0), LineState::kShared);
  EXPECT_EQ(c.lookup(2), LineState::kInvalid);
  EXPECT_EQ(c.lookup(4), LineState::kShared);
}

TEST(Cache, CleanEvictionIsNotDirty) {
  CacheParams p{.size_bytes = 32, .associativity = 1};  // 2 sets, direct-mapped
  Cache c(p);
  c.install(0, LineState::kShared);
  auto ev = c.install(2, LineState::kShared);  // conflicts with 0
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->line, 0u);
  EXPECT_FALSE(ev->dirty);
}

TEST(Cache, DisjointSetsDoNotConflict) {
  CacheParams p{.size_bytes = 64, .associativity = 2};  // 2 sets
  Cache c(p);
  EXPECT_FALSE(c.install(0, LineState::kShared).has_value());
  EXPECT_FALSE(c.install(1, LineState::kShared).has_value());  // set 1
  EXPECT_FALSE(c.install(2, LineState::kShared).has_value());  // set 0 way 2
  EXPECT_FALSE(c.install(3, LineState::kShared).has_value());
  EXPECT_EQ(c.occupancy(), 4u);
  EXPECT_TRUE(c.install(4, LineState::kShared).has_value());  // now full
}

// Property: a cache never holds more lines than its capacity, and occupancy
// equals installs minus evictions minus invalidations.
TEST(Cache, OccupancyNeverExceedsCapacity) {
  CacheParams p{.size_bytes = 256, .associativity = 2};  // 16 lines
  Cache c(p);
  std::uint64_t evictions = 0;
  for (Line l = 0; l < 1000; ++l) {
    if (c.install(l, LineState::kShared)) ++evictions;
    EXPECT_LE(c.occupancy(), 16u);
  }
  EXPECT_EQ(c.occupancy(), 1000 - evictions);
}

}  // namespace
}  // namespace cm::shmem
