// The checker's two meta-guarantees over whole workloads:
//  1. Zero perturbation — a run with the checker installed is bit-identical
//     to the same run without it (same completion time, same traffic, same
//     application end state), exactly like the tracer's guarantee.
//  2. Deterministic reports — two same-seed checked runs produce
//     byte-identical check reports.
// Plus the checked soaks: the real system under message loss, duplication
// and the distributed locator reports zero violations. When CM_CHECK_REPORT
// is set (the CI sanitize job does), the soak reports are written as JSON
// artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/workload.h"
#include "check/report.h"
#include "core/mobile.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm::apps {
namespace {

using core::Mechanism;
using core::Scheme;

net::FaultPlan loss_plan(double rate) {
  net::FaultPlan plan;
  plan.rates.drop = rate;
  plan.rates.duplicate = rate / 2;
  plan.rates.delay = rate;
  plan.seed = 0xc4a05;
  return plan;
}

CountingConfig counting_cfg(Mechanism mech) {
  CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 25;
  return cfg;
}

BTreeConfig btree_cfg(Mechanism mech) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 25;
  return cfg;
}

std::string report_of(const RunStats& r) {
  return check::check_report_json(r.check, r.check_violations);
}

// Write a soak's check report where CI can pick it up as an artifact.
// CM_CHECK_REPORT names a path prefix; each soak appends its own suffix.
void maybe_write_report(const RunStats& r, const char* suffix) {
  const char* prefix = std::getenv("CM_CHECK_REPORT");
  if (prefix == nullptr) return;
  const std::string path = std::string(prefix) + "." + suffix + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << path;
  const std::string json = report_of(r);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Zero perturbation
// ---------------------------------------------------------------------------

TEST(CheckDeterminism, CountingRunIsUnperturbedUnderMigration) {
  const RunStats off = run_counting(counting_cfg(Mechanism::kMigration));

  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  EXPECT_EQ(on.completed_at, off.completed_at);
  EXPECT_EQ(on.net.messages, off.net.messages);
  EXPECT_EQ(on.net.words, off.net.words);
  EXPECT_EQ(on.total_exited, off.total_exited);
  EXPECT_EQ(on.runtime.breakdown.total(), off.runtime.breakdown.total());
  EXPECT_TRUE(on.step_property);

  ASSERT_TRUE(on.checker_enabled);
  EXPECT_FALSE(off.checker_enabled);
  EXPECT_EQ(on.check.total_violations, 0u);
  EXPECT_GT(on.check.delivers, 0u);   // happens-before edges really tracked
  EXPECT_GT(on.check.accesses, 0u);   // locality really checked
  EXPECT_TRUE(on.check.finalized);
}

TEST(CheckDeterminism, BTreeRunIsUnperturbedUnderRpc) {
  const RunStats off = run_btree(btree_cfg(Mechanism::kRpc));

  BTreeConfig cfg = btree_cfg(Mechanism::kRpc);
  cfg.check = true;
  const RunStats on = run_btree(cfg);

  EXPECT_EQ(on.completed_at, off.completed_at);
  EXPECT_EQ(on.net.messages, off.net.messages);
  EXPECT_EQ(on.btree_keys, off.btree_keys);
  EXPECT_EQ(on.btree_digest, off.btree_digest);
  EXPECT_TRUE(on.invariants_ok);
  EXPECT_EQ(on.check.total_violations, 0u);
  EXPECT_GT(on.check.calls, 0u);      // replied-exactly-once windows opened
  EXPECT_EQ(on.check.calls, on.check.replies);
}

TEST(CheckDeterminism, SharedMemoryRunChecksCoherenceDirectory) {
  const RunStats off = run_counting(counting_cfg(Mechanism::kSharedMemory));

  CountingConfig cfg = counting_cfg(Mechanism::kSharedMemory);
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  EXPECT_EQ(on.completed_at, off.completed_at);
  EXPECT_EQ(on.total_exited, off.total_exited);
  EXPECT_EQ(on.check.total_violations, 0u);
  EXPECT_GT(on.check.line_checks, 0u);  // directory transitions really seen
}

// ---------------------------------------------------------------------------
// Deterministic reports
// ---------------------------------------------------------------------------

TEST(CheckDeterminism, SameSeedReportsAreByteIdentical) {
  CountingConfig cfg = counting_cfg(Mechanism::kMigration);
  cfg.locator.mode = loc::Locality::kDistributed;
  cfg.faults = loss_plan(0.05);
  cfg.check = true;
  const RunStats a = run_counting(cfg);
  const RunStats b = run_counting(cfg);
  EXPECT_EQ(report_of(a), report_of(b));
  EXPECT_EQ(a.check.total_violations, 0u);
}

// ---------------------------------------------------------------------------
// Checked soaks: the honest system under stress reports nothing
// ---------------------------------------------------------------------------

TEST(CheckDeterminism, CheckedChaosSoakIsViolationFree) {
  CountingConfig plain = counting_cfg(Mechanism::kMigration);
  plain.faults = loss_plan(0.05);
  const RunStats off = run_counting(plain);

  CountingConfig cfg = plain;
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  // Unperturbed even with faults, retransmissions and dedup in play.
  EXPECT_EQ(on.completed_at, off.completed_at);
  EXPECT_EQ(on.total_exited, off.total_exited);

  EXPECT_GT(on.net.faults_dropped, 0u);
  EXPECT_GT(on.runtime.retransmits, 0u);
  EXPECT_GT(on.check.seqs_sent, 0u);       // transport invariants exercised
  EXPECT_GT(on.check.seqs_delivered, on.check.seqs_sent);  // dup deliveries
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "chaos");
}

TEST(CheckDeterminism, CheckedLocatorSoakIsViolationFree) {
  // RPC under the distributed locator: every remote call resolves through a
  // directory shard and then chases forwarding pointers on arrival.
  BTreeConfig cfg = btree_cfg(Mechanism::kRpc);
  cfg.locator.mode = loc::Locality::kDistributed;
  cfg.faults = loss_plan(0.05);
  cfg.check = true;
  const RunStats on = run_btree(cfg);

  EXPECT_EQ(on.btree_digest, run_btree([&] {
              BTreeConfig off = cfg;
              off.check = false;
              return off;
            }()).btree_digest);
  EXPECT_TRUE(on.invariants_ok);
  EXPECT_GT(on.loc.dir_queries, 0u);
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "locator");
}

TEST(CheckDeterminism, RealChainChaseIsTracedAndClean) {
  // The locator's canonical stale-hint scenario (cf. loc_test): warm proc
  // 0's hint, drag the object 1 -> 2 -> 3 leaving a two-pointer chain, then
  // call through the stale hint. The checker must see the chase, its two
  // hops, and — because the locator really does compress on arrival — no
  // kForwardCycle / kChainNotCompressed violation.
  sim::Engine eng;
  sim::Machine machine(eng, 5);
  net::ConstantNetwork net(eng);
  core::ObjectSpace objects;
  core::Runtime rt(machine, net, objects, core::CostModel::software());
  check::CheckConfig ck_cfg;
  ck_cfg.abort_on_violation = true;  // any violation should stop this test
  check::Checker ck(eng, 5, ck_cfg);
  eng.set_checker(&ck);
  loc::LocatorConfig loc_cfg;
  loc_cfg.mode = loc::Locality::kDistributed;
  loc::Locator locator(rt, loc_cfg);
  const core::ObjectId id = objects.create(1);
  core::MobileObject mob(rt, id, 16);

  auto call_from = [&](sim::ProcId p) -> sim::Task<> {
    core::Ctx ctx{&rt, p};
    (void)co_await rt.call(ctx, id, core::CallOpts{2, 2, true},
                           [&](core::Ctx& c) -> sim::Task<int> {
                             co_await rt.compute(c, 5);
                             co_return 0;
                           });
  };
  auto attract_from = [&](sim::ProcId p) -> sim::Task<> {
    core::Ctx ctx{&rt, p};
    co_await mob.attract(ctx);
  };

  sim::detach(call_from(0));  // warm proc 0's hint: object at 1
  eng.run();
  sim::detach(attract_from(2));
  eng.run();
  sim::detach(attract_from(3));
  eng.run();
  sim::detach(call_from(0));  // chases the stale hint 1 -> 2 -> 3
  eng.run();
  ck.finalize();

  EXPECT_EQ(locator.stats().bounces, 2u);
  EXPECT_GE(ck.stats().chases, 1u);
  EXPECT_EQ(ck.stats().chase_hops, 2u);
  EXPECT_GE(ck.stats().moves, 2u);
  EXPECT_EQ(ck.violations(), 0u);
}

TEST(CheckDeterminism, CheckedObjectMigrationSoakIsViolationFree) {
  // Object migration under the distributed locator: the 4-leg MOVE protocol
  // runs against directory shards while messages drop — the move-window and
  // forwarding invariants see real relocations.
  CountingConfig cfg = counting_cfg(Mechanism::kObjectMigration);
  cfg.locator.mode = loc::Locality::kDistributed;
  cfg.faults = loss_plan(0.05);
  cfg.check = true;
  const RunStats on = run_counting(cfg);

  EXPECT_EQ(on.total_exited, 16 * 25);
  EXPECT_TRUE(on.step_property);
  EXPECT_GT(on.loc.moves, 0u);
  EXPECT_GT(on.check.moves, 0u);     // move windows really opened and closed
  EXPECT_EQ(on.check.total_violations, 0u);
  maybe_write_report(on, "object-migration");
}

TEST(CheckDeterminism, AbandonedMovesAreExcusedNotGaps) {
  // Brutal loss window: MOVE legs exhaust their bounded retry budget and
  // fall back to RPC. The abandoned seqs must be excused by the checker,
  // not reported as gaps — and nothing else may trip either.
  BTreeConfig cfg = btree_cfg(Mechanism::kMigration);
  cfg.faults.rates.drop = 0.9;
  cfg.faults.window_start = 0;
  cfg.faults.window_end = 40'000;
  cfg.faults.seed = 99;
  cfg.reliable.base_timeout = 200;
  cfg.reliable.move_retry_budget = 2;
  cfg.check = true;
  const RunStats on = run_btree(cfg);

  EXPECT_TRUE(on.invariants_ok);
  EXPECT_GT(on.runtime.migration_fallbacks, 0u);
  EXPECT_GT(on.check.seqs_abandoned, 0u);
  EXPECT_EQ(on.check.total_violations, 0u);
}

}  // namespace
}  // namespace cm::apps
