// Cross-subsystem integration tests: several mechanisms, the coherence
// system, replication and mobile objects co-resident on one simulated
// machine, exercised together the way a real application would.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "apps/btree.h"
#include "apps/counting_network.h"
#include "core/adaptive.h"
#include "core/mobile.h"
#include "core/replication.h"
#include "core/runtime.h"
#include "net/mesh_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"

namespace cm {
namespace {

using core::Ctx;
using core::Mechanism;
using sim::ProcId;
using sim::Task;

// A machine hosting BOTH applications at once, on a mesh, with coherent
// memory — runtime messages and coherence traffic share the interconnect.
struct BigWorld {
  sim::Engine eng;
  sim::Machine machine;
  net::MeshNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;
  apps::CountingNetwork cn;
  apps::DistributedBTree bt;

  BigWorld()
      : machine(eng, 64),
        net(eng, 64, {}),
        mem(machine, net),
        rt(machine, net, objects, core::CostModel::software()),
        cn(rt, &mem, cn_params()),
        bt(rt, &mem, bt_params()) {}

  static apps::CountingNetwork::Params cn_params() {
    apps::CountingNetwork::Params p;
    p.width = 8;
    p.first_balancer_proc = 0;  // balancers on procs 0..23
    return p;
  }
  static apps::DistributedBTree::Params bt_params() {
    apps::DistributedBTree::Params p;
    p.max_entries = 8;
    p.node_procs = 48;  // tree nodes share procs 0..47 with the balancers
    p.replication = true;
    return p;
  }
};

Task<> mixed_worker(BigWorld* w, ProcId home, std::uint64_t seed, int rounds,
                    Mechanism mech, std::vector<long>* tokens, int* found) {
  Ctx ctx{&w->rt, home};
  sim::Rng rng(seed);
  for (int r = 0; r < rounds; ++r) {
    // Draw a loop index from the counting network, use it as a B-tree key.
    const long v = co_await w->cn.get_next(
        ctx, mech, static_cast<unsigned>(rng.below(8)));
    co_await w->rt.return_home(ctx, home, 2);
    tokens->push_back(v);
    const auto key = static_cast<std::uint64_t>(1 + v);
    (void)co_await w->bt.insert(ctx, mech, key, key);
    if (co_await w->bt.lookup(ctx, mech, key)) ++*found;
  }
}

TEST(Integration, BothAppsShareOneMachineUnderEveryMechanism) {
  for (const Mechanism mech :
       {Mechanism::kRpc, Mechanism::kMigration, Mechanism::kSharedMemory}) {
    BigWorld w;
    constexpr int kThreads = 6, kRounds = 8;
    std::vector<std::vector<long>> tokens(kThreads);
    int found = 0;
    for (int t = 0; t < kThreads; ++t) {
      sim::detach(mixed_worker(&w, static_cast<ProcId>(50 + t), 300 + t,
                               kRounds, mech, &tokens[t], &found));
    }
    w.eng.run();

    // Every inserted key was found again.
    EXPECT_EQ(found, kThreads * kRounds);
    // Counting-network tokens are exactly 0..n-1 across threads.
    std::set<long> all;
    for (const auto& v : tokens) all.insert(v.begin(), v.end());
    EXPECT_EQ(all.size(),
              static_cast<std::size_t>(kThreads * kRounds));
    EXPECT_EQ(*all.begin(), 0);
    EXPECT_EQ(*all.rbegin(), kThreads * kRounds - 1);
    EXPECT_TRUE(w.cn.has_step_property());
    // The B-tree holds exactly the token-derived keys.
    std::string why;
    EXPECT_TRUE(w.bt.check_invariants(&why)) << why;
    EXPECT_EQ(w.bt.num_keys(), all.size());
  }
}

TEST(Integration, CoherenceAndRuntimeTrafficShareTheNetwork) {
  BigWorld w;
  std::vector<long> tokens;
  int found = 0;
  sim::detach(mixed_worker(&w, 50, 1, 6, Mechanism::kSharedMemory, &tokens,
                           &found));
  sim::detach(
      mixed_worker(&w, 51, 2, 6, Mechanism::kMigration, &tokens, &found));
  w.eng.run();
  // Both traffic classes flowed over the same mesh.
  EXPECT_GT(w.net.stats().coherence_words, 0u);
  EXPECT_GT(w.net.stats().runtime_words, 0u);
  EXPECT_EQ(w.net.stats().words,
            w.net.stats().coherence_words + w.net.stats().runtime_words);
  EXPECT_EQ(found, 12);
}

TEST(Integration, MixedMechanismsAgreeOnSharedState) {
  // Three workers, each using a different mechanism, all feeding the same
  // counting network and B-tree concurrently: semantics must still hold.
  BigWorld w;
  std::vector<std::vector<long>> tokens(3);
  int found = 0;
  const Mechanism mechs[] = {Mechanism::kRpc, Mechanism::kMigration,
                             Mechanism::kSharedMemory};
  for (int t = 0; t < 3; ++t) {
    sim::detach(mixed_worker(&w, static_cast<ProcId>(55 + t), 900 + t, 10,
                             mechs[t], &tokens[t], &found));
  }
  w.eng.run();
  std::set<long> all;
  for (const auto& v : tokens) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 30u);  // exactly-once even across mixed mechanisms
  EXPECT_EQ(found, 30);
  EXPECT_TRUE(w.bt.check_invariants());
}

TEST(Integration, DeterministicEndToEnd) {
  auto run = [] {
    BigWorld w;
    std::vector<long> tokens;
    int found = 0;
    for (int t = 0; t < 4; ++t) {
      sim::detach(mixed_worker(&w, static_cast<ProcId>(52 + t), 40 + t, 6,
                               Mechanism::kMigration, &tokens, &found));
    }
    w.eng.run();
    return std::tuple{w.eng.now(), w.net.stats().words, tokens.size()};
  };
  EXPECT_EQ(run(), run());
}

// Replication, mobility and the chooser working against the same objects.
TEST(Integration, ReplicationAndMobilityCoexist) {
  sim::Engine eng;
  sim::Machine machine(eng, 8);
  net::MeshNetwork net(eng, 8, {});
  core::ObjectSpace objects;
  core::Runtime rt(machine, net, objects, core::CostModel::software());

  const core::ObjectId hot = objects.create(0);
  core::Replicated repl(rt, hot, 12);
  const core::ObjectId roving = objects.create(1);
  core::MobileObject mob(rt, roving, 8);
  core::AdaptiveChooser chooser;

  bool done = false;
  sim::detach([](core::Runtime* rt, core::Replicated* repl,
                 core::MobileObject* mob, core::AdaptiveChooser* ch,
                 bool* done) -> Task<> {
    Ctx ctx{rt, 5};
    for (int i = 0; i < 20; ++i) {
      co_await repl->ensure(ctx);  // local replica read
      ch->record(repl->primary(), ctx.proc, false);
      co_await mob->attract(ctx);  // drag the roving object here
      ch->record(mob->id(), ctx.proc, true);
    }
    *done = true;
  }(&rt, &repl, &mob, &chooser, &done));
  eng.run();

  EXPECT_TRUE(done);
  EXPECT_TRUE(repl.valid_at(5));
  EXPECT_EQ(mob.home(), 5u);
  EXPECT_EQ(mob.moves(), 1u);
  // Both objects were touched by a single processor only, so the chooser's
  // dominant-accessor rule recommends attracting each of them — correct
  // here: one move makes every later access local.
  EXPECT_EQ(chooser.recommend(repl.primary(), 8, 12),
            Mechanism::kObjectMigration);
  EXPECT_EQ(chooser.recommend(mob.id(), 8, 8),
            Mechanism::kObjectMigration);
}

}  // namespace
}  // namespace cm
