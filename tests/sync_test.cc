#include "shmem/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::shmem {
namespace {

using sim::Cycles;
using sim::ProcId;
using sim::Task;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  CoherentMemory mem;

  explicit World(ProcId nprocs)
      : machine(eng, nprocs), net(eng), mem(machine, net) {}
};

// A critical section that detects overlap: `inside` must never exceed 1.
struct CritState {
  int inside = 0;
  int max_inside = 0;
  int entries = 0;
  std::vector<ProcId> order;
};

Task<> contender(World* w, SpinLock* lock, CritState* cs, ProcId p,
                 int rounds, Cycles hold) {
  for (int i = 0; i < rounds; ++i) {
    co_await lock->acquire(p);
    cs->inside++;
    cs->max_inside = std::max(cs->max_inside, cs->inside);
    cs->entries++;
    cs->order.push_back(p);
    co_await w->machine.compute(p, hold);
    cs->inside--;
    co_await lock->release(p);
  }
}

TEST(SpinLock, UncontendedAcquireRelease) {
  World w(4);
  SpinLock lock(w.mem, 0);
  CritState cs;
  sim::detach(contender(&w, &lock, &cs, 1, 1, 10));
  w.eng.run();
  EXPECT_EQ(cs.entries, 1);
  EXPECT_FALSE(lock.held());
}

TEST(SpinLock, MutualExclusionUnderContention) {
  World w(8);
  SpinLock lock(w.mem, 0);
  CritState cs;
  for (ProcId p = 0; p < 8; ++p) {
    sim::detach(contender(&w, &lock, &cs, p, 5, 20));
  }
  w.eng.run();
  EXPECT_EQ(cs.entries, 40);
  EXPECT_EQ(cs.max_inside, 1) << "two threads inside the critical section";
  EXPECT_EQ(cs.inside, 0);
  EXPECT_FALSE(lock.held());
}

TEST(SpinLock, EveryContenderEventuallyEnters) {
  World w(8);
  SpinLock lock(w.mem, 3);
  CritState cs;
  for (ProcId p = 0; p < 8; ++p) {
    sim::detach(contender(&w, &lock, &cs, p, 1, 5));
  }
  w.eng.run();
  std::vector<int> per_proc(8, 0);
  for (ProcId p : cs.order) per_proc[p]++;
  for (int c : per_proc) EXPECT_EQ(c, 1);
}

TEST(SpinLock, ContentionGeneratesCoherenceTraffic) {
  // The paper's key bandwidth observation: a contended lock handoff costs
  // O(spinners) protocol messages.
  World w1(2);
  SpinLock l1(w1.mem, 0);
  CritState c1;
  sim::detach(contender(&w1, &l1, &c1, 1, 4, 20));
  w1.eng.run();
  const auto solo_words = w1.net.stats().words;

  World w2(8);
  SpinLock l2(w2.mem, 0);
  CritState c2;
  for (ProcId p = 0; p < 8; ++p) sim::detach(contender(&w2, &l2, &c2, p, 4, 20));
  w2.eng.run();
  const auto contended_words = w2.net.stats().words;
  EXPECT_GT(contended_words, 4 * solo_words);
}

Task<> seq_reader(World* w, SeqLock* sl, Addr payload, ProcId p, int rounds,
                  int* consistent, int* retries) {
  for (int i = 0; i < rounds; ++i) {
    for (;;) {
      const auto v = co_await sl->begin_read(p);
      co_await w->mem.read(p, payload, 32);
      if (co_await sl->validate(p, v)) break;
      ++*retries;
    }
    ++*consistent;
  }
}

Task<> seq_writer(World* w, SpinLock* guard, SeqLock* sl, Addr payload,
                  ProcId p, int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await guard->acquire(p);
    co_await sl->begin_write(p);
    co_await w->mem.write(p, payload, 32);
    co_await w->machine.compute(p, 30);
    co_await sl->end_write(p);
    co_await guard->release(p);
    co_await w->machine.compute(p, 100);  // let readers through
  }
}

TEST(SeqLock, ReadersCompleteAlongsideWriters) {
  World w(6);
  SpinLock guard(w.mem, 0);
  SeqLock sl(w.mem, 0);
  const Addr payload = w.mem.alloc(0, 32);
  int consistent = 0, retries = 0;
  for (ProcId p = 1; p < 5; ++p) {
    sim::detach(seq_reader(&w, &sl, payload, p, 10, &consistent, &retries));
  }
  sim::detach(seq_writer(&w, &guard, &sl, payload, 5, 8));
  w.eng.run();
  EXPECT_EQ(consistent, 40);
  EXPECT_EQ(sl.version() % 2, 0u);
  EXPECT_EQ(sl.version(), 16u);  // 8 writes, two bumps each
}

TEST(SeqLock, PureReadersHitInCache) {
  // Read-shared data: after the first miss, repeated seqlock reads are
  // local — the "automatic replication" benefit of shared memory.
  World w(4);
  SeqLock sl(w.mem, 0);
  const Addr payload = w.mem.alloc(0, 32);
  int consistent = 0, retries = 0;
  sim::detach(seq_reader(&w, &sl, payload, 2, 20, &consistent, &retries));
  w.eng.run();
  EXPECT_EQ(consistent, 20);
  EXPECT_EQ(retries, 0);
  // 3 lines (version + 2 payload) missed once each; everything else hit.
  EXPECT_EQ(w.mem.stats().read_misses, 3u);
  EXPECT_GT(w.mem.stats().read_hits, 50u);
}

TEST(SeqLock, VersionStartsEven) {
  World w(2);
  SeqLock sl(w.mem, 0);
  EXPECT_EQ(sl.version(), 0u);
}

}  // namespace
}  // namespace cm::shmem
