#include "sim/task.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "sim/oneshot.h"

namespace cm::sim {
namespace {

Task<int> forty_two() { co_return 42; }

Task<int> add(int a, int b) {
  const int x = co_await forty_two();
  co_return a + b + x - 42;
}

Task<> record(std::vector<int>* out, int v) {
  out->push_back(v);
  co_return;
}

TEST(Task, ReturnsValueThroughAwait) {
  bool done = false;
  int result = 0;
  auto runner = [](bool* d, int* r) -> Task<> {
    *r = co_await add(1, 2);
    *d = true;
  };
  Task<> t = runner(&done, &result);
  t.start();
  EXPECT_TRUE(done);
  EXPECT_EQ(result, 3);
  EXPECT_TRUE(t.done());
}

TEST(Task, LazyUntilStartedOrAwaited) {
  std::vector<int> out;
  Task<> t = record(&out, 7);
  EXPECT_TRUE(out.empty());  // not started yet
  t.start();
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(Task, DetachRunsToCompletion) {
  std::vector<int> out;
  detach(record(&out, 1));
  detach(record(&out, 2));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
}

Task<int> thrower() {
  throw std::runtime_error("boom");
  co_return 0;  // unreachable; makes this a coroutine
}

Task<> catcher(bool* caught) {
  try {
    (void)co_await thrower();
  } catch (const std::runtime_error&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsPropagateToAwaiter) {
  bool caught = false;
  Task<> t = catcher(&caught);
  t.start();
  EXPECT_TRUE(caught);
}

Task<> sleeper(Engine* eng, Cycles d, Cycles* woke_at) {
  co_await suspend_to([eng, d](std::coroutine_handle<> h) {
    eng->after(d, [h] { h.resume(); });
  });
  *woke_at = eng->now();
}

TEST(Task, SuspendToResumesViaEngine) {
  Engine eng;
  Cycles woke = 0;
  Task<> t = sleeper(&eng, 25, &woke);
  t.start();
  EXPECT_FALSE(t.done());
  eng.run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(woke, 25u);
}

Task<> nested_sleeps(Engine* eng, std::vector<Cycles>* log) {
  for (int i = 0; i < 3; ++i) {
    co_await suspend_to([eng](std::coroutine_handle<> h) {
      eng->after(10, [h] { h.resume(); });
    });
    log->push_back(eng->now());
  }
}

TEST(Task, RepeatedSuspension) {
  Engine eng;
  std::vector<Cycles> log;
  Task<> t = nested_sleeps(&eng, &log);
  t.start();
  eng.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 20, 30}));
}

Task<> await_oneshot(OneShot<int> os, int* out) { *out = co_await os.get(); }

TEST(OneShot, WakesWaiterOnSet) {
  Engine eng;
  OneShot<int> os;
  int out = 0;
  Task<> t = await_oneshot(os, &out);
  t.start();
  EXPECT_FALSE(t.done());
  eng.after(5, [os] { os.set(99); });
  eng.run();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 99);
}

TEST(OneShot, AlreadySetDoesNotSuspend) {
  OneShot<int> os;
  os.set(5);
  int out = 0;
  Task<> t = await_oneshot(os, &out);
  t.start();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(out, 5);
}

TEST(OneShot, ReadyReflectsState) {
  OneShot<Unit> os;
  EXPECT_FALSE(os.ready());
  os.set(Unit{});
  EXPECT_TRUE(os.ready());
}

// Two threads rendezvous through a pair of one-shots; checks symmetric
// transfer does not lose either continuation.
Task<> ping(OneShot<int> in, OneShot<int> out, std::vector<int>* log) {
  out.set(1);
  log->push_back(co_await in.get());
}
Task<> pong(OneShot<int> in, OneShot<int> out, std::vector<int>* log) {
  log->push_back(co_await in.get());
  out.set(2);
}

TEST(OneShot, PingPongRendezvous) {
  std::vector<int> log;
  OneShot<int> a, b;
  Task<> t2 = pong(a, b, &log);
  t2.start();  // waits on a
  Task<> t1 = ping(b, a, &log);
  t1.start();  // sets a, waits on b; pong resumes, sets b
  EXPECT_TRUE(t1.done());
  EXPECT_TRUE(t2.done());
  EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Task, MoveTransfersOwnership) {
  std::vector<int> out;
  Task<> a = record(&out, 3);
  Task<> b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing move semantics
  EXPECT_TRUE(b.valid());
  b.start();
  EXPECT_EQ(out, (std::vector<int>{3}));
}

TEST(Task, DroppingUnstartedTaskIsSafe) {
  std::vector<int> out;
  { Task<> t = record(&out, 9); }  // destroyed without running
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace cm::sim
