#include "sim/processor.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::sim {
namespace {

TEST(Processor, AcquireWhenIdleStartsImmediately) {
  ProcessorFile f(1);
  EXPECT_EQ(f.acquire(0, 100, 50), 150u);
  EXPECT_EQ(f.free_at(0), 150u);
  EXPECT_EQ(f.busy_cycles(0), 50u);
  EXPECT_EQ(f.queue_delay_cycles(0), 0u);
}

TEST(Processor, BackToBackRequestsQueueFcfs) {
  ProcessorFile f(1);
  EXPECT_EQ(f.acquire(0, 0, 100), 100u);
  EXPECT_EQ(f.acquire(0, 0, 100), 200u);   // waits behind the first
  EXPECT_EQ(f.acquire(0, 50, 100), 300u);  // still queued
  EXPECT_EQ(f.busy_cycles(0), 300u);
  EXPECT_EQ(f.queue_delay_cycles(0), 100u + 150u);
  EXPECT_EQ(f.requests(0), 3u);
}

TEST(Processor, GapLeavesCpuIdle) {
  ProcessorFile f(1);
  EXPECT_EQ(f.acquire(0, 0, 10), 10u);
  EXPECT_EQ(f.acquire(0, 100, 10), 110u);  // idle 10..100
  EXPECT_EQ(f.busy_cycles(0), 20u);
}

TEST(Processor, ZeroCostAcquire) {
  ProcessorFile f(1);
  EXPECT_EQ(f.acquire(0, 5, 0), 5u);
  EXPECT_EQ(f.busy_cycles(0), 0u);
}

TEST(Processor, AccountsAreIndependent) {
  ProcessorFile f(3);
  EXPECT_EQ(f.acquire(0, 0, 10), 10u);
  EXPECT_EQ(f.acquire(2, 0, 30), 30u);
  EXPECT_EQ(f.acquire(1, 0, 20), 20u);  // no cross-account queueing
  EXPECT_EQ(f.total_busy(), 60u);
  EXPECT_EQ(f.free_at(1), 20u);
  // The view handle reads the same account.
  const ProcessorView v(f, 2);
  EXPECT_EQ(v.id(), 2u);
  EXPECT_EQ(v.busy_cycles(), 30u);
  EXPECT_EQ(v.requests(), 1u);
}

TEST(Machine, ExecChargesCpuBeforeRunning) {
  Engine eng;
  Machine m(eng, 2);
  std::vector<std::pair<ProcId, Cycles>> log;
  m.exec(0, 100, [&] { log.emplace_back(0, eng.now()); });
  m.exec(0, 50, [&] { log.emplace_back(0, eng.now()); });   // queues
  m.exec(1, 30, [&] { log.emplace_back(1, eng.now()); });   // parallel
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<ProcId, Cycles>{1, 30}));
  EXPECT_EQ(log[1], (std::pair<ProcId, Cycles>{0, 100}));
  EXPECT_EQ(log[2], (std::pair<ProcId, Cycles>{0, 150}));
  EXPECT_EQ(m.total_busy(), 180u);
}

Task<> worker(Machine* m, ProcId p, std::vector<Cycles>* marks) {
  co_await m->compute(p, 10);
  marks->push_back(m->engine().now());
  co_await m->compute(p, 20);
  marks->push_back(m->engine().now());
}

TEST(Machine, ComputeAwaitableAdvancesTime) {
  Engine eng;
  Machine m(eng, 1);
  std::vector<Cycles> marks;
  detach(worker(&m, 0, &marks));
  eng.run();
  EXPECT_EQ(marks, (std::vector<Cycles>{10, 30}));
}

TEST(Machine, TwoThreadsShareOneCpuFcfs) {
  Engine eng;
  Machine m(eng, 1);
  std::vector<Cycles> a, b;
  detach(worker(&m, 0, &a));
  detach(worker(&m, 0, &b));
  eng.run();
  // a runs 0-10, b queues 10-20, a 20-40, b 40-60.
  EXPECT_EQ(a, (std::vector<Cycles>{10, 40}));
  EXPECT_EQ(b, (std::vector<Cycles>{20, 60}));
  EXPECT_EQ(m.proc(0).busy_cycles(), 60u);
}

Task<> napper(Machine* m, Cycles d, Cycles* woke) {
  co_await m->sleep(d);
  *woke = m->engine().now();
}

TEST(Machine, SleepDoesNotOccupyCpu) {
  Engine eng;
  Machine m(eng, 1);
  Cycles woke = 0;
  detach(napper(&m, 500, &woke));
  eng.run();
  EXPECT_EQ(woke, 500u);
  EXPECT_EQ(m.proc(0).busy_cycles(), 0u);
}

// Property: with N equal-cost requests arriving together, completion times
// are exactly cost, 2*cost, ..., N*cost (perfect FCFS serialisation).
class FcfsProperty : public ::testing::TestWithParam<int> {};

TEST_P(FcfsProperty, SerialisesEqualWork) {
  const int n = GetParam();
  ProcessorFile f(1);
  for (int i = 1; i <= n; ++i) {
    EXPECT_EQ(f.acquire(0, 0, 7), static_cast<Cycles>(7 * i));
  }
  EXPECT_EQ(f.busy_cycles(0), static_cast<Cycles>(7 * n));
}

INSTANTIATE_TEST_SUITE_P(Counts, FcfsProperty, ::testing::Values(1, 2, 8, 64, 1000));

}  // namespace
}  // namespace cm::sim
