#include "net/faulty_net.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/constant_net.h"
#include "sim/engine.h"

namespace cm::net {
namespace {

struct World {
  sim::Engine eng;
  ConstantNetwork inner;
  World() : inner(eng) {}
};

TEST(FaultPlan, ActiveDetection) {
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  plan.rates.drop = 0.1;
  EXPECT_TRUE(plan.active());

  FaultPlan per_link;
  per_link.link_overrides[{0, 1}] = FaultRates{.drop = 1.0};
  EXPECT_TRUE(per_link.active());
  per_link.link_overrides[{0, 1}] = FaultRates{};
  EXPECT_FALSE(per_link.active());

  FaultPlan nic;
  nic.nic_fail_at[3] = 100;
  EXPECT_TRUE(nic.active());
}

TEST(FaultyNetwork, InactivePlanForwardsEverything) {
  World w;
  FaultyNetwork net(w.eng, w.inner, FaultPlan{});
  int delivered = 0;
  for (int i = 0; i < 100; ++i) {
    net.send(0, 1, 4, Traffic::kRuntime, [&] { ++delivered; });
  }
  w.eng.run();
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(net.stats().messages, 100u);
  EXPECT_EQ(net.stats().faults_dropped, 0u);
  // Timing queries pass straight through.
  EXPECT_EQ(net.latency(0, 1, 4), w.inner.latency(0, 1, 4));
}

TEST(FaultyNetwork, CertainDropEatsRuntimeMessages) {
  World w;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    net.send(0, 1, 4, Traffic::kRuntime, [&] { ++delivered; });
  }
  w.eng.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.stats().faults_dropped, 10u);
  // Dropped messages never reach the wire: no traffic recorded.
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(FaultyNetwork, CoherenceTrafficUntouchedByDefault) {
  World w;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  net.send(0, 1, 4, Traffic::kCoherence, [&] { ++delivered; });
  w.eng.run();
  EXPECT_EQ(delivered, 1);

  plan.affect_coherence = true;
  FaultyNetwork net2(w.eng, w.inner, plan);
  int delivered2 = 0;
  net2.send(0, 1, 4, Traffic::kCoherence, [&] { ++delivered2; });
  w.eng.run();
  EXPECT_EQ(delivered2, 0);
}

TEST(FaultyNetwork, LoopbackNeverFaulted) {
  World w;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  net.send(2, 2, 4, Traffic::kRuntime, [&] { ++delivered; });
  w.eng.run();
  EXPECT_EQ(delivered, 1);
}

TEST(FaultyNetwork, CertainDuplicateDeliversTwice) {
  World w;
  FaultPlan plan;
  plan.rates.duplicate = 1.0;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  net.send(0, 1, 4, Traffic::kRuntime, [&] { ++delivered; });
  w.eng.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().faults_duplicated, 1u);
  EXPECT_EQ(net.stats().messages, 2u);  // the clone is real traffic
}

TEST(FaultyNetwork, CertainDelayArrivesLaterThanZeroLoadLatency) {
  World w;
  FaultPlan plan;
  plan.rates.delay = 1.0;
  plan.max_extra_delay = 100;
  FaultyNetwork net(w.eng, w.inner, plan);
  sim::Cycles arrived = 0;
  net.send(0, 1, 4, Traffic::kRuntime, [&] { arrived = w.eng.now(); });
  w.eng.run();
  EXPECT_GT(arrived, net.latency(0, 1, 4));
  EXPECT_LE(arrived, net.latency(0, 1, 4) + 100);
  EXPECT_EQ(net.stats().faults_delayed, 1u);
}

TEST(FaultyNetwork, DelayReordersAgainstLaterSend) {
  World w;
  FaultPlan plan;
  plan.link_overrides[{0, 1}] = FaultRates{.delay = 1.0};
  plan.max_extra_delay = 1000;
  FaultyNetwork net(w.eng, w.inner, plan);
  std::vector<int> order;
  net.send(0, 1, 4, Traffic::kRuntime, [&] { order.push_back(1); });
  // Second message on an un-faulted link overtakes the delayed first one.
  net.send(2, 1, 4, Traffic::kRuntime, [&] { order.push_back(2); });
  w.eng.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(FaultyNetwork, FaultWindowLimitsInjection) {
  World w;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  plan.window_start = 100;
  plan.window_end = 200;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  auto fire = [&] { net.send(0, 1, 4, Traffic::kRuntime, [&] { ++delivered; }); };
  w.eng.at(50, fire);    // before the window: delivered
  w.eng.at(150, fire);   // inside: dropped
  w.eng.at(250, fire);   // after: delivered
  w.eng.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().faults_dropped, 1u);
}

TEST(FaultyNetwork, FailStopNicEatsBothDirectionsAfterDeadline) {
  World w;
  FaultPlan plan;
  plan.nic_fail_at[1] = 100;
  FaultyNetwork net(w.eng, w.inner, plan);
  int delivered = 0;
  auto fire = [&](sim::ProcId s, sim::ProcId d) {
    net.send(s, d, 4, Traffic::kRuntime, [&] { ++delivered; });
  };
  fire(0, 1);  // t=0: NIC still alive
  w.eng.at(150, [&] {
    fire(0, 1);  // to the dead NIC
    fire(1, 0);  // from the dead NIC
    fire(0, 2);  // unrelated link still works
  });
  w.eng.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(net.stats().faults_nic_dropped, 2u);
}

TEST(FaultyNetwork, PerLinkOverrideBeatsDefaultRates) {
  World w;
  FaultPlan plan;
  plan.rates.drop = 1.0;                          // default: everything dies
  plan.link_overrides[{0, 1}] = FaultRates{};     // ...except this link
  FaultyNetwork net(w.eng, w.inner, plan);
  int ok = 0, lost = 0;
  net.send(0, 1, 4, Traffic::kRuntime, [&] { ++ok; });
  net.send(0, 2, 4, Traffic::kRuntime, [&] { ++lost; });
  w.eng.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(lost, 0);
}

TEST(FaultyNetwork, SeededRunsAreReproducible) {
  auto run = [](std::uint64_t seed) {
    World w;
    FaultPlan plan;
    plan.rates = FaultRates{.drop = 0.3, .duplicate = 0.2, .delay = 0.25};
    plan.seed = seed;
    FaultyNetwork net(w.eng, w.inner, plan);
    int delivered = 0;
    for (int i = 0; i < 500; ++i) {
      net.send(0, 1, 4, Traffic::kRuntime, [&] { ++delivered; });
    }
    w.eng.run();
    const NetStats& s = net.stats();
    return std::tuple{delivered, s.faults_dropped, s.faults_duplicated,
                      s.faults_delayed};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

}  // namespace
}  // namespace cm::net
