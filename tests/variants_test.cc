// Configuration-space corners that the main suites do not cover: short
// methods at the application level, the mesh and LimitLESS options flowing
// through the workload drivers, scheme naming, and cost-model edge sizes.
#include <gtest/gtest.h>

#include "apps/counting_network.h"
#include "apps/workload.h"
#include "core/mechanism.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm {
namespace {

using core::Mechanism;
using core::Scheme;

TEST(SchemeNaming, MatchesPaperTableLabels) {
  EXPECT_EQ((Scheme{Mechanism::kSharedMemory, false, false}).name(), "SM");
  EXPECT_EQ((Scheme{Mechanism::kRpc, true, false}).name(), "RPC w/HW");
  EXPECT_EQ((Scheme{Mechanism::kMigration, false, true}).name(),
            "CP w/repl.");
  EXPECT_EQ((Scheme{Mechanism::kMigration, true, true}).name(),
            "CP w/repl. & HW");
  EXPECT_EQ((Scheme{Mechanism::kObjectMigration, false, false}).name(),
            "OBJ");
  EXPECT_EQ((Scheme{Mechanism::kThreadMigration, false, false}).name(),
            "TM");
}

TEST(SchemeCostModel, HwFlagTogglesBothHardwareAssists) {
  const auto sw = (Scheme{Mechanism::kRpc, false, false}).cost_model();
  const auto hw = (Scheme{Mechanism::kRpc, true, false}).cost_model();
  EXPECT_FALSE(sw.hw_message);
  EXPECT_FALSE(sw.hw_oid);
  EXPECT_TRUE(hw.hw_message);
  EXPECT_TRUE(hw.hw_oid);
}

TEST(CostModelEdges, ZeroWordMessagesStillCost) {
  const auto m = core::CostModel::software();
  EXPECT_GT(m.marshal(0), 0u);
  EXPECT_GT(m.sender_total(0), 0u);
  EXPECT_GT(m.receiver_total(0, false), 0u);
  // Monotone in payload size.
  for (unsigned w = 1; w < 64; w *= 2) {
    EXPECT_LE(m.sender_total(w - 1), m.sender_total(w));
    EXPECT_LE(m.receiver_total(w - 1, true), m.receiver_total(w, true));
  }
}

TEST(CostModelEdges, NiRegisterSpillKicksInPastTenWords) {
  const auto hw = core::CostModel::software().with_hw_message();
  EXPECT_EQ(hw.copy(10), hw.copy(4));      // fits in the register file
  EXPECT_GT(hw.copy(11), hw.copy(10));     // spills
  EXPECT_GT(hw.copy(64), hw.copy(32));
}

// Short-method fast path exercised through the counting network: fewer
// server-side cycles per access, no threads created for the RPC calls.
TEST(ShortMethods, FastPathSpeedsUpRpcBalancers) {
  auto run = [](bool short_methods) {
    sim::Engine eng;
    sim::Machine machine(eng, 24 + 4);
    net::ConstantNetwork net(eng);
    core::ObjectSpace objects;
    core::Runtime rt(machine, net, objects, core::CostModel::software());
    apps::CountingNetwork::Params p;
    p.rpc_short_methods = short_methods;
    apps::CountingNetwork cn(rt, nullptr, p);
    bool done = false;
    sim::detach([](core::Runtime* rt, apps::CountingNetwork* cn,
                   bool* done) -> sim::Task<> {
      core::Ctx ctx{rt, 24};
      for (int i = 0; i < 10; ++i) {
        (void)co_await cn->get_next(ctx, Mechanism::kRpc, 0);
      }
      *done = true;
    }(&rt, &cn, &done));
    eng.run();
    EXPECT_TRUE(done);
    return std::pair{eng.now(), rt.stats().threads_created};
  };
  const auto [slow_t, slow_threads] = run(false);
  const auto [fast_t, fast_threads] = run(true);
  EXPECT_LT(fast_t, slow_t);
  EXPECT_EQ(fast_threads, 0u);
  EXPECT_GT(slow_threads, 0u);
}

// The workload drivers honour their interconnect / directory options.
TEST(WorkloadOptions, MeshAndUniformDiffer) {
  apps::CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 8;
  cfg.window = apps::Window{5'000, 30'000};
  cfg.mesh = true;
  const auto mesh = run_counting(cfg);
  cfg.mesh = false;
  const auto uniform = run_counting(cfg);
  EXPECT_GT(mesh.ops, 0);
  EXPECT_GT(uniform.ops, 0);
  // Different timing models give different schedules. In-window totals can
  // coincide (traffic tracks ops closely, and op counts may match), so
  // compare full-run signals: drain time and cumulative traffic.
  EXPECT_NE(std::pair(mesh.completed_at, mesh.net.words),
            std::pair(uniform.completed_at, uniform.net.words));
}

TEST(WorkloadOptions, LimitlessPointerBudgetAffectsSmOnly) {
  apps::BTreeConfig cfg;
  cfg.nkeys = 1'000;
  cfg.window = apps::Window{5'000, 40'000};
  cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
  cfg.limitless_pointers = 0;  // full map
  const auto full = run_btree(cfg);
  cfg.limitless_pointers = 1;
  const auto tiny = run_btree(cfg);
  EXPECT_GT(full.ops, tiny.ops);

  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.limitless_pointers = 0;
  const auto cp_full = run_btree(cfg);
  cfg.limitless_pointers = 1;
  const auto cp_tiny = run_btree(cfg);
  EXPECT_EQ(cp_full.ops, cp_tiny.ops);  // message passing: unaffected
}

TEST(WorkloadOptions, InsertRatioExtremesRun) {
  for (const double ratio : {0.0, 1.0}) {
    apps::BTreeConfig cfg;
    cfg.scheme = Scheme{Mechanism::kMigration, false, false};
    cfg.nkeys = 500;
    cfg.insert_ratio = ratio;
    cfg.window = apps::Window{5'000, 30'000};
    const auto r = run_btree(cfg);
    EXPECT_GT(r.ops, 0) << "insert ratio " << ratio;
  }
}

TEST(WorkloadStats, BandwidthAndThroughputAreConsistent) {
  apps::CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.requesters = 8;
  cfg.window = apps::Window{5'000, 50'000};
  const auto r = run_counting(cfg);
  EXPECT_EQ(r.window, 50'000u);
  EXPECT_NEAR(r.throughput_per_1000(),
              static_cast<double>(r.ops) / 50.0, 1e-9);
  EXPECT_NEAR(r.words_per_10(), static_cast<double>(r.words) / 5'000.0,
              1e-9);
  EXPECT_GE(r.runtime.remote_calls, static_cast<std::uint64_t>(r.ops));
}

}  // namespace
}  // namespace cm
