// Unit tests for the placement policy (src/policy): sampler determinism
// and parking, rebalancer moves with migration hysteresis (cooldown,
// degree-of-migration cap), bounce feedback into the adaptive chooser,
// phase-detector replication flips, observe-only mode, the named-tunable
// CLI surface, and the checker's policy invariants.
#include "policy/policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/checker.h"
#include "core/adaptive.h"
#include "core/mobile.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm::policy {
namespace {

using core::MobileObject;
using core::ObjectId;
using sim::ProcId;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  core::ObjectSpace objects;
  core::Runtime rt;

  explicit World(ProcId nprocs)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, core::CostModel::software()) {}
};

PolicyConfig fast_cfg() {
  PolicyConfig cfg;
  cfg.enabled = true;
  cfg.sample_interval = 1'000;
  cfg.global_every = 1;  // every pass is global: decisions come quickly
  cfg.idle_stop_after = 2;
  cfg.min_accesses = 4;
  return cfg;
}

/// Drive `n` profiled accesses as events at the object's home processor
/// (mirroring how apps call on_access from instance-method bodies).
void drive_accesses(World& w, PolicyEngine& pol, ObjectId id, ProcId home,
                    ProcId accessor, sim::Cycles from, int n, bool write) {
  for (int i = 0; i < n; ++i) {
    w.eng.at_on(home, from + static_cast<sim::Cycles>(i),
                [&pol, id, accessor, write] {
                  pol.on_access(id, accessor, write);
                });
  }
}

// ---------------------------------------------------------------------------
// Sampler: parks when idle, drains the engine, counts deterministically
// ---------------------------------------------------------------------------

TEST(PolicySampler, ParksWhenIdleAndCountsDeterministically) {
  auto run = [] {
    World w(4);
    PolicyConfig cfg = fast_cfg();
    PolicyEngine pol(w.rt, cfg);
    pol.start();
    w.eng.run();  // returning at all proves every sampler parked
    return pol.stats();
  };
  const PolicyStats a = run();
  const PolicyStats b = run();
  // Each of the 4 samplers ticks idle_stop_after (= 2) times, then parks.
  EXPECT_EQ(a.samples, 8u);
  // Every pass is global: 8 load reports fill the 4-entry board twice.
  EXPECT_EQ(a.load_reports, 8u);
  EXPECT_EQ(a.broadcast_rounds, 2u);
  EXPECT_EQ(a.digests, 8u);
  EXPECT_EQ(a.moves_issued, 0u);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.load_reports, b.load_reports);
  EXPECT_EQ(a.broadcast_rounds, b.broadcast_rounds);
  EXPECT_EQ(a.digests, b.digests);
}

TEST(PolicySampler, AccessRevivesParkedSampler) {
  World w(2);
  const ObjectId id = w.objects.create(1);
  MobileObject mob(w.rt, id, 8);
  PolicyConfig cfg = fast_cfg();
  cfg.rebalance = false;
  PolicyEngine pol(w.rt, cfg);
  pol.manage(id, &mob, 8, false);
  pol.start();
  // Both samplers park after 2 idle ticks (by ~2000); a lone access at
  // 10000 must revive proc 1's sampler for at least one more pass.
  drive_accesses(w, pol, id, 1, 0, 10'000, 1, /*write=*/false);
  w.eng.run();
  const PolicyStats st = pol.stats();
  EXPECT_GT(st.samples, 4u);  // 2 per proc parked + revived passes
  EXPECT_EQ(st.accesses, 1u);
  EXPECT_EQ(st.remote_accesses, 1u);
}

// ---------------------------------------------------------------------------
// Rebalancer: moves, hysteresis, cap, bounce feedback
// ---------------------------------------------------------------------------

TEST(PolicyRebalancer, MovesHotObjectToDominantRemoteAccessor) {
  World w(4);
  const ObjectId id = w.objects.create(2);
  MobileObject mob(w.rt, id, 16);
  PolicyEngine pol(w.rt, fast_cfg());
  pol.manage(id, &mob, 16, false);
  pol.start();
  drive_accesses(w, pol, id, 2, 0, 100, 8, /*write=*/false);
  w.eng.run();
  EXPECT_EQ(w.objects.home_of(id), 0u);
  EXPECT_EQ(mob.home(), 0u);
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.decisions, 1u);
  EXPECT_EQ(st.moves_issued, 1u);
  EXPECT_EQ(st.moves_completed, 1u);
  EXPECT_EQ(st.remote_accesses, 8u);
  EXPECT_EQ(st.managed, 1u);
}

TEST(PolicyRebalancer, CooldownSuppressesRepeatMovesAndRecordsRebounce) {
  World w(4);
  const ObjectId id = w.objects.create(2);
  MobileObject mob(w.rt, id, 16);
  PolicyConfig cfg = fast_cfg();
  cfg.cooldown = 1'000'000;  // nothing re-moves inside this test
  PolicyEngine pol(w.rt, cfg);
  pol.manage(id, &mob, 16, false);
  pol.start();
  // Hot from proc 0: the first global pass moves the object there.
  drive_accesses(w, pol, id, 2, 0, 100, 8, /*write=*/false);
  // Then hot from proc 1 at the new home: the move verdict repeats but the
  // cooldown suppresses it, and the immediate wish to leave again is
  // reported to the chooser as a bounce.
  drive_accesses(w, pol, id, 0, 1, 2'500, 8, /*write=*/false);
  w.eng.run();
  EXPECT_EQ(w.objects.home_of(id), 0u);  // still at the first destination
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.moves_issued, 1u);
  EXPECT_GE(st.suppressed_cooldown, 1u);
  EXPECT_EQ(st.rebounces, 1u);
  EXPECT_GT(pol.chooser().bounce_rate(id), 0.0);
}

TEST(PolicyRebalancer, DegreeOfMigrationCapsMovesPerPass) {
  World w(4);
  PolicyConfig cfg = fast_cfg();
  cfg.degree_of_migration = 1;
  cfg.min_accesses = 2;
  PolicyEngine pol(w.rt, cfg);
  std::vector<std::unique_ptr<MobileObject>> mobs;
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(w.objects.create(2));
    mobs.push_back(std::make_unique<MobileObject>(w.rt, ids.back(), 8));
    pol.manage(ids.back(), mobs.back().get(), 8, false);
  }
  pol.start();
  for (const ObjectId id : ids) {
    drive_accesses(w, pol, id, 2, 0, 100, 4, /*write=*/false);
  }
  w.eng.run();
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.decisions, 3u);
  EXPECT_EQ(st.moves_issued, 1u);
  EXPECT_EQ(st.suppressed_cap, 2u);
  unsigned moved = 0;
  for (const ObjectId id : ids) moved += w.objects.home_of(id) == 0 ? 1 : 0;
  EXPECT_EQ(moved, 1u);
}

TEST(PolicyRebalancer, ObserveOnlyDecidesButNeverActuates) {
  World w(4);
  const ObjectId id = w.objects.create(2);
  MobileObject mob(w.rt, id, 16);
  PolicyConfig cfg = fast_cfg();
  cfg.observe_only = true;
  PolicyEngine pol(w.rt, cfg);
  pol.manage(id, &mob, 16, false);
  pol.start();
  drive_accesses(w, pol, id, 2, 0, 100, 8, /*write=*/false);
  w.eng.run();
  EXPECT_EQ(w.objects.home_of(id), 2u);  // untouched
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.decisions, 1u);
  EXPECT_EQ(st.moves_issued, 0u);
  EXPECT_EQ(st.moves_completed, 0u);
}

// ---------------------------------------------------------------------------
// Phase detector: READ edge flips replication on, UPDATE edge flips it off
// ---------------------------------------------------------------------------

TEST(PolicyPhase, FlipsOnReadPhaseAndBackOnWriteBurst) {
  World w(4);
  const ObjectId id = w.objects.create(1);
  MobileObject mob(w.rt, id, 16);
  PolicyConfig cfg = fast_cfg();
  cfg.rebalance = false;
  cfg.phase_adaptive = true;
  cfg.phase_min_accesses = 8;
  cfg.update_min_writes = 2;
  PolicyEngine pol(w.rt, cfg);
  pol.manage(id, &mob, 16, /*replicable=*/true);
  pol.start();
  // Read-mostly window -> READ edge at the 1000-cycle sample.
  drive_accesses(w, pol, id, 1, 3, 100, 10, /*write=*/false);
  w.eng.at_on(1, 1'500, [&pol, id] {
    EXPECT_TRUE(pol.replicated_mode(id));
    EXPECT_NE(pol.replica_of(id), nullptr);
    EXPECT_EQ(pol.phase_of(id), PolicyEngine::Phase::kRead);
  });
  // Write burst -> UPDATE edge at the 2000-cycle sample flips it back.
  drive_accesses(w, pol, id, 1, 3, 1'600, 4, /*write=*/true);
  w.eng.run();
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.phase_read_edges, 1u);
  EXPECT_EQ(st.phase_update_edges, 1u);
  EXPECT_EQ(st.flips_on, 1u);
  EXPECT_EQ(st.flips_off, 1u);
  EXPECT_FALSE(pol.replicated_mode(id));
  EXPECT_EQ(pol.replica_of(id), nullptr);
  EXPECT_EQ(pol.phase_of(id), PolicyEngine::Phase::kUpdate);
}

TEST(PolicyPhase, ObserveOnlyTracksPhasesWithoutFlipping) {
  World w(2);
  const ObjectId id = w.objects.create(1);
  MobileObject mob(w.rt, id, 16);
  PolicyConfig cfg = fast_cfg();
  cfg.rebalance = false;
  cfg.phase_adaptive = true;
  cfg.phase_min_accesses = 8;
  cfg.observe_only = true;
  PolicyEngine pol(w.rt, cfg);
  pol.manage(id, &mob, 16, /*replicable=*/true);
  pol.start();
  drive_accesses(w, pol, id, 1, 0, 100, 10, /*write=*/false);
  w.eng.run();
  const PolicyStats st = pol.stats();
  EXPECT_EQ(st.phase_read_edges, 1u);  // edges are observed ...
  EXPECT_EQ(st.flips_on, 0u);          // ... but nothing actuates
  EXPECT_EQ(pol.phase_of(id), PolicyEngine::Phase::kRead);
  EXPECT_FALSE(pol.replicated_mode(id));
  EXPECT_EQ(pol.replica_of(id), nullptr);
}

// ---------------------------------------------------------------------------
// Satellite: the chooser's named-tunable CLI surface
// ---------------------------------------------------------------------------

TEST(PolicyTunables, SetTunableByName) {
  core::AdaptiveChooser::Tunables t;
  EXPECT_TRUE(core::set_tunable(t, "read_mostly_threshold", 0.3));
  EXPECT_DOUBLE_EQ(t.read_mostly_threshold, 0.3);
  EXPECT_TRUE(core::set_tunable(t, "dominant_accessor_share", 0.9));
  EXPECT_DOUBLE_EQ(t.dominant_accessor_share, 0.9);
  EXPECT_TRUE(core::set_tunable(t, "run_length_for_migration", 2.5));
  EXPECT_DOUBLE_EQ(t.run_length_for_migration, 2.5);
  EXPECT_TRUE(core::set_tunable(t, "frame_words_rpc_cutoff", 64));
  EXPECT_EQ(t.frame_words_rpc_cutoff, 64u);
  EXPECT_TRUE(core::set_tunable(t, "allow_shared_memory", 0.0));
  EXPECT_FALSE(t.allow_shared_memory);
  EXPECT_TRUE(core::set_tunable(t, "bounce_rate_cap", 0.25));
  EXPECT_DOUBLE_EQ(t.bounce_rate_cap, 0.25);
  EXPECT_FALSE(core::set_tunable(t, "no_such_tunable", 1.0));
}

// ---------------------------------------------------------------------------
// Checker invariants: cooldown violations and redundant flips
// ---------------------------------------------------------------------------

check::CheckConfig lenient() {
  check::CheckConfig cfg;
  cfg.abort_on_violation = false;
  return cfg;
}

TEST(PolicyChecker, FlagsMoveInsideCooldown) {
  sim::Engine eng;
  check::Checker ck(eng, 2, lenient());
  ck.on_policy_config(1'000);
  eng.at(10, [&ck] { ck.on_policy_move(7); });
  eng.at(500, [&ck] { ck.on_policy_move(7); });    // inside the cooldown
  eng.at(2'000, [&ck] { ck.on_policy_move(7); });  // outside: legal
  eng.run();
  ck.finalize();
  EXPECT_EQ(ck.stats().policy_moves, 3u);
  EXPECT_EQ(ck.count(check::Violation::kPolicyMoveInCooldown), 1u);
}

TEST(PolicyChecker, FlagsRedundantReplicationFlip) {
  sim::Engine eng;
  check::Checker ck(eng, 2, lenient());
  eng.at(10, [&ck] { ck.on_policy_flip(9, true); });
  eng.at(20, [&ck] { ck.on_policy_flip(9, false); });
  eng.at(30, [&ck] { ck.on_policy_flip(9, false); });  // no edge: redundant
  eng.run();
  ck.finalize();
  EXPECT_EQ(ck.stats().policy_flips, 3u);
  EXPECT_EQ(ck.count(check::Violation::kPolicyRedundantFlip), 1u);
}

}  // namespace
}  // namespace cm::policy
