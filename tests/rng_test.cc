#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace cm::sim {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(48), 48u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(13);
  std::vector<int> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[r.below(10)];
  for (int h : hist) {
    EXPECT_NEAR(static_cast<double>(h), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const std::vector<int> orig = v;
  r.shuffle(v.begin(), v.end());
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, BetweenFullRangeDoesNotCollapse) {
  // between(0, 2^64-1) used to compute below(hi - lo + 1), whose bound wraps
  // to 0 and silently returned lo forever. The full range must draw freely.
  Rng r(23);
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  bool low_half = false, high_half = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t v = r.between(0, kMax);
    (v > kMax / 2 ? high_half : low_half) = true;
  }
  EXPECT_TRUE(low_half);
  EXPECT_TRUE(high_half);
  // Shifted full-width spans hit the same wrap.
  bool varied = false;
  const std::uint64_t first = r.between(1, kMax);
  for (int i = 0; i < 64 && !varied; ++i) varied = r.between(1, kMax) != first;
  EXPECT_TRUE(varied);
}

TEST(Rng, BetweenStaysInsideInclusiveBounds) {
  Rng r(27);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(r.between(42, 42), 42u);
    const std::uint64_t v = r.between(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

}  // namespace
}  // namespace cm::sim
