#include "sim/async_mutex.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::sim {
namespace {

Task<> hold(AsyncMutex* m, Machine* mach, ProcId p, Cycles work,
            std::vector<int>* order, int id, int* inside, int* max_inside) {
  co_await m->lock();
  ++*inside;
  *max_inside = std::max(*max_inside, *inside);
  order->push_back(id);
  co_await mach->compute(p, work);
  --*inside;
  m->unlock();
}

TEST(AsyncMutex, UncontendedLockIsImmediate) {
  AsyncMutex m;
  EXPECT_FALSE(m.held());
  Engine eng;
  Machine mach(eng, 1);
  std::vector<int> order;
  int inside = 0, max_inside = 0;
  detach(hold(&m, &mach, 0, 5, &order, 1, &inside, &max_inside));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_FALSE(m.held());
}

TEST(AsyncMutex, MutualExclusionAndFifoOrder) {
  AsyncMutex m;
  Engine eng;
  Machine mach(eng, 8);
  std::vector<int> order;
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 8; ++i) {
    detach(hold(&m, &mach, static_cast<ProcId>(i), 10, &order, i, &inside,
                &max_inside));
  }
  eng.run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));  // FIFO
  EXPECT_FALSE(m.held());
  EXPECT_EQ(m.waiters(), 0u);
}

TEST(AsyncMutex, HandoffKeepsHeld) {
  AsyncMutex m;
  Engine eng;
  Machine mach(eng, 2);
  std::vector<int> order;
  int inside = 0, max_inside = 0;
  detach(hold(&m, &mach, 0, 100, &order, 0, &inside, &max_inside));
  detach(hold(&m, &mach, 1, 100, &order, 1, &inside, &max_inside));
  EXPECT_TRUE(m.held());
  EXPECT_EQ(m.waiters(), 1u);
  eng.run_until(150);
  EXPECT_TRUE(m.held());  // handed to the second holder at t=100
  eng.run();
  EXPECT_FALSE(m.held());
}

TEST(AsyncMutex, ReacquireAfterRelease) {
  AsyncMutex m;
  Engine eng;
  Machine mach(eng, 1);
  std::vector<int> order;
  int inside = 0, max_inside = 0;
  for (int round = 0; round < 3; ++round) {
    detach(hold(&m, &mach, 0, 1, &order, round, &inside, &max_inside));
    eng.run();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace cm::sim
