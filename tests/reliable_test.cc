// Reliable-transport unit tests: ack/timeout/retransmit behaviour under
// surgical fault plans (certain loss on one link, ack-only loss, duplicate
// storms), the migration fallback path, and the no-overhead guarantee when
// reliability is disabled.
#include "core/reliable.h"

#include <gtest/gtest.h>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "net/faulty_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

namespace cm::core {
namespace {

using sim::Cycles;
using sim::ProcId;
using sim::Task;

struct ChaosWorld {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork inner;
  net::FaultyNetwork net;
  ObjectSpace objects;
  Runtime rt;

  explicit ChaosWorld(ProcId nprocs, net::FaultPlan plan,
                      ReliableConfig rcfg = {})
      : machine(eng, nprocs), inner(eng), net(eng, inner, std::move(plan)),
        rt(machine, net, objects, CostModel::software()) {
    rt.enable_reliability(rcfg);
  }
};

Task<> transfer_once(Runtime* rt, ProcId src, ProcId dst, unsigned words,
                     bool* ok) {
  *ok = co_await rt->transfer(src, dst, words);
}

TEST(ReliableTransport, CleanNetworkDeliversWithOneDataAndOneAck) {
  // Plan counts as "active" via a far-future NIC failure, so the wrapper and
  // the reliable layer engage, but no message is ever perturbed.
  net::FaultPlan plan;
  plan.nic_fail_at[3] = ~sim::Cycles{0};
  ChaosWorld w(4, plan);
  bool ok = false;
  sim::detach(transfer_once(&w.rt, 0, 1, 8, &ok));
  w.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.rt.stats().reliable_sends, 1u);
  EXPECT_EQ(w.rt.stats().retransmits, 0u);
  EXPECT_EQ(w.rt.stats().timeouts_fired, 0u);
  EXPECT_EQ(w.rt.stats().acks_sent, 1u);
  EXPECT_EQ(w.net.stats().messages, 2u);  // DATA + ACK
}

TEST(ReliableTransport, RetransmitsThroughLossUntilDelivered) {
  net::FaultPlan plan;
  plan.rates.drop = 0.5;
  plan.seed = 42;
  ChaosWorld w(4, plan, ReliableConfig{.base_timeout = 100});
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    sim::detach([](Runtime* rt, int* done) -> Task<> {
      if (co_await rt->transfer(0, 1, 8)) ++*done;
    }(&w.rt, &done));
  }
  w.eng.run();
  EXPECT_EQ(done, 50);  // every transfer eventually lands
  EXPECT_GT(w.rt.stats().retransmits, 0u);
  EXPECT_GT(w.rt.stats().timeouts_fired, 0u);
}

TEST(ReliableTransport, AckLossCausesDedupNotDoubleResume) {
  // Forward link is clean; the reverse (ack) link always loses the first
  // copies: drop rate 1.0 inside a window that covers the first ack only.
  net::FaultPlan plan;
  plan.link_overrides[{1, 0}] = net::FaultRates{.drop = 1.0};
  plan.window_end = 50;  // after t=50 acks get through
  ChaosWorld w(4, plan, ReliableConfig{.base_timeout = 100});
  int resumes = 0;
  sim::detach([](Runtime* rt, int* resumes) -> Task<> {
    (void)co_await rt->transfer(0, 1, 8);
    ++*resumes;
  }(&w.rt, &resumes));
  w.eng.run();
  EXPECT_EQ(resumes, 1);  // exactly-once resume despite retransmission
  EXPECT_GT(w.rt.stats().retransmits, 0u);
  EXPECT_GT(w.rt.stats().dedup_hits, 0u);
  EXPECT_EQ(w.rt.stats().stale_deliveries, 0u);
}

TEST(ReliableTransport, DuplicateStormResumesOnce) {
  net::FaultPlan plan;
  plan.rates.duplicate = 1.0;  // every message cloned, DATA and ACK alike
  ChaosWorld w(4, plan);
  int resumes = 0;
  sim::detach([](Runtime* rt, int* resumes) -> Task<> {
    (void)co_await rt->transfer(0, 1, 8);
    ++*resumes;
  }(&w.rt, &resumes));
  w.eng.run();
  EXPECT_EQ(resumes, 1);
  EXPECT_GE(w.rt.stats().dedup_hits, 1u);
}

Task<> migrate_once(Runtime* rt, ObjectId obj, ProcId from, ProcId* end) {
  Ctx ctx{rt, from};
  co_await rt->migrate(ctx, obj, 8);
  *end = ctx.proc;
}

TEST(ReliableTransport, MigrationSurvivesTransientLoss) {
  net::FaultPlan plan;
  plan.rates.drop = 0.5;
  plan.seed = 7;
  ChaosWorld w(4, plan, ReliableConfig{.base_timeout = 100});
  const ObjectId obj = w.objects.create(3);
  ProcId end = 99;
  sim::detach(migrate_once(&w.rt, obj, 0, &end));
  w.eng.run();
  EXPECT_EQ(end, 3u);
  EXPECT_EQ(w.rt.stats().migrations, 1u);
  EXPECT_EQ(w.rt.stats().migration_fallbacks, 0u);
}

TEST(ReliableTransport, MoveBudgetExhaustionFallsBackToStayingPut) {
  // The link to the object's home is permanently dead: the MOVE exhausts
  // its budget and the activation stays where it was — the annotation
  // degrades to plain RPC instead of wedging the caller forever.
  net::FaultPlan plan;
  plan.link_overrides[{0, 3}] = net::FaultRates{.drop = 1.0};
  ChaosWorld w(4, plan,
               ReliableConfig{.base_timeout = 50, .move_retry_budget = 3});
  const ObjectId obj = w.objects.create(3);
  ProcId end = 99;
  sim::detach(migrate_once(&w.rt, obj, 0, &end));
  w.eng.run();
  EXPECT_EQ(end, 0u);  // never moved
  EXPECT_EQ(w.rt.stats().migrations, 0u);
  EXPECT_EQ(w.rt.stats().migration_fallbacks, 1u);
  EXPECT_EQ(w.rt.stats().delivery_failures, 1u);
  EXPECT_EQ(w.rt.stats().retransmits, 2u);  // budget 3 = 1 try + 2 retries
}

TEST(ReliableTransport, GroupMoveFallsBackTogether) {
  net::FaultPlan plan;
  plan.link_overrides[{0, 2}] = net::FaultRates{.drop = 1.0};
  ChaosWorld w(4, plan,
               ReliableConfig{.base_timeout = 50, .move_retry_budget = 2});
  const ObjectId obj = w.objects.create(2);
  ProcId a_end = 99, b_end = 99;
  sim::detach([](Runtime* rt, ObjectId obj, ProcId* a_end,
                 ProcId* b_end) -> Task<> {
    Ctx a{rt, 0};
    Ctx b{rt, 0};
    std::vector<Ctx*> group{&a, &b};
    co_await rt->migrate_group(group, obj, 20);
    *a_end = a.proc;
    *b_end = b.proc;
  }(&w.rt, obj, &a_end, &b_end));
  w.eng.run();
  EXPECT_EQ(a_end, 0u);
  EXPECT_EQ(b_end, 0u);
  EXPECT_EQ(w.rt.stats().migration_fallbacks, 1u);
}

TEST(ReliableTransport, RpcCompletesCorrectlyUnderLoss) {
  net::FaultPlan plan;
  plan.rates.drop = 0.4;
  plan.seed = 11;
  ChaosWorld w(4, plan, ReliableConfig{.base_timeout = 100});
  const ObjectId obj = w.objects.create(2);
  int result = -1;
  sim::detach([](Runtime* rt, ObjectId obj, int* result) -> Task<> {
    Ctx ctx{rt, 0};
    *result = co_await rt->call(ctx, obj, CallOpts{4, 2, false},
                                [rt](Ctx& callee) -> Task<int> {
                                  co_await rt->compute(callee, 10);
                                  co_return static_cast<int>(callee.proc);
                                });
  }(&w.rt, obj, &result));
  w.eng.run();
  EXPECT_EQ(result, 2);  // the RPC ran at the object's home and returned
}

TEST(Runtime, ReliabilityDisabledAddsNoMessagesOrCycles) {
  // Two identical worlds, one raw and one whose reliable layer exists but is
  // never enabled: identical traffic, identical busy cycles, identical time.
  auto run = [] {
    sim::Engine eng;
    sim::Machine machine(eng, 4);
    net::ConstantNetwork net(eng);
    ObjectSpace objects;
    Runtime rt(machine, net, objects, CostModel::software());
    const ObjectId obj = objects.create(3);
    ProcId end = 0;
    sim::detach(migrate_once(&rt, obj, 0, &end));
    eng.run();
    return std::tuple{eng.now(), net.stats().messages, net.stats().words,
                      machine.total_busy()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cm::core
