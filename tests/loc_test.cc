#include "loc/locator.h"

#include <gtest/gtest.h>

#include "apps/workload.h"
#include "core/mobile.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

namespace cm::loc {
namespace {

using core::Ctx;
using core::MobileObject;
using core::ObjectId;
using sim::ProcId;
using sim::Task;

// ---------------------------------------------------------------------------
// TranslationCache

TEST(TranslationCache, LruEvictionOrder) {
  TranslationCache c(2);
  EXPECT_FALSE(c.put(1, 10));
  EXPECT_FALSE(c.put(2, 20));
  EXPECT_TRUE(c.put(3, 30));  // evicts 1 (least recently used)
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.get(2), std::optional<ProcId>(20));
  EXPECT_EQ(c.get(3), std::optional<ProcId>(30));
}

TEST(TranslationCache, GetRefreshesRecency) {
  TranslationCache c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_EQ(c.get(1), std::optional<ProcId>(10));  // 1 is now most recent
  EXPECT_TRUE(c.put(3, 30));                       // evicts 2, not 1
  EXPECT_EQ(c.get(1), std::optional<ProcId>(10));
  EXPECT_FALSE(c.get(2).has_value());
}

TEST(TranslationCache, PeekDoesNotRefresh) {
  TranslationCache c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_EQ(c.peek(1), std::optional<ProcId>(10));  // no recency change
  EXPECT_TRUE(c.put(3, 30));                        // still evicts 1
  EXPECT_FALSE(c.get(1).has_value());
}

TEST(TranslationCache, UpdateInPlaceAndErase) {
  TranslationCache c(2);
  c.put(1, 10);
  EXPECT_FALSE(c.put(1, 11));  // update, no eviction
  EXPECT_EQ(c.get(1), std::optional<ProcId>(11));
  c.erase(1);
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(TranslationCache, CapacityZeroDisablesCaching) {
  TranslationCache c(0);
  EXPECT_FALSE(c.put(1, 10));
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_EQ(c.size(), 0u);
}

// ---------------------------------------------------------------------------
// Locator over a small world

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  core::ObjectSpace objects;
  core::Runtime rt;

  explicit World(ProcId nprocs)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, core::CostModel::software()) {}
};

LocatorConfig distributed() {
  LocatorConfig cfg;
  cfg.mode = Locality::kDistributed;
  return cfg;
}

Task<> call_from(World* w, ObjectId id, ProcId p) {
  Ctx ctx{&w->rt, p};
  (void)co_await w->rt.call(ctx, id, core::CallOpts{2, 2, true},
                            [w](Ctx& c) -> Task<int> {
                              co_await w->rt.compute(c, 5);
                              co_return 0;
                            });
}

Task<> attract_from(World* w, MobileObject* m, ProcId p) {
  Ctx ctx{&w->rt, p};
  co_await m->attract(ctx);
}

TEST(Locator, OracleModeIsInert) {
  World plain(4);
  const ObjectId a = plain.objects.create(1);
  sim::detach(call_from(&plain, a, 2));
  plain.eng.run();

  World with(4);
  Locator loc(with.rt, LocatorConfig{});  // defaults to kOracle
  EXPECT_FALSE(loc.attached());
  EXPECT_EQ(with.rt.locator(), nullptr);
  const ObjectId b = with.objects.create(1);
  sim::detach(call_from(&with, b, 2));
  with.eng.run();

  // Bit-identical to a world that never constructed a Locator.
  EXPECT_EQ(with.eng.now(), plain.eng.now());
  EXPECT_EQ(with.net.stats().messages, plain.net.stats().messages);
  EXPECT_EQ(loc.stats().lookups, 0u);
  EXPECT_EQ(loc.stats().deliveries, 0u);
}

TEST(Locator, StaticObjectWarmsTheCache) {
  World w(4);
  Locator loc(w.rt, distributed());
  ASSERT_TRUE(loc.attached());
  const ObjectId id = w.objects.create(1);  // id 0 -> shard 0 (hash-home)
  EXPECT_EQ(loc.shard_of(id), 0u);
  EXPECT_EQ(loc.directory_owner(id), 1u);

  sim::detach(call_from(&w, id, 2));
  w.eng.run();
  sim::detach(call_from(&w, id, 2));
  w.eng.run();

  const LocStats& s = loc.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.cache_misses, 1u);  // first call consults the directory...
  EXPECT_EQ(s.cache_hits, 1u);    // ...second call hits the hint
  EXPECT_EQ(s.dir_queries, 1u);
  EXPECT_EQ(s.deliveries, 2u);
  EXPECT_EQ(s.bounces, 0u);  // hints were never stale
  EXPECT_EQ(s.forwarded, 0u);
  EXPECT_EQ(loc.cached_hint(2, id), std::optional<ProcId>(1));
}

TEST(Locator, LocalCallsBypassTheDirectory) {
  World w(4);
  Locator loc(w.rt, distributed());
  const ObjectId id = w.objects.create(2);
  sim::detach(call_from(&w, id, 2));  // caller co-resident with the object
  w.eng.run();
  EXPECT_EQ(loc.stats().local_hits, 1u);
  EXPECT_EQ(loc.stats().lookups, 0u);
  EXPECT_EQ(w.net.stats().messages, 0u);
}

TEST(Locator, MoveLeavesForwardingPointerAndFlipsDirectory) {
  World w(4);
  Locator loc(w.rt, distributed());
  const ObjectId id = w.objects.create(1);
  MobileObject m(w.rt, id, 16);

  sim::detach(attract_from(&w, &m, 2));
  w.eng.run();

  EXPECT_EQ(w.objects.home_of(id), 2u);
  EXPECT_EQ(loc.directory_owner(id), 2u);
  EXPECT_EQ(loc.forwarding_pointer(1, id), std::optional<ProcId>(2));
  EXPECT_FALSE(loc.forwarding_pointer(2, id).has_value());
  EXPECT_EQ(loc.stats().moves, 1u);
  EXPECT_EQ(loc.stats().move_races, 0u);
  EXPECT_EQ(m.moves(), 1u);
  EXPECT_EQ(w.rt.stats().object_moves, 1u);
  EXPECT_EQ(w.rt.stats().moved_object_words, 16u);
}

TEST(Locator, StaleHintBouncesAlongChainAndCompresses) {
  World w(5);
  Locator loc(w.rt, distributed());
  const ObjectId id = w.objects.create(1);
  MobileObject m(w.rt, id, 16);

  // Warm proc 0's hint: object at 1.
  sim::detach(call_from(&w, id, 0));
  w.eng.run();
  ASSERT_EQ(loc.cached_hint(0, id), std::optional<ProcId>(1));

  // Drag the object 1 -> 2 -> 3, leaving a two-pointer chain behind.
  sim::detach(attract_from(&w, &m, 2));
  w.eng.run();
  sim::detach(attract_from(&w, &m, 3));
  w.eng.run();
  ASSERT_EQ(loc.forwarding_pointer(1, id), std::optional<ProcId>(2));
  ASSERT_EQ(loc.forwarding_pointer(2, id), std::optional<ProcId>(3));

  // Call through the stale hint: the request lands on 1, bounces twice.
  sim::detach(call_from(&w, id, 0));
  w.eng.run();

  const LocStats& s = loc.stats();
  EXPECT_EQ(s.bounces, 2u);
  EXPECT_EQ(s.max_chain, 2u);
  EXPECT_EQ(s.forwarded, 1u);
  EXPECT_EQ(s.compressions, 1u);
  EXPECT_EQ(s.fwd_fallbacks, 0u);
  // Path compression: every stale hop and the requester now point at 3.
  EXPECT_EQ(loc.forwarding_pointer(1, id), std::optional<ProcId>(3));
  EXPECT_EQ(loc.forwarding_pointer(2, id), std::optional<ProcId>(3));
  EXPECT_EQ(loc.cached_hint(0, id), std::optional<ProcId>(3));

  // The compressed chain is one hop from anywhere: calling again through
  // the old first hop takes zero bounces.
  sim::detach(call_from(&w, id, 0));
  w.eng.run();
  EXPECT_EQ(loc.stats().bounces, 2u);  // unchanged
}

TEST(Locator, ConcurrentMoversSerialiseAtTheShard) {
  World w(8);
  Locator loc(w.rt, distributed());
  const ObjectId id = w.objects.create(7);
  MobileObject m(w.rt, id, 8);

  for (ProcId p = 0; p < 4; ++p) sim::detach(attract_from(&w, &m, p));
  w.eng.run();

  // All four movers are distinct processors and queue FIFO at the shard, so
  // each finds the object elsewhere when its turn comes: four real moves.
  EXPECT_EQ(loc.stats().moves, 4u);
  EXPECT_EQ(loc.stats().move_races, 0u);
  EXPECT_EQ(m.moves(), 4u);
  EXPECT_LT(w.objects.home_of(id), 4u);
  // The directory's committed owner agrees with ground truth once quiesced.
  EXPECT_EQ(loc.directory_owner(id), w.objects.home_of(id));
}

TEST(Locator, RacingMoversFromOneProcessorMoveOnce) {
  World w(4);
  Locator loc(w.rt, distributed());
  const ObjectId id = w.objects.create(3);
  MobileObject m(w.rt, id, 16);

  // Both pass the free local check (object at 3), both issue MOVE-REQUESTs;
  // the second finds the object already home after the first's commit.
  sim::detach(attract_from(&w, &m, 0));
  sim::detach(attract_from(&w, &m, 0));
  w.eng.run();

  EXPECT_EQ(loc.stats().moves, 1u);
  EXPECT_EQ(loc.stats().move_races, 1u);
  EXPECT_EQ(m.moves(), 1u);
  EXPECT_EQ(w.rt.stats().moved_object_words, 16u);
  EXPECT_EQ(w.objects.home_of(id), 0u);
  EXPECT_EQ(loc.directory_owner(id), 0u);
}

TEST(Locator, OwnerHomePolicyPlacesShardAtCreationHome) {
  World w(4);
  LocatorConfig cfg = distributed();
  cfg.directory = DirectoryPolicy::kOwnerHome;
  Locator loc(w.rt, cfg);
  const ObjectId id = w.objects.create(3);
  EXPECT_EQ(loc.shard_of(id), 3u);  // hash-home would say 0
}

TEST(Locator, DistributedRunsAreDeterministic) {
  apps::CountingConfig cfg;
  cfg.scheme.mechanism = core::Mechanism::kMigration;
  cfg.requesters = 8;
  cfg.locator.mode = Locality::kDistributed;
  const apps::RunStats a = apps::run_counting(cfg);
  const apps::RunStats b = apps::run_counting(cfg);
  EXPECT_EQ(a.completed_at, b.completed_at);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.loc.lookups, b.loc.lookups);
  EXPECT_EQ(a.loc.cache_hits, b.loc.cache_hits);
  EXPECT_EQ(a.loc.dir_queries, b.loc.dir_queries);
  EXPECT_EQ(a.loc.bounces, b.loc.bounces);
  EXPECT_GT(a.loc.lookups, 0u);  // the locator actually ran
  EXPECT_TRUE(a.locator_enabled);
}

// ---------------------------------------------------------------------------
// ObjectSpace hard-abort on out-of-range ids (all build types)

using ObjectSpaceDeathTest = ::testing::Test;

TEST(ObjectSpaceDeathTest, HomeOfOutOfRangeAborts) {
  core::ObjectSpace space;
  (void)space.create(0);
  EXPECT_DEATH((void)space.home_of(7), "out of range");
}

TEST(ObjectSpaceDeathTest, MoveOutOfRangeAborts) {
  core::ObjectSpace space;
  EXPECT_DEATH(space.move(0, 1), "out of range");
}

}  // namespace
}  // namespace cm::loc
