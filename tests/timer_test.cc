#include "sim/timer.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace cm::sim {
namespace {

TEST(Timer, FiresAtDeadline) {
  Engine eng;
  Timer t(eng);
  Cycles fired_at = 0;
  t.arm(50, [&] { fired_at = eng.now(); });
  EXPECT_TRUE(t.armed());
  eng.run();
  EXPECT_EQ(fired_at, 50u);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, CancelSuppressesPendingFire) {
  Engine eng;
  Timer t(eng);
  bool fired = false;
  t.arm(50, [&] { fired = true; });
  eng.at(10, [&] { t.cancel(); });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(eng.now(), 50u);  // the defused event still drained
}

TEST(Timer, RearmSupersedesEarlierArm) {
  Engine eng;
  Timer t(eng);
  int which = 0;
  t.arm(50, [&] { which = 1; });
  eng.at(10, [&] { t.arm(100, [&] { which = 2; }); });
  eng.run();
  EXPECT_EQ(which, 2);  // only the newest arming fires
}

TEST(Timer, RearmFromCallbackChains) {
  Engine eng;
  Timer t(eng);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) t.arm(20, tick);
  };
  t.arm(20, tick);
  eng.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(eng.now(), 60u);
}

TEST(Timer, SafeToDestroyWhileArmed) {
  Engine eng;
  bool fired = false;
  {
    Timer t(eng);
    t.arm(50, [&] { fired = true; });
  }  // Timer gone; the queued event must not crash
  eng.run();
  // The control block survives via shared_ptr, so the callback still runs.
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace cm::sim
