#include "sim/timer.h"

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace cm::sim {
namespace {

TEST(Timer, FiresAtDeadline) {
  Engine eng;
  Timer t(eng);
  Cycles fired_at = 0;
  t.arm(50, [&] { fired_at = eng.now(); });
  EXPECT_TRUE(t.armed());
  eng.run();
  EXPECT_EQ(fired_at, 50u);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, CancelSuppressesPendingFire) {
  Engine eng;
  Timer t(eng);
  bool fired = false;
  t.arm(50, [&] { fired = true; });
  eng.at(10, [&] { t.cancel(); });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(eng.now(), 50u);  // the defused event still drained
}

TEST(Timer, RearmSupersedesEarlierArm) {
  Engine eng;
  Timer t(eng);
  int which = 0;
  t.arm(50, [&] { which = 1; });
  eng.at(10, [&] { t.arm(100, [&] { which = 2; }); });
  eng.run();
  EXPECT_EQ(which, 2);  // only the newest arming fires
}

TEST(Timer, RearmFromCallbackChains) {
  Engine eng;
  Timer t(eng);
  int fires = 0;
  std::function<void()> tick = [&] {
    if (++fires < 3) t.arm(20, tick);
  };
  t.arm(20, tick);
  eng.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(eng.now(), 60u);
}

TEST(Timer, CancelAfterFireIsANoOp) {
  Engine eng;
  Timer t(eng);
  int fires = 0;
  t.arm(50, [&] { ++fires; });
  eng.run();
  ASSERT_EQ(fires, 1);
  t.cancel();  // nothing pending: must not touch later armings
  EXPECT_FALSE(t.armed());
  t.arm(30, [&] { ++fires; });
  eng.run();
  EXPECT_EQ(fires, 2);  // the stale cancel did not defuse the new arming
}

TEST(Timer, RearmInsideOwnCallbackRestartsCleanly) {
  // A callback re-arming its own timer must not be suppressed by the
  // generation check that just fired it, and cancel from outside must stop
  // the chain exactly where it is.
  Engine eng;
  Timer t(eng);
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    t.arm(10, tick);
    EXPECT_TRUE(t.armed());  // re-armed state visible inside the callback
  };
  t.arm(10, tick);
  eng.at(35, [&] { t.cancel(); });  // between the 3rd (30) and 4th (40) fire
  eng.run();
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, SameCycleRearmFiresOnlyNewestCallback) {
  // Generation-check race: an event at the same cycle the timer would fire
  // re-arms it first (earlier insertion seq drains first). The superseded
  // fire event must be defused by the generation bump even though it was
  // already queued for this very cycle.
  Engine eng;
  Timer t(eng);
  int old_fires = 0;
  int new_fires = 0;
  eng.at(50, [&] { t.arm(50, [&] { ++new_fires; }); });
  t.arm(50, [&] { ++old_fires; });
  eng.run();
  EXPECT_EQ(old_fires, 0);  // superseded in its own delivery cycle
  EXPECT_EQ(new_fires, 1);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(Timer, SameCycleCancelSuppressesFire) {
  // The cancel lands at the fire's own cycle; insertion order decides the
  // drain order, and the generation bump must win either way.
  Engine eng;
  Timer t(eng);
  bool fired = false;
  eng.at(50, [&] { t.cancel(); });  // queued before the arm's fire event
  t.arm(50, [&] { fired = true; });
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, SafeToDestroyWhileArmed) {
  Engine eng;
  bool fired = false;
  {
    Timer t(eng);
    t.arm(50, [&] { fired = true; });
  }  // Timer gone; the queued event must not crash
  eng.run();
  // The control block survives via shared_ptr, so the callback still runs.
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace cm::sim
