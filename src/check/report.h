// Report export for the checker, kept header-only so cm_check itself
// depends only on cm_sim: the layers the checker observes (core, net) link
// against cm_check, so a checker.cc that included core/metrics.h would close
// a dependency cycle. Anything that already links cm_core can include this.
#pragma once

#include <string>

#include "check/checker.h"
#include "core/metrics.h"

namespace cm::check {

/// Flat "check.*" keys in the unified metrics schema, alongside "rt.",
/// "net.", "breakdown." and "loc.". Violation counters are emitted for
/// every kind (zeros included) so downstream diffs see a stable key set.
inline void put_check_stats(core::Metrics& m, const CheckStats& s) {
  m.put("check.sends", s.sends);
  m.put("check.delivers", s.delivers);
  m.put("check.accesses", s.accesses);
  m.put("check.lock_attempts", s.lock_attempts);
  m.put("check.lock_acquires", s.lock_acquires);
  m.put("check.moves", s.moves);
  m.put("check.chases", s.chases);
  m.put("check.chase_hops", s.chase_hops);
  m.put("check.seqs_sent", s.seqs_sent);
  m.put("check.seqs_delivered", s.seqs_delivered);
  m.put("check.seqs_abandoned", s.seqs_abandoned);
  m.put("check.calls", s.calls);
  m.put("check.replies", s.replies);
  m.put("check.calls_abandoned", s.calls_abandoned);
  m.put("check.line_checks", s.line_checks);
  m.put("check.fail_stops", s.fail_stops);
  m.put("check.leases", s.leases);
  m.put("check.suspicions", s.suspicions);
  m.put("check.rehomes", s.rehomes);
  m.put("check.policy_moves", s.policy_moves);
  m.put("check.policy_flips", s.policy_flips);
  m.put("check.finalized", s.finalized);
  m.put("check.violations", s.total_violations);
  for (unsigned k = 0; k < static_cast<unsigned>(Violation::kCount); ++k) {
    m.put("check.violation." +
              std::string(violation_name(static_cast<Violation>(k))),
          s.by_kind[k]);
  }
}

/// Standalone JSON report: the flat stats record plus the bounded violation
/// record list. Identifiers inside records are the checker's dense ids, so
/// two same-seed runs produce byte-identical reports. This overload takes
/// the pieces a finished run carries around (apps::RunStats keeps both
/// after the Checker itself is gone).
inline std::string check_report_json(
    const CheckStats& stats, const std::vector<ViolationRecord>& records) {
  core::Metrics m;
  put_check_stats(m, stats);
  std::string out = "{\n  \"stats\": {";
  m.append_json_fields(out);
  out += "},\n  \"records\": [";
  bool first = true;
  for (const ViolationRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"kind\": \"";
    out += violation_name(r.kind);
    out += "\", \"at\": " + std::to_string(r.at);
    out += ", \"proc\": " +
           (r.proc == sim::kNoProc ? std::string("-1")
                                   : std::to_string(r.proc));
    out += ", \"detail\": \"";
    for (char ch : r.detail) {
      if (ch == '"' || ch == '\\') out += '\\';
      out += ch;
    }
    out += "\"}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

inline std::string check_report_json(const Checker& c) {
  return check_report_json(c.stats(), c.records());
}

}  // namespace cm::check
