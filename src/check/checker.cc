#include "check/checker.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace cm::check {
namespace {

std::string proc_str(ProcId p) {
  return p == sim::kNoProc ? std::string("none") : std::to_string(p);
}

}  // namespace

Checker::Checker(sim::Engine& engine, ProcId nprocs, CheckConfig cfg)
    : engine_(&engine),
      cfg_(cfg),
      nprocs_(nprocs),
      logs_(engine.shards()),
      send_cnt_(engine.configured_lanes()),
      chase_cnt_(engine.configured_lanes()),
      call_cnt_(engine.configured_lanes()),
      clocks_(nprocs, std::vector<std::uint64_t>(nprocs, 0)) {
  // Windows end in a serial phase; replaying there keeps every deferred
  // hook's effect inside the same window that produced it.
  engine_->set_barrier_hook([this] { replay(); });
}

Checker::~Checker() { engine_->set_barrier_hook({}); }

std::uint64_t Checker::fresh_id(std::vector<std::uint64_t>& cnt) {
  const ProcId home = engine_->current_home();
  const unsigned lane =
      home == sim::kNoProc ? 0u : static_cast<unsigned>(home) + 1u;
  if (lane >= cnt.size()) [[unlikely]] {
    assert(!engine_->threads_active());
    cnt.resize(lane + 1, 0);
  }
  return (std::uint64_t{lane} << 40) | ++cnt[lane];
}

void Checker::replay() {
  std::size_t total = 0;
  for (const ShardLog& sl : logs_) total += sl.entries.size();
  if (total == 0) return;
  replaying_ = true;
  // Each shard's log is already (t, label)-sorted (events run in that order
  // and every hook of one event shares its key), and labels are globally
  // unique per event, so a k-way merge reconstructs the one-shard order.
  std::vector<std::size_t> pos(logs_.size(), 0);
  for (std::size_t done = 0; done < total; ++done) {
    std::size_t best = logs_.size();
    for (std::size_t s = 0; s < logs_.size(); ++s) {
      if (pos[s] >= logs_[s].entries.size()) continue;
      if (best == logs_.size()) {
        best = s;
        continue;
      }
      const Deferred& a = logs_[s].entries[pos[s]];
      const Deferred& b = logs_[best].entries[pos[best]];
      if (a.t < b.t || (a.t == b.t && a.label < b.label)) best = s;
    }
    Deferred& e = logs_[best].entries[pos[best]++];
    replay_now_ = e.t;
    e.fn();
  }
  replaying_ = false;
  for (ShardLog& sl : logs_) sl.entries.clear();
}

void Checker::violate(Violation v, ProcId proc, std::string detail) {
  ++stats_.total_violations;
  ++stats_.by_kind[static_cast<unsigned>(v)];
  const Cycles at = now_();
  if (cfg_.abort_on_violation) {
    std::fprintf(stderr, "check: VIOLATION %s at cycle %llu proc %s: %s\n",
                 std::string(violation_name(v)).c_str(),
                 static_cast<unsigned long long>(at), proc_str(proc).c_str(),
                 detail.c_str());
  }
  if (records_.size() < cfg_.max_records) {
    records_.push_back(ViolationRecord{v, at, proc, std::move(detail)});
  }
  if (cfg_.abort_on_violation) std::abort();
}

void Checker::join(ProcId p, const std::vector<std::uint64_t>& other) {
  auto& mine = clocks_[p];
  for (ProcId i = 0; i < nprocs_; ++i) {
    if (other[i] > mine[i]) mine[i] = other[i];
  }
}

bool Checker::leq(const std::vector<std::uint64_t>& a,
                  const std::vector<std::uint64_t>& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

std::uint64_t Checker::id_of(
    std::unordered_map<const void*, std::uint64_t>& reg, const void* p) {
  auto [it, fresh] = reg.emplace(p, reg.size());
  (void)fresh;
  return it->second;
}

const std::string& Checker::mutex_name(std::uint64_t id) const {
  static const std::string unknown = "?";
  return id < mutex_names_.size() ? mutex_names_[id] : unknown;
}

// ---- happens-before ---------------------------------------------------------

std::uint64_t Checker::on_send(ProcId src, ProcId dst) {
  (void)dst;
  const std::uint64_t token = fresh_id(send_cnt_);
  dispatch([this, src, token] {
    ++stats_.sends;
    tick(src);
    in_flight_.emplace(token, Edge{clocks_[src], src, now_()});
  });
  return token;
}

void Checker::on_deliver(ProcId dst, std::uint64_t token) {
  dispatch([this, dst, token] {
    ++stats_.delivers;
    tick(dst);
    auto it = in_flight_.find(token);
    if (it == in_flight_.end()) return;  // duplicate closed its edge already
    const Edge& edge = it->second;
    auto fe = fail_epochs_.find(edge.src);
    if (fe != fail_epochs_.end() && edge.sent_at >= fe->second) {
      // The faulty-network wrapper must eat everything a dead NIC emits; a
      // delivery here means some path bypassed it (by construction this can
      // only be a layering regression, never a lossy run's bad luck).
      violate(Violation::kPostFailureDelivery, dst,
              "message sent by proc " + proc_str(edge.src) + " at cycle " +
                  std::to_string(edge.sent_at) +
                  " delivered despite its fail-stop epoch " +
                  std::to_string(fe->second));
    }
    join(dst, edge.clock);
    in_flight_.erase(it);
  });
}

// ---- phantom object accesses ------------------------------------------------

void Checker::on_object_access(ProcId proc, std::uint64_t obj, ProcId host,
                               bool write) {
  dispatch([this, proc, obj, host, write] {
    ++stats_.accesses;
    auto [it, fresh] = owner_mirror_.emplace(obj, host);
    if (!fresh && it->second != host) {
      // Ground truth moved without a commit hook firing: the move protocol
      // and the ObjectSpace binding have diverged.
      violate(Violation::kOwnerDivergence, proc,
              "obj " + std::to_string(obj) + " host " + proc_str(host) +
                  " but last committed owner " + proc_str(it->second));
      it->second = host;
    }
    if (proc == host) return;
    std::string why;
    auto c = last_commit_.find(obj);
    if (c == last_commit_.end()) {
      why = "no relocation observed";
    } else if (leq(c->second.clock, clocks_[proc])) {
      why = "causally after the relocation commit (stale binding kept live)";
    } else {
      why = "concurrent with an in-flight relocation (racy access)";
    }
    violate(write ? Violation::kPhantomWrite : Violation::kPhantomRead, proc,
            std::string(write ? "write" : "read") + " of obj " +
                std::to_string(obj) + " from proc " + proc_str(proc) +
                " while hosted on " + proc_str(host) + "; " + why);
  });
}

// ---- lock graph -------------------------------------------------------------

void Checker::on_lock_attempt(const void* agent, const void* mutex,
                              const char* name) {
  dispatch([this, agent, mutex, name] {
    ++stats_.lock_attempts;
    const std::uint64_t a = id_of(agent_ids_, agent);
    const std::uint64_t m = id_of(mutex_ids_, mutex);
    if (m >= mutex_names_.size()) mutex_names_.resize(m + 1, "?");
    if (name != nullptr && mutex_names_[m] == "?") mutex_names_[m] = name;

    // Lock-order discipline: acquiring m while holding h adds h -> m to the
    // global order graph; a path m ->* h already present means two call
    // sites disagree on the order and can deadlock under the right
    // interleaving.
    for (std::uint64_t h : held_[a]) {
      if (h == m) continue;
      if (order_reachable(m, h) && reported_orders_.insert({h, m}).second) {
        violate(Violation::kLockOrderInversion, sim::kNoProc,
                "lock '" + mutex_name(m) + "' (#" + std::to_string(m) +
                    ") acquired while holding '" + mutex_name(h) + "' (#" +
                    std::to_string(h) + "), but the opposite order exists");
      }
      order_edges_[h].insert(m);
    }

    // Deadlock: walk agent -waits-for-> mutex -held-by-> agent until the
    // walk closes on the requester (a real cycle, not just a risky order).
    waiting_[a] = m;
    std::uint64_t cur = a;
    std::set<std::uint64_t> seen;
    while (seen.insert(cur).second) {
      auto w = waiting_.find(cur);
      if (w == waiting_.end()) break;
      auto h = holder_.find(w->second);
      if (h == holder_.end()) break;
      if (h->second == a && cur != a) {
        violate(Violation::kDeadlock, sim::kNoProc,
                "agent #" + std::to_string(a) + " waiting on '" +
                    mutex_name(m) + "' closes a wait-for cycle of " +
                    std::to_string(seen.size()) + " agents");
        break;
      }
      cur = h->second;
    }
  });
}

void Checker::on_lock_acquired(const void* agent, const void* mutex,
                               const char* name) {
  (void)name;
  dispatch([this, agent, mutex] {
    ++stats_.lock_acquires;
    const std::uint64_t a = id_of(agent_ids_, agent);
    const std::uint64_t m = id_of(mutex_ids_, mutex);
    waiting_.erase(a);
    holder_[m] = a;
    held_[a].push_back(m);
  });
}

void Checker::on_lock_released(const void* agent, const void* mutex) {
  dispatch([this, agent, mutex] {
    const std::uint64_t a = id_of(agent_ids_, agent);
    const std::uint64_t m = id_of(mutex_ids_, mutex);
    holder_.erase(m);
    auto& held = held_[a];
    for (auto it = held.begin(); it != held.end(); ++it) {
      if (*it == m) {
        held.erase(it);
        break;
      }
    }
  });
}

bool Checker::order_reachable(std::uint64_t from, std::uint64_t to) const {
  if (from == to) return true;
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> stack{from};
  while (!stack.empty()) {
    const std::uint64_t cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = order_edges_.find(cur);
    if (it == order_edges_.end()) continue;
    for (std::uint64_t next : it->second) {
      if (next == to) return true;
      stack.push_back(next);
    }
  }
  return false;
}

// ---- object-move protocol ---------------------------------------------------

void Checker::on_move_begin(std::uint64_t obj, ProcId mover) {
  dispatch([this, obj, mover] {
    auto& w = move_windows_[obj];
    if (w.open) {
      violate(Violation::kMoveOverlap, mover,
              "obj " + std::to_string(obj) + ": move by proc " +
                  proc_str(mover) + " began while proc " + proc_str(w.mover) +
                  "'s move is still in flight (home-serialisation broken)");
    }
    w.open = true;
    w.mover = mover;
  });
}

void Checker::on_move_commit(std::uint64_t obj, ProcId from, ProcId to) {
  dispatch([this, obj, from, to] {
    auto it = owner_mirror_.find(obj);
    if (it != owner_mirror_.end() && it->second != from) {
      violate(Violation::kMoveFromNonOwner, to,
              "obj " + std::to_string(obj) + " moved " + proc_str(from) +
                  " -> " + proc_str(to) + " but committed owner was " +
                  proc_str(it->second));
    }
    owner_mirror_[obj] = to;
    last_commit_[obj] = Commit{to, clocks_[to]};
  });
}

void Checker::on_move_end(std::uint64_t obj) {
  dispatch([this, obj] {
    auto it = move_windows_.find(obj);
    if (it == move_windows_.end() || !it->second.open) return;
    it->second.open = false;
    ++stats_.moves;
  });
}

// ---- forwarding chains ------------------------------------------------------

std::uint64_t Checker::on_chase_begin(std::uint64_t obj, ProcId start) {
  const std::uint64_t id = fresh_id(chase_cnt_);
  dispatch([this, id, obj, start] {
    ++stats_.chases;
    chases_.emplace(id, Chase{obj, {start}, {}});
  });
  return id;
}

void Checker::on_chase_hop(std::uint64_t chase, ProcId from, ProcId to) {
  dispatch([this, chase, from, to] {
    ++stats_.chase_hops;
    auto it = chases_.find(chase);
    if (it == chases_.end()) return;
    // A chase may legitimately revisit a processor the object moved back to
    // (its pointer was freshened in between); what must never happen is
    // following the SAME pointer twice — that chase would loop forever.
    if (!it->second.edges.insert({from, to}).second) {
      violate(Violation::kForwardCycle, from,
              "obj " + std::to_string(it->second.obj) +
                  ": chase followed the pointer " + proc_str(from) + " -> " +
                  proc_str(to) + " twice (" +
                  std::to_string(it->second.visited.size()) +
                  " procs crossed)");
    }
    it->second.visited.push_back(to);
  });
}

void Checker::on_fwd_pointer(ProcId at, std::uint64_t obj, ProcId to) {
  dispatch([this, at, obj, to] { fwd_mirror_[{at, obj}] = to; });
}

void Checker::on_fwd_erase(ProcId at, std::uint64_t obj) {
  dispatch([this, at, obj] { fwd_mirror_.erase({at, obj}); });
}

void Checker::on_chase_end(std::uint64_t chase, ProcId resting) {
  dispatch([this, chase, resting] {
    auto it = chases_.find(chase);
    if (it == chases_.end()) return;
    // Path compression on arrival: every processor the chase crossed must
    // now point directly at the resting place (one stale hop is one extra
    // bounce for every later client that consults it).
    for (ProcId h : it->second.visited) {
      if (h == resting) continue;
      auto fwd = fwd_mirror_.find({h, it->second.obj});
      if (fwd == fwd_mirror_.end() || fwd->second != resting) {
        violate(Violation::kChainNotCompressed, h,
                "obj " + std::to_string(it->second.obj) +
                    ": after a chase to " + proc_str(resting) + ", proc " +
                    proc_str(h) +
                    (fwd == fwd_mirror_.end()
                         ? " has no forwarding pointer"
                         : " still points at " + proc_str(fwd->second)));
      }
    }
    chases_.erase(it);
  });
}

// ---- reliable transport -----------------------------------------------------

void Checker::on_seq_sent(ProcId src, ProcId dst, std::uint64_t seq) {
  dispatch([this, src, dst, seq] {
    ++stats_.seqs_sent;
    if (!channels_[{src, dst}].sent.insert(seq).second) {
      violate(Violation::kSeqDuplicate, src,
              "link " + proc_str(src) + "->" + proc_str(dst) + " seq " +
                  std::to_string(seq) + " assigned twice");
    }
  });
}

void Checker::on_seq_delivered(ProcId src, ProcId dst, std::uint64_t seq,
                               bool fresh) {
  dispatch([this, src, dst, seq, fresh] {
    ++stats_.seqs_delivered;
    Channel& ch = channels_[{src, dst}];
    if (ch.sent.find(seq) == ch.sent.end()) {
      violate(Violation::kSeqDuplicate, dst,
              "link " + proc_str(src) + "->" + proc_str(dst) +
                  " delivered seq " + std::to_string(seq) +
                  " that was never sent");
      return;
    }
    const bool first = ch.delivered.insert(seq).second;
    if (first != fresh) {
      // The transport's dedup filter disagrees with an independent replay
      // of the delivery history: it either surfaced a duplicate as fresh or
      // swallowed a first delivery as stale.
      violate(Violation::kSeqDuplicate, dst,
              "link " + proc_str(src) + "->" + proc_str(dst) + " seq " +
                  std::to_string(seq) + ": transport says " +
                  (fresh ? "fresh" : "duplicate") + ", history says " +
                  (first ? "fresh" : "duplicate"));
    }
  });
}

void Checker::on_seq_abandoned(ProcId src, ProcId dst, std::uint64_t seq) {
  dispatch([this, src, dst, seq] {
    ++stats_.seqs_abandoned;
    channels_[{src, dst}].abandoned.insert(seq);
  });
}

// ---- replies ----------------------------------------------------------------

std::uint64_t Checker::on_call_begin(ProcId caller, std::uint64_t obj) {
  const std::uint64_t id = fresh_id(call_cnt_);
  dispatch([this, id, caller, obj] {
    ++stats_.calls;
    calls_.emplace(id, Call{caller, obj, 0});
  });
  return id;
}

void Checker::on_reply(std::uint64_t call, ProcId at) {
  dispatch([this, call, at] {
    ++stats_.replies;
    auto it = calls_.find(call);
    if (it == calls_.end()) return;
    Call& c = it->second;
    ++c.replies;
    if (c.replies > 1) {
      violate(Violation::kDuplicateReply, at,
              "call #" + std::to_string(call) + " on obj " +
                  std::to_string(c.obj) + " from proc " + proc_str(c.caller) +
                  " received reply " + std::to_string(c.replies) + " times");
    }
  });
}

void Checker::on_call_abandoned(std::uint64_t call) {
  dispatch([this, call] {
    ++stats_.calls_abandoned;
    auto it = calls_.find(call);
    if (it == calls_.end()) return;
    it->second.abandoned = true;
  });
}

// ---- fail-stop crashes ------------------------------------------------------

void Checker::on_fail_stop(ProcId p, Cycles at) {
  dispatch([this, p, at] {
    ++stats_.fail_stops;
    auto [it, fresh] = fail_epochs_.emplace(p, at);
    if (!fresh && at < it->second) it->second = at;  // earliest death wins
  });
}

void Checker::on_policy_config(Cycles move_cooldown) {
  policy_cooldown_ = move_cooldown;
}

void Checker::on_policy_move(std::uint64_t obj) {
  dispatch([this, obj] {
    ++stats_.policy_moves;
    const Cycles t = now_();
    auto [it, fresh] = policy_last_move_.emplace(obj, t);
    if (fresh) return;
    if (policy_cooldown_ > 0 && t - it->second < policy_cooldown_) {
      violate(Violation::kPolicyMoveInCooldown, sim::kNoProc,
              "obj " + std::to_string(obj) + " moved at cycle " +
                  std::to_string(t) + ", only " +
                  std::to_string(t - it->second) +
                  " cycles after its previous policy move (cooldown " +
                  std::to_string(policy_cooldown_) + ")");
    }
    it->second = t;
  });
}

void Checker::on_policy_flip(std::uint64_t obj, bool to_replicated) {
  dispatch([this, obj, to_replicated] {
    ++stats_.policy_flips;
    auto [it, fresh] = policy_mode_.emplace(obj, false);
    (void)fresh;
    if (it->second == to_replicated) {
      violate(Violation::kPolicyRedundantFlip, sim::kNoProc,
              "obj " + std::to_string(obj) + " flipped to " +
                  std::string(to_replicated ? "replicated" : "plain") +
                  " mode without a phase edge (already there)");
    }
    it->second = to_replicated;
  });
}

void Checker::on_lease(ProcId p, Cycles expiry) {
  dispatch([this, p, expiry] {
    ++stats_.leases;
    auto [it, fresh] = lease_expiry_.emplace(p, expiry);
    if (fresh) return;
    if (expiry < it->second) {
      violate(Violation::kLeaseRegression, p,
              "proc " + proc_str(p) + " lease renewed to cycle " +
                  std::to_string(expiry) + " after a later expiry " +
                  std::to_string(it->second));
      return;
    }
    it->second = expiry;
  });
}

void Checker::on_suspect(ProcId p) {
  (void)p;
  dispatch([this] { ++stats_.suspicions; });
}

void Checker::on_rehome(std::uint64_t obj, ProcId from, ProcId to) {
  dispatch([this, obj, from, to] {
    ++stats_.rehomes;
    if (!rehomed_.insert({obj, from}).second) {
      violate(Violation::kDuplicateRehome, to,
              "obj " + std::to_string(obj) + " recovered from failed proc " +
                  proc_str(from) + " more than once");
    }
    auto it = owner_mirror_.find(obj);
    if (it != owner_mirror_.end() && it->second != from) {
      violate(Violation::kDuplicateRehome, to,
              "obj " + std::to_string(obj) + " re-homed " + proc_str(from) +
                  " -> " + proc_str(to) + " but committed owner was " +
                  proc_str(it->second));
    }
    // A recovery commit is a relocation commit: keep the owner mirror and
    // the causal classification of later accesses coherent with it.
    owner_mirror_[obj] = to;
    last_commit_[obj] = Commit{to, clocks_[to]};
  });
}

// ---- coherence directory ----------------------------------------------------

void Checker::on_line_state(std::uint64_t line, bool modified,
                            unsigned sharer_count, bool owner_valid,
                            bool owner_is_sharer) {
  dispatch([this, line, modified, sharer_count, owner_valid, owner_is_sharer] {
    ++stats_.line_checks;
    if (modified) {
      if (sharer_count != 1 || !owner_valid || !owner_is_sharer) {
        violate(Violation::kCoherenceConflict, sim::kNoProc,
                "line " + std::to_string(line) + " Modified with " +
                    std::to_string(sharer_count) + " sharers, owner " +
                    (owner_valid ? (owner_is_sharer ? "ok" : "not a sharer")
                                 : "invalid"));
      }
    } else if (owner_valid) {
      violate(Violation::kCoherenceConflict, sim::kNoProc,
              "line " + std::to_string(line) +
                  " clean but still has a registered owner");
    }
  });
}

// ---- lifecycle --------------------------------------------------------------

void Checker::finalize() {
  replay();  // pick up anything logged since the last window barrier
  if (stats_.finalized) return;
  stats_.finalized = true;
  for (const auto& [link, ch] : channels_) {
    for (std::uint64_t seq : ch.sent) {
      if (ch.delivered.count(seq) == 0 && ch.abandoned.count(seq) == 0) {
        violate(Violation::kSeqGap, link.first,
                "link " + proc_str(link.first) + "->" + proc_str(link.second) +
                    " seq " + std::to_string(seq) +
                    " sent but never delivered nor excused by an exhausted "
                    "retry budget");
      }
    }
  }
  for (const auto& [id, c] : calls_) {
    if (c.replies == 0 && !c.abandoned) {
      violate(Violation::kLostReply, c.caller,
              "call #" + std::to_string(id) + " on obj " +
                  std::to_string(c.obj) + " never saw its reply");
    }
  }
}

}  // namespace cm::check
