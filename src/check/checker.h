// Simulated-machine race / invariant checker.
//
// The paper's central claim is that a migration annotation "changes only
// performance, never semantics" (§3). After four mechanisms, a fault layer
// and a distributed locator, a bug in any of them would silently *look*
// like a semantics-preserving run: the benches assert end states, not the
// machine discipline that produced them. The Checker enforces that
// discipline mechanically, in the spirit of DCESH's machine-level
// formalisation of distributed RPC:
//
//  * HAPPENS-BEFORE: one vector clock per simulated processor, advanced by
//    message delivery — every Network send/deliver edge is a happens-before
//    edge. The clocks classify violations (causally-after vs. concurrent
//    with the relevant relocation commit) in the report.
//  * PHANTOM ACCESSES: an activation reading or writing an object's state
//    while its processor is not the object's current host under RPC/CM —
//    the bug class an omniscient ObjectSpace oracle can hide.
//  * LOCK DISCIPLINE: a runtime lock graph over sim::AsyncMutex instances;
//    flags order inversions (a cycle in the acquired-while-holding graph)
//    and actual deadlock cycles in the wait-for graph.
//  * PROTOCOL INVARIANTS: object moves commit home-serialised and only away
//    from their committed owner; forwarding chases are acyclic and chains
//    are compressed on arrival; ReliableTransport sequence numbers are
//    delivered exactly once and gapless after dedup; each RPC's reply is
//    delivered exactly once; a Modified coherence line has exactly one
//    sharer (its owner).
//
// Nonintrusive by construction, exactly like sim::Tracer: the Engine holds
// a null-by-default Checker*, every instrumentation site is a single
// pointer test, and recording never schedules events, draws random numbers
// or charges simulated cycles — checker-on runs are bit-identical to
// checker-off runs, and reports are byte-identical across same-seed runs.
// Violations are recorded (bounded) and counted; in Debug builds they
// abort by default so a broken protocol cannot masquerade as a slow one.
//
// Sharded runs (DESIGN.md §12): the checker's tables are global, so hooks
// fired concurrently from kThreads shard workers cannot mutate them
// directly. During a multi-shard window loop every hook instead appends a
// deferred closure to the calling shard's private log, tagged with the
// emitting event's (cycle, label); the window barrier's serial phase
// replays all logs merged in (cycle, label) order — exactly the order a
// one-shard run fires the hooks in — so stats, violation records and their
// timestamps are byte-identical for every shard count and backend.
// Caller-visible ids (send tokens, chase ids, call ids) are minted
// immediately from per-lane counters, `(lane << 40) | count`, making them
// pure functions of causal history rather than of replay timing. Outside a
// sharded run (every pre-shard unit test) hooks apply directly and the
// checker behaves exactly as before.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sim/engine.h"
#include "sim/types.h"

namespace cm::check {

using sim::Cycles;
using sim::ProcId;

/// Everything the checker can flag. One enum keeps counting cheap and lets
/// the seeded-bug fixtures assert the exact violation kind.
enum class Violation : unsigned {
  kPhantomRead = 0,       // activation read state away from the object's host
  kPhantomWrite,          // ... or wrote it
  kOwnerDivergence,       // host truth drifted from the committed move history
  kLockOrderInversion,    // cycle in the acquired-while-holding graph
  kDeadlock,              // cycle in the wait-for graph (real deadlock)
  kMoveOverlap,           // two moves of one object in flight at once
  kMoveFromNonOwner,      // a move committed away from a non-owner
  kForwardCycle,          // forwarding chase revisited a processor
  kChainNotCompressed,    // a crossed hop still points astray after arrival
  kSeqDuplicate,          // transport delivered / deduped a seq incoherently
  kSeqGap,                // finalize: a sent seq neither delivered nor
                          // excused by an exhausted retry budget
  kDuplicateReply,        // one call's reply delivered more than once
  kLostReply,             // finalize: a call never saw its reply
  kCoherenceConflict,     // Modified line without exactly one owning sharer
  kPostFailureDelivery,   // a message sent at/after its source's fail-stop
                          // epoch was delivered (dead NICs must stay dead)
  kDuplicateRehome,       // one crash recovered the same object twice, or a
                          // re-home committed away from a non-owner
  kLeaseRegression,       // a processor's lease expiry moved backwards
  kPolicyMoveInCooldown,  // rebalancer issued a move inside the object's
                          // migration-hysteresis cooldown window
  kPolicyRedundantFlip,   // replication-mode flip without a phase edge (the
                          // object was already in the requested mode)
  kCount,
};

[[nodiscard]] constexpr std::string_view violation_name(Violation v) {
  switch (v) {
    case Violation::kPhantomRead: return "phantom_read";
    case Violation::kPhantomWrite: return "phantom_write";
    case Violation::kOwnerDivergence: return "owner_divergence";
    case Violation::kLockOrderInversion: return "lock_order";
    case Violation::kDeadlock: return "deadlock";
    case Violation::kMoveOverlap: return "move_overlap";
    case Violation::kMoveFromNonOwner: return "move_from_non_owner";
    case Violation::kForwardCycle: return "forward_cycle";
    case Violation::kChainNotCompressed: return "chain_not_compressed";
    case Violation::kSeqDuplicate: return "seq_duplicate";
    case Violation::kSeqGap: return "seq_gap";
    case Violation::kDuplicateReply: return "duplicate_reply";
    case Violation::kLostReply: return "lost_reply";
    case Violation::kCoherenceConflict: return "coherence_conflict";
    case Violation::kPostFailureDelivery: return "post_failure_delivery";
    case Violation::kDuplicateRehome: return "duplicate_rehome";
    case Violation::kLeaseRegression: return "lease_regression";
    case Violation::kPolicyMoveInCooldown: return "policy_move_in_cooldown";
    case Violation::kPolicyRedundantFlip: return "policy_redundant_flip";
    case Violation::kCount: break;
  }
  return "?";
}

struct CheckConfig {
  /// Abort the process on the first violation. Defaults on in Debug builds
  /// (a broken machine model should stop the run, not be summarised), off
  /// in Release (fixtures assert on the report instead).
  bool abort_on_violation =
#ifndef NDEBUG
      true;
#else
      false;
#endif
  /// Detailed records kept; counting is always exact.
  std::size_t max_records = 256;
};

/// One recorded violation. Identifiers are the checker's dense first-seen
/// ids (never host addresses), so records — and their JSON export — are
/// byte-identical across same-seed runs.
struct ViolationRecord {
  Violation kind;
  Cycles at;
  ProcId proc;
  std::string detail;
};

/// Flat counters exported under "check.*" keys (see check/report.h).
struct CheckStats {
  std::uint64_t sends = 0;           // happens-before edges opened
  std::uint64_t delivers = 0;        // ... and closed by a delivery
  std::uint64_t accesses = 0;        // object-access locality checks
  std::uint64_t lock_attempts = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t moves = 0;           // completed move windows
  std::uint64_t chases = 0;          // forwarding chases traced
  std::uint64_t chase_hops = 0;
  std::uint64_t seqs_sent = 0;
  std::uint64_t seqs_delivered = 0;
  std::uint64_t seqs_abandoned = 0;  // budget-exhausted (excused) sends
  std::uint64_t calls = 0;           // replied-exactly-once windows opened
  std::uint64_t replies = 0;
  std::uint64_t calls_abandoned = 0; // windows excused by a typed ft failure
  std::uint64_t line_checks = 0;     // coherence directory-state checks
  std::uint64_t fail_stops = 0;      // planned NIC deaths registered
  std::uint64_t leases = 0;          // lease renewals observed
  std::uint64_t suspicions = 0;      // failure-detector verdicts
  std::uint64_t rehomes = 0;         // object recovery commits
  std::uint64_t policy_moves = 0;    // rebalancer-issued object moves
  std::uint64_t policy_flips = 0;    // phase-detector replication flips
  bool finalized = false;
  std::uint64_t total_violations = 0;
  std::uint64_t by_kind[static_cast<unsigned>(Violation::kCount)] = {};
};

class Checker {
 public:
  /// Violations are timestamped with `engine.now()` at record time (or the
  /// emitting event's cycle when replayed from a shard log). The caller
  /// installs the checker with `engine.set_checker(&c)` (mirroring Tracer)
  /// and should call `finalize()` once the run has drained. Construction
  /// registers the engine's window-barrier hook for deferred replay.
  Checker(sim::Engine& engine, ProcId nprocs, CheckConfig cfg = {});
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // ---- happens-before -----------------------------------------------------
  /// A message leaves `src` for `dst`; returns a token carrying the sender's
  /// clock that the matching `on_deliver` joins. Called once per physical
  /// copy (a duplicated message opens two edges; a dropped one is never
  /// closed, which is correct: nothing was learned from it).
  std::uint64_t on_send(ProcId src, ProcId dst);
  void on_deliver(ProcId dst, std::uint64_t token);
  [[nodiscard]] const std::vector<std::uint64_t>& clock(ProcId p) const {
    return clocks_[p];
  }

  // ---- phantom object accesses -------------------------------------------
  /// An activation running on `proc` is about to touch `obj`, whose current
  /// host (ground truth at this instant) is `host`. Under RPC/CM the two
  /// must coincide; the report classifies a mismatch against the clock of
  /// the object's last committed relocation.
  void on_object_access(ProcId proc, std::uint64_t obj, ProcId host,
                        bool write);

  // ---- lock graph ---------------------------------------------------------
  /// Call-site discipline (see core/mobile.cc): `attempt` immediately
  /// before `co_await mutex.lock()`, `acquired` immediately after it
  /// returns, `released` BEFORE `mutex.unlock()` (unlock hands off and
  /// resumes the next waiter synchronously). `agent` identifies the logical
  /// thread (the activation's Ctx address); `mutex` the lock.
  void on_lock_attempt(const void* agent, const void* mutex, const char* name);
  void on_lock_acquired(const void* agent, const void* mutex, const char* name);
  void on_lock_released(const void* agent, const void* mutex);

  // ---- object-move protocol ----------------------------------------------
  /// A mover won the object's serialisation (directory-shard mutex or the
  /// oracle transfer lock) and the move protocol is now in flight.
  void on_move_begin(std::uint64_t obj, ProcId mover);
  /// The object's host binding flipped `from` -> `to` (ObjectSpace::move).
  void on_move_commit(std::uint64_t obj, ProcId from, ProcId to);
  /// The serialisation window closed (directory entry flipped / lock about
  /// to be released). Overlapping [begin, end) windows violate
  /// home-serialisation.
  void on_move_end(std::uint64_t obj);

  // ---- forwarding chains --------------------------------------------------
  std::uint64_t on_chase_begin(std::uint64_t obj, ProcId start);
  void on_chase_hop(std::uint64_t chase, ProcId from, ProcId to);
  /// Mirror of forwarding-pointer writes/erases, kept so compression can be
  /// verified without trusting the locator's own tables.
  void on_fwd_pointer(ProcId at, std::uint64_t obj, ProcId to);
  void on_fwd_erase(ProcId at, std::uint64_t obj);
  /// The chase found the object at `resting`; every crossed hop must now
  /// point directly at it (path compression on arrival).
  void on_chase_end(std::uint64_t chase, ProcId resting);

  // ---- reliable transport -------------------------------------------------
  void on_seq_sent(ProcId src, ProcId dst, std::uint64_t seq);
  /// `fresh` is the transport's own dedup verdict; the checker keeps an
  /// independent delivered-set and flags any disagreement.
  void on_seq_delivered(ProcId src, ProcId dst, std::uint64_t seq, bool fresh);
  /// The send exhausted a bounded retry budget: the seq is excused from the
  /// gapless check (the recovery path owns correctness from here).
  void on_seq_abandoned(ProcId src, ProcId dst, std::uint64_t seq);

  // ---- replies ------------------------------------------------------------
  /// Open a replied-exactly-once window for a remote call; returns its id.
  std::uint64_t on_call_begin(ProcId caller, std::uint64_t obj);
  void on_reply(std::uint64_t call, ProcId at);
  /// The call unwound with a typed fault-tolerance failure instead of a
  /// reply (e.g. its object was lost): excuse the window from the
  /// lost-reply check — the application-level handler owns it now.
  void on_call_abandoned(std::uint64_t call);

  // ---- fail-stop crashes ---------------------------------------------------
  /// Ground truth: `p`'s NIC fail-stops at cycle `at` (from the FaultPlan).
  /// From that cycle on, no message sent by `p` may ever be delivered.
  void on_fail_stop(ProcId p, Cycles at);
  /// The failure detector renewed `p`'s lease until `expiry`; leases must
  /// only ever move forward.
  void on_lease(ProcId p, Cycles expiry);
  /// The failure detector suspected `p` at the current cycle.
  void on_suspect(ProcId p);
  /// Object recovery committed: `obj` re-homed `from` -> `to`. Each (obj,
  /// failed home) pair may commit at most once, and `from` must be the
  /// object's committed owner.
  void on_rehome(std::uint64_t obj, ProcId from, ProcId to);

  // ---- placement / replication policy --------------------------------------
  /// Setup-time: the policy layer's per-object migration cooldown, the
  /// hysteresis bound `on_policy_move` enforces. Call before the run starts.
  void on_policy_config(Cycles move_cooldown);
  /// The rebalancer issued a move for `obj`. Invariant: at least
  /// `move_cooldown` cycles since the previous policy move of the same
  /// object (migration hysteresis; per-object cooldown).
  void on_policy_move(std::uint64_t obj);
  /// The phase detector flipped `obj`'s replication mode. Invariant: the
  /// flip follows a phase edge, i.e. the mode actually changes (objects
  /// start non-replicated; flipping to the current mode is redundant).
  void on_policy_flip(std::uint64_t obj, bool to_replicated);

  // ---- coherence directory ------------------------------------------------
  /// Directory-state facts after a transition commits. Invariant: modified
  /// implies a valid owner that is the sole sharer; clean implies no owner.
  void on_line_state(std::uint64_t line, bool modified, unsigned sharer_count,
                     bool owner_valid, bool owner_is_sharer);

  // ---- lifecycle / report -------------------------------------------------
  /// End-of-run checks (seq gaps, lost replies). Idempotent.
  void finalize();

  [[nodiscard]] const CheckStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<ViolationRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return stats_.total_violations;
  }
  [[nodiscard]] std::uint64_t count(Violation v) const noexcept {
    return stats_.by_kind[static_cast<unsigned>(v)];
  }

 private:
  struct MoveWindow {
    ProcId mover;
    bool open = false;
  };
  struct Chase {
    std::uint64_t obj;
    std::vector<ProcId> visited;  // in hop order, starting at the first host
    std::set<std::pair<ProcId, ProcId>> edges;  // pointers followed
  };
  struct Channel {
    std::set<std::uint64_t> sent;
    std::set<std::uint64_t> delivered;
    std::set<std::uint64_t> abandoned;
  };
  struct Call {
    ProcId caller;
    std::uint64_t obj;
    unsigned replies = 0;
    bool abandoned = false;
  };
  /// One happens-before edge in flight: the sender's clock, plus who sent
  /// it and when (so delivery can be tested against fail-stop epochs).
  struct Edge {
    std::vector<std::uint64_t> clock;
    ProcId src;
    Cycles sent_at;
  };

  /// One hook occurrence captured during a sharded window, replayed at the
  /// next barrier. (t, label) is the emitting event's identity — the merge
  /// key that reconstructs the one-shard hook order.
  struct Deferred {
    Cycles t;
    std::uint64_t label;
    std::function<void()> fn;
  };
  struct ShardLog {
    std::vector<Deferred> entries;
  };

  /// Run `fn` now (classic runs) or append it to the calling shard's log
  /// (multi-shard window loops); the barrier replay applies it later under
  /// the emitting event's timestamp.
  template <class F>
  void dispatch(F&& fn) {
    if (!engine_->in_sharded_run()) {
      fn();
      return;
    }
    const unsigned s = engine_->current_shard();
    if (s >= logs_.size()) [[unlikely]] {
      assert(!engine_->threads_active());
      logs_.resize(s + 1);
    }
    logs_[s].entries.push_back(
        Deferred{engine_->now(), engine_->current_label(),
                 std::function<void()>(std::forward<F>(fn))});
  }

  /// Apply every deferred hook, merged across shard logs by (t, label).
  /// Serial phase only (window barrier / finalize).
  void replay();

  /// Mint a caller-visible id from the calling lane's counter: shard-count
  /// invariant, and the legacy sequence 1, 2, 3, ... for lane-0 programs.
  std::uint64_t fresh_id(std::vector<std::uint64_t>& cnt);

  /// The cycle a violation or edge is stamped with: the engine clock, or
  /// the emitting event's cycle while replaying a shard log.
  [[nodiscard]] Cycles now_() const noexcept {
    return replaying_ ? replay_now_ : engine_->now();
  }

  void violate(Violation v, ProcId proc, std::string detail);
  void tick(ProcId p) { ++clocks_[p][p]; }
  void join(ProcId p, const std::vector<std::uint64_t>& other);
  /// a happened-before-or-equals b, componentwise.
  [[nodiscard]] static bool leq(const std::vector<std::uint64_t>& a,
                                const std::vector<std::uint64_t>& b);
  /// Dense first-seen id for a host address (locks, agents): reports carry
  /// these, never raw pointers, so output is reproducible.
  std::uint64_t id_of(std::unordered_map<const void*, std::uint64_t>& reg,
                      const void* p);
  [[nodiscard]] bool order_reachable(std::uint64_t from,
                                     std::uint64_t to) const;
  [[nodiscard]] const std::string& mutex_name(std::uint64_t id) const;

  sim::Engine* engine_;
  CheckConfig cfg_;
  ProcId nprocs_;
  CheckStats stats_;
  std::vector<ViolationRecord> records_;

  // deferred-mode state (sharded runs)
  std::vector<ShardLog> logs_;               // one per shard
  std::vector<std::uint64_t> send_cnt_;      // per-lane id counters
  std::vector<std::uint64_t> chase_cnt_;
  std::vector<std::uint64_t> call_cnt_;
  bool replaying_ = false;
  Cycles replay_now_ = 0;

  // happens-before
  std::vector<std::vector<std::uint64_t>> clocks_;
  std::unordered_map<std::uint64_t, Edge> in_flight_;

  // fail-stop
  std::map<ProcId, Cycles> fail_epochs_;   // ground-truth NIC death cycles
  std::map<ProcId, Cycles> lease_expiry_;  // latest renewal per processor
  std::set<std::pair<std::uint64_t, ProcId>> rehomed_;  // (obj, failed home)

  // object history
  std::unordered_map<std::uint64_t, ProcId> owner_mirror_;
  std::unordered_map<std::uint64_t, MoveWindow> move_windows_;
  struct Commit {
    ProcId to;
    std::vector<std::uint64_t> clock;
  };
  std::unordered_map<std::uint64_t, Commit> last_commit_;

  // lock graph. The two address-keyed maps are the id_of() registries:
  // lookup-only (never iterated, never ordered), and every value they hand
  // out is a dense first-seen id — reports and the lock graph only ever
  // see those ids, so host addresses stay unobservable.
  // simlint: allow DS002
  std::unordered_map<const void*, std::uint64_t> mutex_ids_;
  // simlint: allow DS002
  std::unordered_map<const void*, std::uint64_t> agent_ids_;
  std::vector<std::string> mutex_names_;      // indexed by mutex id
  std::map<std::uint64_t, std::uint64_t> holder_;       // mutex -> agent
  std::map<std::uint64_t, std::uint64_t> waiting_;      // agent -> mutex
  std::map<std::uint64_t, std::vector<std::uint64_t>> held_;  // agent -> locks
  std::map<std::uint64_t, std::set<std::uint64_t>> order_edges_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> reported_orders_;

  // forwarding
  std::unordered_map<std::uint64_t, Chase> chases_;
  std::map<std::pair<ProcId, std::uint64_t>, ProcId> fwd_mirror_;

  // placement / replication policy
  Cycles policy_cooldown_ = 0;
  std::map<std::uint64_t, Cycles> policy_last_move_;
  std::map<std::uint64_t, bool> policy_mode_;  // true = replicated

  // transport + replies; calls_ is ordered by the (lane-structured) call id
  // so finalize walks windows in a shard-count-invariant order.
  std::map<std::pair<ProcId, ProcId>, Channel> channels_;
  std::map<std::uint64_t, Call> calls_;
};

}  // namespace cm::check
