// Per-processor hardware cache model: 64 KB, 16-byte lines, set-associative
// with LRU replacement (paper §4: "each processor has a 64K shared-memory
// cache with a line size of 16 bytes").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "shmem/addr.h"

namespace cm::shmem {

enum class LineState : std::uint8_t { kInvalid, kShared, kModified };

struct CacheParams {
  std::uint32_t size_bytes = 64 * 1024;
  std::uint32_t associativity = 2;

  [[nodiscard]] std::uint32_t num_sets() const {
    return size_bytes / kLineBytes / associativity;
  }
};

/// Result of installing a line: the victim that had to be evicted, if any.
struct Eviction {
  Line line = 0;
  bool dirty = false;  // dirty victims must write back to their home
};

class Cache {
 public:
  explicit Cache(CacheParams params = {});

  /// Current state of `line` in this cache (kInvalid if absent).
  [[nodiscard]] LineState lookup(Line line) const;

  /// Install `line` with `state`, possibly evicting an LRU victim from the
  /// line's set. Touches LRU. `line` must not already be present.
  std::optional<Eviction> install(Line line, LineState state);

  /// Change the state of a present line (e.g. S->M on upgrade, M->S on a
  /// directory fetch, ->I on invalidation). Returns false if absent (stale
  /// directory information; the caller acks anyway).
  bool set_state(Line line, LineState state);

  /// Mark a present line most-recently-used.
  void touch(Line line);

  [[nodiscard]] std::uint32_t num_sets() const { return params_.num_sets(); }
  [[nodiscard]] std::uint64_t occupancy() const { return present_; }

 private:
  struct Way {
    Line line = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;  // higher = more recent
  };

  [[nodiscard]] std::uint32_t set_of(Line line) const {
    // Fold the home-processor bits (bit 28 up in a line address) into the
    // index: home regions are 4 GiB-aligned, so without this the first
    // lines of every region would all collide in set 0.
    return static_cast<std::uint32_t>((line ^ (line >> 24)) %
                                      params_.num_sets());
  }
  [[nodiscard]] Way* find(Line line);
  [[nodiscard]] const Way* find(Line line) const;

  CacheParams params_;
  std::vector<Way> ways_;  // num_sets * associativity, set-major
  std::uint64_t clock_ = 0;
  std::uint64_t present_ = 0;
};

}  // namespace cm::shmem
