// Directory-based cache-coherent shared memory (the paper's "data
// migration" mechanism, §2.2): full-map invalidate protocol in the style of
// Alewife [CKA91], with per-processor 64 KB caches, per-processor memory
// controllers (hardware resources distinct from the CPUs), and all protocol
// messages travelling through the shared Network so coherence traffic shows
// up in the bandwidth figures.
//
// Protocol summary (home-centric, blocking caches — the paper's target is
// "similar to the Alewife machine, but without its multithreading
// capability", so a processor stalls on a miss):
//
//   read miss   : REQ_R -> home; if dirty, home FETCHes the owner (owner
//                 downgrades M->S and writes back); home sends DATA.
//   write miss  : REQ_W -> home; home invalidates all sharers (INV/ACK) or
//                 fetch-invalidates a dirty owner; home sends exclusive DATA
//                 (header-only grant for an upgrade of a current sharer).
//   eviction    : dirty victims write back to home; clean victims drop
//                 silently (the directory may hold stale sharer bits, and
//                 invalidations to stale sharers are acked without effect).
//
// Each directory entry serialises transactions FIFO; each protocol message
// occupies the home/remote memory controller for a fixed occupancy.
#pragma once

#include <bitset>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "shmem/addr.h"
#include "shmem/cache.h"
#include "sim/machine.h"
#include "sim/oneshot.h"
#include "sim/task.h"

namespace cm::shmem {

struct ProtocolParams {
  sim::Cycles controller_occupancy = 12;  // per protocol message handled
                                          // (directory lookup + state update)
  unsigned words_request = 2;            // REQ_R / REQ_W / INV / ACK / FETCH
  unsigned words_data = 2 + kLineBytes / 4;  // header + one 16-byte line

  /// LimitLESS directories [CKA91]: the hardware holds only this many
  /// sharer pointers per line; overflow traps to software on the home
  /// node's CPU, both when a sharer beyond the limit is added and when an
  /// overflowed line must be invalidated. 0 = full-map in hardware (the
  /// default used by the paper-reproduction benches).
  unsigned hw_sharer_pointers = 0;
  sim::Cycles limitless_trap = 150;  // software directory-extension handler
};

struct MemStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;  // includes upgrades
  std::uint64_t upgrades = 0;
  std::uint64_t invalidations = 0;  // INV messages sent
  std::uint64_t fetches = 0;        // dirty-owner interventions
  std::uint64_t writebacks = 0;     // dirty evictions
  std::uint64_t evictions = 0;
  std::uint64_t limitless_traps = 0;  // software directory-extension traps
  std::uint64_t prefetches = 0;       // prefetch transactions issued
  std::uint64_t mshr_merges = 0;      // demand accesses merged into an
                                      // in-flight transaction

  [[nodiscard]] std::uint64_t hits() const { return read_hits + write_hits; }
  [[nodiscard]] std::uint64_t misses() const {
    return read_misses + write_misses;
  }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits() + misses();
    return total == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(total);
  }
};

/// Upper bound on machine size for the full-map directory's sharer vector.
inline constexpr unsigned kMaxProcs = 256;
using SharerSet = std::bitset<kMaxProcs>;

class CoherentMemory {
 public:
  CoherentMemory(sim::Machine& machine, net::Network& network,
                 CacheParams cache_params = {}, ProtocolParams params = {});

  /// Allocate `bytes` of shared memory homed on `home` (line-aligned).
  [[nodiscard]] Addr alloc(sim::ProcId home, std::uint64_t bytes) {
    return heap_.alloc(home, bytes);
  }

  /// Processor `p` reads [a, a+bytes): every touched line is brought to at
  /// least Shared in p's cache. Completes when all lines are present.
  [[nodiscard]] sim::Task<> read(sim::ProcId p, Addr a, unsigned bytes);

  /// Processor `p` writes [a, a+bytes): every touched line is brought to
  /// Modified in p's cache (read-modify-write and plain stores cost the
  /// same here).
  [[nodiscard]] sim::Task<> write(sim::ProcId p, Addr a, unsigned bytes);

  /// Non-blocking prefetch (§2.5: "prefetching will lower the relative
  /// cost of performing data migration"): start read acquisitions for
  /// every absent line of [a, a+bytes) and return immediately. A later
  /// `read` of the same lines merges with the in-flight transactions
  /// through the MSHRs instead of re-requesting.
  void prefetch(sim::ProcId p, Addr a, unsigned bytes);

  [[nodiscard]] const MemStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Cache& cache(sim::ProcId p) const { return caches_.at(p); }

  /// Test hooks: observable directory state for invariant checks.
  struct DirSnapshot {
    bool modified = false;
    sim::ProcId owner = sim::kNoProc;
    SharerSet sharers;
    bool busy = false;
  };
  [[nodiscard]] DirSnapshot dir_snapshot(Line line) const;

 private:
  struct Waiter {
    sim::ProcId requester;
    bool exclusive;
    sim::OneShot<sim::Unit> done;
  };
  struct Dir {
    bool modified = false;
    sim::ProcId owner = sim::kNoProc;
    SharerSet sharers;  // full-map presence vector
    bool busy = false;
    std::deque<Waiter> queue;
  };

  [[nodiscard]] sim::Task<> acquire(sim::ProcId p, Line line, bool exclusive);

  /// Per-(processor, line) miss-status holding register: concurrent
  /// requests for a line already in flight park here instead of issuing a
  /// duplicate transaction.
  struct Mshr {
    bool exclusive = false;
    std::vector<std::coroutine_handle<>> waiters;
  };
  [[nodiscard]] static std::uint64_t mshr_key(sim::ProcId p, Line line) {
    return (static_cast<std::uint64_t>(p) << 56) ^ line;
  }
  void on_request(sim::ProcId p, Line line, bool exclusive,
                  sim::OneShot<sim::Unit> done);
  [[nodiscard]] sim::Task<> serve_front(Line line);
  void handle_eviction(sim::ProcId p, const Eviction& victim);

  /// Awaitable: occupy proc `p`'s memory controller for one message.
  [[nodiscard]] auto controller(sim::ProcId p);
  /// LimitLESS software trap on the home CPU when the hardware pointer set
  /// overflows (no-op under a full-map configuration).
  [[nodiscard]] sim::Task<> maybe_trap(sim::ProcId home, std::size_t sharers);
  /// Awaitable: coherence message src -> dst, resume at delivery.
  [[nodiscard]] auto transfer(sim::ProcId src, sim::ProcId dst, unsigned words);

  sim::Machine* machine_;
  net::Network* network_;
  ProtocolParams params_;
  GlobalHeap heap_;
  std::vector<Cache> caches_;
  sim::ProcessorFile controllers_;  // FCFS memory controllers
  std::unordered_map<Line, Dir> dirs_;
  std::unordered_map<std::uint64_t, Mshr> mshrs_;
  MemStats stats_;
};

}  // namespace cm::shmem
