// Global shared address space and allocator.
//
// The paper's target machine "provides both private memory and shared
// memory"; shared data lives in a global address space whose home processor
// is encoded in the address (high bits), as on Alewife. This is a
// timing-only simulation: the actual bytes live in ordinary host objects;
// the shared-memory layer tracks coherence state and charges protocol
// traffic/latency for the address ranges the application touches.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace cm::shmem {

/// Global shared-memory address.
using Addr = std::uint64_t;

/// Cache-line-aligned address >> kLineShift.
using Line = std::uint64_t;

inline constexpr unsigned kLineShift = 4;  // 16-byte lines (paper §4)
inline constexpr unsigned kLineBytes = 1u << kLineShift;
inline constexpr unsigned kHomeShift = 32;  // home proc in bits [32..)

[[nodiscard]] inline Line line_of(Addr a) noexcept { return a >> kLineShift; }
[[nodiscard]] inline sim::ProcId home_of_addr(Addr a) noexcept {
  return static_cast<sim::ProcId>(a >> kHomeShift);
}
[[nodiscard]] inline sim::ProcId home_of_line(Line l) noexcept {
  return static_cast<sim::ProcId>(l >> (kHomeShift - kLineShift));
}

/// Number of lines an access [a, a+bytes) touches.
[[nodiscard]] inline unsigned lines_touched(Addr a, unsigned bytes) noexcept {
  if (bytes == 0) return 0;
  const Line first = line_of(a);
  const Line last = line_of(a + bytes - 1);
  return static_cast<unsigned>(last - first + 1);
}

/// Bump allocator over the global space: each processor owns a 4 GiB home
/// region; allocations are line-aligned so distinct objects never share a
/// cache line (no false sharing unless a client asks for it explicitly).
class GlobalHeap {
 public:
  explicit GlobalHeap(sim::ProcId nprocs) : next_(nprocs, 0) {}

  [[nodiscard]] Addr alloc(sim::ProcId home, std::uint64_t bytes) {
    assert(home < next_.size());
    const std::uint64_t aligned = (bytes + kLineBytes - 1) & ~static_cast<std::uint64_t>(kLineBytes - 1);
    const std::uint64_t off = next_[home];
    next_[home] = off + aligned;
    assert(next_[home] < (1ull << kHomeShift) && "home region exhausted");
    return (static_cast<Addr>(home) << kHomeShift) | off;
  }

 private:
  std::vector<std::uint64_t> next_;
};

}  // namespace cm::shmem
