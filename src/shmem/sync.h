// Synchronisation primitives built on cache-coherent shared memory.
//
// SpinLock: test-and-test-and-set on a cached line. While the lock is held,
// spinners wait on a locally cached Shared copy (no traffic); the holder's
// releasing write invalidates every spinner's copy, after which they all
// re-read (one miss each) and race to test-and-set (directory-serialised).
// This is the mechanism behind shared memory's bandwidth appetite under
// write-shared data (Fig 3 / Tables 2, 4): every lock handoff costs O(k)
// protocol messages for k spinners.
//
// SeqLock: version-based optimistic reads, used by the shared-memory B-tree
// so lookups replicate read-shared node lines in every reader's cache — the
// "automatic replication" advantage the paper attributes to cache-coherent
// shared memory.
//
// Both primitives keep their logical state (held/version) in host variables;
// the shared-memory layer supplies timing and traffic for the address each
// primitive occupies.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "shmem/coherent_memory.h"
#include "sim/task.h"

namespace cm::shmem {

class SpinLock {
 public:
  SpinLock(CoherentMemory& mem, sim::ProcId home)
      : mem_(&mem), addr_(mem.alloc(home, 4)) {}

  /// Acquire from processor `p`; suspends while contended.
  [[nodiscard]] sim::Task<> acquire(sim::ProcId p);

  /// Release from processor `p` (must be the holder).
  [[nodiscard]] sim::Task<> release(sim::ProcId p);

  [[nodiscard]] bool held() const noexcept { return held_; }
  [[nodiscard]] sim::ProcId holder() const noexcept { return holder_; }
  [[nodiscard]] Addr addr() const noexcept { return addr_; }

 private:
  CoherentMemory* mem_;
  Addr addr_;
  bool held_ = false;
  sim::ProcId holder_ = sim::kNoProc;
  std::vector<std::coroutine_handle<>> spinners_;
};

class SeqLock {
 public:
  SeqLock(CoherentMemory& mem, sim::ProcId home)
      : mem_(&mem), addr_(mem.alloc(home, 8)) {}

  /// Begin an optimistic read from `p`: returns an even version once no
  /// write is in progress. The caller then reads the protected data and
  /// calls `validate`.
  [[nodiscard]] sim::Task<std::uint64_t> begin_read(sim::ProcId p);

  /// Re-read the version from `p`; true iff it still equals `v` (the
  /// optimistic read was consistent).
  [[nodiscard]] sim::Task<bool> validate(sim::ProcId p, std::uint64_t v);

  /// Writer entry/exit (the caller must provide mutual exclusion between
  /// writers, e.g. with a SpinLock).
  [[nodiscard]] sim::Task<> begin_write(sim::ProcId p);
  [[nodiscard]] sim::Task<> end_write(sim::ProcId p);

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  CoherentMemory* mem_;
  Addr addr_;
  std::uint64_t version_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace cm::shmem
