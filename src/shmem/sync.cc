#include "shmem/sync.h"

#include <cassert>
#include <utility>

namespace cm::shmem {

sim::Task<> SpinLock::acquire(sim::ProcId p) {
  for (;;) {
    // Test: read the flag (first probe misses; spinning probes hit).
    co_await mem_->read(p, addr_, 4);
    if (!held_) {
      // Test-and-set: needs the line exclusive.
      co_await mem_->write(p, addr_, 4);
      if (!held_) {
        held_ = true;
        holder_ = p;
        co_return;
      }
      // Lost the race to another processor's RMW; back to spinning.
    }
    // Wait for the holder's releasing write to invalidate our copy.
    co_await sim::suspend_to(
        [this](std::coroutine_handle<> h) { spinners_.push_back(h); });
  }
}

sim::Task<> SpinLock::release(sim::ProcId p) {
  assert(held_ && holder_ == p);
  held_ = false;
  holder_ = sim::kNoProc;
  // The releasing store invalidates every spinner's Shared copy (the
  // coherence traffic of a contended handoff).
  co_await mem_->write(p, addr_, 4);
  auto woken = std::exchange(spinners_, {});
  for (auto h : woken) h.resume();
}

sim::Task<std::uint64_t> SeqLock::begin_read(sim::ProcId p) {
  for (;;) {
    co_await mem_->read(p, addr_, 8);
    if ((version_ & 1) == 0) co_return version_;
    // A write is in progress; wait for it to finish (its end_write store
    // invalidates our cached copy of the version line).
    co_await sim::suspend_to(
        [this](std::coroutine_handle<> h) { waiters_.push_back(h); });
  }
}

sim::Task<bool> SeqLock::validate(sim::ProcId p, std::uint64_t v) {
  co_await mem_->read(p, addr_, 8);
  co_return version_ == v;
}

sim::Task<> SeqLock::begin_write(sim::ProcId p) {
  assert((version_ & 1) == 0 && "concurrent writers; guard with a SpinLock");
  ++version_;
  co_await mem_->write(p, addr_, 8);
}

sim::Task<> SeqLock::end_write(sim::ProcId p) {
  assert((version_ & 1) == 1);
  ++version_;
  co_await mem_->write(p, addr_, 8);
  auto woken = std::exchange(waiters_, {});
  for (auto h : woken) h.resume();
}

}  // namespace cm::shmem
