#include "shmem/cache.h"

#include <cassert>

namespace cm::shmem {

Cache::Cache(CacheParams params) : params_(params) {
  assert(params_.associativity > 0);
  assert(params_.size_bytes % (kLineBytes * params_.associativity) == 0);
  ways_.resize(static_cast<std::size_t>(params_.num_sets()) *
               params_.associativity);
}

Cache::Way* Cache::find(Line line) {
  const std::size_t base =
      static_cast<std::size_t>(set_of(line)) * params_.associativity;
  for (std::uint32_t w = 0; w < params_.associativity; ++w) {
    Way& way = ways_[base + w];
    if (way.state != LineState::kInvalid && way.line == line) return &way;
  }
  return nullptr;
}

const Cache::Way* Cache::find(Line line) const {
  return const_cast<Cache*>(this)->find(line);
}

LineState Cache::lookup(Line line) const {
  const Way* w = find(line);
  return w ? w->state : LineState::kInvalid;
}

std::optional<Eviction> Cache::install(Line line, LineState state) {
  assert(state != LineState::kInvalid);
  assert(find(line) == nullptr && "line already present");
  const std::size_t base =
      static_cast<std::size_t>(set_of(line)) * params_.associativity;

  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < params_.associativity; ++w) {
    Way& way = ways_[base + w];
    if (way.state == LineState::kInvalid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }

  std::optional<Eviction> evicted;
  if (victim->state != LineState::kInvalid) {
    evicted = Eviction{victim->line, victim->state == LineState::kModified};
    --present_;
  }
  victim->line = line;
  victim->state = state;
  victim->lru = ++clock_;
  ++present_;
  return evicted;
}

bool Cache::set_state(Line line, LineState state) {
  Way* w = find(line);
  if (w == nullptr) return false;
  if (state == LineState::kInvalid) {
    --present_;
  }
  w->state = state;
  return true;
}

void Cache::touch(Line line) {
  Way* w = find(line);
  if (w != nullptr) w->lru = ++clock_;
}

}  // namespace cm::shmem
