#include "shmem/coherent_memory.h"

#include <bit>
#include <cassert>

#include "check/checker.h"

namespace cm::shmem {
namespace {

/// Directory-state facts at a transition's commit point, for the invariant
/// "Modified implies a valid owner that is the sole sharer; clean implies no
/// owner". Called wherever a transaction finishes mutating a Dir entry.
void check_line(check::Checker* ck, Line line, bool modified,
                std::size_t sharer_count, bool owner_valid,
                bool owner_is_sharer) {
  if (ck == nullptr) return;
  ck->on_line_state(line, modified, static_cast<unsigned>(sharer_count),
                    owner_valid, owner_is_sharer);
}

}  // namespace

CoherentMemory::CoherentMemory(sim::Machine& machine, net::Network& network,
                               CacheParams cache_params, ProtocolParams params)
    : machine_(&machine),
      network_(&network),
      params_(params),
      heap_(machine.size()),
      controllers_(machine.size()) {
  assert(machine.size() <= kMaxProcs &&
         "full-map directory sharer vector is fixed-width");
  caches_.reserve(machine.size());
  for (sim::ProcId p = 0; p < machine.size(); ++p) {
    caches_.emplace_back(cache_params);
  }
}

auto CoherentMemory::controller(sim::ProcId p) {
  return sim::suspend_to([this, p](std::coroutine_handle<> h) {
    const sim::Cycles done = controllers_.acquire(p,
        machine_->engine().now(), params_.controller_occupancy);
    machine_->engine().at(done, [h] { h.resume(); });
  });
}

auto CoherentMemory::transfer(sim::ProcId src, sim::ProcId dst,
                              unsigned words) {
  return sim::suspend_to([this, src, dst, words](std::coroutine_handle<> h) {
    network_->send(src, dst, words, net::Traffic::kCoherence,
                   [h] { h.resume(); });
  });
}

sim::Task<> CoherentMemory::maybe_trap(sim::ProcId home,
                                       std::size_t sharers) {
  if (params_.hw_sharer_pointers == 0 ||
      sharers <= params_.hw_sharer_pointers) {
    co_return;
  }
  // The overflowed sharer set lives in software: the home CPU (not the
  // memory controller) runs the LimitLESS extension handler.
  ++stats_.limitless_traps;
  co_await machine_->compute(home, params_.limitless_trap);
}

sim::Task<> CoherentMemory::read(sim::ProcId p, Addr a, unsigned bytes) {
  const Line first = line_of(a);
  const Line last = line_of(a + (bytes == 0 ? 0 : bytes - 1));
  for (Line l = first; l <= last; ++l) co_await acquire(p, l, false);
}

sim::Task<> CoherentMemory::write(sim::ProcId p, Addr a, unsigned bytes) {
  const Line first = line_of(a);
  const Line last = line_of(a + (bytes == 0 ? 0 : bytes - 1));
  for (Line l = first; l <= last; ++l) co_await acquire(p, l, true);
}

sim::Task<> CoherentMemory::acquire(sim::ProcId p, Line line, bool exclusive) {
  Cache& c = caches_[p];
  {
    const LineState st = c.lookup(line);
    if (st == LineState::kModified ||
        (!exclusive && st == LineState::kShared)) {
      // Cache hit: the (1-2 cycle) hit latency is folded into the user-code
      // cycle charges, as instruction timing is in Proteus.
      exclusive ? ++stats_.write_hits : ++stats_.read_hits;
      c.touch(line);
      co_return;
    }
    if (exclusive) {
      ++stats_.write_misses;
      if (st == LineState::kShared) ++stats_.upgrades;
    } else {
      ++stats_.read_misses;
    }
  }

  for (;;) {
    const LineState st = c.lookup(line);
    if (st == LineState::kModified ||
        (!exclusive && st == LineState::kShared)) {
      // Satisfied by a transaction we merged with.
      c.touch(line);
      co_return;
    }

    // Merge with any in-flight transaction for this line (MSHR): wait for
    // it, then re-evaluate (a read in flight does not satisfy a write; the
    // loop issues the upgrade afterwards).
    const std::uint64_t key = mshr_key(p, line);
    if (auto it = mshrs_.find(key); it != mshrs_.end()) {
      ++stats_.mshr_merges;
      Mshr* m = &it->second;
      co_await sim::suspend_to(
          [m](std::coroutine_handle<> h) { m->waiters.push_back(h); });
      continue;
    }
    mshrs_.emplace(key, Mshr{exclusive, {}});

    const sim::ProcId home = home_of_line(line);
    sim::OneShot<sim::Unit> done;
    // Coherence traffic models the lossless hardware fabric: FaultyNetwork
    // never faults Traffic::kCoherence unless a plan opts in with
    // affect_coherence, and nothing composes that flag with this protocol
    // (pinned by FaultyNetwork.CoherenceTrafficUntouchedByDefault).
    // simlint: allow SS002
    network_->send(p, home, params_.words_request, net::Traffic::kCoherence,
                   [this, p, line, exclusive, done] {
                     on_request(p, line, exclusive, done);
                   });
    co_await done.get();

    // Install (re-check defensively).
    const LineState now_st = c.lookup(line);
    if (now_st == LineState::kInvalid) {
      auto victim = c.install(
          line, exclusive ? LineState::kModified : LineState::kShared);
      if (victim) handle_eviction(p, *victim);
    } else if (exclusive && now_st == LineState::kShared) {
      c.set_state(line, LineState::kModified);
      c.touch(line);
    } else {
      c.touch(line);
    }

    // Retire the MSHR and wake everyone who merged with us.
    auto node = mshrs_.extract(key);
    for (auto h : node.mapped().waiters) h.resume();
    co_return;
  }
}

void CoherentMemory::prefetch(sim::ProcId p, Addr a, unsigned bytes) {
  if (bytes == 0) return;
  const Line first = line_of(a);
  const Line last = line_of(a + bytes - 1);
  for (Line l = first; l <= last; ++l) {
    if (caches_[p].lookup(l) != LineState::kInvalid) continue;
    if (mshrs_.contains(mshr_key(p, l))) continue;  // already in flight
    ++stats_.prefetches;
    // Fire-and-forget read acquisition; demand accesses merge via the MSHR.
    sim::detach(acquire(p, l, /*exclusive=*/false));
  }
}

void CoherentMemory::on_request(sim::ProcId p, Line line, bool exclusive,
                                sim::OneShot<sim::Unit> done) {
  Dir& d = dirs_[line];
  d.queue.push_back(Waiter{p, exclusive, done});
  if (!d.busy) {
    d.busy = true;
    sim::detach(serve_front(line));
  }
}

sim::Task<> CoherentMemory::serve_front(Line line) {
  const sim::ProcId home = home_of_line(line);
  for (;;) {
    Dir& d = dirs_[line];
    assert(d.busy && !d.queue.empty());
    const Waiter w = d.queue.front();

    co_await controller(home);  // home handles the request message

    if (w.exclusive) {
      if (d.modified && d.owner != w.requester) {
        // Fetch-invalidate the dirty owner; data returns home first.
        ++stats_.fetches;
        const sim::ProcId owner = d.owner;
        co_await transfer(home, owner, params_.words_request);
        co_await controller(owner);
        caches_[owner].set_state(line, LineState::kInvalid);
        co_await transfer(owner, home, params_.words_data);
        co_await controller(home);
      } else if (!d.modified) {
        // Invalidate every other sharer and gather acks.
        SharerSet to_inval = d.sharers;
        to_inval.reset(w.requester);
        const int n = static_cast<int>(to_inval.count());
        if (n > 0) {
          // Invalidating an overflowed sharer set walks the software
          // directory extension.
          co_await maybe_trap(home, d.sharers.count());
          stats_.invalidations += static_cast<std::uint64_t>(n);
          auto remaining = std::make_shared<int>(n);
          sim::OneShot<sim::Unit> all_acked;
          for (sim::ProcId s = 0; s < machine_->size(); ++s) {
            if (!to_inval.test(s)) continue;
            // Lossless hardware fabric (see acquire): kCoherence traffic
            // is never faulted in any composed configuration.
            // simlint: allow SS002
            network_->send(
                home, s, params_.words_request, net::Traffic::kCoherence,
                [this, s, line, home, remaining, all_acked] {
                  // At the sharer: controller handles INV, then acks. A
                  // stale sharer (silent eviction) acks without effect.
                  const sim::Cycles fin = controllers_.acquire(s,
                      machine_->engine().now(), params_.controller_occupancy);
                  machine_->engine().at(fin, [this, s, line, home, remaining,
                                              all_acked] {
                    caches_[s].set_state(line, LineState::kInvalid);
                    // Lossless hardware fabric (see acquire).
                    // simlint: allow SS002
                    network_->send(s, home, params_.words_request,
                                   net::Traffic::kCoherence,
                                   [remaining, all_acked] {
                                     if (--*remaining == 0)
                                       all_acked.set(sim::Unit{});
                                   });
                  });
                });
          }
          co_await all_acked.get();
          co_await controller(home);  // process the final ack
        }
      }
      // Grant: full line unless the requester held a Shared copy (upgrade).
      const bool upgrade = d.sharers.test(w.requester) && !d.modified;
      d.modified = true;
      d.owner = w.requester;
      d.sharers.reset();
      d.sharers.set(w.requester);
      check_line(machine_->engine().checker(), line, d.modified,
                 d.sharers.count(), d.owner != sim::kNoProc,
                 d.owner != sim::kNoProc && d.sharers.test(d.owner));
      co_await transfer(home, w.requester,
                        upgrade ? params_.words_request : params_.words_data);
    } else {
      if (d.modified && d.owner != w.requester) {
        // Intervene at the dirty owner: downgrade M->S, write data back.
        ++stats_.fetches;
        const sim::ProcId owner = d.owner;
        co_await transfer(home, owner, params_.words_request);
        co_await controller(owner);
        caches_[owner].set_state(line, LineState::kShared);
        co_await transfer(owner, home, params_.words_data);
        co_await controller(home);
        d.modified = false;
        d.owner = sim::kNoProc;
        d.sharers.reset();
        d.sharers.set(owner);
      } else if (d.modified) {
        // Owner re-reading its own dirty line should have been a hit, but a
        // race with eviction can surface here; treat as a plain grant.
        d.modified = false;
        d.owner = sim::kNoProc;
      }
      d.sharers.set(w.requester);
      check_line(machine_->engine().checker(), line, d.modified,
                 d.sharers.count(), d.owner != sim::kNoProc,
                 d.owner != sim::kNoProc && d.sharers.test(d.owner));
      // Adding a sharer beyond the hardware pointer set traps to software.
      co_await maybe_trap(home, d.sharers.count());
      co_await transfer(home, w.requester, params_.words_data);
    }

    w.done.set(sim::Unit{});

    d.queue.pop_front();
    if (d.queue.empty()) {
      d.busy = false;
      co_return;
    }
    // Loop to serve the next queued transaction on this line.
  }
}

void CoherentMemory::handle_eviction(sim::ProcId p, const Eviction& victim) {
  ++stats_.evictions;
  if (!victim.dirty) return;  // clean lines drop silently
  ++stats_.writebacks;
  const Line line = victim.line;
  const sim::ProcId home = home_of_line(line);
  // Lossless hardware fabric (see acquire); a writeback additionally has
  // no waiter to strand — the directory update is its only effect.
  // simlint: allow SS002
  network_->send(p, home, params_.words_data, net::Traffic::kCoherence,
                 [this, p, line, home] {
                   const sim::Cycles fin = controllers_.acquire(home,
                       machine_->engine().now(), params_.controller_occupancy);
                   machine_->engine().at(fin, [this, p, line] {
                     Dir& d = dirs_[line];
                     if (d.modified && d.owner == p) {
                       d.modified = false;
                       d.owner = sim::kNoProc;
                       d.sharers.reset();
                       check_line(machine_->engine().checker(), line,
                                  d.modified, d.sharers.count(),
                                  d.owner != sim::kNoProc, false);
                     }
                   });
                 });
}

CoherentMemory::DirSnapshot CoherentMemory::dir_snapshot(Line line) const {
  auto it = dirs_.find(line);
  if (it == dirs_.end()) return {};
  return DirSnapshot{it->second.modified, it->second.owner, it->second.sharers,
                     it->second.busy};
}

}  // namespace cm::shmem
