// Fail-stop crash tolerance: the ft::FtLayer is the repo's implementation of
// core::FaultTolerance. It is built from three deterministic pieces:
//
//  * FAILURE DETECTION — every processor heartbeats its `monitors` ring
//    successors each `heartbeat_interval` cycles (zero-CPU NIC keepalives).
//    A planned NIC death (net::FaultPlan::nic_fail_at) silently eats those
//    heartbeats, so the sender's lease expires after `lease_misses` silent
//    intervals and the detector publishes a permanent suspicion with its
//    failure epoch. Detection is conservative by construction: a live
//    processor is suspected only if every heartbeat of `lease_misses`
//    consecutive intervals is lost, which planned fail-stops guarantee and
//    random message loss makes vanishingly unlikely.
//
//  * CANCELLATION — Runtime and ReliableTransport consult the suspicion map
//    (and an optional per-send deadline) so no send, call or migration waits
//    unboundedly on a dead peer; see core/ft.h for the surface.
//
//  * RECOVERY — suspecting a processor enqueues every object homed there.
//    A detached recovery task re-homes each one: promote a valid
//    core::Replicated copy when one exists (the replica mirrors state the
//    NIC death could not touch), otherwise restore `restore_words` from a
//    simulated backup onto a deterministic refuge — or, with
//    `rehome_unreplicated` off, condemn the object (ObjectLostError for all
//    later calls). Each commit flips ObjectSpace, patches the Locator's
//    directory/pointers/caches (loc::Locator::on_rehome) and resumes every
//    activation parked in await_object.
//
// Determinism: the detector runs off sim::Timer at fixed intervals, ring
// orders and object ids give every choice a deterministic scan order, and no
// random numbers are drawn — two same-seed runs crash, detect and recover
// bit-identically. With `enabled == false` the layer never installs itself
// and the run is byte-identical to a build without it.
//
// Known limitation (documented in DESIGN.md §11): monitors are ring
// successors, so `monitors` adjacent simultaneous crashes can expire the
// lease of the processor between them. Crash plans in the benches use
// non-adjacent victims; raise `monitors` to tolerate adjacency.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/ft.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "loc/locator.h"
#include "net/faulty_net.h"
#include "sim/task.h"
#include "sim/timer.h"
#include "sim/types.h"

namespace cm::ft {

using core::ObjectId;
using sim::Cycles;
using sim::ProcId;

struct FtConfig {
  bool enabled = false;  // inert (and never installed) unless set

  // Failure detector.
  Cycles heartbeat_interval = 2000;  // sweep period, in cycles
  unsigned heartbeat_words = 1;      // keepalive payload
  unsigned monitors = 2;             // ring successors each proc heartbeats
  unsigned lease_misses = 3;         // silent intervals before suspicion

  // Recovery.
  unsigned dir_replicas = 2;        // directory shard replication degree
  bool rehome_unreplicated = true;  // restore from backup vs. declare lost
  unsigned restore_words = 16;      // simulated backup-restore payload
  unsigned control_words = 1;       // promotion/control payload

  // Cancellation policy (see core::FaultTolerance).
  Cycles send_deadline = 0;        // relative per-send deadline; 0 = none
  unsigned max_call_retries = 64;  // call re-issues before FtError
};

struct FtStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t leases_renewed = 0;
  std::uint64_t suspicions = 0;         // processors declared dead
  std::uint64_t detected = 0;           // ... matching a planned fail-stop
  std::uint64_t planned_failures = 0;   // fail-stops announced via note_plan
  std::uint64_t detect_latency_sum = 0; // fail cycle -> suspicion, summed
  std::uint64_t rehomes = 0;            // backup restores committed
  std::uint64_t replica_promotions = 0; // recoveries served by a live replica
  std::uint64_t objects_lost = 0;       // condemned (no replica, no restore)
  std::uint64_t recoveries = 0;         // committed re-homes (both kinds)
  std::uint64_t rehome_latency_sum = 0; // suspicion -> commit, summed

  /// Mean cycles from a planned NIC death to its suspicion.
  [[nodiscard]] double mean_detect_latency() const {
    return detected == 0
               ? 0.0
               : static_cast<double>(detect_latency_sum) / detected;
  }
  /// Mean cycles from suspicion to a committed re-home.
  [[nodiscard]] double mean_rehome_latency() const {
    return recoveries == 0
               ? 0.0
               : static_cast<double>(rehome_latency_sum) / recoveries;
  }
};

class FtLayer final : public core::FaultTolerance {
 public:
  /// Construct over a runtime (and the locator, when the run uses one).
  /// With `cfg.enabled` the layer installs itself on both; otherwise the
  /// constructor does nothing and the run is bit-identical to a build
  /// without fault tolerance. Destroy only after the engine has drained
  /// (in-flight heartbeat deliveries capture `this`).
  FtLayer(core::Runtime& rt, FtConfig cfg, loc::Locator* locator = nullptr);
  ~FtLayer() override;

  FtLayer(const FtLayer&) = delete;
  FtLayer& operator=(const FtLayer&) = delete;

  [[nodiscard]] const FtConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const FtStats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Ground truth for detector-quality metrics and the checker's failure
  /// epochs: a processor's NIC will fail-stop at cycle `at`.
  void note_planned_failure(ProcId p, Cycles at);
  /// Convenience: record every nic_fail_at entry of a fault plan.
  void note_plan(const net::FaultPlan& plan);

  /// Begin heartbeating and lease sweeps at the current cycle. No-op when
  /// disabled or already running.
  void start();
  /// Stop the periodic sweep (in-flight recoveries drain on their own).
  /// Call before draining the engine at the end of a run, or the detector
  /// keeps the event queue alive forever.
  void stop();

  // ---- core::FaultTolerance ----
  [[nodiscard]] bool suspected(ProcId p) const override {
    return epoch_[p] != core::kNoFailureEpoch;
  }
  [[nodiscard]] Cycles failure_epoch(ProcId p) const override {
    return epoch_[p];
  }
  [[nodiscard]] ProcId evacuation_target(ProcId dead) const override;
  [[nodiscard]] bool object_lost(ObjectId id) const override {
    return lost_.contains(id);
  }
  [[nodiscard]] bool recovery_pending(ObjectId id) const override {
    return pending_.contains(id);
  }
  [[nodiscard]] sim::Task<> await_object(ObjectId id) override;
  [[nodiscard]] Cycles send_deadline() const override {
    return cfg_.send_deadline;
  }
  [[nodiscard]] unsigned max_call_retries() const override {
    return cfg_.max_call_retries;
  }

 private:
  [[nodiscard]] sim::Engine& engine() const {
    return rt_->machine().engine();
  }
  void arm_sweep();
  /// One detector round: send heartbeats, expire leases, re-arm.
  void sweep();
  /// Heartbeat delivery at a monitor: renew the sender's lease.
  void on_heartbeat(ProcId from);
  /// Publish `p`'s failure epoch and kick off recovery of its objects.
  void suspect(ProcId p, Cycles now);
  /// Detached recovery driver for one dead processor (must not throw).
  [[nodiscard]] sim::Task<> recover_proc(ProcId dead, Cycles epoch,
                                         std::vector<ObjectId> ids);
  /// Re-home (or condemn) one object whose home fail-stopped.
  [[nodiscard]] sim::Task<> recover_object(ObjectId id, ProcId dead,
                                           ProcId coord, Cycles epoch);
  /// Commit a re-home: flip ObjectSpace, patch the locator, notify the
  /// checker, account latency, resume waiters.
  void commit(ObjectId id, ProcId dead, ProcId target, Cycles epoch);
  /// Close `id`'s recovery window and resume waiters in registration order.
  void settle(ObjectId id);
  /// Deterministic refuge for an unreplicated object: first live processor
  /// scanning from (dead + 1 + id) in ring order.
  [[nodiscard]] ProcId rehome_target(ObjectId id, ProcId dead) const;
  void trace(sim::TraceEvent ev, ProcId track,
             std::initializer_list<sim::TraceArg> args);

  core::Runtime* rt_;
  FtConfig cfg_;
  loc::Locator* locator_;
  ProcId nprocs_;
  std::vector<Cycles> epoch_;       // kNoFailureEpoch until suspected
  std::vector<Cycles> last_heard_;  // last lease renewal per processor
  std::map<ProcId, Cycles> planned_;
  std::set<ObjectId> pending_;  // recovery enqueued, not yet committed
  std::set<ObjectId> lost_;     // condemned objects
  std::map<ObjectId, std::vector<std::coroutine_handle<>>> waiters_;
  sim::Timer sweep_timer_;
  bool running_ = false;
  FtStats stats_;
};

/// Metrics schema helper: exports FtStats under "ft." keys.
void put_ft_stats(core::Metrics& m, const FtStats& s);

}  // namespace cm::ft
