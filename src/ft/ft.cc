#include "ft/ft.h"

#include <utility>

#include "check/checker.h"
#include "core/replication.h"

namespace cm::ft {

using core::Category;
using core::CostModel;
using sim::TraceEvent;

FtLayer::FtLayer(core::Runtime& rt, FtConfig cfg, loc::Locator* locator)
    : rt_(&rt),
      cfg_(cfg),
      locator_(locator),
      nprocs_(rt.machine().size()),
      epoch_(nprocs_, core::kNoFailureEpoch),
      last_heard_(nprocs_, 0),
      sweep_timer_(rt.machine().engine()) {
  if (!cfg_.enabled) return;
  rt_->set_fault_tolerance(this);
  if (locator_ != nullptr && locator_->attached()) {
    locator_->set_fault_tolerance(this, cfg_.dir_replicas);
  }
}

FtLayer::~FtLayer() {
  stop();
  if (!cfg_.enabled) return;
  if (rt_->fault_tolerance() == this) rt_->set_fault_tolerance(nullptr);
  if (locator_ != nullptr && locator_->attached()) {
    locator_->set_fault_tolerance(nullptr, 1);
  }
}

void FtLayer::trace(TraceEvent ev, ProcId track,
                    std::initializer_list<sim::TraceArg> args) {
  if (sim::Tracer* tr = rt_->tracer()) tr->record(ev, track, args);
}

void FtLayer::note_planned_failure(ProcId p, Cycles at) {
  planned_[p] = at;
  ++stats_.planned_failures;
  if (check::Checker* ck = rt_->checker()) ck->on_fail_stop(p, at);
}

void FtLayer::note_plan(const net::FaultPlan& plan) {
  for (const auto& [p, at] : plan.nic_fail_at) note_planned_failure(p, at);
}

void FtLayer::start() {
  if (!cfg_.enabled || running_) return;
  running_ = true;
  last_heard_.assign(nprocs_, engine().now());
  arm_sweep();
}

void FtLayer::stop() {
  if (!running_) return;
  running_ = false;
  sweep_timer_.cancel();
}

void FtLayer::arm_sweep() {
  sweep_timer_.arm(cfg_.heartbeat_interval, [this] { sweep(); });
}

void FtLayer::sweep() {
  if (!running_) return;
  const Cycles now = engine().now();
  // Heartbeats: every unsuspected processor pings its ring monitors. These
  // are NIC-level keepalives — zero CPU cycles, but real messages, so a
  // planned NIC death silently eats them (net::FaultyNetwork) and the
  // sender's lease stops renewing.
  const unsigned hb_words = cfg_.heartbeat_words + rt_->cost().header_words;
  for (ProcId p = 0; p < nprocs_; ++p) {
    if (suspected(p)) continue;
    for (unsigned i = 0; i < cfg_.monitors; ++i) {
      const auto mon = static_cast<ProcId>((p + 1 + i) % nprocs_);
      if (mon == p) continue;
      ++stats_.heartbeats_sent;
      // Heartbeats must ride the raw lossy network: a dead NIC silently
      // eating them is the failure signal itself, and a retransmitting
      // transport would mask exactly what the detector measures.
      // simlint: allow SS002
      rt_->network().send(p, mon, hb_words, net::Traffic::kRuntime,
                          [this, p] { on_heartbeat(p); });
    }
  }
  // Lease expiry: anyone silent for `lease_misses` whole intervals is
  // declared dead. Fail-stop NICs never speak again, so suspicion is
  // permanent and there is no rejoin path.
  const Cycles lease = cfg_.heartbeat_interval * cfg_.lease_misses;
  for (ProcId p = 0; p < nprocs_; ++p) {
    if (suspected(p)) continue;
    if (now - last_heard_[p] > lease) suspect(p, now);
  }
  arm_sweep();
}

void FtLayer::on_heartbeat(ProcId from) {
  if (!running_ || suspected(from)) return;
  last_heard_[from] = engine().now();
  ++stats_.leases_renewed;
  if (check::Checker* ck = rt_->checker()) {
    ck->on_lease(from, engine().now() +
                           cfg_.heartbeat_interval * cfg_.lease_misses);
  }
}

void FtLayer::suspect(ProcId p, Cycles now) {
  if (suspected(p)) return;
  epoch_[p] = now;
  ++stats_.suspicions;
  if (const auto it = planned_.find(p);
      it != planned_.end() && now >= it->second) {
    ++stats_.detected;
    stats_.detect_latency_sum += now - it->second;
  }
  if (check::Checker* ck = rt_->checker()) ck->on_suspect(p);
  trace(TraceEvent::kFtSuspect, p, {{"epoch", now}});
  // Enqueue every object homed on the dead processor, ascending id order
  // (ObjectSpace ids are dense, so this scan is the deterministic order in
  // which recovery commits).
  core::ObjectSpace& os = rt_->objects();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < os.size(); ++i) {
    const auto id = static_cast<ObjectId>(i);
    if (os.home_of(id) == p) {
      pending_.insert(id);
      ids.push_back(id);
    }
  }
  sim::detach(recover_proc(p, now, std::move(ids)));
}

ProcId FtLayer::evacuation_target(ProcId dead) const {
  for (ProcId off = 1; off < nprocs_; ++off) {
    const auto p = static_cast<ProcId>((dead + off) % nprocs_);
    if (!suspected(p)) return p;
  }
  return dead;  // every processor is dead; nowhere left to go
}

ProcId FtLayer::rehome_target(ObjectId id, ProcId dead) const {
  // Scatter re-homed objects by id so one crash does not dump its whole
  // population onto a single neighbour.
  const auto start = static_cast<ProcId>((dead + 1 + id % nprocs_) % nprocs_);
  for (ProcId off = 0; off < nprocs_; ++off) {
    const auto p = static_cast<ProcId>((start + off) % nprocs_);
    if (p != dead && !suspected(p)) return p;
  }
  return dead;
}

sim::Task<> FtLayer::await_object(ObjectId id) {
  if (!pending_.contains(id)) co_return;
  auto barrier = sim::suspend_to([this, id](std::coroutine_handle<> h) {
    waiters_[id].push_back(h);
  });
  co_await barrier;
}

sim::Task<> FtLayer::recover_proc(ProcId dead, Cycles epoch,
                                  std::vector<ObjectId> ids) {
  // Detached root: nothing below throws (recovery signals failure by
  // condemning objects, never by exceptions).
  const ProcId coord = evacuation_target(dead);
  for (const ObjectId id : ids) {
    if (rt_->objects().home_of(id) != dead) {
      // An in-flight move committed the object elsewhere while it queued
      // for recovery: it is already safe. Close the window trivially.
      settle(id);
      continue;
    }
    co_await recover_object(id, dead, coord, epoch);
  }
}

sim::Task<> FtLayer::recover_object(ObjectId id, ProcId dead, ProcId coord,
                                    Cycles epoch) {
  const CostModel& c = rt_->cost();
  // 1. Replica promotion: a valid core::Replicated copy mirrors exactly the
  // state the NIC death could not touch, so the lowest live processor
  // holding one becomes the new primary at the cost of a control message.
  for (core::Replicated* r : rt_->replicated_objects()) {
    if (r->primary() != id) continue;
    ProcId target = sim::kNoProc;
    for (ProcId p = 0; p < nprocs_; ++p) {
      if (p == dead || suspected(p)) continue;
      if (r->valid_at(p)) {
        target = p;
        break;
      }
    }
    if (target == sim::kNoProc) break;  // no live copy; fall through
    if (coord != target) {
      co_await rt_->charge(coord, c.sender_total(cfg_.control_words),
                           Category::kReplication);
      co_await rt_->transfer(coord, target, cfg_.control_words);
      co_await rt_->charge(target,
                           c.receiver_total(cfg_.control_words,
                                            /*create_thread=*/false),
                           Category::kReplication);
    }
    r->rehome(target);
    ++stats_.replica_promotions;
    trace(TraceEvent::kFtPromote, target, {{"obj", id}, {"dead", dead}});
    commit(id, dead, target, epoch);
    co_return;
  }
  // 2. Backup restore: re-materialise the object's state (restore_words of
  // simulated stable storage) on a deterministic refuge processor.
  if (cfg_.rehome_unreplicated) {
    const ProcId target = rehome_target(id, dead);
    if (coord != target) {
      co_await rt_->charge(coord, c.sender_total(cfg_.restore_words),
                           Category::kReplication);
      co_await rt_->transfer(coord, target, cfg_.restore_words);
    }
    co_await rt_->charge(target,
                         c.receiver_total(cfg_.restore_words,
                                          /*create_thread=*/true),
                         Category::kReplication);
    ++stats_.rehomes;
    commit(id, dead, target, epoch);
    co_return;
  }
  // 3. Lost for good: no replica, no backup. Every later call on the object
  // throws ObjectLostError; waiters resume to observe the loss.
  lost_.insert(id);
  ++stats_.objects_lost;
  trace(TraceEvent::kFtLost, dead, {{"obj", id}});
  settle(id);
}

void FtLayer::commit(ObjectId id, ProcId dead, ProcId target, Cycles epoch) {
  rt_->objects().move(id, target);
  if (locator_ != nullptr && locator_->attached()) {
    locator_->on_rehome(id, dead, target);
  }
  if (check::Checker* ck = rt_->checker()) ck->on_rehome(id, dead, target);
  trace(TraceEvent::kFtRehome, target, {{"obj", id}, {"from", dead}});
  stats_.rehome_latency_sum += engine().now() - epoch;
  ++stats_.recoveries;
  settle(id);
}

void FtLayer::settle(ObjectId id) {
  pending_.erase(id);
  const auto it = waiters_.find(id);
  if (it == waiters_.end()) return;
  std::vector<std::coroutine_handle<>> parked = std::move(it->second);
  waiters_.erase(it);
  for (const std::coroutine_handle<> h : parked) h.resume();
}

void put_ft_stats(core::Metrics& m, const FtStats& s) {
  m.put("ft.heartbeats_sent", s.heartbeats_sent);
  m.put("ft.leases_renewed", s.leases_renewed);
  m.put("ft.suspicions", s.suspicions);
  m.put("ft.detected", s.detected);
  m.put("ft.planned_failures", s.planned_failures);
  m.put("ft.detect_latency_mean", s.mean_detect_latency());
  m.put("ft.rehomes", s.rehomes);
  m.put("ft.replica_promotions", s.replica_promotions);
  m.put("ft.objects_lost", s.objects_lost);
  m.put("ft.recoveries", s.recoveries);
  m.put("ft.rehome_latency_mean", s.mean_rehome_latency());
}

}  // namespace cm::ft
