#include "loc/locator.h"

#include <cstdio>
#include <cstdlib>

#include "check/checker.h"
#include "core/adaptive.h"

namespace cm::loc {

using core::Category;
using core::CostModel;
using sim::Cycles;
using sim::TraceEvent;

// ---------------------------------------------------------------------------
// TranslationCache

std::optional<ProcId> TranslationCache::get(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

std::optional<ProcId> TranslationCache::peek(ObjectId id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second->second;
}

bool TranslationCache::put(ObjectId id, ProcId where) {
  if (capacity_ == 0) return false;  // caching disabled
  if (const auto it = index_.find(id); it != index_.end()) {
    it->second->second = where;
    order_.splice(order_.begin(), order_, it->second);
    return false;
  }
  bool evicted = false;
  if (index_.size() >= capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    evicted = true;
  }
  order_.emplace_front(id, where);
  index_[id] = order_.begin();
  return evicted;
}

void TranslationCache::erase(ObjectId id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  order_.erase(it->second);
  index_.erase(it);
}

// ---------------------------------------------------------------------------
// Locator: construction / registration

Locator::Locator(core::Runtime& rt, LocatorConfig cfg)
    : rt_(&rt), cfg_(cfg), nprocs_(rt.machine().size()) {
  if (cfg_.mode != Locality::kDistributed) return;  // inert in oracle mode
  procs_.reserve(nprocs_);
  for (ProcId p = 0; p < nprocs_; ++p) {
    procs_.emplace_back(cfg_.cache_capacity);
  }
  core::ObjectSpace& os = rt_->objects();
  for (std::size_t id = 0; id < os.size(); ++id) {
    const auto oid = static_cast<ObjectId>(id);
    on_create(oid, os.home_of(oid));
  }
  os.set_create_hook(
      [this](ObjectId id, ProcId home) { on_create(id, home); });
  rt_->set_locator(this);
  attached_ = true;
}

Locator::~Locator() {
  if (!attached_) return;
  rt_->objects().set_create_hook(nullptr);
  if (rt_->locator() == this) rt_->set_locator(nullptr);
}

void Locator::on_create(ObjectId id, ProcId home) {
  // ObjectSpace ids are dense and sequential; the directory mirrors that.
  if (id != dir_.size()) {
    std::fprintf(stderr,
                 "Locator::on_create: non-sequential object id %u "
                 "(directory size %zu)\n",
                 id, dir_.size());
    std::abort();
  }
  dir_.emplace_back();
  DirEntry& e = dir_.back();
  e.owner = home;
  e.shard = cfg_.directory == DirectoryPolicy::kHashHome
                ? static_cast<ProcId>(id % nprocs_)
                : home;
}

ProcId Locator::shard_of(ObjectId id) const { return dir_[id].shard; }

ProcId Locator::directory_owner(ObjectId id) const { return dir_[id].owner; }

std::optional<ProcId> Locator::cached_hint(ProcId p, ObjectId id) const {
  return procs_[p].cache.peek(id);
}

std::optional<ProcId> Locator::forwarding_pointer(ProcId p,
                                                  ObjectId id) const {
  const auto& fw = procs_[p].fwd;
  const auto it = fw.find(id);
  if (it == fw.end()) return std::nullopt;
  return it->second;
}

ProcId Locator::owner_truth(ObjectId id) const {
  return rt_->objects().home_of(id);
}

void Locator::cache_put(ProcId p, ObjectId id, ProcId where) {
  // Never cache a hint naming the holder itself: local objects are found
  // through the local table, and such an entry would only go stale.
  if (where == p) {
    procs_[p].cache.erase(id);
    return;
  }
  if (procs_[p].cache.put(id, where)) ++stats_.cache_evictions;
}

void Locator::trace(TraceEvent ev, ProcId track,
                    std::initializer_list<sim::TraceArg> args) {
  if (sim::Tracer* tr = rt_->tracer()) tr->record(ev, track, args);
}

// ---------------------------------------------------------------------------
// Cycle accounting. All charges decompose into existing Table-5 categories
// (no new breakdown keys), and each helper runs as one atomic CPU charge,
// matching the runtime's handler-granularity FCFS convention.

sim::Cycles Locator::add_parts(
    std::initializer_list<std::pair<Category, Cycles>> parts) {
  core::Breakdown& bd = rt_->mutable_stats().breakdown;
  Cycles total = 0;
  for (const auto& [cat, cycles] : parts) {
    bd.add(cat, cycles);
    total += cycles;
  }
  return total;
}

sim::Task<> Locator::send_ctl(ProcId at, unsigned words) {
  const CostModel& c = rt_->cost();
  const Cycles total =
      add_parts({{Category::kSendLinkage, c.send_linkage},
                 {Category::kMarshal, c.marshal(words)},
                 {Category::kSendAllocPacket, c.alloc_packet_send()},
                 {Category::kMessageSend, c.message_send}});
  co_await rt_->machine().compute(at, total);
}

sim::Task<> Locator::recv_ctl(ProcId at, unsigned words) {
  // A locator control message is handled like a short method: full software
  // reception, no thread creation.
  const CostModel& c = rt_->cost();
  const Cycles total =
      add_parts({{Category::kCopyPacket, c.copy(words)},
                 {Category::kRecvAllocPacket, c.alloc_packet_recv()},
                 {Category::kForwardingCheck, c.forwarding_check},
                 {Category::kUnmarshal, c.unmarshal(words)},
                 {Category::kOidTranslation, c.oid()},
                 {Category::kScheduler, c.scheduler},
                 {Category::kRecvLinkage, c.recv_linkage}});
  co_await rt_->machine().compute(at, total);
}

sim::Task<> Locator::recv_reply(ProcId at, unsigned words) {
  // Reply delivery to the waiting thread; the parts sum to reply_receive().
  const CostModel& c = rt_->cost();
  const Cycles total =
      add_parts({{Category::kCopyPacket, c.copy(words)},
                 {Category::kRecvAllocPacket, c.alloc_packet_recv()},
                 {Category::kUnmarshal, c.unmarshal(words)},
                 {Category::kScheduler, c.scheduler},
                 {Category::kRecvLinkage, c.recv_linkage}});
  co_await rt_->machine().compute(at, total);
}

// ---------------------------------------------------------------------------
// Resolution

sim::Task<ProcId> Locator::resolve(core::Ctx& ctx, ObjectId id) {
  const ProcId p = ctx.proc;
  // Local check: on a real node this is the local-table branch of the
  // locality check the runtime already charged — free here.
  if (owner_truth(id) == p) {
    ++stats_.local_hits;
    co_return p;
  }
  ++stats_.lookups;
  trace(TraceEvent::kLocLookup, p, {{"obj", id}});
  const CostModel& c = rt_->cost();
  // Probe the software translation cache: Table 5's 36-cycle GOID
  // translation walk, free with J-Machine-style hardware translation.
  const Cycles probe_cost =
      add_parts({{Category::kOidTranslation, c.oid()}});
  co_await rt_->machine().compute(p, probe_cost);
  ProcState& ps = procs_[p];
  if (const auto hint = ps.cache.get(id)) {
    if (*hint != p) {
      ++stats_.cache_hits;
      trace(TraceEvent::kLocHit, p, {{"obj", id}, {"hint", *hint}});
      co_return *hint;
    }
    // A hint naming ourselves is self-evidently stale: the local table
    // just said the object is not here. Drop it and miss.
    ps.cache.erase(id);
    ++stats_.stale_self_hints;
  }
  ++stats_.cache_misses;
  trace(TraceEvent::kLocMiss, p, {{"obj", id}});
  ProcId target = co_await dir_query(p, id);
  if (target == p) {
    // The directory still names us (a move's commit is in flight), but the
    // object is gone — we hosted it once, so our own forwarding pointer is
    // fresher than the directory.
    const auto it = ps.fwd.find(id);
    if (it != ps.fwd.end()) target = it->second;
  }
  co_return target;
}

ProcId Locator::live_shard(ObjectId id) {
  const ProcId shard = dir_[id].shard;
  if (ft_ == nullptr || !ft_->suspected(shard)) return shard;
  for (unsigned r = 1; r < replicas_; ++r) {
    const auto rep = static_cast<ProcId>((shard + r) % nprocs_);
    if (!ft_->suspected(rep)) {
      ++stats_.dir_failovers;
      trace(TraceEvent::kFtFailover, rep, {{"obj", id}, {"dead", shard}});
      return rep;
    }
  }
  // Every replica is suspected; answer with the primary and let the query
  // fail like any other send to a dead host.
  return shard;
}

sim::Task<ProcId> Locator::dir_query(ProcId p, ObjectId id) {
  ++stats_.dir_queries;
  DirEntry& e = dir_[id];
  const ProcId shard = live_shard(id);
  const CostModel& c = rt_->cost();
  if (shard == p) {
    // The shard is co-resident: an ordinary local table walk.
    ++stats_.dir_local;
    const Cycles walk_cost =
        add_parts({{Category::kOidTranslation, c.oid()}});
    co_await rt_->machine().compute(p, walk_cost);
    const ProcId owner = e.owner;
    cache_put(p, id, owner);
    co_return owner;
  }
  co_await send_ctl(p, cfg_.lookup_words);
  co_await rt_->transfer(p, shard, cfg_.lookup_words);
  co_await recv_ctl(shard, cfg_.lookup_words);
  const ProcId owner = e.owner;  // read at the shard, at shard time
  co_await send_ctl(shard, cfg_.reply_words);
  co_await rt_->transfer(shard, p, cfg_.reply_words);
  co_await recv_reply(p, cfg_.reply_words);
  cache_put(p, id, owner);
  co_return owner;
}

sim::Task<ProcId> Locator::forward(ObjectId id, ProcId at, unsigned words,
                                   ProcId requester) {
  ++stats_.deliveries;
  if (ft_ != nullptr && !ft_->object_lost(id) &&
      ft_->suspected(owner_truth(id))) {
    // The payload is chasing an object whose host just died. Park until
    // crash recovery re-homes (or condemns) it, then chase the fresh
    // location; the chase below never launches into a dead NIC.
    co_await ft_->await_object(id);
  }
  if (owner_truth(id) == at) co_return at;  // hint was good
  const CostModel& c = rt_->cost();
  check::Checker* ck = rt_->checker();
  std::uint64_t chase = 0;
  if (ck != nullptr) chase = ck->on_chase_begin(id, at);
  std::vector<ProcId> hops;
  ProcId cur = at;
  // Chase the chain. Each pointer was written strictly later than the one
  // before it (a host only writes its pointer when the object departs), and
  // a bounce hop is far cheaper than a full object move, so the chase
  // always catches up with the object — see DESIGN.md §9 for the bound.
  while (owner_truth(id) != cur) {
    if (ft_ != nullptr && ft_->object_lost(id)) {
      // Recovery condemned the object mid-chase. Surface the stop to the
      // caller (Runtime::call re-checks object_lost after forward() and
      // throws ObjectLostError); the chase just stops burning cycles.
      co_return cur;
    }
    ProcId next = sim::kNoProc;
    auto& fw = procs_[cur].fwd;
    if (const auto it = fw.find(id); it != fw.end()) next = it->second;
    if (next != sim::kNoProc && ft_ != nullptr && ft_->suspected(next)) {
      // The pointer leads into a dead host: cut the chain here, wait out
      // any in-flight recovery, and re-resolve through the directory.
      ++stats_.chain_cuts;
      trace(TraceEvent::kFtChainCut, cur, {{"obj", id}, {"dead", next}});
      fw.erase(id);
      if (ck != nullptr) ck->on_fwd_erase(cur, id);
      co_await ft_->await_object(id);
      next = sim::kNoProc;
    }
    if (next == sim::kNoProc) {
      // No pointer here. By protocol invariants every hint names a host
      // that once held the object (and therefore left a pointer when it
      // departed), so without crashes this is defensive: re-consult the
      // directory.
      ++stats_.fwd_fallbacks;
      next = co_await dir_query(cur, id);
      if (next == cur) {
        if (ft_ != nullptr) {
          // A recovery commit can land the object right here between the
          // loop check and the directory answer; re-test the loop
          // condition instead of declaring the object lost.
          continue;
        }
        std::fprintf(stderr,
                     "Locator::forward: object %u lost (no forwarding "
                     "pointer at proc %u and directory names it)\n",
                     id, cur);
        std::abort();
      }
    }
    if (ft_ != nullptr && ft_->suspected(next)) {
      // The directory still names the dead owner: its recovery has not
      // committed yet. Wait for the commit rather than launching the
      // payload into a dead NIC.
      co_await ft_->await_object(id);
      continue;
    }
    hops.push_back(cur);
    ++stats_.bounces;
    if (ck != nullptr) ck->on_chase_hop(chase, cur, next);
    trace(TraceEvent::kLocBounce, cur, {{"obj", id}, {"next", next}});
    if (chooser_ != nullptr) chooser_->record_bounce(id);
    // The stale host pulls the packet in, fails the forwarding check,
    // translates the pointer, and relaunches the message — "sorry, moved;
    // here's my hint".
    const Cycles hop_cost =
        add_parts({{Category::kCopyPacket, c.copy(words)},
                   {Category::kForwardingCheck, c.forwarding_check},
                   {Category::kOidTranslation, c.oid()},
                   {Category::kMessageSend, c.message_send}});
    co_await rt_->machine().compute(cur, hop_cost);
    co_await rt_->transfer(cur, next, words);
    cur = next;
  }
  ++stats_.forwarded;
  const auto chain = static_cast<std::uint64_t>(hops.size());
  if (chain > stats_.max_chain) stats_.max_chain = chain;
  // Path compression, piggybacked on the reply that will flow back anyway:
  // every stale hop and the requester learn the object's resting place, so
  // the next request takes at most one bounce from any of them.
  ++stats_.compressions;
  trace(TraceEvent::kLocCompress, cur, {{"obj", id}, {"chain", chain}});
  for (const ProcId h : hops) {
    if (h == cur) continue;
    procs_[h].fwd[id] = cur;
    if (ck != nullptr) ck->on_fwd_pointer(h, id, cur);
    cache_put(h, id, cur);
  }
  cache_put(requester, id, cur);
  if (ck != nullptr) {
    // Synchronous with the compression loop above: every crossed hop must
    // now point straight at the resting place.
    ck->on_chase_end(chase, cur);
  }
  co_return cur;
}

// ---------------------------------------------------------------------------
// Home-serialised object movement. Four control legs instead of the oracle's
// two (the price of decentralisation): MOVE-REQUEST mover->shard, FETCH
// shard->owner, the state owner->mover, COMMIT mover->shard. The shard's
// per-object mutex stands in for the queue of MOVE-REQUESTs a real
// directory entry would serialise; it is only ever locked by code running
// at the shard, so it is a local lock, not an oracle.

sim::Task<bool> Locator::move_object(core::Ctx& ctx, ObjectId id,
                                     unsigned size_words) {
  const ProcId mover = ctx.proc;
  DirEntry& e = dir_[id];
  if (ft_ != nullptr && (ft_->suspected(mover) || ft_->object_lost(id))) {
    // A dead mover cannot receive the object, and a condemned object has
    // nothing to ship. Refuse up front; the caller falls back to RPC.
    ++stats_.move_aborts;
    co_return false;
  }
  // One shard pick for the whole protocol: all four control legs must talk
  // to the same (replica) entry host or the movers queue would split.
  const ProcId shard = live_shard(id);
  const CostModel& c = rt_->cost();
  const unsigned ctl = cfg_.control_words;

  // MOVE-REQUEST: tell the object's directory shard we want it here.
  if (shard != mover) {
    co_await send_ctl(mover, ctl);
    co_await rt_->transfer(mover, shard, ctl);
    co_await recv_ctl(shard, ctl);
  } else {
    const Cycles req_cost =
        add_parts({{Category::kOidTranslation, c.oid()}});
    co_await rt_->machine().compute(mover, req_cost);
  }

  // Movers of this object queue FIFO at the shard.
  check::Checker* ck = rt_->checker();
  if (ck != nullptr) ck->on_lock_attempt(&ctx, &e.movers, "loc.dir_movers");
  co_await e.movers.lock();
  if (ck != nullptr) ck->on_lock_acquired(&ctx, &e.movers, "loc.dir_movers");
  const ProcId owner = e.owner;
  if (owner == mover) {
    // Post-lock re-check: a racing mover from our processor (or a move we
    // chained behind) already brought the object here while we queued.
    ++stats_.move_races;
    if (ck != nullptr) ck->on_lock_released(&ctx, &e.movers);
    e.movers.unlock();
    if (shard != mover) {
      co_await send_ctl(shard, cfg_.reply_words);
      co_await rt_->transfer(shard, mover, cfg_.reply_words);
      co_await recv_reply(mover, cfg_.reply_words);
    }
    co_return false;
  }
  if (ft_ != nullptr && (ft_->suspected(owner) || ft_->suspected(mover))) {
    // While we queued, the owner died (crash recovery will re-home the
    // object — a FETCH would target a dead NIC) or the mover itself was
    // suspected (nothing left to ship to). Abort along the same legs as a
    // lost race so the cycle accounting stays comparable.
    ++stats_.move_aborts;
    if (ck != nullptr) ck->on_lock_released(&ctx, &e.movers);
    e.movers.unlock();
    if (shard != mover) {
      co_await send_ctl(shard, cfg_.reply_words);
      co_await rt_->transfer(shard, mover, cfg_.reply_words);
      co_await recv_reply(mover, cfg_.reply_words);
    }
    co_return false;
  }

  // FETCH: the shard asks the current owner to ship the object.
  if (ck != nullptr) ck->on_move_begin(id, mover);
  if (shard != owner) {
    co_await send_ctl(shard, ctl);
    co_await rt_->transfer(shard, owner, ctl);
    co_await recv_ctl(owner, ctl);
  } else {
    const Cycles fetch_cost =
        add_parts({{Category::kOidTranslation, c.oid()}});
    co_await rt_->machine().compute(shard, fetch_cost);
  }

  // The owner packs up: unbind from its local table, leave the forwarding
  // address (the Emerald move), marshal the state, ship it.
  procs_[owner].fwd[id] = mover;
  if (ck != nullptr) ck->on_fwd_pointer(owner, id, mover);
  const Cycles pack_cost =
      add_parts({{Category::kObjectMove, c.sender_total(size_words)}});
  co_await rt_->machine().compute(owner, pack_cost);
  co_await rt_->transfer(owner, mover, size_words);

  // Install at the mover: full software reception (a thread runs the
  // installer) plus rebinding the local object table.
  const Cycles install_cost = add_parts(
      {{Category::kObjectMove,
        c.receiver_total(size_words, /*create_thread=*/true) + c.oid()}});
  co_await rt_->machine().compute(mover, install_cost);
  if (ft_ != nullptr &&
      (ft_->suspected(mover) || owner_truth(id) != owner)) {
    // The mover died with the state in flight, or the owner died and crash
    // recovery re-homed the object before we could commit. Either way this
    // move must not land: retract the forwarding pointer we published (if
    // recovery has not already scrubbed it) and release the entry.
    ++stats_.move_aborts;
    auto& ofw = procs_[owner].fwd;
    if (const auto it = ofw.find(id); it != ofw.end() && it->second == mover) {
      ofw.erase(it);
      if (ck != nullptr) ck->on_fwd_erase(owner, id);
    }
    if (ck != nullptr) {
      ck->on_move_end(id);
      ck->on_lock_released(&ctx, &e.movers);
    }
    e.movers.unlock();
    co_return false;
  }
  rt_->objects().move(id, mover);
  if (ck != nullptr) ck->on_move_commit(id, owner, mover);
  procs_[mover].fwd.erase(id);  // it lives here now; no pointer needed
  if (ck != nullptr) ck->on_fwd_erase(mover, id);
  procs_[mover].cache.erase(id);

  // COMMIT: tell the shard where the object landed; the entry flips and
  // the next queued mover (if any) proceeds against the new owner.
  if (shard != mover) {
    co_await send_ctl(mover, ctl);
    co_await rt_->transfer(mover, shard, ctl);
    co_await recv_ctl(shard, ctl);
  } else {
    const Cycles commit_cost =
        add_parts({{Category::kOidTranslation, c.oid()}});
    co_await rt_->machine().compute(mover, commit_cost);
  }
  e.owner = mover;
  if (ck != nullptr) {
    // The serialisation window closes with the directory entry flip; the
    // release hook precedes unlock() because unlock resumes the next queued
    // mover synchronously.
    ck->on_move_end(id);
    ck->on_lock_released(&ctx, &e.movers);
  }
  e.movers.unlock();
  ++stats_.moves;
  co_return true;
}

// ---------------------------------------------------------------------------
// Crash recovery commit. Host-global metadata surgery: the directory entry
// flips to the refuge host and every pointer or hint that would route a
// request into the dead processor is scrubbed. ft::FtLayer charges the
// recovery broadcast's cycles; this hook applies its effect.

void Locator::on_rehome(ObjectId id, ProcId from, ProcId to) {
  if (!attached_) return;
  check::Checker* ck = rt_->checker();
  dir_[id].owner = to;
  // The object lives at `to` now: a forwarding pointer there would shadow
  // the local table (mirrors the erase in move_object's install step).
  auto& tfw = procs_[to].fwd;
  if (const auto it = tfw.find(id); it != tfw.end()) {
    tfw.erase(it);
    if (ck != nullptr) ck->on_fwd_erase(to, id);
  }
  procs_[to].cache.erase(id);
  for (ProcId p = 0; p < nprocs_; ++p) {
    auto& fw = procs_[p].fwd;
    const auto it = fw.find(id);
    if (it != fw.end() &&
        (p == from || (ft_ != nullptr && ft_->suspected(it->second)))) {
      // Pointers held BY the dead host or pointing INTO a dead host are
      // both dead ends for this object; cut them all in one sweep.
      fw.erase(it);
      if (ck != nullptr) ck->on_fwd_erase(p, id);
    }
    if (const auto hint = procs_[p].cache.peek(id);
        hint.has_value() && ft_ != nullptr && ft_->suspected(*hint)) {
      procs_[p].cache.erase(id);
    }
  }
}

// ---------------------------------------------------------------------------

void put_loc_stats(core::Metrics& m, const LocStats& s) {
  m.put("loc.local_hits", s.local_hits);
  m.put("loc.lookups", s.lookups);
  m.put("loc.cache_hits", s.cache_hits);
  m.put("loc.cache_misses", s.cache_misses);
  m.put("loc.cache_evictions", s.cache_evictions);
  m.put("loc.hit_rate", s.hit_rate());
  m.put("loc.stale_self_hints", s.stale_self_hints);
  m.put("loc.dir_queries", s.dir_queries);
  m.put("loc.dir_local", s.dir_local);
  m.put("loc.deliveries", s.deliveries);
  m.put("loc.forwarded", s.forwarded);
  m.put("loc.bounces", s.bounces);
  m.put("loc.mean_chain", s.mean_chain());
  m.put("loc.max_chain", s.max_chain);
  m.put("loc.compressions", s.compressions);
  m.put("loc.fwd_fallbacks", s.fwd_fallbacks);
  m.put("loc.moves", s.moves);
  m.put("loc.move_races", s.move_races);
  m.put("loc.dir_failovers", s.dir_failovers);
  m.put("loc.chain_cuts", s.chain_cuts);
  m.put("loc.move_aborts", s.move_aborts);
}

}  // namespace cm::loc
