// Distributed object location: the mechanistic replacement for the
// ObjectSpace oracle.
//
// On a real message-passing machine no processor has an omniscient view of
// where every object lives. What it has (and what this subsystem models):
//
//  * a DIRECTORY SHARD: each object has exactly one directory entry, held
//    on the processor its id hashes to (or, under the owner-home policy, on
//    its creation home). The entry records the last committed owner and
//    serialises movers — this is where Emerald hangs an object's "anchor".
//  * a TRANSLATION CACHE: a small per-processor LRU of ObjectId -> ProcId
//    hints, standing in for the software global-object table whose 36-cycle
//    lookup Table 5 charges (0 with J-Machine-style hardware translation).
//  * FORWARDING POINTERS: when a MobileObject departs, the old host keeps a
//    pointer to where it went. A request that lands on a stale host takes
//    the 23-cycle forwarding check, loses, and bounces one hop along the
//    pointer ("sorry, moved — try there"); when the request finally finds
//    the object, every hop it crossed (and the requester's cache) is
//    rewritten to the object's resting place — path compression,
//    piggybacked on the eventual reply.
//
// Determinism: lookups never draw random numbers; every message goes
// through Runtime::transfer (and therefore through the reliable transport
// when one is installed), so fault-injected runs retain exact app-level
// results. Cycle charges decompose into the existing Table-5 categories —
// installing the locator adds no new breakdown keys, only new volume.
//
// With `mode == Locality::kOracle` (the default) the Locator is inert: it
// never installs itself on the Runtime, and every figure in the paper
// reproduction is bit-identical to a build without it.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/location.h"
#include "core/metrics.h"
#include "core/runtime.h"
#include "sim/async_mutex.h"
#include "sim/types.h"

namespace cm::core {
class AdaptiveChooser;
}

namespace cm::loc {

using core::ObjectId;
using sim::ProcId;

enum class Locality {
  kOracle,       // ObjectSpace answers directly; locator never attaches
  kDistributed,  // directory shards + caches + forwarding chains
};

enum class DirectoryPolicy {
  kHashHome,   // shard = id % nprocs: spreads directory load evenly
  kOwnerHome,  // shard = creation home: queries about an unmoved object
               // land where the object is (zero extra hop), but a hot
               // creator processor serves every query for its objects
};

struct LocatorConfig {
  Locality mode = Locality::kOracle;
  DirectoryPolicy directory = DirectoryPolicy::kHashHome;
  unsigned cache_capacity = 64;  // per-processor LRU entries; 0 = no cache
  unsigned lookup_words = 1;     // directory query payload
  unsigned reply_words = 1;      // directory reply payload
  unsigned control_words = 1;    // move-protocol control payload
};

struct LocStats {
  std::uint64_t local_hits = 0;    // object already at the asker: free
  std::uint64_t lookups = 0;       // remote resolutions (object elsewhere)
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t stale_self_hints = 0;  // cached hint pointed at the asker
  std::uint64_t dir_queries = 0;   // shard consultations (incl. co-resident)
  std::uint64_t dir_local = 0;     // ... of which needed no messages
  std::uint64_t deliveries = 0;    // remote payloads that went looking
  std::uint64_t forwarded = 0;     // ... of which bounced at least once
  std::uint64_t bounces = 0;       // total forwarding hops taken
  std::uint64_t max_chain = 0;     // longest chain one request traversed
  std::uint64_t compressions = 0;  // chains collapsed after resolution
  std::uint64_t fwd_fallbacks = 0; // missing pointer -> directory re-query
  std::uint64_t moves = 0;         // completed home-serialised moves
  std::uint64_t move_races = 0;    // movers that lost: object arrived first
  std::uint64_t dir_failovers = 0; // queries re-routed to a replica shard
  std::uint64_t chain_cuts = 0;    // forwarding pointers through dead hosts cut
  std::uint64_t move_aborts = 0;   // moves abandoned because a party died

  [[nodiscard]] double hit_rate() const {
    const auto n = cache_hits + cache_misses;
    return n == 0 ? 0.0 : static_cast<double>(cache_hits) / n;
  }
  /// Mean forwarding-chain length over all remote deliveries (most are 0).
  [[nodiscard]] double mean_chain() const {
    return deliveries == 0 ? 0.0
                           : static_cast<double>(bounces) / deliveries;
  }
};

/// Bounded LRU map of ObjectId -> ProcId hints. Pure host-side state: a
/// probe models the local table walk; the caller charges the cycles.
class TranslationCache {
 public:
  explicit TranslationCache(unsigned capacity) : capacity_(capacity) {}

  /// Look up a hint, refreshing its recency on hit.
  [[nodiscard]] std::optional<ProcId> get(ObjectId id);

  /// Look up without touching recency (introspection only).
  [[nodiscard]] std::optional<ProcId> peek(ObjectId id) const;

  /// Insert/update a hint; returns true if an older entry was evicted.
  bool put(ObjectId id, ProcId where);

  void erase(ObjectId id);

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] unsigned capacity() const noexcept { return capacity_; }

 private:
  using Entry = std::pair<ObjectId, ProcId>;
  unsigned capacity_;
  std::list<Entry> order_;  // most recently used first
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

class Locator final : public core::LocationService {
 public:
  /// Construct over a runtime. In distributed mode this registers every
  /// already-created object in the directory, hooks ObjectSpace::create so
  /// later allocations (e.g. B-tree split nodes) get entries too, and
  /// installs itself as the runtime's location service. In oracle mode the
  /// constructor does nothing — the runtime keeps its oracle paths.
  Locator(core::Runtime& rt, LocatorConfig cfg);
  ~Locator() override;

  Locator(const Locator&) = delete;
  Locator& operator=(const Locator&) = delete;

  [[nodiscard]] bool attached() const noexcept { return attached_; }
  [[nodiscard]] const LocatorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const LocStats& stats() const noexcept { return stats_; }

  /// Optional: forward bounce observations to the adaptive chooser, so it
  /// learns that an object ping-pongs and stops recommending migration.
  void set_chooser(core::AdaptiveChooser* chooser) noexcept {
    chooser_ = chooser;
  }

  /// Directory shard serving `id` under the configured policy.
  [[nodiscard]] ProcId shard_of(ObjectId id) const;

  /// Install a failure detector and the shard replication degree. With a
  /// detector installed, queries whose primary shard is suspected re-route
  /// to the first live replica `(shard + r) % nprocs` (r = 1..replicas-1),
  /// forwarding chains passing through dead hosts are cut and re-resolved,
  /// and moves involving a dead party abort instead of hanging. Passing
  /// nullptr (the default state) keeps every path bit-identical to a
  /// build without fault tolerance.
  void set_fault_tolerance(core::FaultTolerance* ft,
                           unsigned dir_replicas) noexcept {
    ft_ = ft;
    replicas_ = dir_replicas == 0 ? 1 : dir_replicas;
  }

  /// Crash recovery committed `id`'s re-home from `from` (the dead host) to
  /// `to`. Flips the directory entry and scrubs metadata that names the dead
  /// host: its own forwarding pointer, every pointer and cache hint aimed at
  /// it. Host-global mutation, mirroring a recovery broadcast whose cycle
  /// costs ft::FtLayer charges.
  void on_rehome(ObjectId id, ProcId from, ProcId to);

  // ---- LocationService ----
  [[nodiscard]] sim::Task<ProcId> resolve(core::Ctx& ctx,
                                          ObjectId obj) override;
  [[nodiscard]] sim::Task<ProcId> forward(ObjectId obj, ProcId at,
                                          unsigned words,
                                          ProcId requester) override;
  [[nodiscard]] sim::Task<bool> move_object(core::Ctx& ctx, ObjectId obj,
                                            unsigned size_words) override;

  // ---- introspection for tests ----
  [[nodiscard]] std::optional<ProcId> cached_hint(ProcId p, ObjectId id) const;
  [[nodiscard]] std::optional<ProcId> forwarding_pointer(ProcId p,
                                                         ObjectId id) const;
  [[nodiscard]] ProcId directory_owner(ObjectId id) const;

 private:
  struct DirEntry {
    ProcId shard;            // which processor serves this entry
    ProcId owner;            // last committed owner
    sim::AsyncMutex movers;  // serialises the move protocol per object
  };
  struct ProcState {
    explicit ProcState(unsigned cache_capacity) : cache(cache_capacity) {}
    TranslationCache cache;
    std::unordered_map<ObjectId, ProcId> fwd;  // forwarding pointers
  };

  void on_create(ObjectId id, ProcId home);
  void cache_put(ProcId p, ObjectId id, ProcId where);
  void trace(sim::TraceEvent ev, ProcId track,
             std::initializer_list<sim::TraceArg> args);
  /// Ground truth — used only where a real machine has local knowledge
  /// (is the object *here*? does the forwarding check at a host fail?).
  [[nodiscard]] ProcId owner_truth(ObjectId id) const;

  /// Consult `id`'s directory shard from `p`: free table walk when the
  /// shard is co-resident, a request/reply message pair otherwise. Updates
  /// `p`'s translation cache with the answer.
  [[nodiscard]] sim::Task<ProcId> dir_query(ProcId p, ObjectId id);

  /// Shard to consult for `id` right now: the primary unless a failure
  /// detector says it is dead, in which case the first live replica in
  /// `(shard + r) % nprocs` order (falling back to the primary if every
  /// replica is suspected — the query then fails like any send to a dead
  /// host). Counts a failover and traces when it re-routes.
  [[nodiscard]] ProcId live_shard(ObjectId id);

  /// Record per-category breakdown entries and return their cycle sum, for
  /// one atomic machine.compute() charge. (Not a coroutine: initializer
  /// lists cannot live in a coroutine frame.)
  sim::Cycles add_parts(
      std::initializer_list<std::pair<core::Category, sim::Cycles>> parts);
  /// Sender-side stub for a locator control message (mirrors send_path).
  [[nodiscard]] sim::Task<> send_ctl(ProcId at, unsigned words);
  /// Receiver-side handling of a locator control message at a shard/host.
  [[nodiscard]] sim::Task<> recv_ctl(ProcId at, unsigned words);
  /// Reply delivery back to the asker (mirrors receive_reply + linkage).
  [[nodiscard]] sim::Task<> recv_reply(ProcId at, unsigned words);

  core::Runtime* rt_;
  LocatorConfig cfg_;
  bool attached_ = false;
  ProcId nprocs_ = 0;
  std::deque<DirEntry> dir_;  // indexed by ObjectId (ids are dense);
                              // deque: AsyncMutex is not movable
  std::vector<ProcState> procs_;
  LocStats stats_;
  core::AdaptiveChooser* chooser_ = nullptr;
  core::FaultTolerance* ft_ = nullptr;
  unsigned replicas_ = 1;  // directory shard replication degree
};

/// Metrics schema helper: exports LocStats under "loc." keys.
void put_loc_stats(core::Metrics& m, const LocStats& s);

}  // namespace cm::loc
