#include "net/faulty_net.h"

#include "sim/tracer.h"

namespace cm::net {

const FaultRates& FaultyNetwork::rates_for(sim::ProcId src,
                                           sim::ProcId dst) const {
  const auto it = plan_.link_overrides.find({src, dst});
  return it != plan_.link_overrides.end() ? it->second : plan_.rates;
}

bool FaultyNetwork::in_window() const noexcept {
  const sim::Cycles now = engine_->now();
  return now >= plan_.window_start && now < plan_.window_end;
}

bool FaultyNetwork::nic_dead(sim::ProcId p) const noexcept {
  const auto it = plan_.nic_fail_at.find(p);
  return it != plan_.nic_fail_at.end() && engine_->now() >= it->second;
}

void FaultyNetwork::send(sim::ProcId src, sim::ProcId dst, unsigned words,
                         Traffic kind, std::function<void()> deliver) {
  const bool faultable =
      src != dst && (kind == Traffic::kRuntime || plan_.affect_coherence);
  if (!faultable) {
    inner_->send(src, dst, words, kind, std::move(deliver));
    return;
  }
  sim::Tracer* tr = engine_->tracer();
  // A fail-stopped NIC eats the message before it reaches the wire.
  if (nic_dead(src) || nic_dead(dst)) {
    ++faults_.faults_nic_dropped;
    if (tr) {
      tr->record(sim::TraceEvent::kFaultNicDrop, src,
                 {{"dst", dst}, {"words", words}});
    }
    return;
  }
  if (!in_window()) {
    inner_->send(src, dst, words, kind, std::move(deliver));
    return;
  }
  const FaultRates& r = rates_for(src, dst);
  if (r.drop > 0.0 && rng_.chance(r.drop)) {
    ++faults_.faults_dropped;
    if (tr) {
      tr->record(sim::TraceEvent::kFaultDrop, src,
                 {{"dst", dst}, {"words", words}});
    }
    return;
  }
  const sim::Cycles span = std::max<sim::Cycles>(plan_.max_extra_delay, 1);
  if (r.duplicate > 0.0 && rng_.chance(r.duplicate)) {
    // The clone crosses the wire as a real (later) message with its own
    // copy of the delivery callback; receivers must dedup.
    ++faults_.faults_duplicated;
    const sim::Cycles extra = 1 + rng_.below(span);
    if (tr) {
      tr->record(sim::TraceEvent::kFaultDuplicate, src,
                 {{"dst", dst}, {"words", words}, {"extra", extra}});
    }
    engine_->after(extra,
                   [this, src, dst, words, kind, d = deliver]() mutable {
                     inner_->send(src, dst, words, kind, std::move(d));
                   });
  }
  if (r.delay > 0.0 && rng_.chance(r.delay)) {
    // Holding the message back reorders it w.r.t. anything sent on the link
    // in the meantime (the inner network has no ordering guarantee across
    // injection times).
    ++faults_.faults_delayed;
    const sim::Cycles extra = 1 + rng_.below(span);
    if (tr) {
      tr->record(sim::TraceEvent::kFaultDelay, src,
                 {{"dst", dst}, {"words", words}, {"extra", extra}});
    }
    engine_->after(extra,
                   [this, src, dst, words, kind,
                    d = std::move(deliver)]() mutable {
                     inner_->send(src, dst, words, kind, std::move(d));
                   });
    return;
  }
  inner_->send(src, dst, words, kind, std::move(deliver));
}

const NetStats& FaultyNetwork::stats() const noexcept {
  merged_ = inner_->stats();
  merged_.faults_dropped = faults_.faults_dropped;
  merged_.faults_duplicated = faults_.faults_duplicated;
  merged_.faults_delayed = faults_.faults_delayed;
  merged_.faults_nic_dropped = faults_.faults_nic_dropped;
  return merged_;
}

}  // namespace cm::net
