#include "net/constant_net.h"

#include "check/checker.h"
#include "sim/tracer.h"

namespace cm::net {

void ConstantNetwork::send(sim::ProcId src, sim::ProcId dst, unsigned words,
                           Traffic kind, std::function<void()> deliver) {
  if (src == dst) {
    // Loopback (e.g. coherence request for a locally-homed line): delivered
    // immediately and not counted as network traffic.
    engine_->after(0, std::move(deliver));
    return;
  }
  slot(engine_->current_shard()).record(kind, words);
  if (sim::Tracer* tr = engine_->tracer()) {
    const std::uint64_t id = tr->next_msg_id();
    tr->record(sim::TraceEvent::kMsgSend, src,
               {{"dst", dst},
                {"words", words},
                {"coherence", kind == Traffic::kCoherence},
                {"msg", id}});
    deliver = [tr, dst, id, d = std::move(deliver)] {
      tr->record(sim::TraceEvent::kMsgDeliver, dst, {{"msg", id}});
      d();
    };
  }
  if (check::Checker* ck = engine_->checker()) {
    // Every cross-processor delivery is a happens-before edge: the token
    // snapshots the sender's vector clock now, the wrapper joins it into the
    // receiver's clock at delivery time. Loopback above is program order.
    const std::uint64_t hb = ck->on_send(src, dst);
    deliver = [ck, dst, hb, d = std::move(deliver)] {
      ck->on_deliver(dst, hb);
      d();
    };
  }
  // Deliveries are homed at the destination, which is also the cross-shard
  // hop: the latency here is >= min_cross_latency(), the sharded run's
  // window lookahead, so the event always lands beyond the current window.
  engine_->after_on(dst, latency(src, dst, words), std::move(deliver));
}

sim::Cycles ConstantNetwork::latency(sim::ProcId src, sim::ProcId dst,
                                     unsigned words) const {
  if (src == dst) return 0;
  return cfg_.launch + cfg_.per_word * words;
}

}  // namespace cm::net
