#include "net/constant_net.h"

namespace cm::net {

void ConstantNetwork::send(sim::ProcId src, sim::ProcId dst, unsigned words,
                           Traffic kind, std::function<void()> deliver) {
  if (src == dst) {
    // Loopback (e.g. coherence request for a locally-homed line): delivered
    // immediately and not counted as network traffic.
    engine_->after(0, std::move(deliver));
    return;
  }
  stats_.record(kind, words);
  engine_->after(latency(src, dst, words), std::move(deliver));
}

sim::Cycles ConstantNetwork::latency(sim::ProcId src, sim::ProcId dst,
                                     unsigned words) const {
  if (src == dst) return 0;
  return cfg_.launch + cfg_.per_word * words;
}

}  // namespace cm::net
