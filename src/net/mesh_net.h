// 2-D mesh interconnect with dimension-ordered (X-then-Y) wormhole routing,
// in the style of the machines Proteus modelled (Alewife, J-Machine).
//
// Latency = launch + per_hop * hops + per_word * words, plus optional link
// contention: each unidirectional link is a FIFO server occupied for
// (words * per_word + per_hop) cycles per message crossing it, so hot links
// (e.g. around a B-tree root's home node, or under shared-memory coherence
// storms) queue and delay traffic. Per-link word counters support hotspot
// analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "sim/engine.h"

namespace cm::net {

struct MeshConfig {
  unsigned width = 8;        // processors per row; height derived from P
  sim::Cycles launch = 4;    // injection overhead
  sim::Cycles per_hop = 2;   // router/wire latency per hop
  sim::Cycles per_word = 1;  // serialisation cycles per word
  bool contention = true;    // model per-link FIFO occupancy
};

class MeshNetwork final : public Network {
 public:
  /// `nprocs` must be <= width * ceil(nprocs/width); nodes are numbered
  /// row-major: proc p sits at (p % width, p / width).
  MeshNetwork(sim::Engine& engine, unsigned nprocs, MeshConfig cfg = {});

  void send(sim::ProcId src, sim::ProcId dst, unsigned words, Traffic kind,
            std::function<void()> deliver) override;

  [[nodiscard]] sim::Cycles latency(sim::ProcId src, sim::ProcId dst,
                                    unsigned words) const override;

  /// One hop is the cheapest cross-processor trip — the sharded lookahead.
  /// Valid only without contention modelling (which is why contention is
  /// restricted to single-shard runs: queueing delays have no lower bound
  /// a conservative window could rely on... they only ever add latency,
  /// but the per-link FIFO state itself is global and order-sensitive).
  [[nodiscard]] sim::Cycles min_cross_latency() const override {
    return cfg_.launch + cfg_.per_hop;
  }

  /// Manhattan distance between two nodes under X-then-Y routing.
  [[nodiscard]] unsigned hops(sim::ProcId src, sim::ProcId dst) const;

  /// Words that crossed the most heavily used link.
  [[nodiscard]] std::uint64_t max_link_words() const;

  [[nodiscard]] unsigned width() const noexcept { return cfg_.width; }
  [[nodiscard]] unsigned height() const noexcept { return height_; }

 private:
  // Occupancy is contention-only state; contention (and therefore free_at)
  // is restricted to single-shard runs. Per-link word counters are kept in
  // per-shard slabs (link_words_) so sends on different shards never touch
  // the same cache line.
  struct Link {
    sim::Cycles free_at = 0;
  };

  // Links are indexed by (node, direction): 0=+x, 1=-x, 2=+y, 3=-y.
  [[nodiscard]] std::size_t link_index(unsigned x, unsigned y,
                                       unsigned dir) const {
    return (static_cast<std::size_t>(y) * cfg_.width + x) * 4 + dir;
  }

  /// Walk the dimension-ordered route for a real message leaving at
  /// `start`, updating link occupancy and per-link word counters; returns
  /// the arrival time. Only `send` uses this — the zero-load `latency`
  /// query is closed-form and touches no link state, so a const network can
  /// never mutate links through a timing query.
  sim::Cycles route(sim::ProcId src, sim::ProcId dst, unsigned words,
                    sim::Cycles start);

  sim::Engine* engine_;
  MeshConfig cfg_;
  unsigned height_;
  std::vector<Link> links_;
  // Per-shard word counters: shard s owns [s * links_.size(), (s+1) * ...).
  std::vector<std::uint64_t> link_words_;
};

}  // namespace cm::net
