// Deterministic fault-injection decorator: wraps any Network and perturbs
// traffic according to a FaultPlan — message drop, duplication, extra delay
// (which reorders messages relative to later sends), and fail-stop NICs —
// driven by its own seeded sim::Rng so every chaos run is bit-for-bit
// reproducible and independent of workload RNG draws.
//
// By default only kRuntime traffic is faulted: the coherence protocol models
// a hardware network with link-level retry, while the software runtime layer
// must survive an unreliable interconnect via core::ReliableTransport. A
// duplicated message invokes its `deliver` callback twice — layers above
// must deduplicate (the reliable transport does); never point raw coroutine
// resumption at a faulty network.
//
// With an inactive plan (all rates zero, no overrides, no NIC failures) the
// decorator forwards every message untouched and draws no random numbers, so
// wrapping is behaviour-preserving; workloads skip the wrapper entirely in
// that case to keep fault-free runs bit-identical to the pre-fault system.
#pragma once

#include <algorithm>
#include <map>
#include <utility>

#include "net/network.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace cm::net {

/// Per-link fault probabilities, each in [0, 1].
struct FaultRates {
  double drop = 0.0;       // message vanishes in flight
  double duplicate = 0.0;  // a second copy is delivered later
  double delay = 0.0;      // message held back by a random extra delay

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0;
  }
};

struct FaultPlan {
  FaultRates rates;  // default for every (src, dst) link
  std::map<std::pair<sim::ProcId, sim::ProcId>, FaultRates> link_overrides;
  // Faults are injected only while now() is in [window_start, window_end);
  // the default window is all of time.
  sim::Cycles window_start = 0;
  sim::Cycles window_end = ~sim::Cycles{0};
  // Extra delay for delayed messages and duplicate copies is uniform in
  // [1, max_extra_delay] cycles.
  sim::Cycles max_extra_delay = 400;
  // Fail-stop: from the given cycle on, the processor's NIC silently eats
  // every message it would send or receive.
  std::map<sim::ProcId, sim::Cycles> nic_fail_at;
  bool affect_coherence = false;  // also fault kCoherence traffic
  std::uint64_t seed = 0x5eedfa17;

  /// Whether this plan can ever perturb a message.
  [[nodiscard]] bool active() const noexcept {
    if (rates.any() || !nic_fail_at.empty()) return true;
    for (const auto& [link, r] : link_overrides) {
      if (r.any()) return true;
    }
    return false;
  }
};

class FaultyNetwork final : public Network {
 public:
  FaultyNetwork(sim::Engine& engine, Network& inner, FaultPlan plan)
      : engine_(&engine),
        inner_(&inner),
        plan_(std::move(plan)),
        rng_(plan_.seed) {}

  void send(sim::ProcId src, sim::ProcId dst, unsigned words, Traffic kind,
            std::function<void()> deliver) override;

  /// Timing queries see the fault-free network: faults change delivery, not
  /// the zero-load latency model.
  [[nodiscard]] sim::Cycles latency(sim::ProcId src, sim::ProcId dst,
                                    unsigned words) const override {
    return inner_->latency(src, dst, words);
  }

  /// Faults only ever add delay (or erase the message), never shorten it.
  [[nodiscard]] sim::Cycles min_cross_latency() const override {
    return inner_->min_cross_latency();
  }

  /// The wrapped network's traffic counters with this layer's fault
  /// counters merged in.
  [[nodiscard]] const NetStats& stats() const noexcept override;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  [[nodiscard]] const FaultRates& rates_for(sim::ProcId src,
                                            sim::ProcId dst) const;
  [[nodiscard]] bool in_window() const noexcept;
  [[nodiscard]] bool nic_dead(sim::ProcId p) const noexcept;

  sim::Engine* engine_;
  Network* inner_;
  FaultPlan plan_;
  sim::Rng rng_;
  NetStats faults_;          // only the faults_* counters are ever touched
  mutable NetStats merged_;  // snapshot storage for stats()
};

}  // namespace cm::net
