// Uniform-latency interconnect: every message takes
//   launch + per_word * words  cycles,
// independent of the endpoint pair. This matches the paper's simple message
// model (§2.5) and its measured 17-cycle network transit (Table 5).
#pragma once

#include "net/network.h"
#include "sim/engine.h"

namespace cm::net {

struct ConstantNetConfig {
  sim::Cycles launch = 9;    // fixed wire/router latency
  sim::Cycles per_word = 1;  // additional cycles per payload word
};

class ConstantNetwork final : public Network {
 public:
  ConstantNetwork(sim::Engine& engine, ConstantNetConfig cfg = {})
      : Network(engine.shards()), engine_(&engine), cfg_(cfg) {}

  void send(sim::ProcId src, sim::ProcId dst, unsigned words, Traffic kind,
            std::function<void()> deliver) override;

  [[nodiscard]] sim::Cycles latency(sim::ProcId src, sim::ProcId dst,
                                    unsigned words) const override;

  /// Every cross-processor message pays at least the launch cost,
  /// independent of payload — the sharded run's lookahead.
  [[nodiscard]] sim::Cycles min_cross_latency() const override {
    return cfg_.launch;
  }

 private:
  sim::Engine* engine_;
  ConstantNetConfig cfg_;
};

}  // namespace cm::net
