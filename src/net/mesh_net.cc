#include "net/mesh_net.h"

#include <algorithm>
#include <cassert>

#include "check/checker.h"
#include "sim/tracer.h"

namespace cm::net {

MeshNetwork::MeshNetwork(sim::Engine& engine, unsigned nprocs, MeshConfig cfg)
    : Network(engine.shards()), engine_(&engine), cfg_(cfg) {
  assert(cfg_.width > 0);
  // Link occupancy is one global FIFO timeline per link — meaningless (and
  // racy) when shards run their own clocks; the workload layer rejects the
  // combination, this assert backs it up.
  assert((engine.shards() == 1 || !cfg_.contention) &&
         "mesh contention modelling requires a single shard");
  height_ = (nprocs + cfg_.width - 1) / cfg_.width;
  if (height_ == 0) height_ = 1;
  links_.resize(static_cast<std::size_t>(cfg_.width) * height_ * 4);
  link_words_.resize(links_.size() * engine.shards());
}

unsigned MeshNetwork::hops(sim::ProcId src, sim::ProcId dst) const {
  const unsigned sx = src % cfg_.width, sy = src / cfg_.width;
  const unsigned dx = dst % cfg_.width, dy = dst / cfg_.width;
  const unsigned ddx = sx > dx ? sx - dx : dx - sx;
  const unsigned ddy = sy > dy ? sy - dy : dy - sy;
  return ddx + ddy;
}

sim::Cycles MeshNetwork::route(sim::ProcId src, sim::ProcId dst,
                               unsigned words, sim::Cycles start) {
  // Head flit time at the current node; the tail lags by words*per_word.
  sim::Cycles head = start + cfg_.launch;
  const sim::Cycles occupancy =
      cfg_.per_hop + static_cast<sim::Cycles>(cfg_.per_word) * words;

  unsigned x = src % cfg_.width, y = src / cfg_.width;
  const unsigned dx = dst % cfg_.width, dy = dst / cfg_.width;

  // This shard's slab of per-link word counters (slab 0 for classic runs).
  std::uint64_t* const shard_words =
      link_words_.data() + static_cast<std::size_t>(engine_->current_shard()) *
                               links_.size();

  auto cross = [&](unsigned dir, unsigned& coord, bool forward) {
    const std::size_t li = link_index(x, y, dir);
    if (cfg_.contention) {
      Link& link = links_[li];
      const sim::Cycles begin = std::max(head, link.free_at);
      link.free_at = begin + occupancy;
      head = begin + cfg_.per_hop;
    } else {
      head += cfg_.per_hop;
    }
    shard_words[li] += words;
    coord = forward ? coord + 1 : coord - 1;
  };

  while (x != dx) {
    if (x < dx) {
      cross(0, x, true);
    } else {
      cross(1, x, false);
    }
  }
  while (y != dy) {
    if (y < dy) {
      cross(2, y, true);
    } else {
      cross(3, y, false);
    }
  }
  // Tail arrives after the payload has serialised through the final link.
  return head + static_cast<sim::Cycles>(cfg_.per_word) * words;
}

void MeshNetwork::send(sim::ProcId src, sim::ProcId dst, unsigned words,
                       Traffic kind, std::function<void()> deliver) {
  if (src == dst) {
    // Loopback: local delivery, not network traffic.
    engine_->after(0, std::move(deliver));
    return;
  }
  slot(engine_->current_shard()).record(kind, words);
  if (sim::Tracer* tr = engine_->tracer()) {
    const std::uint64_t id = tr->next_msg_id();
    tr->record(sim::TraceEvent::kMsgSend, src,
               {{"dst", dst},
                {"words", words},
                {"coherence", kind == Traffic::kCoherence},
                {"msg", id}});
    deliver = [tr, dst, id, d = std::move(deliver)] {
      tr->record(sim::TraceEvent::kMsgDeliver, dst, {{"msg", id}});
      d();
    };
  }
  if (check::Checker* ck = engine_->checker()) {
    // Same happens-before edge as ConstantNetwork: snapshot the sender's
    // clock on send, join it into the receiver's on delivery.
    const std::uint64_t hb = ck->on_send(src, dst);
    deliver = [ck, dst, hb, d = std::move(deliver)] {
      ck->on_deliver(dst, hb);
      d();
    };
  }
  // Home the delivery at the destination — the cross-shard hop. Without
  // contention, arrive >= now + launch + per_hop = now + min_cross_latency,
  // so the event always lands beyond the current window.
  const sim::Cycles arrive = route(src, dst, words, engine_->now());
  engine_->at_on(dst, arrive, std::move(deliver));
}

sim::Cycles MeshNetwork::latency(sim::ProcId src, sim::ProcId dst,
                                 unsigned words) const {
  if (src == dst) return 0;
  // Zero-load: the head pays launch plus one router delay per hop, the tail
  // serialises behind it on the final link. Closed-form — identical to an
  // uncontended walk of `route`, but provably side-effect-free.
  return cfg_.launch +
         static_cast<sim::Cycles>(cfg_.per_hop) * hops(src, dst) +
         static_cast<sim::Cycles>(cfg_.per_word) * words;
}

std::uint64_t MeshNetwork::max_link_words() const {
  std::uint64_t best = 0;
  for (std::size_t li = 0; li < links_.size(); ++li) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < link_words_.size() / links_.size(); ++s) {
      total += link_words_[s * links_.size() + li];
    }
    best = std::max(best, total);
  }
  return best;
}

}  // namespace cm::net
