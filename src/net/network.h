// Interconnect abstraction. Both runtime messages (RPC requests/replies,
// migrated activations) and cache-coherence protocol messages travel through
// the same Network object, so the bandwidth numbers reported for Figure 3 /
// Tables 2 and 4 account for *all* traffic, exactly as in the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace cm::net {

/// Classification of traffic for reporting; does not affect timing.
enum class Traffic : std::uint8_t {
  kRuntime,    // RPC / migration / replication messages (software)
  kCoherence,  // directory-protocol messages (hardware)
};

/// Cumulative traffic counters. Benchmarks snapshot these around the
/// measurement window to compute "words sent / 10 cycles".
struct NetStats {
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t runtime_messages = 0;
  std::uint64_t runtime_words = 0;
  std::uint64_t coherence_messages = 0;
  std::uint64_t coherence_words = 0;

  // Injected-fault accounting (nonzero only behind a FaultyNetwork). A
  // dropped message never reaches the wire, so it appears here and NOT in
  // the traffic counters above; a duplicated message's clone is real
  // traffic and is counted in both.
  std::uint64_t faults_dropped = 0;      // messages erased in flight
  std::uint64_t faults_duplicated = 0;   // extra copies injected
  std::uint64_t faults_delayed = 0;      // messages held back (reordering)
  std::uint64_t faults_nic_dropped = 0;  // victims of a fail-stopped NIC

  void record(Traffic kind, unsigned w) noexcept {
    ++messages;
    words += w;
    if (kind == Traffic::kRuntime) {
      ++runtime_messages;
      runtime_words += w;
    } else {
      ++coherence_messages;
      coherence_words += w;
    }
  }

  /// Accumulate another counter set (merging per-shard slices).
  void add(const NetStats& o) noexcept {
    messages += o.messages;
    words += o.words;
    runtime_messages += o.runtime_messages;
    runtime_words += o.runtime_words;
    coherence_messages += o.coherence_messages;
    coherence_words += o.coherence_words;
    faults_dropped += o.faults_dropped;
    faults_duplicated += o.faults_duplicated;
    faults_delayed += o.faults_delayed;
    faults_nic_dropped += o.faults_nic_dropped;
  }
};

class Network {
 public:
  virtual ~Network() = default;

  /// Send a `words`-word message from `src` to `dst`; `deliver` runs at the
  /// arrival time (in an engine event at the destination). The destination
  /// CPU is NOT implicitly occupied — message-handling software costs are
  /// charged by the runtime layer; hardware protocol handling is charged to
  /// the memory controller by the coherence layer.
  virtual void send(sim::ProcId src, sim::ProcId dst, unsigned words,
                    Traffic kind, std::function<void()> deliver) = 0;

  /// Pure timing query: cycles a `words`-word message takes src -> dst under
  /// zero load. Used by analytic checks and tests.
  [[nodiscard]] virtual sim::Cycles latency(sim::ProcId src, sim::ProcId dst,
                                            unsigned words) const = 0;

  /// Smallest latency any cross-processor message can ever experience: the
  /// conservative lookahead that bounds a sharded run's barrier-free
  /// windows (DESIGN.md §12). Concrete networks override with a closed
  /// form; the default is the zero-load latency of a minimal message.
  [[nodiscard]] virtual sim::Cycles min_cross_latency() const {
    return latency(0, 1, 1);
  }

  /// Whole-machine traffic counters (all shard slices merged). Virtual so
  /// decorators (FaultyNetwork) can fold their fault counters in.
  [[nodiscard]] virtual const NetStats& stats() const noexcept {
    merged_ = NetStats{};
    for (const NetStats& s : shard_stats_) merged_.add(s);
    return merged_;
  }

  /// One shard's slice of the counters: traffic whose send executed on that
  /// shard. Measurement snapshots in sharded runs read only their own
  /// shard's slice, so they never race with (or observe mid-window state
  /// of) other shards.
  [[nodiscard]] const NetStats& stats_of_shard(unsigned s) const noexcept {
    return shard_stats_[s];
  }

 protected:
  /// `shard_slots` comes from the owning engine's shard count; sends record
  /// into the slice of the shard they execute on.
  explicit Network(unsigned shard_slots = 1)
      : shard_stats_(shard_slots != 0 ? shard_slots : 1) {}

  [[nodiscard]] NetStats& slot(unsigned s) noexcept { return shard_stats_[s]; }

 private:
  std::vector<NetStats> shard_stats_;
  mutable NetStats merged_;  // snapshot storage for stats()
};

}  // namespace cm::net
