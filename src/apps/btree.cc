#include "apps/btree.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "policy/policy.h"

namespace cm::apps {

using core::Ctx;
using core::Mechanism;
using sim::ProcId;
using sim::Task;

namespace {
/// ceil(log2(n+1)): binary-search probes into an n-entry node.
unsigned log2probes(std::size_t n) {
  return n == 0 ? 0u : static_cast<unsigned>(std::bit_width(n));
}
}  // namespace

DistributedBTree::DistributedBTree(core::Runtime& rt,
                                   shmem::CoherentMemory* mem, Params p)
    : rt_(&rt), mem_(mem), p_(p), rng_(p.seed) {
  if (mem_ != nullptr) anchor_addr_ = mem_->alloc(0, 8);
  root_ = alloc_node(/*leaf=*/true, /*level=*/0);
  if (p_.replication) {
    repl_ = std::make_unique<core::Replicated>(rt, nodes_[root_].oid,
                                               replica_words());
  }
}

unsigned DistributedBTree::replica_words() const {
  // A root fetch ships the root's entries: ~3 words per entry (key is two
  // 32-bit words + payload), bounded below for tiny roots.
  return std::max(8u, 3u * std::min<unsigned>(p_.max_entries, 16u));
}

std::uint32_t DistributedBTree::alloc_node(bool leaf, unsigned level) {
  ProcId home = static_cast<ProcId>(rng_.below(p_.node_procs));
  // Under fail-stop tolerance a split mid-run must not place the new node
  // on a processor already known dead (recovery only covers objects that
  // existed at suspicion time). Skip to the next live node processor in
  // ring order — a single rng draw either way, so the draw sequence (and
  // every ft-off run) is unchanged.
  if (const core::FaultTolerance* ft = rt_->fault_tolerance()) {
    for (ProcId off = 0; off < p_.node_procs && ft->suspected(home); ++off) {
      home = static_cast<ProcId>((home + 1) % p_.node_procs);
    }
  }
  Node n;
  n.leaf = leaf;
  n.level = level;
  n.home = home;
  n.oid = rt_->objects().create(home);
  n.mutex = std::make_unique<sim::AsyncMutex>();
  // A moved node ships its full entry array (3 words per entry + header).
  n.mobile = std::make_unique<core::MobileObject>(
      *rt_, n.oid, 2 + 3 * p_.max_entries);
  if (mem_ != nullptr) {
    // header line + (key, payload) pairs, one entry per 16 bytes.
    n.base = mem_->alloc(home, 16 + 16ull * (p_.max_entries + 1));
    n.seq = std::make_unique<shmem::SeqLock>(*mem_, home);
    n.sm_lock = std::make_unique<shmem::SpinLock>(*mem_, home);
  }
  nodes_.push_back(std::move(n));
  Node& placed = nodes_.back();
  // Split-born nodes join the policy's managed set as they appear (ignored
  // mid-run on multi-shard engines; see PolicyEngine::manage).
  if (policy_ != nullptr) {
    policy_->manage(placed.oid, placed.mobile.get(), 2 + 3 * p_.max_entries,
                    /*replicable=*/!placed.leaf);
  }
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void DistributedBTree::set_policy(policy::PolicyEngine* pol) {
  policy_ = pol;
  if (pol == nullptr) return;
  // Internal nodes are read-mostly routers and may be flipped into
  // replication mode; leaves take the entry writes and only ever move.
  for (const Node& n : nodes_) {
    pol->manage(n.oid, n.mobile.get(), 2 + 3 * p_.max_entries,
                /*replicable=*/!n.leaf);
  }
}

void DistributedBTree::bulk_load(const std::vector<std::uint64_t>& keys) {
  assert(std::is_sorted(keys.begin(), keys.end()));
  assert(nodes_.size() == 1 && nodes_[root_].maxkey.empty() &&
         "bulk_load must run on a fresh tree");
  nodes_.clear();

  const auto per_node = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(p_.max_entries) *
                                  p_.bulk_fill));

  // Build the leaf level.
  std::vector<std::uint32_t> level_nodes;
  for (std::size_t i = 0; i < keys.size() || level_nodes.empty();) {
    const std::uint32_t id = alloc_node(true, 0);
    Node& n = nodes_[id];
    for (std::size_t j = 0; j < per_node && i < keys.size(); ++j, ++i) {
      n.maxkey.push_back(keys[i]);
      n.payload.push_back(keys[i]);  // value := key for bulk-loaded data
    }
    n.high_key = n.maxkey.empty() ? kMaxKey : n.maxkey.back();
    level_nodes.push_back(id);
    if (keys.empty()) break;
  }
  link_level(level_nodes);

  // Build internal levels until one node remains. When a whole level fits
  // in a single node, that node becomes the root — packing it at the fill
  // factor would manufacture a needless extra level with a 2-child root.
  unsigned level = 1;
  while (level_nodes.size() > 1) {
    const bool is_root_level = level_nodes.size() <= p_.max_entries;
    const std::size_t take = is_root_level ? level_nodes.size() : per_node;
    std::vector<std::uint32_t> parents;
    for (std::size_t i = 0; i < level_nodes.size();) {
      const std::uint32_t id = alloc_node(false, level);
      Node& n = nodes_[id];
      for (std::size_t j = 0; j < take && i < level_nodes.size(); ++j, ++i) {
        const Node& child = nodes_[level_nodes[i]];
        n.maxkey.push_back(child.high_key);
        n.payload.push_back(level_nodes[i]);
      }
      n.high_key = n.maxkey.back();
      parents.push_back(id);
    }
    link_level(parents);
    level_nodes = std::move(parents);
    ++level;
  }
  root_ = level_nodes.front();
  if (p_.replication) repl_->rebind(nodes_[root_].oid);
}

void DistributedBTree::link_level(const std::vector<std::uint32_t>& ids) {
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    nodes_[ids[i]].right = ids[i + 1];
  }
  // The rightmost node of every level covers the whole remaining key space.
  Node& last = nodes_[ids.back()];
  last.high_key = kMaxKey;
  if (!last.leaf) last.maxkey.back() = kMaxKey;
}

// ---------------------------------------------------------------------------
// Host-level tree logic
// ---------------------------------------------------------------------------

DistributedBTree::Step DistributedBTree::search_step(
    const Node& n, std::uint64_t key) const {
  if (key > n.high_key && n.right != kNone) {
    return Step{Step::Kind::kLateral, n.right, false, 0};
  }
  const auto it = std::lower_bound(n.maxkey.begin(), n.maxkey.end(), key);
  if (n.leaf) {
    const bool found = it != n.maxkey.end() && *it == key;
    const auto idx = static_cast<std::size_t>(it - n.maxkey.begin());
    return Step{Step::Kind::kLeaf, kNone, found, found ? n.payload[idx] : 0};
  }
  auto idx = static_cast<std::size_t>(it - n.maxkey.begin());
  if (idx == n.maxkey.size()) idx = n.maxkey.size() - 1;  // high_key == MAX
  return Step{Step::Kind::kDescend,
              static_cast<std::uint32_t>(n.payload[idx]), false, 0};
}

unsigned DistributedBTree::probes(const Node& n) const {
  return log2probes(n.maxkey.size());
}

bool DistributedBTree::apply_entry_insert(Node& n, std::uint64_t key,
                                          std::uint64_t payload) {
  assert(n.leaf);
  const auto it = std::lower_bound(n.maxkey.begin(), n.maxkey.end(), key);
  const auto idx = static_cast<std::size_t>(it - n.maxkey.begin());
  if (it != n.maxkey.end() && *it == key) {
    n.payload[idx] = payload;  // duplicate: overwrite
    return false;
  }
  n.maxkey.insert(it, key);
  n.payload.insert(n.payload.begin() + static_cast<std::ptrdiff_t>(idx),
                   payload);
  return true;
}

bool DistributedBTree::apply_entry_remove(Node& n, std::uint64_t key) {
  assert(n.leaf);
  const auto it = std::lower_bound(n.maxkey.begin(), n.maxkey.end(), key);
  if (it == n.maxkey.end() || *it != key) return false;
  const auto idx = static_cast<std::size_t>(it - n.maxkey.begin());
  n.maxkey.erase(it);
  n.payload.erase(n.payload.begin() + static_cast<std::ptrdiff_t>(idx));
  // Lazy deletion: high_key and parent separators are left as-is; an empty
  // leaf simply routes traversals onward.
  return true;
}

std::uint32_t DistributedBTree::apply_split(std::uint32_t nid) {
  // Note: alloc_node may reallocate bookkeeping, so take references after.
  const std::uint32_t sid = alloc_node(nodes_[nid].leaf, nodes_[nid].level);
  Node& n = nodes_[nid];
  Node& s = nodes_[sid];
  const std::size_t h = n.maxkey.size() / 2;
  s.maxkey.assign(n.maxkey.begin() + static_cast<std::ptrdiff_t>(h),
                  n.maxkey.end());
  s.payload.assign(n.payload.begin() + static_cast<std::ptrdiff_t>(h),
                   n.payload.end());
  n.maxkey.resize(h);
  n.payload.resize(h);
  s.high_key = n.high_key;
  s.right = n.right;
  n.high_key = n.maxkey.back();
  n.right = sid;
  return sid;
}

void DistributedBTree::apply_parent_update(Node& parent,
                                           const SplitInfo& info) {
  const auto it = std::lower_bound(parent.maxkey.begin(), parent.maxkey.end(),
                                   info.right_max);
  const auto idx = static_cast<std::size_t>(it - parent.maxkey.begin());
  assert(it != parent.maxkey.end() && *it == info.right_max &&
         parent.payload[idx] == info.left &&
         "parent entry for the split child must be present");
  parent.maxkey[idx] = info.left_max;
  parent.maxkey.insert(parent.maxkey.begin() +
                           static_cast<std::ptrdiff_t>(idx) + 1,
                       info.right_max);
  parent.payload.insert(parent.payload.begin() +
                            static_cast<std::ptrdiff_t>(idx) + 1,
                        info.right);
}

// ---------------------------------------------------------------------------
// Simulation adapters
// ---------------------------------------------------------------------------

sim::Task<> DistributedBTree::charge_search(Ctx& ctx, Mechanism mech,
                                            std::uint32_t nid,
                                            bool optimistic) {
  Node& n = nodes_[nid];
  const unsigned np = probes(n);
  // Search work scales with the node: the binary-search probes plus the
  // dense scan/compare over the located region. For the paper's 100-entry
  // nodes this dominates ("activations accessing smaller nodes require less
  // time to service", §4.2).
  const sim::Cycles search_cycles =
      p_.search_base + p_.search_per_probe * np +
      p_.search_per_entry * static_cast<sim::Cycles>(n.maxkey.size());
  if (mech != Mechanism::kSharedMemory) {
    co_await rt_->compute(ctx, search_cycles);
    co_return;
  }
  // Shared memory: the requester reads the node's lines coherently. The
  // search touches the header plus a dense slice of the entry array — a
  // binary search's probes plus the final scan/copy region; for the
  // 100-entry nodes of §4.2 this is a substantial fraction of the node,
  // which is why the paper's SM caches hit so rarely on leaf data.
  const ProcId p = ctx.proc;
  for (;;) {
    std::uint64_t v = 0;
    if (optimistic) {
      // Wang-era concurrent B-trees take a shared (read) lock per node
      // visit: two read-modify-writes on the node's lock word, a line that
      // ping-pongs among all requesters -- the "data contention" the paper
      // describes at the root. Consistency of the snapshot itself is
      // enforced by the version check below.
      co_await mem_->write(p, n.sm_lock->addr(), 4);
      v = co_await n.seq->begin_read(p);
    }
    co_await mem_->read(p, n.base, 16);  // header
    const auto entries = static_cast<unsigned>(n.maxkey.size());
    const unsigned nreads = std::max({1u, np, entries / 3});
    const std::uint64_t entry_bytes = 16ull * (p_.max_entries + 1);
    const std::uint64_t stride = std::max<std::uint64_t>(16, entry_bytes / nreads);
    for (unsigned i = 0; i < nreads; ++i) {
      co_await mem_->read(p, n.base + 16 + i * stride, 8);
    }
    co_await rt_->compute(ctx, search_cycles);
    if (!optimistic) co_return;
    co_await mem_->write(p, n.sm_lock->addr(), 4);  // release the read lock
    if (co_await n.seq->validate(p, v)) co_return;
    // Torn read: a writer intervened; retry (charges again, as real
    // optimistic readers do).
  }
}

sim::Task<> DistributedBTree::charge_modify(Ctx& ctx, Mechanism mech,
                                            std::uint32_t nid, bool split) {
  Node& n = nodes_[nid];
  // Shifting the entry array costs work proportional to the node size.
  co_await rt_->compute(
      ctx, p_.modify_work +
               p_.modify_per_entry * static_cast<sim::Cycles>(n.maxkey.size()) +
               (split ? p_.split_work : 0));
  if (mech != Mechanism::kSharedMemory) co_return;
  const ProcId p = ctx.proc;
  // Entry insertion dirties the header plus the shifted tail of the entry
  // array (half the entries on average); a split additionally writes the
  // new sibling's half of the node.
  co_await mem_->write(p, n.base, 16);
  const auto entries = static_cast<unsigned>(n.maxkey.size());
  const unsigned shifted = std::max(2u, entries / 4);
  co_await mem_->write(p, n.base + 16, shifted * 16);
  if (split) {
    const Node& s = nodes_[n.right];  // freshly created sibling
    const std::uint64_t bytes = 16 + 16ull * s.maxkey.size();
    co_await mem_->write(p, s.base, static_cast<unsigned>(bytes));
  }
}

sim::Task<> DistributedBTree::approach(Ctx& ctx, Mechanism mech,
                                       std::uint32_t nid) {
  switch (mech) {
    case Mechanism::kMigration:
      // <<< the annotation: move this activation to the node >>>
      co_await rt_->migrate(ctx, nodes_[nid].oid, p_.frame_words);
      break;
    case Mechanism::kThreadMigration:
      co_await rt_->migrate(ctx, nodes_[nid].oid, p_.thread_state_words);
      break;
    case Mechanism::kObjectMigration:
      co_await nodes_[nid].mobile->attract(ctx);
      break;
    case Mechanism::kRpc:
    case Mechanism::kSharedMemory:
      break;
  }
}

sim::Task<DistributedBTree::Step> DistributedBTree::visit_node(
    Ctx& ctx, Mechanism mech, std::uint32_t nid, std::uint64_t key) {
  const ProcId requester = ctx.proc;
  if (sim::Tracer* tr = rt_->tracer()) {
    tr->record(sim::TraceEvent::kBTreeNodeVisit, ctx.proc,
               {{"node", nid}, {"level", nodes_[nid].level}});
  }
  if (mech == Mechanism::kSharedMemory) {
    co_await charge_search(ctx, mech, nid, /*optimistic=*/true);
    co_return search_step(nodes_[nid], key);
  }
  if (policy_ != nullptr) {
    // Phase-flipped node: read it from the local replica instead of the
    // primary — same timing model as visit_root_replicated, and B-link
    // lateral moves absorb any staleness in the routing entries.
    if (core::Replicated* pr = policy_->replica_of(nodes_[nid].oid)) {
      co_await pr->ensure(ctx);
      const Node& n = nodes_[nid];
      co_await rt_->compute(
          ctx, p_.search_base + p_.search_per_probe * probes(n) +
                   p_.search_per_entry * static_cast<sim::Cycles>(n.maxkey.size()));
      policy_->on_access(n.oid, requester, /*write=*/false);
      co_return search_step(n, key);
    }
  }
  co_await approach(ctx, mech, nid);
  const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words,
                            /*short_method=*/false};
  co_return co_await rt_->call(
      ctx, nodes_[nid].oid, opts,
      [this, mech, nid, key, requester](Ctx& callee) -> Task<Step> {
        if (policy_ != nullptr) {
          // The body runs at the node's home; the requester captured at
          // procedure entry is the profile's accessor.
          policy_->on_access(nodes_[nid].oid, requester, /*write=*/false);
        }
        co_await charge_search(callee, mech, nid, false);
        co_return search_step(nodes_[nid], key);
      });
}

sim::Task<DistributedBTree::Step> DistributedBTree::visit_root_replicated(
    Ctx& ctx, std::uint64_t key) {
  // Read the local root replica (fetch it first if invalid). The replica's
  // *timing* is simulated; its contents are read from the live node, which
  // is safe because B-link descents tolerate stale routing (lateral moves
  // recover).
  co_await repl_->ensure(ctx);
  const std::uint32_t r = root_;
  co_await rt_->compute(
      ctx, p_.search_base + p_.search_per_probe * probes(nodes_[r]) +
               p_.search_per_entry *
                   static_cast<sim::Cycles>(nodes_[r].maxkey.size()));
  co_return search_step(nodes_[r], key);
}

sim::Task<bool> DistributedBTree::lookup(Ctx& ctx, Mechanism mech,
                                         std::uint64_t key,
                                         std::uint64_t* value_out) {
  const ProcId origin = ctx.proc;
  if (mech == Mechanism::kSharedMemory && mem_ != nullptr) {
    co_await mem_->read(ctx.proc, anchor_addr_, 8);  // root pointer
  }
  std::uint32_t cur = root_;
  bool use_repl = repl_ != nullptr && mech != Mechanism::kSharedMemory;
  bool found = false;
  std::uint64_t value = 0;
  for (;;) {
    Step s{};
    if (use_repl && cur == root_ && !nodes_[cur].leaf) {
      s = co_await visit_root_replicated(ctx, key);
    } else {
      s = co_await visit_node(ctx, mech, cur, key);
    }
    if (s.kind == Step::Kind::kLeaf) {
      found = s.found;
      value = s.value;
      break;
    }
    cur = s.next;
  }
  co_await rt_->return_home(ctx, origin, p_.rpc_ret_words);
  if (value_out != nullptr && found) *value_out = value;
  co_return found;
}

sim::Task<> DistributedBTree::lock_node(Ctx& ctx, Mechanism mech,
                                        std::uint32_t nid) {
  if (mech == Mechanism::kSharedMemory) {
    co_await nodes_[nid].sm_lock->acquire(ctx.proc);
  } else {
    co_await nodes_[nid].mutex->lock();
  }
}

sim::Task<> DistributedBTree::unlock_node(Ctx& ctx, Mechanism mech,
                                          std::uint32_t nid) {
  if (mech == Mechanism::kSharedMemory) {
    co_await nodes_[nid].sm_lock->release(ctx.proc);
  } else {
    nodes_[nid].mutex->unlock();
  }
}

sim::Task<DistributedBTree::InsertOutcome> DistributedBTree::insert_into_leaf(
    Ctx& ctx, Mechanism mech, std::uint32_t leaf, std::uint64_t key,
    std::uint64_t value) {
  const ProcId requester = ctx.proc;
  for (;;) {
    co_await approach(ctx, mech, leaf);
    // Under RPC/CM the locked section below runs as a method at the leaf's
    // home; under SM it runs at the requester against coherent memory. The
    // body is identical either way (the annotation changes nothing
    // semantically), so we share it and only route the execution site.
    struct Attempt {
      bool lateral = false;
      std::uint32_t next = kNone;
      InsertOutcome out;
    };
    auto body = [this, mech, leaf, key, value,
                 requester](Ctx& at) -> Task<Attempt> {
      co_await lock_node(at, mech, leaf);
      Node& n = nodes_[leaf];
      if (key > n.high_key && n.right != kNone) {
        const std::uint32_t nxt = n.right;
        co_await unlock_node(at, mech, leaf);
        co_return Attempt{true, nxt, {}};
      }
      if (policy_ != nullptr) {
        policy_->on_access(n.oid, requester, /*write=*/true);
        co_await policy_->write_barrier(at, n.oid);
      }
      co_await charge_search(at, mech, leaf, /*optimistic=*/false);
      if (repl_ != nullptr && leaf == root_) {
        co_await repl_->invalidate_all(at);
      }
      if (n.seq != nullptr && mech == Mechanism::kSharedMemory) {
        co_await n.seq->begin_write(at.proc);
      }
      InsertOutcome out;
      out.inserted = apply_entry_insert(n, key, value);
      const bool overflow = n.maxkey.size() > p_.max_entries;
      if (overflow) {
        const std::uint32_t sid = apply_split(leaf);
        Node& left = nodes_[leaf];
        out.split = SplitInfo{leaf, sid, left.high_key,
                              nodes_[sid].high_key, left.level};
      }
      co_await charge_modify(at, mech, leaf, overflow);
      if (nodes_[leaf].seq != nullptr && mech == Mechanism::kSharedMemory) {
        co_await nodes_[leaf].seq->end_write(at.proc);
      }
      // A split keeps the left node locked until its separator is installed
      // in the parent (prevents racing double-splits from confusing the
      // parent update).
      if (!overflow) co_await unlock_node(at, mech, leaf);
      co_return Attempt{false, kNone, out};
    };

    Attempt a{};
    if (mech == Mechanism::kSharedMemory) {
      Ctx here{rt_, ctx.proc};
      a = co_await body(here);
    } else {
      const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words, false};
      a = co_await rt_->call(ctx, nodes_[leaf].oid, opts, body);
    }
    if (a.lateral) {
      leaf = a.next;
      continue;
    }
    co_return a.out;
  }
}

sim::Task<> DistributedBTree::install_split(Ctx& ctx, Mechanism mech,
                                            std::vector<std::uint32_t> stack,
                                            SplitInfo info) {
  const ProcId requester = ctx.proc;
  for (;;) {
    if (stack.empty()) {
      co_await split_root(ctx, mech, info);
      co_return;
    }
    std::uint32_t parent = stack.back();
    stack.pop_back();

    std::optional<SplitInfo> cascade;
    for (;;) {  // lateral loop at the parent level
      co_await approach(ctx, mech, parent);
      struct Attempt {
        bool lateral = false;
        std::uint32_t next = kNone;
        std::optional<SplitInfo> cascade;
      };
      auto body = [this, mech, parent, info,
                   requester](Ctx& at) -> Task<Attempt> {
        co_await lock_node(at, mech, parent);
        Node& n = nodes_[parent];
        if (info.right_max > n.high_key && n.right != kNone) {
          const std::uint32_t nxt = n.right;
          co_await unlock_node(at, mech, parent);
          co_return Attempt{true, nxt, {}};
        }
        if (policy_ != nullptr) {
          policy_->on_access(n.oid, requester, /*write=*/true);
          co_await policy_->write_barrier(at, n.oid);
        }
        co_await charge_search(at, mech, parent, /*optimistic=*/false);
        if (repl_ != nullptr && parent == root_) {
          co_await repl_->invalidate_all(at);
        }
        if (n.seq != nullptr && mech == Mechanism::kSharedMemory) {
          co_await n.seq->begin_write(at.proc);
        }
        apply_parent_update(n, info);
        Attempt a{};
        const bool overflow = n.maxkey.size() > p_.max_entries;
        if (overflow) {
          const std::uint32_t sid = apply_split(parent);
          Node& left = nodes_[parent];
          a.cascade = SplitInfo{parent, sid, left.high_key,
                                nodes_[sid].high_key, left.level};
        }
        co_await charge_modify(at, mech, parent, overflow);
        if (nodes_[parent].seq != nullptr &&
            mech == Mechanism::kSharedMemory) {
          co_await nodes_[parent].seq->end_write(at.proc);
        }
        // The child's separator is installed: release the child.
        co_await unlock_node(at, mech, info.left);
        if (!overflow) co_await unlock_node(at, mech, parent);
        co_return a;
      };

      Attempt a{};
      if (mech == Mechanism::kSharedMemory) {
        Ctx here{rt_, ctx.proc};
        a = co_await body(here);
      } else {
        const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words, false};
        a = co_await rt_->call(ctx, nodes_[parent].oid, opts, body);
      }
      if (a.lateral) {
        parent = a.next;
        continue;
      }
      cascade = a.cascade;
      break;
    }

    if (!cascade.has_value()) co_return;
    info = *cascade;
  }
}

sim::Task<> DistributedBTree::split_root(Ctx& ctx, Mechanism mech,
                                         SplitInfo info) {
  co_await tree_lock_.lock();
  if (root_ != info.left) {
    // Someone grew the tree above us since the descent began: find the
    // parent one level above the split and fall back to the normal path.
    tree_lock_.unlock();
    std::vector<std::uint32_t> stack;
    std::uint32_t cur = root_;
    while (nodes_[cur].level > info.level + 1) {
      const Step s = search_step(nodes_[cur], info.left_max);
      if (s.kind == Step::Kind::kLateral) {
        cur = s.next;
        continue;
      }
      stack.push_back(cur);
      cur = s.next;
    }
    stack.push_back(cur);
    co_await install_split(ctx, mech, std::move(stack), info);
    co_return;
  }

  if (repl_ != nullptr) co_await repl_->invalidate_all(ctx);

  const std::uint32_t nr = alloc_node(false, info.level + 1);
  Node& r = nodes_[nr];
  r.maxkey = {info.left_max, info.right_max};
  r.payload = {info.left, info.right};
  r.high_key = kMaxKey;
  co_await rt_->compute(ctx, p_.modify_work + p_.split_work);
  if (mech == Mechanism::kSharedMemory && mem_ != nullptr) {
    co_await mem_->write(ctx.proc, r.base, 48);
    co_await mem_->write(ctx.proc, anchor_addr_, 8);  // publish new root
  }
  root_ = nr;
  if (repl_ != nullptr) repl_->rebind(r.oid);
  co_await unlock_node(ctx, mech, info.left);
  tree_lock_.unlock();
}

sim::Task<bool> DistributedBTree::insert(Ctx& ctx, Mechanism mech,
                                         std::uint64_t key,
                                         std::uint64_t value) {
  assert(key != kMaxKey && "the maximum key is reserved as a sentinel");
  const ProcId origin = ctx.proc;
  if (mech == Mechanism::kSharedMemory && mem_ != nullptr) {
    co_await mem_->read(ctx.proc, anchor_addr_, 8);
  }
  // Updates route through the primary root: multi-version-memory replicas
  // serve reads, while writers descend via the authoritative copy (which is
  // also what keeps replica invalidation on the writer's path).
  const bool use_repl = false;
  std::vector<std::uint32_t> stack;
  std::uint32_t cur = root_;
  while (!nodes_[cur].leaf) {
    Step s{};
    if (use_repl && cur == root_) {
      s = co_await visit_root_replicated(ctx, key);
    } else {
      s = co_await visit_node(ctx, mech, cur, key);
    }
    if (s.kind == Step::Kind::kDescend) {
      stack.push_back(cur);
      cur = s.next;
    } else if (s.kind == Step::Kind::kLateral) {
      cur = s.next;
    } else {
      break;  // defensive: cannot happen on internal nodes
    }
  }

  const InsertOutcome out = co_await insert_into_leaf(ctx, mech, cur, key,
                                                      value);
  if (out.split.has_value()) {
    co_await install_split(ctx, mech, std::move(stack), *out.split);
  }
  co_await rt_->return_home(ctx, origin, p_.rpc_ret_words);
  co_return out.inserted;
}

sim::Task<bool> DistributedBTree::remove(Ctx& ctx, Mechanism mech,
                                         std::uint64_t key) {
  const ProcId origin = ctx.proc;
  if (mech == Mechanism::kSharedMemory && mem_ != nullptr) {
    co_await mem_->read(ctx.proc, anchor_addr_, 8);
  }
  std::uint32_t cur = root_;
  while (!nodes_[cur].leaf) {
    const Step s = co_await visit_node(ctx, mech, cur, key);
    cur = s.next;  // kDescend and kLateral both carry the next node
  }

  bool removed = false;
  for (;;) {  // lateral loop at the leaf level
    co_await approach(ctx, mech, cur);
    struct Attempt {
      bool lateral = false;
      std::uint32_t next = kNone;
      bool removed = false;
    };
    auto body = [this, mech, cur, key, origin](Ctx& at) -> Task<Attempt> {
      co_await lock_node(at, mech, cur);
      Node& n = nodes_[cur];
      if (key > n.high_key && n.right != kNone) {
        const std::uint32_t nxt = n.right;
        co_await unlock_node(at, mech, cur);
        co_return Attempt{true, nxt, false};
      }
      if (policy_ != nullptr) {
        policy_->on_access(n.oid, origin, /*write=*/true);
        co_await policy_->write_barrier(at, n.oid);
      }
      co_await charge_search(at, mech, cur, /*optimistic=*/false);
      if (repl_ != nullptr && cur == root_) {
        co_await repl_->invalidate_all(at);
      }
      if (n.seq != nullptr && mech == Mechanism::kSharedMemory) {
        co_await n.seq->begin_write(at.proc);
      }
      const bool did = apply_entry_remove(n, key);
      co_await charge_modify(at, mech, cur, /*split=*/false);
      if (n.seq != nullptr && mech == Mechanism::kSharedMemory) {
        co_await n.seq->end_write(at.proc);
      }
      co_await unlock_node(at, mech, cur);
      co_return Attempt{false, kNone, did};
    };
    Attempt a{};
    if (mech == Mechanism::kSharedMemory) {
      Ctx here{rt_, ctx.proc};
      a = co_await body(here);
    } else {
      const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words, false};
      a = co_await rt_->call(ctx, nodes_[cur].oid, opts, body);
    }
    if (a.lateral) {
      cur = a.next;
      continue;
    }
    removed = a.removed;
    break;
  }
  co_await rt_->return_home(ctx, origin, p_.rpc_ret_words);
  co_return removed;
}

// ---------------------------------------------------------------------------
// Host-level inspection
// ---------------------------------------------------------------------------

std::size_t DistributedBTree::num_keys() const { return keys_host().size(); }

unsigned DistributedBTree::height() const {
  return nodes_[root_].level + 1;
}

unsigned DistributedBTree::root_children() const {
  return static_cast<unsigned>(nodes_[root_].payload.size());
}

std::uint32_t DistributedBTree::leftmost_leaf() const {
  std::uint32_t cur = root_;
  while (!nodes_[cur].leaf) cur = static_cast<std::uint32_t>(nodes_[cur].payload.front());
  return cur;
}

std::vector<std::uint64_t> DistributedBTree::keys_host() const {
  std::vector<std::uint64_t> out;
  for (std::uint32_t l = leftmost_leaf(); l != kNone; l = nodes_[l].right) {
    out.insert(out.end(), nodes_[l].maxkey.begin(), nodes_[l].maxkey.end());
  }
  return out;
}

std::uint64_t DistributedBTree::digest_host() const {
  // Commutative accumulation of a mixed per-pair hash: insensitive to leaf
  // boundaries and insertion order, sensitive to any key or value change.
  std::uint64_t acc = 0;
  for (std::uint32_t l = leftmost_leaf(); l != kNone; l = nodes_[l].right) {
    const Node& n = nodes_[l];
    for (std::size_t i = 0; i < n.maxkey.size(); ++i) {
      std::uint64_t h =
          n.maxkey[i] * 0x9e3779b97f4a7c15ULL ^ (n.payload[i] + 0x1ULL);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      acc += h;
    }
  }
  return acc;
}

bool DistributedBTree::contains_host(std::uint64_t key) const {
  std::uint32_t cur = root_;
  for (;;) {
    const Step s = search_step(nodes_[cur], key);
    if (s.kind == Step::Kind::kLeaf) return s.found;
    cur = s.next;
  }
}

bool DistributedBTree::check_invariants(std::string* why) const {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  // Per-node structure.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.maxkey.size() != n.payload.size()) {
      return fail("entry arrays disagree at node " + std::to_string(i));
    }
    if (n.maxkey.size() > p_.max_entries + 1) {
      return fail("node over capacity at " + std::to_string(i));
    }
    if (!std::is_sorted(n.maxkey.begin(), n.maxkey.end())) {
      return fail("unsorted node " + std::to_string(i));
    }
    if (std::adjacent_find(n.maxkey.begin(), n.maxkey.end()) !=
        n.maxkey.end()) {
      return fail("duplicate bound in node " + std::to_string(i));
    }
    if (!n.maxkey.empty() && n.maxkey.back() > n.high_key) {
      return fail("entry exceeds high key at node " + std::to_string(i));
    }
    if (!n.leaf && !n.maxkey.empty() && n.maxkey.back() != n.high_key) {
      return fail("internal last bound != high key at " + std::to_string(i));
    }
  }
  // Reachability, uniform depth, global ordering via each level's chain.
  std::uint32_t level_head = root_;
  unsigned expect_level = nodes_[root_].level;
  while (true) {
    std::uint64_t prev = 0;
    bool first = true;
    std::uint32_t last = kNone;
    for (std::uint32_t n = level_head; n != kNone; n = nodes_[n].right) {
      if (nodes_[n].level != expect_level) return fail("ragged level");
      for (const std::uint64_t k : nodes_[n].maxkey) {
        if (!first && k <= prev) return fail("cross-node order violation");
        prev = k;
        first = false;
      }
      if (nodes_[n].right != kNone &&
          nodes_[n].high_key == kMaxKey) {
        return fail("non-rightmost node with open high key");
      }
      last = n;
    }
    if (last == kNone || nodes_[last].high_key != kMaxKey) {
      return fail("rightmost node must cover the key space");
    }
    if (nodes_[level_head].leaf) break;
    level_head = static_cast<std::uint32_t>(nodes_[level_head].payload.front());
    --expect_level;
  }
  // Parent entries bound their children.
  for (const Node& n : nodes_) {
    if (n.leaf) continue;
    for (std::size_t e = 0; e < n.maxkey.size(); ++e) {
      const Node& child = nodes_[static_cast<std::uint32_t>(n.payload[e])];
      if (child.high_key != n.maxkey[e]) {
        return fail("child high key disagrees with parent entry");
      }
    }
  }
  return true;
}

}  // namespace cm::apps
