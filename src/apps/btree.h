// Distributed B-tree application (paper §4.2): a simplified version of
// Wang's concurrent B-link-tree algorithm [Wan91] — `lookup` and `insert`,
// no `delete` — with nodes scattered uniformly at random over the first
// `node_procs` processors.
//
// Node representation (B-link, Lehman-Yao style): every node is a sorted
// list of (max_key, payload) entries — in a leaf the payload is the stored
// value and max_key is the key itself; in an internal node the payload is a
// child and max_key is the largest key that child covers. `high_key` bounds
// the node's range; a traversal that overshoots (key > high_key) moves right
// through the `right` sibling link, which makes lookups lock-free and lets
// inserts hold at most one node lock at a time.
//
// Mechanisms:
//  * RPC: each node visit is a remote call to the node's home processor.
//  * Computation migration: the operation's activation migrates node to node
//    down the tree; the result returns straight to the requester. With
//    software replication ("w/repl."), the root's contents are replicated on
//    every processor (multi-version memory) so the first hop skips the root.
//  * Shared memory: the traversal runs on the requester; node contents live
//    in coherent shared memory; lookups are optimistic (per-node seqlock) so
//    read-shared upper levels replicate in hardware caches; inserts take the
//    node's coherence-level spin lock.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "core/mobile.h"
#include "core/replication.h"
#include "core/runtime.h"
#include "shmem/coherent_memory.h"
#include "shmem/sync.h"
#include "sim/async_mutex.h"
#include "sim/rng.h"
#include "sim/task.h"

namespace cm::policy {
class PolicyEngine;
}  // namespace cm::policy

namespace cm::apps {

class DistributedBTree {
 public:
  struct Params {
    unsigned max_entries = 100;   // per node ("at most one hundred")
    sim::ProcId node_procs = 48;  // nodes placed on procs [0, node_procs)
    std::uint64_t seed = 1;       // placement randomness
    double bulk_fill = 2.0 / 3.0; // fill factor for bulk_load
    bool replication = false;     // software replication of the root

    // Cost knobs (user code, charged under every mechanism).
    sim::Cycles search_base = 20;      // per node visit
    sim::Cycles search_per_probe = 6;  // per binary-search probe
    sim::Cycles search_per_entry = 8;  // scan/compare over the entry array
    sim::Cycles modify_work = 40;      // leaf/parent entry insertion
    sim::Cycles modify_per_entry = 4;  // shifting the entry array
    sim::Cycles split_work = 120;      // building a sibling
    unsigned frame_words = 10;         // migrated activation size
    unsigned thread_state_words = 96;  // whole-thread migration payload
    // General-stub RPC envelopes (key, op descriptor, linkage, result
    // record): the paper's Table 1+2 bandwidth/throughput quotients imply
    // ~30 words per RPC message vs ~12 per migration message.
    unsigned rpc_arg_words = 12;
    unsigned rpc_ret_words = 12;
  };

  DistributedBTree(core::Runtime& rt, shmem::CoherentMemory* mem, Params p);

  /// Build the initial tree from sorted unique keys (host-level, free):
  /// the paper "first constructed a B-tree with ten thousand keys".
  void bulk_load(const std::vector<std::uint64_t>& keys);

  [[nodiscard]] sim::Task<bool> lookup(core::Ctx& ctx, core::Mechanism mech,
                                       std::uint64_t key,
                                       std::uint64_t* value_out = nullptr);
  [[nodiscard]] sim::Task<bool> insert(core::Ctx& ctx, core::Mechanism mech,
                                       std::uint64_t key, std::uint64_t value);

  /// Remove `key`; returns whether it was present. An extension beyond the
  /// paper's simplified algorithm ("it does not support the delete
  /// operation"): lazy B-link deletion — the entry leaves its leaf under
  /// the leaf's lock, but nodes are never merged or rebalanced, which is
  /// the standard practical compromise for B-link trees.
  [[nodiscard]] sim::Task<bool> remove(core::Ctx& ctx, core::Mechanism mech,
                                       std::uint64_t key);

  // ---- host-level inspection (tests / setup only; no simulation cost) ----
  [[nodiscard]] std::size_t num_keys() const;
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] unsigned height() const;  // levels (leaf-only tree = 1)
  [[nodiscard]] unsigned root_children() const;
  [[nodiscard]] bool contains_host(std::uint64_t key) const;
  [[nodiscard]] std::vector<std::uint64_t> keys_host() const;  // sorted
  /// Order-independent digest over the stored (key, value) pairs: two trees
  /// with identical contents but different shapes (split histories) compare
  /// equal. Used by the chaos soak tests to assert that injected faults
  /// never change application-level results.
  [[nodiscard]] std::uint64_t digest_host() const;
  /// Structural invariants: sortedness, entry bounds, high keys, right
  /// links, uniform leaf depth. Returns true if all hold.
  [[nodiscard]] bool check_invariants(std::string* why = nullptr) const;
  [[nodiscard]] core::Replicated* root_replica() { return repl_.get(); }

  /// Put every node under placement-policy management (null detaches).
  /// Internal nodes are read-mostly routers — phase-flip candidates; leaves
  /// absorb the writes and are move-only. Call after bulk_load; nodes born
  /// later (splits) register themselves in alloc_node.
  void set_policy(policy::PolicyEngine* pol);

 private:
  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  static constexpr std::uint64_t kMaxKey = ~0ull;

  struct Node {
    bool leaf = true;
    unsigned level = 0;  // 0 = leaf
    std::vector<std::uint64_t> maxkey;   // sorted entry bounds
    std::vector<std::uint64_t> payload;  // child node id or value
    std::uint64_t high_key = kMaxKey;    // covers keys <= high_key
    std::uint32_t right = kNone;         // right sibling

    // runtime bindings
    core::ObjectId oid = 0;
    sim::ProcId home = 0;
    std::unique_ptr<sim::AsyncMutex> mutex;  // RPC/CM insert lock
    std::unique_ptr<core::MobileObject> mobile;  // Emerald-style mobility
    // shared-memory bindings (null when SM unused)
    shmem::Addr base = 0;
    std::unique_ptr<shmem::SeqLock> seq;
    std::unique_ptr<shmem::SpinLock> sm_lock;
  };

  /// Outcome of examining one node during a traversal.
  struct Step {
    enum class Kind { kDescend, kLateral, kLeaf } kind = Kind::kLeaf;
    std::uint32_t next = kNone;
    bool found = false;
    std::uint64_t value = 0;
  };

  struct SplitInfo;  // forward: used by host-level helpers below

  // ---- host-level tree logic (pure; simulation charges wrap these) ----
  [[nodiscard]] Step search_step(const Node& n, std::uint64_t key) const;
  [[nodiscard]] unsigned probes(const Node& n) const;
  [[nodiscard]] unsigned replica_words() const;
  std::uint32_t alloc_node(bool leaf, unsigned level);
  void link_level(const std::vector<std::uint32_t>& ids);
  [[nodiscard]] std::uint32_t leftmost_leaf() const;
  /// Insert (key,payload) into n (which must cover key); true if new.
  bool apply_entry_insert(Node& n, std::uint64_t key, std::uint64_t payload);
  /// Remove key from leaf n; true if it was present.
  bool apply_entry_remove(Node& n, std::uint64_t key);
  /// Split overflowing node n; returns the new right sibling's id.
  std::uint32_t apply_split(std::uint32_t nid);
  /// Rewrite the parent's entry for a split child and add its new sibling.
  void apply_parent_update(Node& parent, const SplitInfo& info);

  // ---- simulation adapters ----
  /// Charge the cost of examining node `n` at the current site. Under SM
  /// this issues the coherent reads (seqlock-validated when `optimistic`);
  /// under RPC/CM it is user-code cycles only (the data is local to the
  /// method).
  [[nodiscard]] sim::Task<> charge_search(core::Ctx& ctx,
                                          core::Mechanism mech,
                                          std::uint32_t nid, bool optimistic);
  /// Bring computation and data together before a node access, according
  /// to the mechanism: migrate the activation (CM), migrate the whole
  /// thread (TM), attract the object (Emerald-style), or do nothing
  /// (RPC/SM).
  [[nodiscard]] sim::Task<> approach(core::Ctx& ctx, core::Mechanism mech,
                                     std::uint32_t nid);
  /// Visit a node read-only under RPC/CM (method at the node's home).
  [[nodiscard]] sim::Task<Step> visit_node(core::Ctx& ctx,
                                           core::Mechanism mech,
                                           std::uint32_t nid,
                                           std::uint64_t key);
  /// Leaf-level insert attempt; loops laterally. Returns (inserted, split
  /// separator info) via InsertOutcome.
  struct SplitInfo {
    std::uint32_t left = kNone;
    std::uint32_t right = kNone;
    std::uint64_t left_max = 0;   // left's new high key (updated entry)
    std::uint64_t right_max = 0;  // right's bound (inserted entry)
    unsigned level = 0;           // level of the split nodes
  };
  struct InsertOutcome {
    bool inserted = false;
    std::optional<SplitInfo> split;
  };
  [[nodiscard]] sim::Task<InsertOutcome> insert_into_leaf(
      core::Ctx& ctx, core::Mechanism mech, std::uint32_t leaf,
      std::uint64_t key, std::uint64_t value);
  /// Install a split's separator into the parent level; may cascade.
  [[nodiscard]] sim::Task<> install_split(core::Ctx& ctx,
                                          core::Mechanism mech,
                                          std::vector<std::uint32_t> stack,
                                          SplitInfo info);
  /// Split the root (under the tree lock).
  [[nodiscard]] sim::Task<> split_root(core::Ctx& ctx, core::Mechanism mech,
                                       SplitInfo info);

  /// Per-mechanism node-lock helpers.
  [[nodiscard]] sim::Task<> lock_node(core::Ctx& ctx, core::Mechanism mech,
                                      std::uint32_t nid);
  [[nodiscard]] sim::Task<> unlock_node(core::Ctx& ctx, core::Mechanism mech,
                                        std::uint32_t nid);
  /// Charge the writes a modification performs (SM: coherent writes +
  /// seqlock bumps; RPC/CM: user code).
  [[nodiscard]] sim::Task<> charge_modify(core::Ctx& ctx,
                                          core::Mechanism mech,
                                          std::uint32_t nid, bool split);

  /// Root-content descent via the software replica ("w/repl." schemes).
  [[nodiscard]] sim::Task<Step> visit_root_replicated(core::Ctx& ctx,
                                                      std::uint64_t key);

  core::Runtime* rt_;
  shmem::CoherentMemory* mem_;
  policy::PolicyEngine* policy_ = nullptr;  // null = no placement policy
  Params p_;
  sim::Rng rng_;
  std::deque<Node> nodes_;  // stable references
  std::uint32_t root_ = kNone;
  sim::AsyncMutex tree_lock_;  // serialises root replacement
  std::unique_ptr<core::Replicated> repl_;
  /// SM address of the root-pointer word (read each op start, written on
  /// root split).
  shmem::Addr anchor_addr_ = 0;
};

}  // namespace cm::apps
