// Experiment drivers reproducing the paper's two workloads:
//  * counting network, 8-64 requester threads, think time 0 / 10,000 cycles
//    (Figures 2 and 3);
//  * distributed B-tree, 16 requesters over a 10,000-key tree on 48 node
//    processors (Tables 1-4 and the branching-factor ablation).
//
// Each driver builds a complete simulated machine (engine, processors,
// network, optional coherent memory, runtime, application), runs requester
// threads through a warmup + measurement window, and reports the paper's
// two metrics: throughput (operations per 1000 cycles) and network bandwidth
// (words sent per 10 cycles).
#pragma once

#include <cstdint>
#include <string>

#include <vector>

#include "check/checker.h"
#include "core/mechanism.h"
#include "core/metrics.h"
#include "core/reliable.h"
#include "core/stats.h"
#include "ft/ft.h"
#include "loc/locator.h"
#include "net/faulty_net.h"
#include "policy/policy.h"
#include "sim/event_queue.h"
#include "sim/sharded_engine.h"
#include "sim/types.h"

namespace cm::apps {

struct Window {
  sim::Cycles warmup = 20'000;
  sim::Cycles measure = 150'000;
};

struct RunStats {
  long ops = 0;              // operations completed inside the window
  sim::Cycles window = 0;    // measurement window length
  std::uint64_t words = 0;   // network words sent inside the window
  std::uint64_t messages = 0;
  double cache_hit_rate = 0.0;  // shared-memory schemes only
  std::uint64_t migrations = 0;
  std::uint64_t remote_calls = 0;
  core::RtStats runtime;  // full runtime counters incl. Table-5 breakdown
  net::NetStats net;      // full network counters incl. injected faults
  sim::Cycles completed_at = 0;  // engine time when the run drained
  std::uint64_t events_executed = 0;  // engine events the run dispatched
  std::uint64_t clamped_events = 0;   // past-time schedules clamped to now()
                                      // (nonzero = causality bug upstream)
  std::uint64_t cross_shard_msgs = 0;  // events routed through shard inboxes
                                       // (0 for classic single-shard runs)
  std::uint64_t window_count = 0;      // conservative windows executed

  // Application-level end state, for chaos invariant checks (identical
  // under any fault plan when requesters do fixed work).
  long total_exited = 0;           // counting network: tokens drained
  bool step_property = false;      // counting network: AHS step property
  std::size_t btree_keys = 0;      // B-tree: number of stored keys
  std::uint64_t btree_digest = 0;  // B-tree: digest of (key, value) pairs
  bool invariants_ok = false;      // B-tree: structural invariants hold

  // Distributed object location (only meaningful when a run enables the
  // locator; `locator_enabled` gates the metrics export).
  bool locator_enabled = false;
  loc::LocStats loc;

  // Invariant checking (only meaningful when a run enables the checker;
  // `checker_enabled` gates the "check.*" metrics export). `check_violations`
  // carries the bounded structured records for report assertions.
  bool checker_enabled = false;
  check::CheckStats check;
  std::vector<check::ViolationRecord> check_violations;

  // Fail-stop crash tolerance (only meaningful when a run enables the
  // ft layer; `ft_enabled` gates the "ft.*" metrics export). `ft_lost_ops`
  // counts operations requesters abandoned with a typed core::FtError.
  bool ft_enabled = false;
  ft::FtStats ft;
  long ft_lost_ops = 0;

  // Placement policy (only meaningful when a run enables the policy
  // engine; `policy_enabled` gates the "policy.*" metrics export).
  bool policy_enabled = false;
  policy::PolicyStats policy;

  std::string trace_path;  // Chrome trace written for this run ("" = none)

  [[nodiscard]] double throughput_per_1000() const {
    return window == 0 ? 0.0
                       : static_cast<double>(ops) * 1000.0 /
                             static_cast<double>(window);
  }
  [[nodiscard]] double words_per_10() const {
    return window == 0 ? 0.0
                       : static_cast<double>(words) * 10.0 /
                             static_cast<double>(window);
  }
};

struct CountingConfig {
  core::Scheme scheme;
  // Alewife's coherence protocol [CKA91] is LimitLESS with a handful of
  // hardware sharer pointers; 5 matches the Alewife design point the paper
  // targets. 0 selects an idealised full-map directory.
  unsigned limitless_pointers = 5;
  bool mesh = true;   // route messages over a 2-D mesh with link
                      // contention instead of the uniform-latency model
  unsigned requesters = 8;   // 8..64, each on its own processor
  sim::Cycles think = 0;     // 0 or 10,000 in the paper
  unsigned width = 8;        // 8x8 network = 24 balancers on 24 processors
  Window window{};
  std::uint64_t seed = 1;

  // Chaos mode: when `faults.active()`, the interconnect is wrapped in a
  // FaultyNetwork and the runtime's reliable transport is enabled. With an
  // inactive plan neither layer is installed, keeping fault-free runs
  // bit-identical to the pre-fault-injection system.
  net::FaultPlan faults;
  core::ReliableConfig reliable;
  // Fixed-work mode: > 0 makes each requester perform exactly this many
  // operations and the run last until all of them drain (the measurement
  // window is ignored). Application-level end state is then comparable
  // across fault plans.
  long ops_per_requester = 0;
  // Non-empty: install a sim::Tracer and write a Chrome trace-event JSON
  // here after the run. Empty (default): no tracer is installed and the
  // simulation is bit-identical to a build without tracing.
  std::string trace_path;
  // Object location: kOracle (default) keeps the omniscient ObjectSpace and
  // is bit-identical to the pre-locator system; kDistributed pays for every
  // lookup through directory shards, translation caches and forwarding
  // chains.
  loc::LocatorConfig locator;
  // Invariant checking: install a check::Checker for the run (vector clocks,
  // lock graph, protocol invariants). Like the tracer, checking never
  // schedules events or charges cycles, so simulation results are identical
  // with it on or off.
  bool check = false;
  check::CheckConfig check_cfg;
  // Fail-stop crash tolerance: with `ft.enabled` an ft::FtLayer (failure
  // detector + recovery) is installed and primed with the fault plan's
  // planned NIC deaths. Disabled (default) keeps the run bit-identical to a
  // build without the layer. Pair with `faults.nic_fail_at` and fixed-work
  // mode so the run drains deterministically.
  // Event-queue backend: kCalendar (default) is the calendar/arena hot
  // path; kHeap is the legacy binary heap kept as the conformance
  // reference and host-perf baseline. Same-seed runs are bit-identical
  // across backends.
  sim::QueueBackend queue_backend = sim::QueueBackend::kCalendar;
  ft::FtConfig ft;
  // Placement policy (DESIGN.md §13): with `policy.enabled` a
  // policy::PolicyEngine samples per-processor load, rebalances hot objects
  // and (optionally) phase-flips read-mostly ones into replication mode.
  // Disabled (default) constructs nothing — runs are bit-identical to a
  // build without the subsystem. Actuating mode (observe_only == false) is
  // single-shard only; observe mode is legal at any shard count.
  policy::PolicyConfig policy;
  // Sharded engine (DESIGN.md §12): partition the machine's processors
  // across `nshards` conservative-parallel shards, each running its own
  // event loop; kSequential round-robins windows on one host thread (the
  // conformance reference), kThreads runs one host thread per shard. Same-
  // seed results are bit-identical across shard counts and backends.
  // Multi-shard runs are restricted to mechanisms whose cross-processor
  // interactions all flow through the network (kRpc / kMigration /
  // kThreadMigration) with no chaos, ft, distributed locator or
  // replication; a mesh additionally loses link contention (its per-link
  // FIFO timeline is inherently global). kThreads with nshards == 1 runs
  // the classic loop on one worker thread (how chaos soaks ride under
  // TSan) and allows everything.
  unsigned nshards = 1;
  sim::ShardBackend shard_backend = sim::ShardBackend::kSequential;
};

[[nodiscard]] RunStats run_counting(const CountingConfig& cfg);

struct BTreeConfig {
  core::Scheme scheme;
  unsigned limitless_pointers = 5;  // LimitLESS [CKA91]; 0 = full-map
  bool mesh = true;                 // 2-D mesh instead of uniform latency
  unsigned requesters = 16;
  sim::Cycles think = 0;
  unsigned max_entries = 100;  // paper: <=100; ablation: <=10
  unsigned nkeys = 10'000;
  double insert_ratio = 0.5;  // fraction of operations that are inserts
  // Requester key skew: with this probability a requester draws from its
  // own contiguous slice of the key space instead of the whole range. 0
  // (default) draws nothing extra from the RNG, so unskewed runs are
  // bit-identical to the pre-knob system. High affinity gives each leaf a
  // dominant accessor — the workload the rebalancer is built for.
  double key_affinity = 0.0;
  sim::ProcId node_procs = 48;
  Window window{};
  std::uint64_t seed = 1;

  // Chaos mode + fixed-work mode + tracing; see CountingConfig.
  net::FaultPlan faults;
  core::ReliableConfig reliable;
  long ops_per_requester = 0;
  std::string trace_path;
  loc::LocatorConfig locator;  // see CountingConfig
  bool check = false;          // see CountingConfig
  check::CheckConfig check_cfg;
  ft::FtConfig ft;  // see CountingConfig
  policy::PolicyConfig policy;  // see CountingConfig
  sim::QueueBackend queue_backend = sim::QueueBackend::kCalendar;
  // See CountingConfig. Multi-shard B-tree runs must additionally be
  // lookup-only (insert_ratio == 0): splits mutate tree topology through
  // state no single shard owns.
  unsigned nshards = 1;
  sim::ShardBackend shard_backend = sim::ShardBackend::kSequential;
};

[[nodiscard]] RunStats run_btree(const BTreeConfig& cfg);

/// Export a run under the unified metrics schema: run-level metrics first
/// (ops, window, derived rates, app end state), then the full "rt.",
/// "breakdown." and "net." counter sets. Every benchmark goes through this
/// one function, so all emitted JSON records have the same shape.
void put_run_stats(core::Metrics& m, const RunStats& s);

}  // namespace cm::apps
