// Counting network application (paper §4.1).
//
// A counting network [Aspnes-Herlihy-Shavit 1991] is a distributed data
// structure for "shared counting": a width-w network of 2x2 balancers; a
// thread injects a token on an input wire, the token bounces balancer to
// balancer, and on exiting output wire i takes the value i + w * (tokens
// previously out wire i). The bitonic construction of width 8 has 6 stages
// of 4 balancers — 24 balancers, which the paper lays out one per processor.
//
// The traversal procedure below is written once, in shared-memory style, and
// parameterised by the remote-access mechanism — mirroring the paper's claim
// that the migration annotation (not program structure) chooses the
// mechanism:
//  * RPC: each balancer access is a short-method remote call (2 messages).
//  * Computation migration: `migrate(balancer)` before the access, so the
//    activation hops balancer to balancer (1 message per hop) and the final
//    value returns directly to the requester.
//  * Shared memory: balancer state lives in coherent shared memory; the
//    toggle update is an exclusive (read-modify-write) acquisition of its
//    cache line — balancers are write-shared, so this line migrates from
//    cache to cache, and the wiring configuration is read-shared.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/mechanism.h"
#include "core/mobile.h"
#include "core/runtime.h"
#include "shmem/coherent_memory.h"
#include "shmem/sync.h"
#include "sim/task.h"

namespace cm::policy {
class PolicyEngine;
}  // namespace cm::policy

namespace cm::apps {

/// Where a balancer output port leads: another balancer or an output wire.
struct Target {
  bool is_output = false;
  unsigned index = 0;  // balancer id or output-wire index

  friend bool operator==(const Target&, const Target&) = default;
};

/// Pure wiring of a bitonic counting network: balancers and their output
/// targets. Separated from the runtime objects so the construction can be
/// tested on its own.
struct BitonicWiring {
  struct Balancer {
    Target out[2];
    unsigned stage = 0;  // distance from the inputs (0-based)
  };
  std::vector<Balancer> balancers;
  std::vector<unsigned> entry;  // input wire -> first balancer id
  unsigned width = 0;
  unsigned depth = 0;  // number of stages

  /// Build Bitonic[width]; width must be a power of two >= 2.
  static BitonicWiring build(unsigned width);
};

class CountingNetwork {
 public:
  struct Params {
    unsigned width = 8;
    sim::ProcId first_balancer_proc = 0;  // balancer i on proc first + i
    sim::Cycles balancer_work = 120;  // user code per balancer visit
                                      // (Table 5: ~150 incl. counter share)
    sim::Cycles counter_work = 30;   // user code at the output counter
    sim::Cycles work_jitter = 24;    // deterministic per-visit variance
                                     // (cache effects, branches); without it
                                     // identical-cost threads convoy in ways
                                     // a real machine never sustains
    unsigned frame_words = 8;        // migrated activation: 32 bytes (Table 5)
    unsigned thread_state_words = 96;  // whole-thread migration payload
                                       // (stack + TCB; §2.3 "the amount of
                                       // state to be moved is large")
    // General-stub RPC envelopes are much larger than migration frames:
    // the paper's measured bandwidth (Tables 1/2) implies ~30 words per RPC
    // message vs ~11 per migration message.
    unsigned rpc_arg_words = 10;
    unsigned rpc_ret_words = 8;
    bool rpc_short_methods = false;  // Prelude "creates a new thread for
                                     // most remote calls" (§4.3); set true
                                     // to model the Active-Messages fast
                                     // path for balancer accesses
  };

  /// `mem` may be null if the shared-memory mechanism is never used.
  CountingNetwork(core::Runtime& rt, shmem::CoherentMemory* mem, Params p);

  /// The traversal procedure: inject a token on `enter_wire`, traverse to an
  /// output wire, take the next value there. Under kMigration the activation
  /// ends at the final balancer's processor — callers that need the value
  /// back home follow with `return_home` (or use apps::Requester).
  [[nodiscard]] sim::Task<long> get_next(core::Ctx& ctx, core::Mechanism mech,
                                         unsigned enter_wire);

  [[nodiscard]] unsigned width() const noexcept { return wiring_.width; }
  [[nodiscard]] unsigned depth() const noexcept { return wiring_.depth; }
  [[nodiscard]] unsigned num_balancers() const {
    return static_cast<unsigned>(wiring_.balancers.size());
  }
  [[nodiscard]] const BitonicWiring& wiring() const noexcept { return wiring_; }

  /// Tokens that have exited on each output wire.
  [[nodiscard]] const std::vector<long>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] long total_exited() const;

  /// Step property at quiescence: counts are non-increasing left to right
  /// and differ by at most 1 (AHS). Only meaningful with no token in flight.
  [[nodiscard]] bool has_step_property() const;

  /// Put the balancers and counters under placement-policy management
  /// (null detaches). Balancers are write-shared — the policy's negative
  /// control: a sane rebalancer should leave them alone.
  void set_policy(policy::PolicyEngine* pol);

 private:
  struct BalancerRt {
    core::ObjectId oid = 0;
    sim::ProcId home = 0;
    int toggle = 0;
    long passed = 0;
    shmem::Addr toggle_addr = 0;  // write-shared line
    shmem::Addr config_addr = 0;  // read-shared wiring line
    std::unique_ptr<shmem::SpinLock> lock;  // SM: balancers are lock-protected
    std::unique_ptr<core::MobileObject> mobile;  // Emerald-style mobility
  };
  struct CounterRt {
    core::ObjectId oid = 0;
    sim::ProcId home = 0;
    shmem::Addr addr = 0;
    std::unique_ptr<core::MobileObject> mobile;
  };

  /// Toggle balancer `b` at the current site; returns the chosen port.
  [[nodiscard]] sim::Task<int> visit_balancer(core::Ctx& ctx,
                                              core::Mechanism mech,
                                              unsigned b);
  [[nodiscard]] sim::Task<long> visit_counter(core::Ctx& ctx,
                                              core::Mechanism mech,
                                              unsigned wire);

  core::Runtime* rt_;
  shmem::CoherentMemory* mem_;
  policy::PolicyEngine* policy_ = nullptr;  // null = no placement policy
  Params p_;
  BitonicWiring wiring_;
  std::vector<BalancerRt> brt_;
  std::vector<CounterRt> counters_;
  std::vector<long> counts_;
};

}  // namespace cm::apps
