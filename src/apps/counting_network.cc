#include "apps/counting_network.h"

#include <cassert>
#include <functional>

#include "policy/policy.h"

namespace cm::apps {

namespace {

/// Deterministic per-visit work variance (SplitMix64 of the visit identity).
sim::Cycles jitter(sim::Cycles amount, std::uint64_t a, std::uint64_t b) {
  if (amount == 0) return 0;
  std::uint64_t z = (a * 0x9e3779b97f4a7c15ULL) ^ (b + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return (z ^ (z >> 31)) % (amount + 1);
}

/// A yet-unconnected balancer output port during construction.
struct PortRef {
  unsigned bal;
  int port;
};

/// A sub-network under construction: which balancer each input wire enters,
/// and the dangling output ports in output order.
struct Net {
  std::vector<unsigned> in;
  std::vector<PortRef> out;
};

}  // namespace

BitonicWiring BitonicWiring::build(unsigned width) {
  assert(width >= 2 && (width & (width - 1)) == 0 &&
         "bitonic networks require power-of-two width");
  BitonicWiring w;
  w.width = width;

  auto new_balancer = [&w]() -> unsigned {
    w.balancers.push_back({});
    return static_cast<unsigned>(w.balancers.size() - 1);
  };
  auto connect = [&w](PortRef from, unsigned to_balancer) {
    w.balancers[from.bal].out[from.port] = Target{false, to_balancer};
  };

  // Merger[n]: inputs are two bitonic sequences (first and second half).
  // AHS: the even-indexed wires of x and the odd-indexed wires of y feed one
  // Merger[n/2], the rest feed the other; a final rank of n/2 balancers zips
  // the sub-mergers' outputs.
  std::function<Net(unsigned)> merger = [&](unsigned n) -> Net {
    if (n == 2) {
      const unsigned b = new_balancer();
      return Net{{b, b}, {{b, 0}, {b, 1}}};
    }
    const unsigned k = n / 2;
    Net even = merger(k);
    Net odd = merger(k);
    Net r;
    r.in.resize(n);
    for (unsigned i = 0; i < k; ++i) {  // x side (first half)
      r.in[i] = (i % 2 == 0) ? even.in[i / 2] : odd.in[i / 2];
    }
    for (unsigned i = 0; i < k; ++i) {  // y side (second half)
      r.in[k + i] =
          (i % 2 == 1) ? even.in[k / 2 + i / 2] : odd.in[k / 2 + i / 2];
    }
    r.out.resize(n);
    for (unsigned i = 0; i < k; ++i) {
      const unsigned b = new_balancer();
      connect(even.out[i], b);
      connect(odd.out[i], b);
      r.out[2 * i] = PortRef{b, 0};
      r.out[2 * i + 1] = PortRef{b, 1};
    }
    return r;
  };

  // Bitonic[n]: two Bitonic[n/2] halves feeding a Merger[n].
  std::function<Net(unsigned)> bitonic = [&](unsigned n) -> Net {
    if (n == 2) {
      const unsigned b = new_balancer();
      return Net{{b, b}, {{b, 0}, {b, 1}}};
    }
    Net top = bitonic(n / 2);
    Net bot = bitonic(n / 2);
    Net m = merger(n);
    for (unsigned i = 0; i < n / 2; ++i) {
      connect(top.out[i], m.in[i]);
      connect(bot.out[i], m.in[n / 2 + i]);
    }
    Net r;
    r.in = std::move(top.in);
    r.in.insert(r.in.end(), bot.in.begin(), bot.in.end());
    r.out = std::move(m.out);
    return r;
  };

  Net whole = bitonic(width);
  w.entry = whole.in;
  for (unsigned i = 0; i < width; ++i) {
    w.balancers[whole.out[i].bal].out[whole.out[i].port] = Target{true, i};
  }

  // Stages by longest-path relaxation over the DAG.
  bool changed = true;
  while (changed) {
    changed = false;
    for (unsigned b = 0; b < w.balancers.size(); ++b) {
      for (const Target& t : w.balancers[b].out) {
        if (t.is_output) continue;
        const unsigned want = w.balancers[b].stage + 1;
        if (w.balancers[t.index].stage < want) {
          w.balancers[t.index].stage = want;
          changed = true;
        }
      }
    }
  }
  w.depth = 0;
  for (const auto& b : w.balancers) w.depth = std::max(w.depth, b.stage + 1);
  return w;
}

CountingNetwork::CountingNetwork(core::Runtime& rt, shmem::CoherentMemory* mem,
                                 Params p)
    : rt_(&rt),
      mem_(mem),
      p_(p),
      wiring_(BitonicWiring::build(p.width)),
      counts_(p.width, 0) {
  brt_.resize(wiring_.balancers.size());
  for (unsigned b = 0; b < brt_.size(); ++b) {
    const sim::ProcId home =
        p_.first_balancer_proc + static_cast<sim::ProcId>(b);
    brt_[b].home = home;
    brt_[b].oid = rt_->objects().create(home);
    brt_[b].mobile =
        std::make_unique<core::MobileObject>(*rt_, brt_[b].oid, 8);
    if (mem_ != nullptr) {
      brt_[b].toggle_addr = mem_->alloc(home, 4);
      brt_[b].config_addr = mem_->alloc(home, 16);
      brt_[b].lock = std::make_unique<shmem::SpinLock>(*mem_, home);
    }
  }
  // The output counter for wire i lives with the final balancer feeding wire
  // i, so a migrated activation's counter access is local.
  counters_.resize(p_.width);
  for (unsigned b = 0; b < wiring_.balancers.size(); ++b) {
    for (const Target& t : wiring_.balancers[b].out) {
      if (!t.is_output) continue;
      CounterRt& c = counters_[t.index];
      c.home = brt_[b].home;
      c.oid = rt_->objects().create(c.home);
      c.mobile = std::make_unique<core::MobileObject>(*rt_, c.oid, 4);
      if (mem_ != nullptr) c.addr = mem_->alloc(c.home, 4);
    }
  }
}

void CountingNetwork::set_policy(policy::PolicyEngine* pol) {
  policy_ = pol;
  if (pol == nullptr) return;
  // Neither balancers nor counters are read-mostly, so none are replicable.
  for (BalancerRt& b : brt_) pol->manage(b.oid, b.mobile.get(), 8, false);
  for (CounterRt& c : counters_) pol->manage(c.oid, c.mobile.get(), 4, false);
}

sim::Task<int> CountingNetwork::visit_balancer(core::Ctx& ctx,
                                               core::Mechanism mech,
                                               unsigned b) {
  BalancerRt& rtb = brt_[b];
  const sim::ProcId requester = ctx.proc;
  if (sim::Tracer* tr = rt_->tracer()) {
    tr->record(sim::TraceEvent::kBalancerVisit, ctx.proc,
               {{"balancer", b}, {"stage", wiring_.balancers[b].stage}});
  }
  switch (mech) {
    case core::Mechanism::kSharedMemory: {
      // A balancer is a lock-protected record: acquire its spin lock (the
      // contended-handoff invalidation storms are the heart of shared
      // memory's bandwidth appetite here), read the read-shared wiring
      // line, update the write-shared toggle line, release.
      co_await rtb.lock->acquire(ctx.proc);
      co_await mem_->read(ctx.proc, rtb.config_addr, 16);
      co_await mem_->write(ctx.proc, rtb.toggle_addr, 4);
      co_await rt_->compute(
          ctx, p_.balancer_work +
                   jitter(p_.work_jitter, b, static_cast<std::uint64_t>(rtb.passed)));
      const int port = rtb.toggle;
      rtb.toggle ^= 1;
      ++rtb.passed;
      co_await rtb.lock->release(ctx.proc);
      co_return port;
    }
    case core::Mechanism::kMigration:
      // <<< the annotation: move this activation to the balancer >>>
      co_await rt_->migrate(ctx, rtb.oid, p_.frame_words);
      break;
    case core::Mechanism::kThreadMigration:
      // Whole-thread migration: same mechanics, whole-thread payload.
      co_await rt_->migrate(ctx, rtb.oid, p_.thread_state_words);
      break;
    case core::Mechanism::kObjectMigration:
      // Emerald-style: drag the balancer to this processor instead.
      co_await rtb.mobile->attract(ctx);
      break;
    case core::Mechanism::kRpc:
      break;
  }
  // The instance-method call (local after a migration or attraction).
  const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words,
                            p_.rpc_short_methods};
  co_return co_await rt_->call(
      ctx, rtb.oid, opts,
      [this, b, &rtb, requester](core::Ctx& callee) -> sim::Task<int> {
        if (policy_ != nullptr) {
          // Toggling is a write; the requester captured at procedure entry
          // is the profile's accessor (the body runs at the object's home).
          policy_->on_access(rtb.oid, requester, /*write=*/true);
        }
        co_await rt_->compute(
            callee, p_.balancer_work +
                        jitter(p_.work_jitter, b,
                               static_cast<std::uint64_t>(rtb.passed)));
        const int port = rtb.toggle;
        rtb.toggle ^= 1;
        ++rtb.passed;
        co_return port;
      });
}

sim::Task<long> CountingNetwork::visit_counter(core::Ctx& ctx,
                                               core::Mechanism mech,
                                               unsigned wire) {
  CounterRt& c = counters_[wire];
  const sim::ProcId requester = ctx.proc;
  switch (mech) {
    case core::Mechanism::kSharedMemory: {
      co_await mem_->write(ctx.proc, c.addr, 4);
      co_await rt_->compute(ctx, p_.counter_work);
      co_return static_cast<long>(wire) +
          static_cast<long>(p_.width) * counts_[wire]++;
    }
    case core::Mechanism::kMigration:
      co_await rt_->migrate(ctx, c.oid, p_.frame_words);
      break;
    case core::Mechanism::kThreadMigration:
      co_await rt_->migrate(ctx, c.oid, p_.thread_state_words);
      break;
    case core::Mechanism::kObjectMigration:
      co_await c.mobile->attract(ctx);
      break;
    case core::Mechanism::kRpc:
      break;
  }
  const core::CallOpts opts{p_.rpc_arg_words, p_.rpc_ret_words,
                            p_.rpc_short_methods};
  co_return co_await rt_->call(
      ctx, c.oid, opts,
      [this, wire, &c, requester](core::Ctx& callee) -> sim::Task<long> {
        if (policy_ != nullptr) {
          policy_->on_access(c.oid, requester, /*write=*/true);
        }
        co_await rt_->compute(callee, p_.counter_work);
        co_return static_cast<long>(wire) +
            static_cast<long>(p_.width) * counts_[wire]++;
      });
}

sim::Task<long> CountingNetwork::get_next(core::Ctx& ctx,
                                          core::Mechanism mech,
                                          unsigned enter_wire) {
  assert(enter_wire < wiring_.width);
  Target t{false, wiring_.entry[enter_wire]};
  while (!t.is_output) {
    const unsigned b = t.index;
    const int port = co_await visit_balancer(ctx, mech, b);
    t = wiring_.balancers[b].out[port];
  }
  co_return co_await visit_counter(ctx, mech, t.index);
}

long CountingNetwork::total_exited() const {
  long sum = 0;
  for (long c : counts_) sum += c;
  return sum;
}

bool CountingNetwork::has_step_property() const {
  // At quiescence a counting network's exit tallies form a step: wire i has
  // ceil((n - i) / w) tokens — non-increasing, adjacent difference <= 1.
  for (std::size_t i = 1; i < counts_.size(); ++i) {
    if (counts_[i] > counts_[i - 1]) return false;
    if (counts_[i - 1] - counts_[i] > 1) return false;
  }
  return true;
}

}  // namespace cm::apps
