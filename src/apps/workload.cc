#include "apps/workload.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include "apps/btree.h"
#include "apps/counting_network.h"
#include "check/report.h"
#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "net/faulty_net.h"
#include "net/mesh_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "sim/tracer.h"

namespace cm::apps {

namespace {

using core::Ctx;
using core::Mechanism;
using sim::Cycles;
using sim::ProcId;
using sim::Task;

/// Shared control block for a measurement run. The measurement window is
/// half-open, [warm_at, end_at), for BOTH the op counter and the traffic
/// snapshots: the warm/end snapshot events carry lane-0 labels (scheduled
/// at setup time), so they run before any same-cycle runtime event — an op
/// or word landing exactly on a boundary cycle is therefore counted by
/// exactly one window.
///
/// Sharded runs (DESIGN.md §12): every mutable field a requester touches
/// mid-run lives in its shard's ShardCtl slice, indexed by the engine's
/// ambient shard, so kThreads workers never share a counter; run totals sum
/// the slices after the engine drains. The sums are shard-count invariant:
/// each op / word is counted on the shard of the event that produced it,
/// and event placement is a pure function of the simulation's causal
/// history.
struct ShardCtl {
  bool stop = false;
  long ops = 0;
  // Fail-stop bookkeeping: operations abandoned with a typed core::FtError.
  long lost_ops = 0;
  std::uint64_t words_at_warm = 0;
  std::uint64_t msgs_at_warm = 0;
  std::uint64_t words_at_end = 0;
  std::uint64_t msgs_at_end = 0;
};

struct RunCtl {
  Cycles warm_at = 0;
  Cycles end_at = 0;
  std::vector<ShardCtl> shard;  // indexed by engine shard
  // Live-requester count, decremented from any shard; the detector to shut
  // down when the last requester exits (its periodic sweep would otherwise
  // keep the event queue alive forever).
  std::atomic<unsigned> live{0};
  ft::FtLayer* ftl = nullptr;

  [[nodiscard]] long total_ops() const {
    long n = 0;
    for (const ShardCtl& sc : shard) n += sc.ops;
    return n;
  }
  [[nodiscard]] long total_lost_ops() const {
    long n = 0;
    for (const ShardCtl& sc : shard) n += sc.lost_ops;
    return n;
  }
  [[nodiscard]] std::uint64_t window_words() const {
    std::uint64_t n = 0;
    for (const ShardCtl& sc : shard) n += sc.words_at_end - sc.words_at_warm;
    return n;
  }
  [[nodiscard]] std::uint64_t window_msgs() const {
    std::uint64_t n = 0;
    for (const ShardCtl& sc : shard) n += sc.msgs_at_end - sc.msgs_at_warm;
    return n;
  }
  [[nodiscard]] std::uint64_t warm_words() const {
    std::uint64_t n = 0;
    for (const ShardCtl& sc : shard) n += sc.words_at_warm;
    return n;
  }
  [[nodiscard]] std::uint64_t warm_msgs() const {
    std::uint64_t n = 0;
    for (const ShardCtl& sc : shard) n += sc.msgs_at_warm;
    return n;
  }
};

/// The calling context's slice of the control block.
ShardCtl& my_shard(RunCtl& ctl, const sim::Engine& eng) {
  return ctl.shard[eng.current_shard()];
}

/// A requester finished: the last one out stops the failure detector so the
/// engine can drain.
void requester_exit(RunCtl& ctl) {
  if (ctl.live.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      ctl.ftl != nullptr) {
    ctl.ftl->stop();
  }
}

void count_op(RunCtl& ctl, const sim::Engine& eng) {
  const Cycles now = eng.now();
  if (now >= ctl.warm_at && now < ctl.end_at) ++my_shard(ctl, eng).ops;
}

/// Config combinations the conservative windows cannot serve (global FIFO
/// timelines, cross-shard mutable state, zero-lookahead paths) are rejected
/// loudly rather than silently desharded.
void require_for_shards(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "workload: multi-shard run rejected: %s\n", what);
  std::abort();
}

/// Lowest-numbered processor living on shard `s` — where that shard's
/// window snapshot events are homed.
ProcId first_proc_of_shard(const sim::Engine& eng, ProcId nprocs, unsigned s) {
  for (ProcId p = 0; p < nprocs; ++p) {
    if (eng.shard_of(p) == s) return p;
  }
  return 0;
}

Task<> counting_requester(core::Runtime* rt, CountingNetwork* cn,
                          Mechanism mech, ProcId home, std::uint64_t seed,
                          Cycles think, long fixed_ops, RunCtl* ctl) {
  Ctx ctx{rt, home};
  sim::Rng rng(seed);
  const sim::Engine& eng = rt->machine().engine();
  for (long done = 0; !my_shard(*ctl, eng).stop; ++done) {
    if (fixed_ops > 0 && done >= fixed_ops) break;
    // Each request enters on a (deterministically) random wire, as counting
    // network clients do in practice.
    const auto wire = static_cast<unsigned>(rng.below(cn->width()));
    try {
      (void)co_await cn->get_next(ctx, mech, wire);
      // Bring the value (and, under migration, the activation) back home.
      co_await rt->return_home(ctx, home, 2);
      count_op(*ctl, eng);
    } catch (const core::FtError&) {
      // Only thrown with fault tolerance installed: the operation touched a
      // lost object or exhausted its retry budget. Abandon it gracefully
      // and carry on from home.
      ++my_shard(*ctl, eng).lost_ops;
      ctx.proc = home;
    }
    if (think > 0) co_await rt->machine().sleep(think);
  }
  requester_exit(*ctl);
}

Task<> btree_requester(core::Runtime* rt, DistributedBTree* bt,
                       Mechanism mech, ProcId home, Cycles think,
                       double insert_ratio, std::uint64_t key_space,
                       double affinity, std::uint64_t slice_base,
                       std::uint64_t slice_size, std::uint64_t seed,
                       long fixed_ops, RunCtl* ctl) {
  Ctx ctx{rt, home};
  sim::Rng rng(seed);
  const sim::Engine& eng = rt->machine().engine();
  for (long done = 0; !my_shard(*ctl, eng).stop; ++done) {
    if (fixed_ops > 0 && done >= fixed_ops) break;
    // Key skew: the affinity test must not touch the RNG when the knob is
    // off, so affinity == 0 draws stay bit-identical to the pre-knob runs.
    std::uint64_t key;
    if (affinity > 0.0 && rng.uniform() < affinity) {
      key = slice_base + rng.below(slice_size);
    } else {
      key = rng.below(key_space);
    }
    try {
      if (rng.uniform() < insert_ratio) {
        (void)co_await bt->insert(ctx, mech, key, key);
      } else {
        (void)co_await bt->lookup(ctx, mech, key);
      }
      count_op(*ctl, eng);
    } catch (const core::FtError&) {
      // See counting_requester. B-tree crash scenarios re-home node state
      // (never condemn it — an ObjectLostError unwinding past a held node
      // lock would strand its waiters), so this catch only fires on
      // retry-budget exhaustion.
      ++my_shard(*ctl, eng).lost_ops;
      ctx.proc = home;
    }
    if (think > 0) co_await rt->machine().sleep(think);
  }
  requester_exit(*ctl);
}

}  // namespace

RunStats run_counting(const CountingConfig& cfg) {
  sim::Engine eng(cfg.queue_backend);
  CountingNetwork::Params np;
  np.width = cfg.width;
  np.first_balancer_proc = 0;

  // Balancers occupy the first B processors; requesters get their own.
  const unsigned balancers =
      BitonicWiring::build(cfg.width).balancers.size();
  const auto nprocs = static_cast<ProcId>(balancers + cfg.requesters);
  if (cfg.nshards > 1) {
    require_for_shards(cfg.scheme.mechanism == Mechanism::kRpc ||
                           cfg.scheme.mechanism == Mechanism::kMigration ||
                           cfg.scheme.mechanism ==
                               Mechanism::kThreadMigration,
                       "mechanism must route all cross-processor work "
                       "through the network (kRpc/kMigration/"
                       "kThreadMigration)");
    require_for_shards(!cfg.scheme.replication,
                       "software replication keeps cross-shard copy tables");
    require_for_shards(!cfg.faults.active(), "chaos runs are single-shard");
    require_for_shards(!cfg.ft.enabled, "ft runs are single-shard");
    require_for_shards(cfg.locator.mode != loc::Locality::kDistributed,
                       "the distributed locator is single-shard");
    require_for_shards(!cfg.policy.enabled || cfg.policy.observe_only,
                       "an actuating placement policy mutates global "
                       "placement tables; multi-shard policy runs are "
                       "observe-only");
  }
  // Shards must be carved before anything schedules or sizes per-shard
  // state (tracer buffers, checker logs, network stat slots).
  eng.configure_shards(cfg.nshards, nprocs);
  std::unique_ptr<sim::Tracer> tracer;
  if (!cfg.trace_path.empty()) {
    tracer = std::make_unique<sim::Tracer>(eng);
    eng.set_tracer(tracer.get());
  }
  sim::Machine machine(eng, nprocs);
  std::unique_ptr<check::Checker> checker;
  if (cfg.check) {
    checker = std::make_unique<check::Checker>(eng, nprocs, cfg.check_cfg);
    eng.set_checker(checker.get());
  }
  net::ConstantNetwork constant_net(eng);
  // Multi-shard runs drop mesh link contention: its per-link FIFO timeline
  // is one global, order-sensitive structure no conservative window can
  // partition (documented on MeshNetwork::min_cross_latency).
  net::MeshConfig mesh_cfg;
  mesh_cfg.contention = eng.shards() == 1;
  net::MeshNetwork mesh_net(eng, nprocs, mesh_cfg);
  net::Network& base_network =
      cfg.mesh ? static_cast<net::Network&>(mesh_net)
               : static_cast<net::Network&>(constant_net);
  // Chaos mode: only an active fault plan installs the fault injector and
  // the reliable transport, so fault-free runs stay bit-identical.
  const bool chaos = cfg.faults.active();
  net::FaultyNetwork faulty_net(eng, base_network, cfg.faults);
  net::Network& network =
      chaos ? static_cast<net::Network&>(faulty_net) : base_network;
  std::unique_ptr<shmem::CoherentMemory> mem;
  if (cfg.scheme.mechanism == Mechanism::kSharedMemory) {
    shmem::ProtocolParams pp;
    pp.hw_sharer_pointers = cfg.limitless_pointers;
    mem = std::make_unique<shmem::CoherentMemory>(machine, network,
                                                  shmem::CacheParams{}, pp);
  }
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, cfg.scheme.cost_model());
  if (chaos) rt.enable_reliability(cfg.reliable);
  // Distributed object location: constructed before the application so its
  // create-hook catches every object. In oracle mode the Locator is inert
  // and the run is bit-identical to one without it.
  std::unique_ptr<loc::Locator> locator;
  if (cfg.locator.mode == loc::Locality::kDistributed) {
    locator = std::make_unique<loc::Locator>(rt, cfg.locator);
  }
  CountingNetwork cn(rt, mem.get(), np);

  // Placement policy: constructed only when enabled (the null-by-default
  // pattern), after the application so `set_policy` sees every balancer.
  std::unique_ptr<policy::PolicyEngine> pol;
  if (cfg.policy.enabled) {
    pol = std::make_unique<policy::PolicyEngine>(rt, cfg.policy);
    cn.set_policy(pol.get());
    if (locator != nullptr) locator->set_chooser(&pol->chooser());
    pol->start();
  }

  // Fail-stop tolerance: constructed after the application so the balancer
  // objects exist when a suspicion scans for a dead processor's population.
  std::unique_ptr<ft::FtLayer> ftl;
  if (cfg.ft.enabled) {
    ftl = std::make_unique<ft::FtLayer>(rt, cfg.ft, locator.get());
    ftl->note_plan(cfg.faults);
    ftl->start();
  }

  const bool fixed = cfg.ops_per_requester > 0;
  RunCtl ctl;
  ctl.warm_at = fixed ? 0 : cfg.window.warmup;
  ctl.end_at = fixed ? ~Cycles{0} : cfg.window.warmup + cfg.window.measure;
  ctl.shard.resize(eng.shards());
  ctl.live = cfg.requesters;
  ctl.ftl = ftl.get();

  for (unsigned i = 0; i < cfg.requesters; ++i) {
    const ProcId home = static_cast<ProcId>(balancers + i);
    sim::detach(counting_requester(&rt, &cn, cfg.scheme.mechanism, home,
                                   cfg.seed * 7919 + i, cfg.think,
                                   cfg.ops_per_requester, &ctl));
  }
  if (!fixed) {
    // One warm/end snapshot pair per shard, homed on that shard and reading
    // its own traffic slot; run totals are the slice sums, which match the
    // single-shard numbers because every send is slotted by the shard that
    // executed it. Chaos runs (single-shard) keep reading the merged stats
    // so the fault decorator's override stays in the loop.
    for (unsigned s = 0; s < eng.shards(); ++s) {
      ShardCtl& sc = ctl.shard[s];
      const ProcId snap_home = first_proc_of_shard(eng, nprocs, s);
      const bool merged = eng.shards() == 1;
      eng.at_on(snap_home, ctl.warm_at, [&network, &sc, s, merged] {
        const net::NetStats& ns =
            merged ? network.stats() : network.stats_of_shard(s);
        sc.words_at_warm = ns.words;
        sc.msgs_at_warm = ns.messages;
      });
      eng.at_on(snap_home, ctl.end_at, [&network, &sc, s, merged] {
        const net::NetStats& ns =
            merged ? network.stats() : network.stats_of_shard(s);
        sc.words_at_end = ns.words;
        sc.msgs_at_end = ns.messages;
        sc.stop = true;
      });
    }
  }
  {
    sim::ShardedEngine driver(
        eng, sim::ShardOptions{cfg.shard_backend,
                               base_network.min_cross_latency(), cfg.seed});
    driver.run();
  }

  RunStats out;
  out.ops = ctl.total_ops();
  out.window = fixed ? eng.last_dispatch_time() : cfg.window.measure;
  out.words = fixed ? network.stats().words - ctl.warm_words()
                    : ctl.window_words();
  out.messages = fixed ? network.stats().messages - ctl.warm_msgs()
                       : ctl.window_msgs();
  if (mem != nullptr) out.cache_hit_rate = mem->stats().hit_rate();
  out.migrations = rt.stats().migrations;
  out.remote_calls = rt.stats().remote_calls;
  out.runtime = rt.stats();
  out.net = network.stats();
  out.completed_at = eng.last_dispatch_time();
  // Exclude the driver's own snapshot events (2 per shard) so the count
  // covers workload events only and is identical at every shard count.
  out.events_executed =
      eng.events_executed() - (fixed ? 0 : 2ull * eng.shards());
  out.clamped_events = eng.clamped_events();
  out.cross_shard_msgs = eng.cross_shard_msgs();
  out.window_count = eng.window_count();
  out.total_exited = cn.total_exited();
  out.step_property = cn.has_step_property();
  if (pol != nullptr) {
    out.policy_enabled = true;
    out.policy = pol->stats();
  }
  if (ftl != nullptr) {
    out.ft_enabled = true;
    out.ft = ftl->stats();
    out.ft_lost_ops = ctl.total_lost_ops();
  }
  if (locator != nullptr) {
    out.locator_enabled = true;
    out.loc = locator->stats();
  }
  if (checker != nullptr) {
    checker->finalize();
    out.checker_enabled = true;
    out.check = checker->stats();
    out.check_violations = checker->records();
  }
  if (tracer != nullptr && tracer->write_chrome_json(cfg.trace_path)) {
    out.trace_path = cfg.trace_path;
  }
  return out;
}

RunStats run_btree(const BTreeConfig& cfg) {
  sim::Engine eng(cfg.queue_backend);
  const auto nprocs = static_cast<ProcId>(cfg.node_procs + cfg.requesters);
  if (cfg.nshards > 1) {
    require_for_shards(cfg.scheme.mechanism == Mechanism::kRpc ||
                           cfg.scheme.mechanism == Mechanism::kMigration ||
                           cfg.scheme.mechanism ==
                               Mechanism::kThreadMigration,
                       "mechanism must route all cross-processor work "
                       "through the network (kRpc/kMigration/"
                       "kThreadMigration)");
    require_for_shards(!cfg.scheme.replication,
                       "software replication keeps cross-shard copy tables");
    require_for_shards(!cfg.faults.active(), "chaos runs are single-shard");
    require_for_shards(!cfg.ft.enabled, "ft runs are single-shard");
    require_for_shards(cfg.locator.mode != loc::Locality::kDistributed,
                       "the distributed locator is single-shard");
    require_for_shards(cfg.insert_ratio == 0.0,
                       "B-tree splits mutate tree topology no single shard "
                       "owns; multi-shard runs are lookup-only");
    require_for_shards(!cfg.policy.enabled || cfg.policy.observe_only,
                       "an actuating placement policy mutates global "
                       "placement tables; multi-shard policy runs are "
                       "observe-only");
  }
  eng.configure_shards(cfg.nshards, nprocs);
  std::unique_ptr<sim::Tracer> tracer;
  if (!cfg.trace_path.empty()) {
    tracer = std::make_unique<sim::Tracer>(eng);
    eng.set_tracer(tracer.get());
  }
  sim::Machine machine(eng, nprocs);
  std::unique_ptr<check::Checker> checker;
  if (cfg.check) {
    checker = std::make_unique<check::Checker>(eng, nprocs, cfg.check_cfg);
    eng.set_checker(checker.get());
  }
  net::ConstantNetwork constant_net(eng);
  // See run_counting: multi-shard runs drop mesh link contention.
  net::MeshConfig mesh_cfg;
  mesh_cfg.contention = eng.shards() == 1;
  net::MeshNetwork mesh_net(eng, nprocs, mesh_cfg);
  net::Network& base_network =
      cfg.mesh ? static_cast<net::Network&>(mesh_net)
               : static_cast<net::Network&>(constant_net);
  const bool chaos = cfg.faults.active();
  net::FaultyNetwork faulty_net(eng, base_network, cfg.faults);
  net::Network& network =
      chaos ? static_cast<net::Network&>(faulty_net) : base_network;
  std::unique_ptr<shmem::CoherentMemory> mem;
  if (cfg.scheme.mechanism == Mechanism::kSharedMemory) {
    shmem::ProtocolParams pp;
    pp.hw_sharer_pointers = cfg.limitless_pointers;
    mem = std::make_unique<shmem::CoherentMemory>(machine, network,
                                                  shmem::CacheParams{}, pp);
  }
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, cfg.scheme.cost_model());
  if (chaos) rt.enable_reliability(cfg.reliable);
  // See run_counting: the locator precedes the application so B-tree nodes
  // (including ones born later in splits) get directory entries.
  std::unique_ptr<loc::Locator> locator;
  if (cfg.locator.mode == loc::Locality::kDistributed) {
    locator = std::make_unique<loc::Locator>(rt, cfg.locator);
  }

  DistributedBTree::Params bp;
  bp.max_entries = cfg.max_entries;
  bp.node_procs = cfg.node_procs;
  bp.seed = cfg.seed;
  bp.replication = cfg.scheme.replication;
  DistributedBTree bt(rt, mem.get(), bp);

  // The paper builds a 10,000-key tree first; we load even keys so later
  // random inserts (any key in [0, 2n)) hit a 50% fresh-key rate.
  std::vector<std::uint64_t> keys(cfg.nkeys);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = 2 * i;
  bt.bulk_load(keys);

  // Placement policy: after bulk_load so every node of the built tree is
  // registered at once; split-born nodes register from alloc_node.
  std::unique_ptr<policy::PolicyEngine> pol;
  if (cfg.policy.enabled) {
    pol = std::make_unique<policy::PolicyEngine>(rt, cfg.policy);
    bt.set_policy(pol.get());
    if (locator != nullptr) locator->set_chooser(&pol->chooser());
    pol->start();
  }

  // Fail-stop tolerance: after bulk_load so every node object (and the
  // replicated root, if any) exists before a crash can be suspected.
  std::unique_ptr<ft::FtLayer> ftl;
  if (cfg.ft.enabled) {
    ftl = std::make_unique<ft::FtLayer>(rt, cfg.ft, locator.get());
    ftl->note_plan(cfg.faults);
    ftl->start();
  }

  const bool fixed = cfg.ops_per_requester > 0;
  RunCtl ctl;
  ctl.warm_at = fixed ? 0 : cfg.window.warmup;
  ctl.end_at = fixed ? ~Cycles{0} : cfg.window.warmup + cfg.window.measure;
  ctl.shard.resize(eng.shards());
  ctl.live = cfg.requesters;
  ctl.ftl = ftl.get();

  const std::uint64_t key_space = 2 * static_cast<std::uint64_t>(cfg.nkeys);
  const std::uint64_t slice =
      std::max<std::uint64_t>(1, key_space / cfg.requesters);
  for (unsigned i = 0; i < cfg.requesters; ++i) {
    const ProcId home = static_cast<ProcId>(cfg.node_procs + i);
    sim::detach(btree_requester(&rt, &bt, cfg.scheme.mechanism, home,
                                cfg.think, cfg.insert_ratio, key_space,
                                cfg.key_affinity, i * slice, slice,
                                cfg.seed * 1000003 + i,
                                cfg.ops_per_requester, &ctl));
  }
  if (!fixed) {
    // See run_counting: one snapshot pair per shard, homed on that shard.
    for (unsigned s = 0; s < eng.shards(); ++s) {
      ShardCtl& sc = ctl.shard[s];
      const ProcId snap_home = first_proc_of_shard(eng, nprocs, s);
      const bool merged = eng.shards() == 1;
      eng.at_on(snap_home, ctl.warm_at, [&network, &sc, s, merged] {
        const net::NetStats& ns =
            merged ? network.stats() : network.stats_of_shard(s);
        sc.words_at_warm = ns.words;
        sc.msgs_at_warm = ns.messages;
      });
      eng.at_on(snap_home, ctl.end_at, [&network, &sc, s, merged] {
        const net::NetStats& ns =
            merged ? network.stats() : network.stats_of_shard(s);
        sc.words_at_end = ns.words;
        sc.msgs_at_end = ns.messages;
        sc.stop = true;
      });
    }
  }
  {
    sim::ShardedEngine driver(
        eng, sim::ShardOptions{cfg.shard_backend,
                               base_network.min_cross_latency(), cfg.seed});
    driver.run();
  }

  RunStats out;
  out.ops = ctl.total_ops();
  out.window = fixed ? eng.last_dispatch_time() : cfg.window.measure;
  out.words = fixed ? network.stats().words - ctl.warm_words()
                    : ctl.window_words();
  out.messages = fixed ? network.stats().messages - ctl.warm_msgs()
                       : ctl.window_msgs();
  if (mem != nullptr) out.cache_hit_rate = mem->stats().hit_rate();
  out.migrations = rt.stats().migrations;
  out.remote_calls = rt.stats().remote_calls;
  out.runtime = rt.stats();
  out.net = network.stats();
  out.completed_at = eng.last_dispatch_time();
  // See run_counting: driver snapshot events excluded for shard-invariance.
  out.events_executed =
      eng.events_executed() - (fixed ? 0 : 2ull * eng.shards());
  out.clamped_events = eng.clamped_events();
  out.cross_shard_msgs = eng.cross_shard_msgs();
  out.window_count = eng.window_count();
  out.btree_keys = bt.num_keys();
  out.btree_digest = bt.digest_host();
  out.invariants_ok = bt.check_invariants();
  if (pol != nullptr) {
    out.policy_enabled = true;
    out.policy = pol->stats();
  }
  if (ftl != nullptr) {
    out.ft_enabled = true;
    out.ft = ftl->stats();
    out.ft_lost_ops = ctl.total_lost_ops();
  }
  if (locator != nullptr) {
    out.locator_enabled = true;
    out.loc = locator->stats();
  }
  if (checker != nullptr) {
    checker->finalize();
    out.checker_enabled = true;
    out.check = checker->stats();
    out.check_violations = checker->records();
  }
  if (tracer != nullptr && tracer->write_chrome_json(cfg.trace_path)) {
    out.trace_path = cfg.trace_path;
  }
  return out;
}

void put_run_stats(core::Metrics& m, const RunStats& s) {
  m.put("ops", s.ops);
  m.put("window", s.window);
  m.put("words", s.words);
  m.put("messages", s.messages);
  m.put("throughput_per_1000", s.throughput_per_1000());
  m.put("words_per_10", s.words_per_10());
  m.put("cache_hit_rate", s.cache_hit_rate);
  m.put("completed_at", s.completed_at);
  m.put("sim.events_executed", s.events_executed);
  m.put("sim.clamped_events", s.clamped_events);
  m.put("sim.cross_shard_msgs", s.cross_shard_msgs);
  m.put("sim.window_count", s.window_count);
  m.put("total_exited", s.total_exited);
  m.put("step_property", s.step_property);
  m.put("btree_keys", static_cast<std::uint64_t>(s.btree_keys));
  char digest[32];
  std::snprintf(digest, sizeof digest, "0x%016" PRIx64, s.btree_digest);
  m.put("btree_digest", digest);
  m.put("invariants_ok", s.invariants_ok);
  if (!s.trace_path.empty()) m.put("trace", s.trace_path);
  if (s.ft_enabled) {
    ft::put_ft_stats(m, s.ft);
    m.put("ft.lost_ops", s.ft_lost_ops);
  }
  if (s.policy_enabled) policy::put_policy_stats(m, s.policy);
  if (s.locator_enabled) loc::put_loc_stats(m, s.loc);
  if (s.checker_enabled) check::put_check_stats(m, s.check);
  core::put_rt_stats(m, s.runtime);
  core::put_net_stats(m, s.net);
}

}  // namespace cm::apps
