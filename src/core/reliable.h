// Reliable runtime messaging over an unreliable Network: per-link sequence
// numbers, receiver-side deduplication, NIC-level acks, and timeout-driven
// retransmission with exponential backoff. Delivery is at-least-once on the
// wire but exactly-once at the application level — the awaiting activation
// is resumed exactly once, on the first copy that arrives (matching
// Network::send's "resume at the destination" contract), or once with
// failure if a bounded retry budget runs out before anything arrives.
//
// Acks are generated autonomously by the receiving NIC at delivery time and
// charge no CPU cycles (register-mapped interface, as in the paper's
// hardware-support discussion); they do consume network bandwidth, which the
// chaos benches report as the price of reliability. Duplicates re-ack
// because the previous ack may itself have been lost.
//
// The runtime only installs this layer for fault-injection runs; the raw
// transfer path is untouched otherwise, so fault-free experiments remain
// bit-identical to the unreliable-era system.
//
// Interaction with fail-stop crashes (FaultPlan::nic_fail_at): a dead NIC
// never delivers and never acks, so an unbounded send (`budget = 0`) to it
// would retransmit forever — the sender's coroutine hangs and the event
// queue never drains. With a FaultTolerance service installed
// (set_fault_tolerance), such a send instead resolves as a
// `delivery_failures` outcome the moment the peer is suspected (or its
// send_deadline expires, whichever is first): the timer path stops
// retransmitting, excuses the seq with the checker, and wakes the sender
// with false. Without the service the pre-crash behaviour — including the
// hang — is bit-identical, which is exactly the no-overhead guarantee.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <utility>

#include "core/ft.h"
#include "core/stats.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/task.h"
#include "sim/types.h"

namespace cm::core {

struct ReliableConfig {
  sim::Cycles base_timeout = 400;   // first ack deadline; must exceed the
                                    // loaded round-trip time
  sim::Cycles max_timeout = 6400;   // exponential-backoff cap
  unsigned ack_words = 2;           // ack size on the wire (incl. header)
  unsigned move_retry_budget = 10;  // attempts for migration MOVE messages
                                    // before falling back to RPC
};

class ReliableTransport {
 public:
  ReliableTransport(sim::Engine& engine, net::Network& network,
                    RtStats& stats, ReliableConfig cfg)
      : engine_(&engine), network_(&network), stats_(&stats), cfg_(cfg) {}

  ReliableTransport(const ReliableTransport&) = delete;
  ReliableTransport& operator=(const ReliableTransport&) = delete;

  /// Ship `words` from `src` to `dst`. Resumes the awaiter at first
  /// delivery; retransmission machinery keeps running in the background
  /// until the message is acked. `budget` caps total send attempts
  /// (0 = retry forever); returns false only when the budget was exhausted
  /// before any copy arrived, in which case a late copy is discarded at the
  /// receiver rather than resuming anything. `deadline` (absolute cycle,
  /// 0 = none) bounds how long an unacked send may keep retrying when a
  /// FaultTolerance service is installed; it is ignored otherwise.
  [[nodiscard]] sim::Task<bool> send(sim::ProcId src, sim::ProcId dst,
                                     unsigned words, unsigned budget = 0,
                                     sim::Cycles deadline = 0);

  /// Install the fail-stop suspicion source (null = crash-free behaviour).
  void set_fault_tolerance(const FaultTolerance* ft) noexcept { ft_ = ft; }

  [[nodiscard]] const ReliableConfig& config() const noexcept { return cfg_; }

 private:
  struct SendState;  // shared by the delivery / ack / timer callbacks

  void attempt(const std::shared_ptr<SendState>& st);
  void on_data(const std::shared_ptr<SendState>& st);
  void on_timeout(const std::shared_ptr<SendState>& st);

  /// Per-directed-link transport state. `delivered` remembers every seq
  /// accepted so duplicates are recognised for the whole run — fine at
  /// simulation scale; a real implementation would prune via cumulative
  /// acks.
  struct Channel {
    std::uint64_t next_seq = 0;
    std::unordered_set<std::uint64_t> delivered;
  };
  Channel& channel(sim::ProcId src, sim::ProcId dst) {
    return channels_[{src, dst}];
  }

  sim::Engine* engine_;
  net::Network* network_;
  RtStats* stats_;
  ReliableConfig cfg_;
  const FaultTolerance* ft_ = nullptr;  // null = never suspect anyone
  std::map<std::pair<sim::ProcId, sim::ProcId>, Channel> channels_;
};

}  // namespace cm::core
