// Runtime statistics: operation counters plus the per-category cycle
// breakdown that regenerates the paper's Table 5.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sim/types.h"

namespace cm::core {

/// Categories matching the rows of Table 5 (receiver/sender split is
/// recovered from which side charged the cost).
enum class Category : unsigned {
  kUserCode = 0,
  kNetworkTransit,   // wire time (not CPU)
  kCopyPacket,
  kThreadCreation,
  kRecvLinkage,
  kUnmarshal,
  kOidTranslation,
  kScheduler,
  kForwardingCheck,
  kRecvAllocPacket,
  kSendLinkage,
  kSendAllocPacket,
  kMessageSend,
  kMarshal,
  kLocalityCheck,
  kReplication,      // replica fetch / invalidation handling
  kGeneralStub,      // general-purpose RPC stub overhead (§4.3)
  kObjectMove,       // Emerald-style object transfer handling
  kCount,
};

[[nodiscard]] constexpr std::string_view category_name(Category c) {
  switch (c) {
    case Category::kUserCode: return "User code";
    case Category::kNetworkTransit: return "Network transit";
    case Category::kCopyPacket: return "Copy packet";
    case Category::kThreadCreation: return "Thread creation";
    case Category::kRecvLinkage: return "Procedure linkage (recv)";
    case Category::kUnmarshal: return "Unmarshaling";
    case Category::kOidTranslation: return "Object ID translation";
    case Category::kScheduler: return "Scheduler";
    case Category::kForwardingCheck: return "Forwarding check";
    case Category::kRecvAllocPacket: return "Allocate packet (recv)";
    case Category::kSendLinkage: return "Procedure linkage (send)";
    case Category::kSendAllocPacket: return "Allocate packet (send)";
    case Category::kMessageSend: return "Message send";
    case Category::kMarshal: return "Marshaling";
    case Category::kLocalityCheck: return "Locality check";
    case Category::kReplication: return "Replication";
    case Category::kGeneralStub: return "General stub overhead";
    case Category::kObjectMove: return "Object transfer";
    case Category::kCount: break;
  }
  return "?";
}

struct Breakdown {
  std::array<std::uint64_t, static_cast<unsigned>(Category::kCount)> cycles{};

  void add(Category c, sim::Cycles n) noexcept {
    cycles[static_cast<unsigned>(c)] += n;
  }
  [[nodiscard]] std::uint64_t get(Category c) const noexcept {
    return cycles[static_cast<unsigned>(c)];
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    std::uint64_t s = 0;
    for (auto v : cycles) s += v;
    return s;
  }
  /// Everything except user code and wire time: the "message overhead".
  [[nodiscard]] std::uint64_t overhead() const noexcept {
    return total() - get(Category::kUserCode) - get(Category::kNetworkTransit);
  }
};

struct RtStats {
  std::uint64_t local_calls = 0;     // instance-method calls that were local
  std::uint64_t remote_calls = 0;    // RPCs issued
  std::uint64_t fast_path_calls = 0; // short methods (no thread created)
  std::uint64_t threads_created = 0;
  std::uint64_t migrations = 0;        // activations actually shipped
  std::uint64_t migrations_local = 0;  // annotation hit a local object (free)
  std::uint64_t migrated_words = 0;
  std::uint64_t replies = 0;
  std::uint64_t replica_hits = 0;
  std::uint64_t replica_fetches = 0;
  std::uint64_t replica_invalidations = 0;
  std::uint64_t object_moves = 0;        // Emerald-style object transfers
  std::uint64_t moved_object_words = 0;

  // Reliable-transport counters; all stay zero unless the runtime's
  // reliability layer is enabled (chaos / fault-injection runs).
  std::uint64_t reliable_sends = 0;      // payload transfers through the
                                         // ack/retransmit protocol
  std::uint64_t retransmits = 0;         // extra DATA copies after a timeout
  std::uint64_t timeouts_fired = 0;      // ack timers that expired
  std::uint64_t acks_sent = 0;           // receiver-NIC acknowledgements
  std::uint64_t dedup_hits = 0;          // duplicate DATA suppressed
  std::uint64_t stale_deliveries = 0;    // DATA arriving after the sender
                                         // already gave up (discarded)
  std::uint64_t delivery_failures = 0;   // sends that exhausted their budget
  std::uint64_t migration_fallbacks = 0; // MOVE gave up; the activation
                                         // stayed put and later accesses
                                         // fall back to plain RPC

  // Fault-tolerance counters; all stay zero unless a FaultTolerance service
  // is installed (fail-stop crash runs).
  std::uint64_t ft_suspect_aborts = 0;   // sends aborted: peer suspected dead
  std::uint64_t ft_deadline_aborts = 0;  // sends aborted: deadline expired
  std::uint64_t ft_call_retries = 0;     // calls re-issued after an abort
  std::uint64_t ft_recovered_replies = 0;  // replies reconstructed after the
                                           // reply transfer failed (effects
                                           // committed exactly once)
  std::uint64_t ft_evacuations = 0;      // activations rebound off dead procs
  Breakdown breakdown;

  /// Accumulate another counter set (merging per-shard slices).
  void add(const RtStats& o) noexcept {
    local_calls += o.local_calls;
    remote_calls += o.remote_calls;
    fast_path_calls += o.fast_path_calls;
    threads_created += o.threads_created;
    migrations += o.migrations;
    migrations_local += o.migrations_local;
    migrated_words += o.migrated_words;
    replies += o.replies;
    replica_hits += o.replica_hits;
    replica_fetches += o.replica_fetches;
    replica_invalidations += o.replica_invalidations;
    object_moves += o.object_moves;
    moved_object_words += o.moved_object_words;
    reliable_sends += o.reliable_sends;
    retransmits += o.retransmits;
    timeouts_fired += o.timeouts_fired;
    acks_sent += o.acks_sent;
    dedup_hits += o.dedup_hits;
    stale_deliveries += o.stale_deliveries;
    delivery_failures += o.delivery_failures;
    migration_fallbacks += o.migration_fallbacks;
    ft_suspect_aborts += o.ft_suspect_aborts;
    ft_deadline_aborts += o.ft_deadline_aborts;
    ft_call_retries += o.ft_call_retries;
    ft_recovered_replies += o.ft_recovered_replies;
    ft_evacuations += o.ft_evacuations;
    for (std::size_t c = 0; c < breakdown.cycles.size(); ++c) {
      breakdown.cycles[c] += o.breakdown.cycles[c];
    }
  }
};

}  // namespace cm::core
