// Fault-tolerance service interface. The runtime's default assumption is the
// paper's: a reliable machine where processors never die. A FaultTolerance
// implementation (ft::FtLayer in `src/ft`) replaces that assumption with a
// fail-stop model — a processor's NIC can die at a planned cycle
// (net::FaultPlan::nic_fail_at), after which nothing it sends or receives is
// ever delivered. The interface mirrors core::LocationService: `Runtime`,
// `ReliableTransport` and `loc::Locator` hold a nullable pointer, and with
// none installed they run the crash-free code paths bit-for-bit, which keeps
// every seed golden byte-identical.
//
// What the service publishes:
//  * suspicion — whether a lease-based failure detector currently believes a
//    processor's NIC is dead, and the cycle (failure epoch) at which it
//    decided so;
//  * recovery — whether an object homed on a dead processor has been
//    re-homed (await_object blocks until its recovery commits) or is lost
//    for good (object_lost);
//  * policy — where stranded activations evacuate to, how long senders may
//    wait (send_deadline) and how often callers retry (max_call_retries).
#pragma once

#include <stdexcept>
#include <string>

#include "core/object.h"
#include "sim/task.h"
#include "sim/types.h"

namespace cm::core {

/// Failure epoch of a processor that has never been suspected.
inline constexpr sim::Cycles kNoFailureEpoch = static_cast<sim::Cycles>(-1);

/// Base class for typed fault-tolerance failures. Thrown by Runtime::call
/// when an operation cannot complete under the configured recovery policy;
/// application threads catch it and abandon the operation gracefully.
/// (Detached coroutine roots terminate on escape, so requesters must catch.)
class FtError : public std::runtime_error {
 public:
  explicit FtError(const std::string& what) : std::runtime_error(what) {}
};

/// The object's host fail-stopped and no replica or backup could re-home it
/// (FtConfig::rehome_unreplicated == false and no valid core::Replicated
/// copy existed). The object's state is gone; the operation cannot succeed.
class ObjectLostError final : public FtError {
 public:
  explicit ObjectLostError(ObjectId obj)
      : FtError("object " + std::to_string(obj) +
                " lost: home fail-stopped with no replica"),
        obj_(obj) {}
  [[nodiscard]] ObjectId object() const noexcept { return obj_; }

 private:
  ObjectId obj_;
};

class FaultTolerance {
 public:
  virtual ~FaultTolerance() = default;

  /// True once the failure detector has suspected `p`'s NIC. Suspicion is
  /// permanent under fail-stop: there is no rejoin.
  [[nodiscard]] virtual bool suspected(sim::ProcId p) const = 0;

  /// Cycle at which `p` was suspected, or kNoFailureEpoch if never.
  [[nodiscard]] virtual sim::Cycles failure_epoch(sim::ProcId p) const = 0;

  /// Deterministic refuge for an activation stranded on a dead processor:
  /// the first non-suspected processor after `dead` in ring order.
  [[nodiscard]] virtual sim::ProcId evacuation_target(
      sim::ProcId dead) const = 0;

  /// True if `id`'s recovery concluded that its state is unrecoverable.
  [[nodiscard]] virtual bool object_lost(ObjectId id) const = 0;

  /// True while `id` is enqueued for recovery (its home was suspected and
  /// the re-home has not committed yet).
  [[nodiscard]] virtual bool recovery_pending(ObjectId id) const = 0;

  /// Recovery barrier: resumes once `id`'s recovery commits (re-home or
  /// loss). Immediate no-op if no recovery is pending, including for lost
  /// objects — callers re-check object_lost afterwards.
  [[nodiscard]] virtual sim::Task<> await_object(ObjectId id) = 0;

  /// Relative per-send deadline for reliable transfers (0 = none): an
  /// unacked send older than this resolves as a delivery failure even
  /// before its peer is formally suspected.
  [[nodiscard]] virtual sim::Cycles send_deadline() const = 0;

  /// How many times Runtime::call re-issues a request whose transfer was
  /// aborted (peer suspected / deadline expired) before throwing FtError.
  [[nodiscard]] virtual unsigned max_call_retries() const = 0;
};

}  // namespace cm::core
