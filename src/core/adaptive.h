// Automatic mechanism selection — a runtime, profile-guided stand-in for
// the paper's §6 future work: "We are also developing compiler analysis
// techniques for automatically choosing among the remote access
// mechanisms."
//
// The chooser observes per-object access streams (who accessed, read or
// write) and recommends a mechanism using the decision criteria the paper
// lays out in §2:
//   * read-mostly data            -> data migration / caching wins, because
//     replication lets non-conflicting reads proceed in parallel (§2.2);
//   * long same-thread access runs with small live state -> computation
//     migration (§2.4: "if the executing thread makes a series of accesses
//     to the same data, there is a great deal to be gained by moving those
//     accesses to the data");
//   * one dominant accessor        -> Emerald-style object migration (move
//     the object once, then everything is local);
//   * huge activation state        -> RPC (§2.4: "if the amount of state is
//     large ... computation migration will be fairly expensive").
//
// This is intentionally a heuristic over observable behaviour, not a static
// analysis; it demonstrates that the annotation *placement* problem the
// paper leaves to the programmer has enough signal to automate.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>

#include "core/mechanism.h"
#include "core/object.h"
#include "sim/types.h"

namespace cm::core {

class AdaptiveChooser {
 public:
  struct Tunables {
    double read_mostly_threshold = 0.15;  // write ratio below this -> SM
    double dominant_accessor_share = 0.80;  // one proc above this -> OBJ
    double run_length_for_migration = 1.5;  // avg run at/above this -> CM
    unsigned frame_words_rpc_cutoff = 96;  // frames this big -> RPC
    bool allow_shared_memory = true;  // false on machines without coherent
                                      // shared-memory hardware ("in
                                      // non-shared memory systems...", §6)
    double bounce_rate_cap = 0.5;  // forwarding bounces per access above
                                   // which the object demonstrably
                                   // ping-pongs: never recommend moving it
  };

  AdaptiveChooser() = default;
  explicit AdaptiveChooser(const Tunables& t) : tunables_(t) {}

  /// Record one access to `obj` from processor `accessor`.
  void record(ObjectId obj, sim::ProcId accessor, bool write);

  /// Record that a request for `obj` landed on a stale host and had to be
  /// forwarded (reported by the location subsystem). A high bounce rate is
  /// direct evidence that the object moves faster than hints spread —
  /// exactly when Emerald-style object migration goes pathological.
  void record_bounce(ObjectId obj);

  /// Recommend a mechanism for accessing `obj` given the live-state size a
  /// migration would ship and the object's own size. Falls back to
  /// computation migration (the paper's general-purpose winner for
  /// traversal-style access) when there is not enough history.
  [[nodiscard]] Mechanism recommend(ObjectId obj, unsigned frame_words,
                                    unsigned object_words) const;

  // ---- observable profile, for tests and reports ----
  [[nodiscard]] std::uint64_t accesses(ObjectId obj) const;
  [[nodiscard]] double write_ratio(ObjectId obj) const;
  [[nodiscard]] double avg_run_length(ObjectId obj) const;
  /// Fraction of accesses made by the most frequent accessor.
  [[nodiscard]] double dominant_share(ObjectId obj) const;
  /// Forwarding bounces per recorded access.
  [[nodiscard]] double bounce_rate(ObjectId obj) const;

 private:
  struct Profile {
    std::uint64_t accesses = 0;
    std::uint64_t writes = 0;
    std::uint64_t runs = 0;  // maximal same-accessor streaks
    std::uint64_t bounces = 0;  // stale-host forwards seen by the locator
    sim::ProcId last_accessor = sim::kNoProc;
    // Ordered deliberately (simlint DS001): dominant_share() iterates this
    // map, and hash order must never be observable. Accessor sets are small
    // (bounded by nprocs), so the tree walk costs nothing measurable.
    std::map<sim::ProcId, std::uint64_t> by_accessor;
  };

  [[nodiscard]] const Profile* find(ObjectId obj) const;

  Tunables tunables_;
  std::unordered_map<ObjectId, Profile> profiles_;
};

/// Set one tunable by its field name ("read_mostly_threshold",
/// "dominant_accessor_share", "run_length_for_migration",
/// "frame_words_rpc_cutoff", "allow_shared_memory", "bounce_rate_cap");
/// integral/bool fields round/test the double. Returns false on an unknown
/// name. This is the CLI surface: benches accept repeated
/// `--tune key=value` flags so policy experiments can sweep the chooser
/// without rebuilding.
bool set_tunable(AdaptiveChooser::Tunables& t, std::string_view key,
                 double value);

}  // namespace cm::core
