// Unified metrics export: every benchmark emits the same flat JSON schema
// (runtime counters under "rt.", traffic counters under "net.", the Table-5
// cycle breakdown under "breakdown.") instead of growing its own ad-hoc
// write_json. A Metrics object is an ordered list of key -> scalar records;
// a MetricsRegistry is a labelled collection of them, serialised as a JSON
// array of flat objects so downstream tooling can diff/plot runs uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/stats.h"
#include "net/network.h"

namespace cm::core {

/// One flat record of scalar metrics, serialised in insertion order.
class Metrics {
 public:
  using Value =
      std::variant<std::uint64_t, std::int64_t, double, bool, std::string>;

  void put(std::string key, std::uint64_t v) { emplace(std::move(key), v); }
  void put(std::string key, std::int64_t v) { emplace(std::move(key), v); }
  void put(std::string key, double v) { emplace(std::move(key), v); }
  void put(std::string key, bool v) { emplace(std::move(key), v); }
  void put(std::string key, std::string v) {
    emplace(std::move(key), std::move(v));
  }
  void put(std::string key, const char* v) {
    emplace(std::move(key), std::string(v));
  }
  void put(std::string key, unsigned v) {
    put(std::move(key), static_cast<std::uint64_t>(v));
  }
  void put(std::string key, int v) {
    put(std::move(key), static_cast<std::int64_t>(v));
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Append this record's key/value pairs (no surrounding braces) to `out`.
  void append_json_fields(std::string& out) const;

 private:
  void emplace(std::string key, Value v) {
    entries_.emplace_back(std::move(key), std::move(v));
  }

  std::vector<std::pair<std::string, Value>> entries_;
};

/// A labelled collection of Metrics records: one JSON array, one object per
/// record, "label" first then the record's keys in insertion order.
class MetricsRegistry {
 public:
  /// Start a new record; the reference stays valid until the next record().
  Metrics& record(std::string label);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, Metrics>> records_;
};

/// Schema helpers: the one place the exported key set is defined.
void put_rt_stats(Metrics& m, const RtStats& s);          // "rt." + breakdown
void put_net_stats(Metrics& m, const net::NetStats& s);   // "net."
void put_breakdown(Metrics& m, const Breakdown& b);       // "breakdown."

}  // namespace cm::core
