#include "core/reliable.h"

#include <algorithm>
#include <coroutine>

#include "check/checker.h"
#include "sim/task.h"
#include "sim/timer.h"
#include "sim/tracer.h"

namespace cm::core {

struct ReliableTransport::SendState {
  sim::ProcId src = 0;
  sim::ProcId dst = 0;
  unsigned words = 0;
  unsigned budget = 0;  // 0 = unbounded
  std::uint64_t seq = 0;
  unsigned attempts = 0;
  sim::Cycles timeout = 0;
  sim::Cycles deadline = 0;  // absolute give-up cycle; 0 = none
  bool acked = false;
  bool done = false;       // the awaiter has been resumed...
  bool delivered = false;  // ...because a copy arrived (vs. giving up)
  std::coroutine_handle<> waiter;
  sim::Timer timer;

  explicit SendState(sim::Engine& e) : timer(e) {}
};

sim::Task<bool> ReliableTransport::send(sim::ProcId src, sim::ProcId dst,
                                        unsigned words, unsigned budget,
                                        sim::Cycles deadline) {
  if (ft_ != nullptr && (ft_->suspected(dst) || ft_->suspected(src))) {
    // The peer (or our own NIC) is already known dead: fail fast instead of
    // burning a full timeout ladder on a message that can never be acked.
    ++stats_->ft_suspect_aborts;
    ++stats_->delivery_failures;
    if (sim::Tracer* tr = engine_->tracer()) {
      tr->record(sim::TraceEvent::kFtAbort, src,
                 {{"dst", dst}, {"why", 0}});
    }
    co_return false;
  }
  auto st = std::make_shared<SendState>(*engine_);
  st->src = src;
  st->dst = dst;
  st->words = words;
  st->budget = budget;
  st->deadline = deadline;
  st->seq = channel(src, dst).next_seq++;
  st->timeout = cfg_.base_timeout;
  ++stats_->reliable_sends;
  if (check::Checker* ck = engine_->checker()) {
    ck->on_seq_sent(src, dst, st->seq);
  }
  // The awaiter is bound to a named local before awaiting: the capture owns
  // a shared_ptr, and `co_await` on a prvalue awaiter miscounts the
  // temporary's lifetime under GCC 12.2 (destroys the captured state twice).
  // See the note on suspend_to in sim/task.h.
  auto arm_and_wait = sim::suspend_to([this, st](std::coroutine_handle<> h) {
    st->waiter = h;
    attempt(st);
  });
  co_await arm_and_wait;
  co_return st->delivered;
}

void ReliableTransport::attempt(const std::shared_ptr<SendState>& st) {
  ++st->attempts;
  if (st->attempts > 1) {
    ++stats_->retransmits;
    if (sim::Tracer* tr = engine_->tracer()) {
      tr->record(sim::TraceEvent::kRetransmit, st->src,
                 {{"dst", st->dst}, {"seq", st->seq}, {"attempt", st->attempts}});
    }
    // The retransmitted copy's wire time is real overhead the fault-free
    // figures never pay; account it like any other transit.
    stats_->breakdown.add(Category::kNetworkTransit,
                          network_->latency(st->src, st->dst, st->words));
  }
  network_->send(st->src, st->dst, st->words, net::Traffic::kRuntime,
                 [this, st] { on_data(st); });
  st->timer.arm(st->timeout, [this, st] { on_timeout(st); });
}

void ReliableTransport::on_data(const std::shared_ptr<SendState>& st) {
  const bool fresh = channel(st->src, st->dst).delivered.insert(st->seq).second;
  if (check::Checker* ck = engine_->checker()) {
    // The checker replays the delivery history independently and flags any
    // disagreement with the transport's own dedup verdict.
    ck->on_seq_delivered(st->src, st->dst, st->seq, fresh);
  }
  if (!fresh) {
    ++stats_->dedup_hits;
    if (sim::Tracer* tr = engine_->tracer()) {
      tr->record(sim::TraceEvent::kDedup, st->dst,
                 {{"src", st->src}, {"seq", st->seq}});
    }
  }
  // Ack every copy: the ack for an earlier copy may itself have been lost.
  ++stats_->acks_sent;
  network_->send(st->dst, st->src, cfg_.ack_words, net::Traffic::kRuntime,
                 [st] {
                   st->acked = true;
                   st->timer.cancel();
                 });
  if (!fresh) return;
  if (st->done) {
    // The sender already exhausted its budget and took the recovery path;
    // the receiving runtime discards the stale activation instead of
    // running it a second time.
    ++stats_->stale_deliveries;
    return;
  }
  st->done = true;
  st->delivered = true;
  st->waiter.resume();
}

void ReliableTransport::on_timeout(const std::shared_ptr<SendState>& st) {
  if (st->acked) return;
  ++stats_->timeouts_fired;
  if (sim::Tracer* tr = engine_->tracer()) {
    tr->record(sim::TraceEvent::kTimeout, st->src,
               {{"dst", st->dst}, {"seq", st->seq}});
  }
  if (ft_ != nullptr) {
    // Fail-stop cancellation: stop retrying once the peer is suspected or
    // the send's deadline has passed. If a copy already arrived (delivered
    // but the ack died with the receiver's NIC), the send has succeeded —
    // just stop retransmitting silently; resuming or failing it now would
    // double-settle the awaiter.
    const bool suspect = ft_->suspected(st->dst) || ft_->suspected(st->src);
    const bool expired =
        st->deadline != 0 && engine_->now() >= st->deadline;
    if (suspect || expired) {
      if (suspect) {
        ++stats_->ft_suspect_aborts;
      } else {
        ++stats_->ft_deadline_aborts;
      }
      if (sim::Tracer* tr = engine_->tracer()) {
        tr->record(sim::TraceEvent::kFtAbort, st->src,
                   {{"dst", st->dst},
                    {"seq", st->seq},
                    {"why", suspect ? 0u : 1u}});
      }
      if (!st->done) {
        ++stats_->delivery_failures;
        if (check::Checker* ck = engine_->checker()) {
          // Excuse the seq from the end-of-run gapless check, exactly like
          // a bounded-budget give-up: recovery owns correctness from here.
          ck->on_seq_abandoned(st->src, st->dst, st->seq);
        }
        st->done = true;
        st->waiter.resume();
      }
      return;
    }
  }
  if (st->budget != 0 && st->attempts >= st->budget) {
    ++stats_->delivery_failures;
    if (check::Checker* ck = engine_->checker()) {
      // Bounded-budget give-up: excuse this seq from the end-of-run gapless
      // check — the migration fallback path owns correctness from here.
      ck->on_seq_abandoned(st->src, st->dst, st->seq);
    }
    if (!st->done) {
      st->done = true;  // gave up before any copy arrived: wake the sender
      st->waiter.resume();
    }
    return;
  }
  st->timeout = std::min(st->timeout * 2, cfg_.max_timeout);
  attempt(st);
}

}  // namespace cm::core
