// Emerald-style object migration [JLHB88]: the object moves (without
// replication) to the processor that accesses it; subsequent accesses from
// that processor are local, until another processor attracts it away.
//
// This is the mechanism the paper wanted to compare against ("We would like
// to compare our results to object migration, such as the mechanism in
// Emerald, but our group has not finished implementing object migration in
// Prelude yet"). The expected behaviour, borne out by the ablation bench:
// great when one thread has an affinity run to the object, pathological for
// write-shared objects (the balancers, the B-tree root), which ping-pong
// with their full state in tow.
#pragma once

#include "core/runtime.h"
#include "sim/async_mutex.h"

namespace cm::core {

class MobileObject {
 public:
  /// `size_words` is the payload shipped when the object moves.
  MobileObject(Runtime& rt, ObjectId id, unsigned size_words)
      : rt_(&rt), id_(id), size_words_(size_words) {}

  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] unsigned size_words() const noexcept { return size_words_; }
  [[nodiscard]] ProcId home() const { return rt_->objects().home_of(id_); }

  /// Pull the object to `ctx.proc` if it is elsewhere: a control request to
  /// its current home, the object's state back, and a rebind of its home.
  /// Free when already local. Concurrent movers serialise.
  [[nodiscard]] sim::Task<> attract(Ctx& ctx);

  [[nodiscard]] std::uint64_t moves() const noexcept { return moves_; }

 private:
  Runtime* rt_;
  ObjectId id_;
  unsigned size_words_;
  sim::AsyncMutex transfer_lock_;
  std::uint64_t moves_ = 0;
};

}  // namespace cm::core
