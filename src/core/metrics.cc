#include "core/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace cm::core {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const Metrics::Value& v) {
  char buf[64];
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    std::snprintf(buf, sizeof buf, "%" PRIu64, *u);
    out += buf;
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    std::snprintf(buf, sizeof buf, "%" PRId64, *i);
    out += buf;
  } else if (const auto* d = std::get_if<double>(&v)) {
    // %.17g round-trips every finite double exactly.
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    out += buf;
  } else if (const auto* b = std::get_if<bool>(&v)) {
    out += *b ? "true" : "false";
  } else {
    append_escaped(out, std::get<std::string>(v));
  }
}

/// "Procedure linkage (recv)" -> "procedure_linkage_recv": JSON keys stay
/// machine-friendly while category_name stays human-friendly.
std::string slug(std::string_view name) {
  std::string out;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      out += c;
    } else if (c >= 'A' && c <= 'Z') {
      out += static_cast<char>(c - 'A' + 'a');
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

}  // namespace

void Metrics::append_json_fields(std::string& out) const {
  bool first = true;
  for (const auto& [key, value] : entries_) {
    if (!first) out += ", ";
    first = false;
    append_escaped(out, key);
    out += ": ";
    append_value(out, value);
  }
}

Metrics& MetricsRegistry::record(std::string label) {
  records_.emplace_back(std::move(label), Metrics{});
  return records_.back().second;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "[\n";
  bool first = true;
  for (const auto& [label, metrics] : records_) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"label\": ";
    append_escaped(out, label);
    if (metrics.size() != 0) {
      out += ", ";
      metrics.append_json_fields(out);
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = to_json();
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

void put_breakdown(Metrics& m, const Breakdown& b) {
  for (unsigned c = 0; c < static_cast<unsigned>(Category::kCount); ++c) {
    m.put("breakdown." + slug(category_name(static_cast<Category>(c))),
          b.cycles[c]);
  }
  m.put("breakdown.total", b.total());
  m.put("breakdown.overhead", b.overhead());
}

void put_rt_stats(Metrics& m, const RtStats& s) {
  m.put("rt.local_calls", s.local_calls);
  m.put("rt.remote_calls", s.remote_calls);
  m.put("rt.fast_path_calls", s.fast_path_calls);
  m.put("rt.threads_created", s.threads_created);
  m.put("rt.migrations", s.migrations);
  m.put("rt.migrations_local", s.migrations_local);
  m.put("rt.migrated_words", s.migrated_words);
  m.put("rt.replies", s.replies);
  m.put("rt.replica_hits", s.replica_hits);
  m.put("rt.replica_fetches", s.replica_fetches);
  m.put("rt.replica_invalidations", s.replica_invalidations);
  m.put("rt.object_moves", s.object_moves);
  m.put("rt.moved_object_words", s.moved_object_words);
  m.put("rt.reliable_sends", s.reliable_sends);
  m.put("rt.retransmits", s.retransmits);
  m.put("rt.timeouts_fired", s.timeouts_fired);
  m.put("rt.acks_sent", s.acks_sent);
  m.put("rt.dedup_hits", s.dedup_hits);
  m.put("rt.stale_deliveries", s.stale_deliveries);
  m.put("rt.delivery_failures", s.delivery_failures);
  m.put("rt.migration_fallbacks", s.migration_fallbacks);
  m.put("rt.ft_suspect_aborts", s.ft_suspect_aborts);
  m.put("rt.ft_deadline_aborts", s.ft_deadline_aborts);
  m.put("rt.ft_call_retries", s.ft_call_retries);
  m.put("rt.ft_recovered_replies", s.ft_recovered_replies);
  m.put("rt.ft_evacuations", s.ft_evacuations);
  put_breakdown(m, s.breakdown);
}

void put_net_stats(Metrics& m, const net::NetStats& s) {
  m.put("net.messages", s.messages);
  m.put("net.words", s.words);
  m.put("net.runtime_messages", s.runtime_messages);
  m.put("net.runtime_words", s.runtime_words);
  m.put("net.coherence_messages", s.coherence_messages);
  m.put("net.coherence_words", s.coherence_words);
  m.put("net.faults_dropped", s.faults_dropped);
  m.put("net.faults_duplicated", s.faults_duplicated);
  m.put("net.faults_delayed", s.faults_delayed);
  m.put("net.faults_nic_dropped", s.faults_nic_dropped);
}

}  // namespace cm::core
