// Software replication of read-mostly objects (multi-version memory,
// Weihl-Wang 1990). Used for the "w/repl." schemes: the B-tree root is
// replicated on every processor, so lookups consult a local copy instead of
// all migrating to (or RPC-ing) the root's processor, relieving the root
// bottleneck. Writers invalidate every replica before modifying the object.
#pragma once

#include <memory>
#include <vector>

#include "core/runtime.h"
#include "sim/oneshot.h"

namespace cm::core {

class Replicated {
 public:
  /// `primary` is the authoritative object; `object_words` is the payload
  /// size of a replica fetch (the object's contents). Registers with the
  /// runtime's replica registry so crash recovery can promote a copy.
  Replicated(Runtime& rt, ObjectId primary, unsigned object_words);
  ~Replicated();
  Replicated(const Replicated&) = delete;
  Replicated& operator=(const Replicated&) = delete;

  [[nodiscard]] ObjectId primary() const noexcept { return primary_; }
  [[nodiscard]] ProcId home() const noexcept { return home_; }
  [[nodiscard]] bool valid_at(ProcId p) const { return valid_.at(p); }

  /// Make `ctx.proc`'s replica usable: free if it is the primary's home or
  /// the local replica is valid; otherwise a 2-message fetch from the
  /// primary. Afterwards the caller reads the object locally.
  [[nodiscard]] sim::Task<> ensure(Ctx& ctx);

  /// Invalidate every remote replica (broadcast + gathered acks). Called by
  /// a writer before it modifies the primary; the writer should be running
  /// at the primary's home.
  [[nodiscard]] sim::Task<> invalidate_all(Ctx& ctx);

  /// Point the replica set at a different primary (e.g. after a root split
  /// replaces the replicated root). All replicas become invalid; callers
  /// should have run `invalidate_all` first so the timing is charged.
  void rebind(ObjectId new_primary);

  /// Crash recovery re-homed the primary (ft::FtLayer promoted the copy at
  /// `new_home`, or restored one there). Replicas mirror the same state the
  /// crash could not touch, so the surviving valid set stays valid.
  void rehome(ProcId new_home);

 private:
  /// One invalidate/ack round trip over the reliable transport (the
  /// drop-safe branch of invalidate_all; detached, one per target).
  [[nodiscard]] sim::Task<> invalidate_one(ProcId from, ProcId target,
                                           std::shared_ptr<int> remaining,
                                           sim::OneShot<sim::Unit> all_acked);

  Runtime* rt_;
  ObjectId primary_;
  ProcId home_;
  unsigned object_words_;
  std::vector<bool> valid_;  // per processor; home entry is always true
};

}  // namespace cm::core
