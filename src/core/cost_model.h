// Runtime cost model, calibrated against the paper's Table 5 ("Approximate
// costs for migration in counting network", in cycles of the simulated RISC
// machine):
//
//   Category                     Cycles
//   Total time                      651
//     User code                     150
//     Network transit                17
//     Message overhead total        484
//       Receiver total              341
//         Copy packet (32 bytes)     76
//         Thread creation            66
//         Procedure linkage          66
//         Unmarshaling               51
//         Object ID translation      36
//         Scheduler                  36
//         Forwarding check           23
//         Allocate packet            16
//       Sender total                143
//         Procedure linkage          44
//         Allocate packet            35
//         Message send               23
//         Marshaling                 22
//
// Size-dependent costs (copy / marshal / unmarshal) are linear models fit so
// that an 8-word (32-byte) payload — the counting-network migration frame —
// reproduces the table entries exactly.
//
// Hardware-support variants follow §4 of the paper:
//  * with_hw_message(): register-mapped network interface (Henry-Joerg) —
//    copying drops to ~12 cycles flat, packets are composed in registers so
//    packet allocation disappears, and marshaling/unmarshaling cost halves.
//    (Removes ~20% of the software migration cost, as the paper estimates.)
//  * with_hw_oid(): J-Machine-style hardware global-object-ID translation —
//    the 36-cycle translation disappears (~6%).
#pragma once

#include "sim/types.h"

namespace cm::core {

using sim::Cycles;

struct CostModel {
  // --- receiver side ------------------------------------------------------
  Cycles copy_base = 12;        // copy packet: base ...
  Cycles copy_per_word = 8;     // ... + per word (76 @ 8 words)
  Cycles thread_creation = 66;  // create a thread to run the request
  Cycles recv_linkage = 66;     // procedure linkage at the receiver
  Cycles unmarshal_base = 19;   // unmarshal: base ...
  Cycles unmarshal_per_word = 4;  // ... + per word (51 @ 8 words)
  Cycles oid_translation = 36;  // global object-ID -> local pointer
  Cycles scheduler = 36;        // dispatch the handler / wake a thread
  Cycles forwarding_check = 23; // has the object moved?
  Cycles recv_alloc_packet = 16;

  // --- sender side ---------------------------------------------------------
  Cycles send_linkage = 44;
  Cycles send_alloc_packet = 35;
  Cycles message_send = 23;
  Cycles marshal_base = 6;      // marshal: base ...
  Cycles marshal_per_word = 2;  // ... + per word (22 @ 8 words)

  // --- misc ---------------------------------------------------------------
  Cycles locality_check = 3;  // per instance-method call; paid by every
                              // mechanism ("not an extra cost" for CM)
  unsigned header_words = 2;  // message header size

  /// Extra server-side cost of a general (thread-creating) RPC dispatch,
  /// per §4.3: Prelude's "general-purpose stubs for all remote calls" copy
  /// the arguments a second time when handing them to the per-call thread
  /// ("copying the arguments for the thread (which were already copied once
  /// before)") and run a generic dispatch. Our migration receive path
  /// follows the paper's §3.3 alternate implementation (unmarshal straight
  /// into the activation record), so it does not pay this. Short methods
  /// (Active-Messages fast path) skip it along with thread creation.
  /// The duplicate argument copy + re-walk is ordinary CPU memory work, so
  /// hardware network-interface support does not shrink it.
  Cycles general_dispatch = 240;
  [[nodiscard]] Cycles rpc_stub_extra(unsigned words) const {
    return general_dispatch + (copy_base + copy_per_word * words) +
           (unmarshal_base + unmarshal_per_word * words);
  }

  bool hw_message = false;  // register-mapped network interface
  bool hw_oid = false;      // hardware object-ID translation

  /// Words the register-mapped network interface can hold (Henry-Joerg map
  /// the NI into "ten additional registers in the register file"): packets
  /// beyond this spill back to memory-to-memory copying.
  unsigned ni_register_words = 10;

  // --- derived ------------------------------------------------------------
  [[nodiscard]] Cycles copy(unsigned words) const {
    if (!hw_message) return copy_base + copy_per_word * words;
    const unsigned spill = words > ni_register_words ? words - ni_register_words : 0;
    return copy_base + copy_per_word * spill;
  }
  [[nodiscard]] Cycles marshal(unsigned words) const {
    const Cycles c = marshal_base + marshal_per_word * words;
    return hw_message ? (c + 1) / 2 : c;
  }
  [[nodiscard]] Cycles unmarshal(unsigned words) const {
    const Cycles c = unmarshal_base + unmarshal_per_word * words;
    return hw_message ? (c + 1) / 2 : c;
  }
  [[nodiscard]] Cycles alloc_packet_send() const {
    return hw_message ? 0 : send_alloc_packet;
  }
  [[nodiscard]] Cycles alloc_packet_recv() const {
    return hw_message ? 0 : recv_alloc_packet;
  }
  [[nodiscard]] Cycles oid() const { return hw_oid ? 0 : oid_translation; }

  /// Sender-side total for a `words`-word payload (stub + marshal + launch).
  [[nodiscard]] Cycles sender_total(unsigned words) const {
    return send_linkage + marshal(words) + alloc_packet_send() + message_send;
  }

  /// Receiver-side total for a request carrying `words` payload words.
  /// `create_thread` is false on the short-method (Active-Messages-style)
  /// fast path and on reply delivery to a blocked thread.
  [[nodiscard]] Cycles receiver_total(unsigned words, bool create_thread) const {
    Cycles c = copy(words) + recv_linkage + unmarshal(words) + oid() +
               scheduler + forwarding_check + alloc_packet_recv();
    if (create_thread) c += thread_creation;
    return c;
  }

  /// Receiver-side total for a general RPC request (thread per call through
  /// the general-purpose stub path; see rpc_stub_extra).
  [[nodiscard]] Cycles receiver_total_rpc(unsigned words) const {
    return receiver_total(words, /*create_thread=*/true) +
           rpc_stub_extra(words);
  }

  /// Reply-delivery cost at the original caller. A reply is a message like
  /// any other ("the software overhead for sending a message dominates"):
  /// the handler copies the packet, unmarshals the results, and runs the
  /// scheduler + linkage to wake the blocked thread. It skips only thread
  /// creation, the forwarding check and OID translation.
  [[nodiscard]] Cycles reply_receive(unsigned words) const {
    return copy(words) + alloc_packet_recv() + unmarshal(words) + scheduler +
           recv_linkage;
  }

  // --- named variants ------------------------------------------------------
  [[nodiscard]] static CostModel software() { return CostModel{}; }
  [[nodiscard]] CostModel with_hw_message() const {
    CostModel m = *this;
    m.hw_message = true;
    return m;
  }
  [[nodiscard]] CostModel with_hw_oid() const {
    CostModel m = *this;
    m.hw_oid = true;
    return m;
  }
};

}  // namespace cm::core
