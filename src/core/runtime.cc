#include "core/runtime.h"

namespace cm::core {

// The three software paths below each run as ONE atomic CPU charge: a real
// message handler (or stub) runs to completion on its processor, so
// concurrent activations queue FCFS behind whole handlers rather than
// interleaving at instruction granularity. The per-category cycles are still
// recorded individually for the Table-5 breakdown.

sim::Task<> Runtime::receive_request(ProcId at, unsigned words,
                                     Dispatch how) {
  const bool create_thread = how != Dispatch::kShortMethod;
  if (create_thread) {
    if (sim::Tracer* tr = tracer()) {
      tr->record(sim::TraceEvent::kThreadCreate, at,
                 {{"continuation", how == Dispatch::kContinuation}});
    }
  }
  Breakdown& bd = mutable_stats().breakdown;
  bd.add(Category::kCopyPacket, cost_.copy(words));
  bd.add(Category::kRecvAllocPacket, cost_.alloc_packet_recv());
  bd.add(Category::kForwardingCheck, cost_.forwarding_check);
  bd.add(Category::kUnmarshal, cost_.unmarshal(words));
  bd.add(Category::kOidTranslation, cost_.oid());
  if (create_thread) bd.add(Category::kThreadCreation, cost_.thread_creation);
  bd.add(Category::kScheduler, cost_.scheduler);
  bd.add(Category::kRecvLinkage, cost_.recv_linkage);
  Cycles total = cost_.receiver_total(words, create_thread);
  if (how == Dispatch::kRpcThread) {
    bd.add(Category::kGeneralStub, cost_.rpc_stub_extra(words));
    total += cost_.rpc_stub_extra(words);
  }
  co_await machine_->compute(at, total);
}

sim::Task<> Runtime::receive_reply(ProcId at, unsigned words) {
  Breakdown& bd = mutable_stats().breakdown;
  bd.add(Category::kCopyPacket, cost_.copy(words));
  bd.add(Category::kUnmarshal, cost_.unmarshal(words));
  bd.add(Category::kScheduler, cost_.scheduler);
  co_await machine_->compute(at, cost_.reply_receive(words));
}

sim::Task<> Runtime::send_path(ProcId at, unsigned words) {
  Breakdown& bd = mutable_stats().breakdown;
  bd.add(Category::kSendLinkage, cost_.send_linkage);
  bd.add(Category::kMarshal, cost_.marshal(words));
  bd.add(Category::kSendAllocPacket, cost_.alloc_packet_send());
  bd.add(Category::kMessageSend, cost_.message_send);
  co_await machine_->compute(at, cost_.sender_total(words));
}

sim::Task<bool> Runtime::transfer_impl(ProcId src, ProcId dst, unsigned words,
                                       unsigned budget) {
  const unsigned total = words + cost_.header_words;
  mutable_stats().breakdown.add(Category::kNetworkTransit,
                       network_->latency(src, dst, total));
  if (reliable_ == nullptr) {
    if (ft_ != nullptr && (ft_->suspected(src) || ft_->suspected(dst))) {
      // Raw fire-and-forget sends have no timeout to cancel from: a send
      // touching a suspected NIC would simply never resume its awaiter.
      // Fail fast instead (the reliable path makes the same call inside
      // ReliableTransport::send).
      ++mutable_stats().delivery_failures;
      ++mutable_stats().ft_suspect_aborts;
      if (sim::Tracer* tr = tracer()) {
        tr->record(sim::TraceEvent::kFtAbort, src, {{"dst", dst}, {"why", 0}});
      }
      co_return false;
    }
    co_await sim::suspend_to([this, src, dst,
                              total](std::coroutine_handle<> h) {
      network_->send(src, dst, total, net::Traffic::kRuntime,
                     [h] { h.resume(); });
    });
    co_return true;
  }
  Cycles deadline = 0;
  if (ft_ != nullptr && ft_->send_deadline() != 0) {
    deadline = machine_->engine().now() + ft_->send_deadline();
  }
  co_return co_await reliable_->send(src, dst, total, budget, deadline);
}

sim::Task<> Runtime::evacuate(Ctx& ctx) {
  const ProcId from = ctx.proc;
  const ProcId to = ft_->evacuation_target(from);
  ++mutable_stats().ft_evacuations;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kFtEvacuate, from, {{"to", to}});
  }
  // The refuge processor restarts the activation from its coroutine frame
  // (host-side state survives a NIC death): a fresh thread plus a
  // scheduling pass, charged there.
  mutable_stats().breakdown.add(Category::kThreadCreation, cost_.thread_creation);
  mutable_stats().breakdown.add(Category::kScheduler, cost_.scheduler);
  co_await machine_->compute(to, cost_.thread_creation + cost_.scheduler);
  ctx.proc = to;
}

sim::Task<> Runtime::migrate(Ctx& ctx, ObjectId obj, unsigned live_words) {
  if (ft_ != nullptr && ft_->suspected(ctx.proc)) co_await evacuate(ctx);
  // The locality check is shared with ordinary instance-method dispatch.
  co_await charge(ctx.proc, cost_.locality_check, Category::kLocalityCheck);
  ProcId dest;
  if (locator_ == nullptr) {
    dest = objects_->home_of(obj);
  } else {
    dest = co_await locator_->resolve(ctx, obj);
  }
  if (dest == ctx.proc) {
    // Already local: the annotation costs nothing (paper §3.1).
    if (check::Checker* ck = checker()) {
      ck->on_object_access(ctx.proc, obj, objects_->home_of(obj),
                           /*write=*/false);
    }
    ++mutable_stats().migrations_local;
    co_return;
  }

  // Continuation client stub: marshal the live variables of this activation
  // and launch a single message. (§3.2: "the continuation procedure's body
  // is the continuation of the migrating procedure at the point of
  // migration; its arguments are the live variables at that point".)
  const ProcId from = ctx.proc;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kMigrateBegin, from,
               {{"obj", obj}, {"dest", dest}, {"words", live_words}});
  }
  co_await send_path(ctx.proc, live_words);
  const bool moved =
      co_await transfer_impl(ctx.proc, dest, live_words,
                             reliable_ ? reliable_cfg_.move_retry_budget : 0);
  if (!moved) {
    // Recovery path: the MOVE exhausted its retry budget, so the activation
    // stays where it is and subsequent accesses to the object go through
    // plain RPC at its home — the annotation still changes only
    // performance, never semantics, even on a faulty network. A late copy
    // of the MOVE is discarded at the destination by the reliable layer.
    ++mutable_stats().migration_fallbacks;
    if (sim::Tracer* tr = tracer()) {
      tr->record(sim::TraceEvent::kMigrateFallback, from,
                 {{"obj", obj}, {"dest", dest}});
    }
    co_return;
  }
  ++mutable_stats().migrations;
  mutable_stats().migrated_words += live_words;
  if (locator_ != nullptr) {
    // Chase forwarding pointers if the object moved while the continuation
    // was in flight; the activation lands wherever the object now lives.
    dest = co_await locator_->forward(obj, dest, live_words, from);
    if (check::Checker* ck = checker()) {
      // Synchronous after the chase: forward()'s claim is testable truth.
      ck->on_object_access(dest, obj, objects_->home_of(obj),
                           /*write=*/false);
    }
  }

  // Continuation server stub at the destination: unmarshal the live
  // variables into a fresh activation and a thread to run it. The original
  // thread at the source is destroyed (its linkage information travelled
  // with the message), so the eventual return short-circuits.
  co_await receive_request(dest, live_words, Dispatch::kContinuation);
  ++mutable_stats().threads_created;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kMigrateArrive, dest,
               {{"obj", obj}, {"from", from}, {"words", live_words}});
  }

  // The activation now runs at the data.
  ctx.proc = dest;
}

sim::Task<> Runtime::return_home(Ctx& ctx, ProcId origin, unsigned ret_words) {
  if (ft_ != nullptr && ft_->suspected(ctx.proc)) co_await evacuate(ctx);
  if (ctx.proc == origin) co_return;
  ++mutable_stats().replies;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kShortCircuitReply, ctx.proc,
               {{"origin", origin}, {"words", ret_words}});
  }
  co_await send_path(ctx.proc, ret_words);
  const bool delivered = co_await transfer(ctx.proc, origin, ret_words);
  if (!delivered && ft_ != nullptr) {
    // The short-circuit reply's source NIC died mid-send: the origin
    // reconstructs the result from the activation's frame, exactly as in
    // call()'s reply-recovery path. The effects already committed.
    ++mutable_stats().ft_recovered_replies;
    if (sim::Tracer* tr = tracer()) {
      tr->record(sim::TraceEvent::kFtReplyRecovered, origin,
                 {{"from", ctx.proc}});
    }
  }
  co_await receive_reply(origin, ret_words);
  ctx.proc = origin;
}

sim::Task<> Runtime::migrate_group(const std::vector<Ctx*>& group,
                                   ObjectId obj, unsigned live_words) {
  if (group.empty()) co_return;
  Ctx& top = *group.front();
  if (ft_ != nullptr && ft_->suspected(top.proc)) co_await evacuate(top);
  co_await charge(top.proc, cost_.locality_check, Category::kLocalityCheck);
  ProcId dest;
  if (locator_ == nullptr) {
    dest = objects_->home_of(obj);
  } else {
    dest = co_await locator_->resolve(top, obj);
  }
  if (dest == top.proc) {
    if (check::Checker* ck = checker()) {
      ck->on_object_access(top.proc, obj, objects_->home_of(obj),
                           /*write=*/false);
    }
    ++mutable_stats().migrations_local;
    co_return;
  }

  // One message carries the live words of every activation in the group;
  // marshaling/unmarshaling scale with the total, but the fixed per-message
  // costs are paid once — the point of multi-activation migration.
  const ProcId from = top.proc;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kMigrateBegin, from,
               {{"obj", obj},
                {"dest", dest},
                {"words", live_words},
                {"group", group.size()}});
  }
  co_await send_path(top.proc, live_words);
  const bool moved =
      co_await transfer_impl(top.proc, dest, live_words,
                             reliable_ ? reliable_cfg_.move_retry_budget : 0);
  if (!moved) {
    // Same recovery as single-activation migration: the whole group stays
    // put and later accesses are plain RPCs.
    ++mutable_stats().migration_fallbacks;
    if (sim::Tracer* tr = tracer()) {
      tr->record(sim::TraceEvent::kMigrateFallback, from,
                 {{"obj", obj}, {"dest", dest}});
    }
    co_return;
  }
  ++mutable_stats().migrations;
  mutable_stats().migrated_words += live_words;
  if (locator_ != nullptr) {
    dest = co_await locator_->forward(obj, dest, live_words, from);
    if (check::Checker* ck = checker()) {
      ck->on_object_access(dest, obj, objects_->home_of(obj),
                           /*write=*/false);
    }
  }
  co_await receive_request(dest, live_words, Dispatch::kContinuation);
  ++mutable_stats().threads_created;
  if (sim::Tracer* tr = tracer()) {
    tr->record(sim::TraceEvent::kMigrateArrive, dest,
               {{"obj", obj}, {"from", from}, {"words", live_words}});
  }

  for (Ctx* c : group) c->proc = dest;
}

}  // namespace cm::core
