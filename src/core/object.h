// Global object name space: every shared object has a global id and a home
// processor. On a real message-passing machine this mapping is the software
// global-object table whose translation cost Table 5 measures (and which the
// J-Machine provides in hardware); here it is also how the runtime decides
// whether an instance-method call is local.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace cm::core {

using ObjectId = std::uint32_t;

class ObjectSpace {
 public:
  /// Register a new object homed on `home`; returns its global id.
  ObjectId create(sim::ProcId home) {
    homes_.push_back(home);
    return static_cast<ObjectId>(homes_.size() - 1);
  }

  [[nodiscard]] sim::ProcId home_of(ObjectId id) const {
    assert(id < homes_.size());
    return homes_[id];
  }

  /// Rebind an object's home (object migration / Emerald-style mobility).
  void move(ObjectId id, sim::ProcId new_home) {
    assert(id < homes_.size());
    homes_[id] = new_home;
  }

  [[nodiscard]] std::size_t size() const noexcept { return homes_.size(); }

 private:
  std::vector<sim::ProcId> homes_;
};

}  // namespace cm::core
