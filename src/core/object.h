// Global object name space: every shared object has a global id and a home
// processor. On a real message-passing machine this mapping is the software
// global-object table whose translation cost Table 5 measures (and which the
// J-Machine provides in hardware); here it is the simulator's ground truth
// for where each object currently lives. How a processor *discovers* that
// location is a separate question: by default the runtime consults this
// table directly (an omniscient oracle, free of charge), and the `src/loc`
// subsystem replaces that oracle with directory shards, translation caches
// and forwarding chains that pay for every lookup.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace cm::core {

using ObjectId = std::uint32_t;

class ObjectSpace {
 public:
  /// Observer invoked on every `create`, so a location service can register
  /// directory entries for objects allocated after it was installed (e.g.
  /// B-tree nodes born in splits).
  using CreateHook = std::function<void(ObjectId, sim::ProcId)>;

  /// Register a new object homed on `home`; returns its global id.
  ObjectId create(sim::ProcId home) {
    homes_.push_back(home);
    const auto id = static_cast<ObjectId>(homes_.size() - 1);
    if (create_hook_) create_hook_(id, home);
    return id;
  }

  [[nodiscard]] sim::ProcId home_of(ObjectId id) const {
    check(id, "home_of");
    return homes_[id];
  }

  /// Rebind an object's home (object migration / Emerald-style mobility).
  void move(ObjectId id, sim::ProcId new_home) {
    check(id, "move");
    homes_[id] = new_home;
  }

  [[nodiscard]] std::size_t size() const noexcept { return homes_.size(); }

  void set_create_hook(CreateHook hook) { create_hook_ = std::move(hook); }

 private:
  /// An out-of-range ObjectId is always a caller bug (a stale or corrupted
  /// global id); aborting beats the silent out-of-bounds read a bare assert
  /// would permit in Release builds.
  void check(ObjectId id, const char* what) const {
    if (id >= homes_.size()) {
      std::fprintf(stderr,
                   "ObjectSpace::%s: object id %u out of range (size %zu)\n",
                   what, id, homes_.size());
      std::abort();
    }
  }

  std::vector<sim::ProcId> homes_;
  CreateHook create_hook_;
};

}  // namespace cm::core
