// The Prelude-style runtime: instance-method calls on global objects with a
// choice of remote-access mechanism per call site.
//
//  * RPC (§2.1): the calling thread blocks; client/server stubs marshal
//    arguments and results; the method body runs in a (possibly new) thread
//    at the object's home; two messages per call.
//
//  * Computation migration (§2.4/§3): `co_await ctx.migrate(obj, live_words)`
//    is the paper's program annotation. It is conditional on locality (free
//    if the object is already local), ships only the live variables of the
//    current activation in ONE message, and re-binds the activation's
//    processor so everything it does afterwards — including further
//    instance-method calls and further migrations — happens at the data.
//    When the activation finally returns, the reply goes directly from
//    wherever it ended up to its caller ("short-circuiting" the return path
//    through intermediate processors).
//
//  * Shared memory (§2.2) is provided by shmem::CoherentMemory; methods then
//    run on the caller's processor against coherently cached data, so the
//    runtime below is not involved in data movement.
//
// The embedding: a simulated thread is a coroutine and the coroutine frame
// is the activation record. `Ctx` carries the activation's current processor
// — migration mutates `ctx.proc`, which is exactly "continue executing this
// frame over there". Nested activations each get their own Ctx, so migrating
// a callee never moves its caller (single-activation migration); helpers for
// multi-activation migration move a parent Ctx along (§6 future work).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/checker.h"
#include "core/cost_model.h"
#include "core/ft.h"
#include "core/location.h"
#include "core/object.h"
#include "core/reliable.h"
#include "core/stats.h"
#include "net/network.h"
#include "sim/machine.h"
#include "sim/oneshot.h"
#include "sim/task.h"
#include "sim/tracer.h"
#include "sim/types.h"

namespace cm::core {

using sim::Cycles;
using sim::ProcId;

class Replicated;
class Runtime;

/// Per-activation execution context. `proc` is where the activation is
/// currently running; computation migration re-binds it.
struct Ctx {
  Runtime* rt = nullptr;
  ProcId proc = 0;

  Ctx(Runtime* r, ProcId p) : rt(r), proc(p) {}
};

/// Per-call options.
struct CallOpts {
  unsigned arg_words = 4;   // request payload
  unsigned ret_words = 2;   // reply payload
  bool short_method = false;  // Active-Messages-style fast path: the paper's
                              // optimisation that skips thread creation for
                              // short methods (e.g. remote record access)
};

class Runtime {
 public:
  Runtime(sim::Machine& machine, net::Network& network, ObjectSpace& objects,
          CostModel cost)
      : machine_(&machine), network_(&network), objects_(&objects),
        cost_(cost), stats_shards_(machine.engine().shards()) {}

  [[nodiscard]] sim::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] ObjectSpace& objects() noexcept { return *objects_; }
  [[nodiscard]] const CostModel& cost() const noexcept { return cost_; }

  /// Whole-machine runtime counters (all shard slices merged).
  [[nodiscard]] const RtStats& stats() const noexcept {
    merged_stats_ = RtStats{};
    for (const RtStats& s : stats_shards_) merged_stats_.add(s);
    return merged_stats_;
  }

  /// The executing shard's slice of the counters: runtime layers increment
  /// through here so shards never write each other's cache lines (and so
  /// counts attribute deterministically regardless of shard count).
  [[nodiscard]] RtStats& mutable_stats() noexcept {
    return stats_shards_[machine_->engine().current_shard()];
  }

  /// The engine's tracer, or null when tracing is disabled.
  [[nodiscard]] sim::Tracer* tracer() const noexcept {
    return machine_->engine().tracer();
  }

  /// The engine's invariant checker, or null when checking is disabled.
  [[nodiscard]] check::Checker* checker() const noexcept {
    return machine_->engine().checker();
  }

  /// Charge cycles on processor `p`, attributed to `cat`.
  [[nodiscard]] auto charge(ProcId p, Cycles cycles, Category cat) {
    mutable_stats().breakdown.add(cat, cycles);
    return machine_->compute(p, cycles);
  }

  /// Charge `cycles` of application work on the activation's current
  /// processor (Table 5 "User code").
  [[nodiscard]] auto compute(Ctx& ctx, Cycles cycles) {
    return charge(ctx.proc, cycles, Category::kUserCode);
  }

  /// Install the reliable transport (seq/ack/retransmit/dedup) over the
  /// current network — required whenever the network injects faults. With
  /// no transport installed, transfers use raw fire-and-forget sends: the
  /// event sequence is bit-identical to the pre-reliability runtime, so
  /// every fault-free figure is unchanged.
  void enable_reliability(ReliableConfig cfg = {}) {
    // The transport keeps global per-peer sequence state; chaos runs are
    // restricted to a single shard, whose slice it charges directly.
    assert(machine_->engine().shards() == 1 &&
           "reliable transport requires a single-shard engine");
    reliable_cfg_ = cfg;
    reliable_ = std::make_unique<ReliableTransport>(
        machine_->engine(), *network_, stats_shards_[0], cfg);
    if (ft_ != nullptr) reliable_->set_fault_tolerance(ft_);
  }
  [[nodiscard]] bool reliability_enabled() const noexcept {
    return reliable_ != nullptr;
  }

  /// Install a location service (loc::Locator). With none installed (the
  /// default), every dispatch consults the ObjectSpace oracle directly and
  /// the event sequence is bit-identical to the pre-locator runtime.
  void set_locator(LocationService* loc) noexcept { locator_ = loc; }
  [[nodiscard]] LocationService* locator() const noexcept { return locator_; }

  /// Install a fault-tolerance service (ft::FtLayer). With none installed
  /// (the default), no processor is ever suspected, no send ever aborts and
  /// every code path is bit-identical to the crash-free runtime. The
  /// suspicion source is forwarded to the reliable transport whenever both
  /// are present, in either installation order.
  void set_fault_tolerance(FaultTolerance* ft) noexcept {
    ft_ = ft;
    if (reliable_ != nullptr) reliable_->set_fault_tolerance(ft);
  }
  [[nodiscard]] FaultTolerance* fault_tolerance() const noexcept {
    return ft_;
  }

  /// Replica registry for crash recovery: recovery promotes a valid
  /// core::Replicated copy instead of restoring from backup when a primary's
  /// home fail-stops. Replicated instances register themselves on
  /// construction; registration order is the deterministic scan order.
  void register_replicated(Replicated* r) { replicated_.push_back(r); }
  void unregister_replicated(Replicated* r) {
    std::erase(replicated_, r);
  }
  [[nodiscard]] const std::vector<Replicated*>& replicated_objects()
      const noexcept {
    return replicated_;
  }

  /// Awaitable runtime message src -> dst carrying `words` payload words
  /// (header added here); resumes at delivery time. Returns true once
  /// delivered — always, on this unbounded-retry path; only the bounded
  /// migration MOVE path can report failure.
  [[nodiscard]] sim::Task<bool> transfer(ProcId src, ProcId dst,
                                         unsigned words) {
    return transfer_impl(src, dst, words, /*budget=*/0);
  }

  /// THE ANNOTATION (paper §3.1): migrate the current activation to `obj`'s
  /// processor, shipping `live_words` words of live variables. No-op when
  /// the object is already local — the annotation affects performance only,
  /// never semantics, and costs local accesses nothing.
  [[nodiscard]] sim::Task<> migrate(Ctx& ctx, ObjectId obj,
                                    unsigned live_words);

  /// Finish a migratory procedure: if the activation ended away from
  /// `origin`, send its result (`ret_words`) back in a single message — the
  /// short-circuit return, paid once no matter how many hops the activation
  /// made — and re-bind the context to `origin`. Free if it never moved.
  [[nodiscard]] sim::Task<> return_home(Ctx& ctx, ProcId origin,
                                        unsigned ret_words);

  /// Future-work extension (§6): migrate a group of activations together
  /// (e.g. caller + callee). Ships the summed live words in one message and
  /// re-binds every context in `group` to the destination.
  [[nodiscard]] sim::Task<> migrate_group(const std::vector<Ctx*>& group,
                                          ObjectId obj, unsigned live_words);

  /// Invoke an instance method on `obj`. The body always executes at the
  /// object's home processor (Prelude semantics); if the caller is not
  /// there, this is an RPC. `body(Ctx&)` receives the method activation's
  /// context — if the body migrates (or calls things that do), the reply is
  /// sent from wherever the activation finished, directly to the caller.
  template <class F>
  [[nodiscard]] auto call(Ctx& caller, ObjectId obj, CallOpts opts, F body)
      -> sim::Task<typename std::invoke_result_t<F, Ctx&>::value_type> {
    using R = typename std::invoke_result_t<F, Ctx&>::value_type;
    static_assert(!std::is_void_v<R>,
                  "method bodies return a value; use call<Unit>");

    for (unsigned attempt = 0;; ++attempt) {
      if (ft_ != nullptr) {
        // Typed failure surface: a lost object can never serve the call.
        if (ft_->object_lost(obj)) throw ObjectLostError(obj);
        // An activation stranded on a dead processor restarts on a live
        // one before doing anything else.
        if (ft_->suspected(caller.proc)) co_await evacuate(caller);
      }
      // Every instance-method call checks locality (so this is not an extra
      // cost for computation migration).
      co_await charge(caller.proc, cost_.locality_check,
                      Category::kLocalityCheck);
      ProcId home;
      if (locator_ == nullptr) {
        home = objects_->home_of(obj);
      } else {
        home = co_await locator_->resolve(caller, obj);
      }

      if (home == caller.proc) {
        if (check::Checker* ck = checker()) {
          // The dispatcher claims locality, so the body is about to touch
          // the object's state on this processor: the claim must be ground
          // truth. Sound here because nothing suspends between the
          // resolution's own truth test and this line.
          ck->on_object_access(caller.proc, obj, objects_->home_of(obj),
                               /*write=*/true);
        }
        ++mutable_stats().local_calls;
        Ctx callee{this, home};
        co_return co_await body(callee);
      }

      // ---- client stub ----
      ++mutable_stats().remote_calls;
      if (sim::Tracer* tr = tracer()) {
        tr->record(sim::TraceEvent::kRpcIssue, caller.proc,
                   {{"obj", obj}, {"home", home}, {"words", opts.arg_words}});
      }
      co_await send_path(caller.proc, opts.arg_words);
      const ProcId reply_to = caller.proc;
      const bool arrived =
          co_await transfer(caller.proc, home, opts.arg_words);
      if (!arrived) {
        // Only reachable with a FaultTolerance service installed: the
        // request's peer was suspected (or the send deadline expired)
        // before delivery. Wait for the object's recovery to commit, then
        // re-issue the whole call — the body never started, so the retry
        // cannot double-execute anything.
        ++mutable_stats().ft_call_retries;
        if (ft_ == nullptr || attempt + 1 >= ft_->max_call_retries()) {
          throw FtError("call on object " + std::to_string(obj) +
                        " exhausted its retry budget");
        }
        co_await ft_->await_object(obj);
        continue;
      }
      if (locator_ != nullptr) {
        // The hint we resolved may already be stale: chase the forwarding
        // chain until the request reaches the object's current host.
        home = co_await locator_->forward(obj, home, opts.arg_words,
                                          caller.proc);
        // forward() bails out mid-chase when the object's recovery declares
        // it lost; surface the typed failure before the locality check
        // below could misread the unreachable binding.
        if (ft_ != nullptr && ft_->object_lost(obj)) {
          throw ObjectLostError(obj);
        }
        if (check::Checker* ck = checker()) {
          // forward() just returned the object's current host with no
          // suspension since, so its claim can be tested against ground
          // truth here. (Under the oracle there is no equivalent promise:
          // the body executes at the home fixed at resolution time —
          // Prelude dispatch semantics — even if the object was attracted
          // away mid-flight.)
          ck->on_object_access(home, obj, objects_->home_of(obj),
                               /*write=*/true);
        }
      }
      std::uint64_t check_call = 0;
      if (check::Checker* ck = checker()) {
        // Replied-exactly-once window, opened once the request has really
        // arrived (an aborted request transfer is a retry, not a lost
        // reply): the short-circuit return must deliver this call's reply
        // once, from wherever the activation ends up.
        check_call = ck->on_call_begin(reply_to, obj);
      }

      // ---- server stub (now executing at `home`) ----
      co_await receive_request(home, opts.arg_words,
                               opts.short_method ? Dispatch::kShortMethod
                                                 : Dispatch::kRpcThread);
      if (opts.short_method) {
        ++mutable_stats().fast_path_calls;
      } else {
        ++mutable_stats().threads_created;
      }

      Ctx callee{this, home};
      std::optional<R> result;
      try {
        result.emplace(co_await body(callee));
      } catch (...) {
        // A typed ft failure unwinding out of a nested call: the thrown
        // error replaces this call's reply, so excuse its window.
        if (check::Checker* ck = checker()) {
          ck->on_call_abandoned(check_call);
        }
        throw;
      }

      // ---- reply: sent from wherever the method activation ended up. If
      // it migrated, this short-circuits straight back to the caller. ----
      ++mutable_stats().replies;
      co_await send_path(callee.proc, opts.ret_words);
      const bool replied =
          co_await transfer(callee.proc, reply_to, opts.ret_words);
      if (!replied && ft_ != nullptr) {
        // The activation's processor lost its NIC after the body's effects
        // committed (host state survives a NIC death). Re-running the body
        // would double-apply those effects; instead the caller waits out
        // the object's recovery and reconstructs the result — exactly-once
        // semantics even across the crash.
        ++mutable_stats().ft_recovered_replies;
        if (sim::Tracer* tr = tracer()) {
          tr->record(sim::TraceEvent::kFtReplyRecovered, reply_to,
                     {{"obj", obj}, {"from", callee.proc}});
        }
        co_await ft_->await_object(obj);
      }

      // ---- back at the caller: deliver the reply to the blocked thread --
      co_await receive_reply(reply_to, opts.ret_words);
      if (check::Checker* ck = checker()) {
        ck->on_reply(check_call, reply_to);
      }
      if (sim::Tracer* tr = tracer()) {
        tr->record(sim::TraceEvent::kRpcReply, reply_to,
                   {{"obj", obj}, {"from", callee.proc}});
      }
      co_return std::move(*result);
    }
  }

 private:
  /// How an incoming request is dispatched at the receiver.
  enum class Dispatch {
    kShortMethod,   // Active-Messages fast path: no thread
    kRpcThread,     // general-purpose stub, thread per call (§4.3)
    kContinuation,  // migration: unmarshal into the activation (§3.3)
  };
  /// Receiver-side software path for an incoming request message.
  [[nodiscard]] sim::Task<> receive_request(ProcId at, unsigned words,
                                            Dispatch how);
  /// Receiver-side path for a reply delivered to a blocked thread.
  [[nodiscard]] sim::Task<> receive_reply(ProcId at, unsigned words);
  /// Sender-side stub path (linkage + marshal + packet + launch), atomic.
  [[nodiscard]] sim::Task<> send_path(ProcId at, unsigned words);
  /// Transfer with an attempt budget (0 = unbounded) under the reliable
  /// transport; raw send when reliability is disabled.
  [[nodiscard]] sim::Task<bool> transfer_impl(ProcId src, ProcId dst,
                                              unsigned words, unsigned budget);
  /// Rebind an activation stranded on a suspected processor to its
  /// evacuation target, charging thread re-creation there. Requires ft_.
  [[nodiscard]] sim::Task<> evacuate(Ctx& ctx);

  sim::Machine* machine_;
  net::Network* network_;
  ObjectSpace* objects_;
  CostModel cost_;
  std::vector<RtStats> stats_shards_;    // one slice per engine shard
  mutable RtStats merged_stats_;         // snapshot storage for stats()
  ReliableConfig reliable_cfg_;
  std::unique_ptr<ReliableTransport> reliable_;
  LocationService* locator_ = nullptr;   // null = oracle mode
  FaultTolerance* ft_ = nullptr;         // null = crash-free machine
  std::vector<Replicated*> replicated_;  // replica registry for recovery
};

}  // namespace cm::core
