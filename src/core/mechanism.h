// Remote-access mechanism selection — "programmers (or compilers) should be
// able to choose the option that is best for a specific application on a
// specific architecture" (§1). A Scheme bundles a mechanism with the
// hardware-support and replication options the paper's tables enumerate.
#pragma once

#include <string>

#include "core/cost_model.h"

namespace cm::core {

enum class Mechanism {
  kRpc,           // remote procedure call (§2.1)
  kMigration,     // computation migration (§2.4) — "CP" in the tables
  kSharedMemory,  // cache-coherent shared memory / data migration (§2.2)
  kObjectMigration,  // Emerald-style object mobility [JLHB88] — the
                     // comparison §4 wished for ("our group has not
                     // finished implementing object migration in Prelude")
  kThreadMigration,  // whole-thread migration (§2.3): like computation
                     // migration but every hop ships the entire thread
                     // state, not just the top activation's live variables
};

[[nodiscard]] constexpr const char* mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::kRpc: return "RPC";
    case Mechanism::kMigration: return "CP";
    case Mechanism::kSharedMemory: return "SM";
    case Mechanism::kObjectMigration: return "OBJ";
    case Mechanism::kThreadMigration: return "TM";
  }
  return "?";
}

struct Scheme {
  Mechanism mechanism = Mechanism::kRpc;
  bool hw_support = false;   // register-mapped NI + hardware OID translation
  bool replication = false;  // software replication of the hot object (root)
  bool hw_oid_only = false;  // J-Machine GOID translation alone, without the
                             // register-mapped NI — isolates the translation
                             // axis for the location-subsystem ablation

  [[nodiscard]] CostModel cost_model() const {
    CostModel m = CostModel::software();
    if (hw_support) m = m.with_hw_message().with_hw_oid();
    if (hw_oid_only) m = m.with_hw_oid();
    return m;
  }

  /// Table-style label, e.g. "CP w/repl. & HW".
  [[nodiscard]] std::string name() const {
    std::string s = mechanism_name(mechanism);
    if (replication && hw_support) {
      s += " w/repl. & HW";
    } else if (replication) {
      s += " w/repl.";
    } else if (hw_support) {
      s += " w/HW";
    }
    if (hw_oid_only && !hw_support) s += " w/hwOID";
    return s;
  }
};

}  // namespace cm::core
