#include "core/mobile.h"

namespace cm::core {

sim::Task<> MobileObject::attract(Ctx& ctx) {
  const CostModel& c = rt_->cost();
  co_await rt_->charge(ctx.proc, c.locality_check, Category::kLocalityCheck);
  if (home() == ctx.proc) co_return;

  if (LocationService* loc = rt_->locator()) {
    // Distributed mode: no cross-processor lock object exists. The object's
    // directory shard serialises movers, and the departing host leaves a
    // forwarding pointer behind for requests still in flight.
    const bool moved = co_await loc->move_object(ctx, id_, size_words_);
    if (moved) {
      ++moves_;
      ++rt_->mutable_stats().object_moves;
      rt_->mutable_stats().moved_object_words += size_words_;
    }
    co_return;
  }

  // One mover at a time; re-check after the lock (someone may have dragged
  // the object here, or elsewhere, while we waited). The transfer_lock_ is
  // itself an oracle — a zero-cost globally-visible mutex — matching the
  // ObjectSpace oracle this mode runs against.
  check::Checker* ck = rt_->checker();
  if (ck != nullptr) {
    ck->on_lock_attempt(&ctx, &transfer_lock_, "MobileObject.transfer_lock");
  }
  co_await transfer_lock_.lock();
  if (ck != nullptr) {
    ck->on_lock_acquired(&ctx, &transfer_lock_, "MobileObject.transfer_lock");
  }
  const ProcId cur = home();
  if (cur == ctx.proc) {
    // Release hook before unlock(): unlock hands the mutex to the next
    // waiter synchronously, so the checker must see our release first.
    if (ck != nullptr) ck->on_lock_released(&ctx, &transfer_lock_);
    transfer_lock_.unlock();
    co_return;
  }
  if (ck != nullptr) ck->on_move_begin(id_, ctx.proc);
  ++moves_;
  ++rt_->mutable_stats().object_moves;
  rt_->mutable_stats().moved_object_words += size_words_;

  // Control request to the object's current home...
  co_await rt_->charge(ctx.proc, c.sender_total(1), Category::kObjectMove);
  co_await rt_->transfer(ctx.proc, cur, 1);
  // ... which packs up the object: unbind it from the local object table,
  // leave a forwarding address (Emerald-style), marshal the state ...
  co_await rt_->charge(cur, c.receiver_total(1, false) + c.oid_translation,
                       Category::kObjectMove);
  co_await rt_->charge(cur, c.sender_total(size_words_),
                       Category::kObjectMove);
  co_await rt_->transfer(cur, ctx.proc, size_words_);
  // ... and the receiver installs it: a full software reception (a thread
  // runs the installer), plus rebinding the global object table entry.
  co_await rt_->charge(ctx.proc,
                       c.receiver_total(size_words_, /*create_thread=*/true) +
                           c.oid_translation,
                       Category::kObjectMove);
  rt_->objects().move(id_, ctx.proc);
  if (ck != nullptr) {
    ck->on_move_commit(id_, cur, ctx.proc);
    ck->on_move_end(id_);
    ck->on_lock_released(&ctx, &transfer_lock_);
  }
  transfer_lock_.unlock();
}

}  // namespace cm::core
