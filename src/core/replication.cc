#include "core/replication.h"

#include <memory>

namespace cm::core {

Replicated::Replicated(Runtime& rt, ObjectId primary, unsigned object_words)
    : rt_(&rt),
      primary_(primary),
      home_(rt.objects().home_of(primary)),
      object_words_(object_words),
      valid_(rt.machine().size(), false) {
  valid_[home_] = true;
  rt.register_replicated(this);
}

Replicated::~Replicated() { rt_->unregister_replicated(this); }

sim::Task<> Replicated::ensure(Ctx& ctx) {
  const ProcId p = ctx.proc;
  co_await rt_->charge(p, rt_->cost().locality_check,
                       Category::kLocalityCheck);
  if (p == home_ || valid_[p]) {
    ++rt_->mutable_stats().replica_hits;
    co_return;
  }
  if (FaultTolerance* ft = rt_->fault_tolerance();
      ft != nullptr && ft->suspected(home_)) {
    // The primary's host is dead: wait for its recovery to promote a copy
    // (or restore one), then fetch from wherever it re-homed.
    co_await ft->await_object(primary_);
    home_ = rt_->objects().home_of(primary_);
    if (p == home_ || valid_[p]) {
      ++rt_->mutable_stats().replica_hits;
      co_return;
    }
  }
  ++rt_->mutable_stats().replica_fetches;
  if (sim::Tracer* tr = rt_->tracer()) {
    tr->record(sim::TraceEvent::kReplicaFetch, p,
               {{"obj", primary_}, {"home", home_}});
  }

  const CostModel& c = rt_->cost();
  // Fetch request (short message) ...
  co_await rt_->charge(p, c.sender_total(1), Category::kReplication);
  co_await rt_->transfer(p, home_, 1);
  // ... served on the primary's processor without creating a thread (a
  // short method in the paper's sense) ...
  co_await rt_->charge(home_, c.receiver_total(1, /*create_thread=*/false),
                       Category::kReplication);
  // ... and the object's contents come back.
  co_await rt_->charge(home_, c.sender_total(object_words_),
                       Category::kReplication);
  co_await rt_->transfer(home_, p, object_words_);
  co_await rt_->charge(p, c.reply_receive(object_words_),
                       Category::kReplication);
  valid_[p] = true;
}

void Replicated::rebind(ObjectId new_primary) {
  primary_ = new_primary;
  home_ = rt_->objects().home_of(new_primary);
  valid_.assign(valid_.size(), false);
  valid_[home_] = true;
}

void Replicated::rehome(ProcId new_home) {
  home_ = new_home;
  valid_[new_home] = true;
}

sim::Task<> Replicated::invalidate_all(Ctx& ctx) {
  const CostModel& c = rt_->cost();
  FaultTolerance* ft = rt_->fault_tolerance();
  std::vector<ProcId> targets;
  for (ProcId p = 0; p < static_cast<ProcId>(valid_.size()); ++p) {
    if (p == home_ || !valid_[p]) continue;
    if (ft != nullptr && ft->suspected(p)) {
      // A dead holder can neither serve its copy nor ack an invalidation:
      // drop it from the valid set without messaging it (the gathered-ack
      // barrier below would otherwise never resolve).
      valid_[p] = false;
      continue;
    }
    targets.push_back(p);
  }
  if (targets.empty()) co_return;
  rt_->mutable_stats().replica_invalidations += targets.size();
  if (sim::Tracer* tr = rt_->tracer()) {
    tr->record(sim::TraceEvent::kReplicaInvalidate, ctx.proc,
               {{"obj", primary_}, {"count", targets.size()}});
  }

  // Broadcast invalidations from the writer's processor and gather acks.
  auto remaining = std::make_shared<int>(static_cast<int>(targets.size()));
  sim::OneShot<sim::Unit> all_acked;
  if (rt_->reliability_enabled()) {
    // Faulty network: raw fire-and-forget sends can drop an invalidation
    // or its ack, stranding this barrier (and the writer's call) forever.
    // Ride the reliable transport instead — unbounded retransmission
    // guarantees every round trip completes. Fault-free runs never take
    // this branch, so their event sequence is unchanged.
    for (const ProcId t : targets) {
      valid_[t] = false;
      co_await rt_->charge(ctx.proc, c.sender_total(1),
                           Category::kReplication);
      sim::detach(invalidate_one(ctx.proc, t, remaining, all_acked));
    }
    co_await all_acked.get();
    co_await rt_->charge(ctx.proc, c.reply_receive(1),
                         Category::kReplication);
    co_return;
  }
  for (const ProcId t : targets) {
    valid_[t] = false;
    co_await rt_->charge(ctx.proc, c.sender_total(1), Category::kReplication);
    // Raw sends are safe on this branch only: reliability_enabled() runs
    // return above, so reaching here means no FaultPlan is installed and
    // the network is lossless by construction (the PR 9 bug lived in
    // taking this path under faults).
    // simlint: allow SS002
    rt_->network().send(
        ctx.proc, t, 1 + c.header_words, net::Traffic::kRuntime,
        [this, t, from = ctx.proc, remaining, all_acked, &c] {
          // At the replica holder: cheap handler, then ack.
          rt_->machine().exec(
              t, c.receiver_total(1, false),
              [this, t, from, remaining, all_acked, &c] {
                // Ack on the same lossless-by-construction branch.
                // simlint: allow SS002
                rt_->network().send(t, from, 1 + c.header_words,
                                    net::Traffic::kRuntime,
                                    [remaining, all_acked] {
                                      if (--*remaining == 0) {
                                        all_acked.set(sim::Unit{});
                                      }
                                    });
              });
        });
  }
  co_await all_acked.get();
  co_await rt_->charge(ctx.proc, c.reply_receive(1), Category::kReplication);
}

sim::Task<> Replicated::invalidate_one(ProcId from, ProcId target,
                                       std::shared_ptr<int> remaining,
                                       sim::OneShot<sim::Unit> all_acked) {
  const CostModel& c = rt_->cost();
  co_await rt_->transfer(from, target, 1);
  co_await rt_->charge(target, c.receiver_total(1, /*create_thread=*/false),
                       Category::kReplication);
  co_await rt_->transfer(target, from, 1);
  if (--*remaining == 0) all_acked.set(sim::Unit{});
}

}  // namespace cm::core
