#include "core/adaptive.h"

#include <algorithm>

namespace cm::core {

void AdaptiveChooser::record(ObjectId obj, sim::ProcId accessor, bool write) {
  Profile& p = profiles_[obj];
  ++p.accesses;
  if (write) ++p.writes;
  ++p.by_accessor[accessor];
  if (accessor != p.last_accessor) {
    ++p.runs;
    p.last_accessor = accessor;
  }
}

void AdaptiveChooser::record_bounce(ObjectId obj) {
  ++profiles_[obj].bounces;
}

const AdaptiveChooser::Profile* AdaptiveChooser::find(ObjectId obj) const {
  const auto it = profiles_.find(obj);
  return it == profiles_.end() ? nullptr : &it->second;
}

std::uint64_t AdaptiveChooser::accesses(ObjectId obj) const {
  const Profile* p = find(obj);
  return p == nullptr ? 0 : p->accesses;
}

double AdaptiveChooser::write_ratio(ObjectId obj) const {
  const Profile* p = find(obj);
  if (p == nullptr || p->accesses == 0) return 0.0;
  return static_cast<double>(p->writes) / static_cast<double>(p->accesses);
}

double AdaptiveChooser::avg_run_length(ObjectId obj) const {
  const Profile* p = find(obj);
  if (p == nullptr || p->runs == 0) return 0.0;
  return static_cast<double>(p->accesses) / static_cast<double>(p->runs);
}

double AdaptiveChooser::dominant_share(ObjectId obj) const {
  const Profile* p = find(obj);
  if (p == nullptr || p->accesses == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [proc, count] : p->by_accessor) {
    best = std::max(best, count);
  }
  return static_cast<double>(best) / static_cast<double>(p->accesses);
}

double AdaptiveChooser::bounce_rate(ObjectId obj) const {
  const Profile* p = find(obj);
  if (p == nullptr || p->accesses == 0) return 0.0;
  return static_cast<double>(p->bounces) / static_cast<double>(p->accesses);
}

Mechanism AdaptiveChooser::recommend(ObjectId obj, unsigned frame_words,
                                     unsigned object_words) const {
  const Profile* p = find(obj);
  // No history yet: computation migration is the paper's general-purpose
  // traversal mechanism and is free when the object turns out to be local.
  if (p == nullptr || p->accesses < 8) return Mechanism::kMigration;

  // §2.4: huge live state makes migration "fairly expensive" — but only
  // prefer RPC if moving the object instead is not clearly better.
  const bool huge_frame = frame_words >= tunables_.frame_words_rpc_cutoff;

  // Observed ping-pong: requests keep landing on stale hosts and chasing
  // forwarding pointers, so moving the object chases its own tail. This
  // signal comes from the location subsystem and vetoes object migration
  // outright.
  const bool ping_pongs = bounce_rate(obj) > tunables_.bounce_rate_cap;

  // One processor doing (nearly) all the accessing: move the object to it
  // once, Emerald-style — unless the object dwarfs the traffic it saves.
  if (!ping_pongs && dominant_share(obj) >= tunables_.dominant_accessor_share &&
      object_words <= 16 * frame_words) {
    return Mechanism::kObjectMigration;
  }

  // §2.2: rarely-written data is what hardware replication is for. Without
  // coherent-memory hardware, migrating the computation is still the
  // cheapest read path (one message per access run instead of RPC's two
  // per access).
  if (write_ratio(obj) <= tunables_.read_mostly_threshold) {
    return tunables_.allow_shared_memory ? Mechanism::kSharedMemory
                                         : Mechanism::kMigration;
  }

  if (huge_frame) return Mechanism::kRpc;

  // Write-shared, multi-accessor state with real access runs: the paper's
  // case for computation migration.
  if (avg_run_length(obj) >= tunables_.run_length_for_migration) {
    return Mechanism::kMigration;
  }
  // Short runs on a tiny object: moving the object is as cheap as moving
  // the computation, and it spreads the handling across the accessors
  // instead of serialising continuation receptions at one home.
  if (!ping_pongs && object_words <= 2 * frame_words) {
    return Mechanism::kObjectMigration;
  }
  return frame_words < tunables_.frame_words_rpc_cutoff ? Mechanism::kMigration
                                                        : Mechanism::kRpc;
}

bool set_tunable(AdaptiveChooser::Tunables& t, std::string_view key,
                 double value) {
  if (key == "read_mostly_threshold") {
    t.read_mostly_threshold = value;
  } else if (key == "dominant_accessor_share") {
    t.dominant_accessor_share = value;
  } else if (key == "run_length_for_migration") {
    t.run_length_for_migration = value;
  } else if (key == "frame_words_rpc_cutoff") {
    t.frame_words_rpc_cutoff = static_cast<unsigned>(value);
  } else if (key == "allow_shared_memory") {
    t.allow_shared_memory = value != 0.0;
  } else if (key == "bounce_rate_cap") {
    t.bounce_rate_cap = value;
  } else {
    return false;
  }
  return true;
}

}  // namespace cm::core
