// Object-location service interface. The runtime's default behaviour is the
// oracle: `ObjectSpace::home_of` answers instantly and for free, and
// `ObjectSpace::move` updates every processor's view at once. A
// LocationService replaces that oracle with a mechanistic protocol — the
// concrete implementation lives in `src/loc` (directory shards, bounded
// translation caches, Emerald-style forwarding chains). `Runtime` and
// `MobileObject` hold a nullable pointer: with no service installed they
// run the oracle code paths bit-for-bit, which is what keeps the paper's
// figures reproducible.
#pragma once

#include "core/object.h"
#include "sim/task.h"
#include "sim/types.h"

namespace cm::core {

struct Ctx;  // defined in core/runtime.h

class LocationService {
 public:
  virtual ~LocationService() = default;

  /// Best-known current location of `obj` as seen from `ctx.proc`: the
  /// local table if the object is here, else the translation cache, else a
  /// directory-shard query (real messages). Charges translation cycles;
  /// never draws RNG. The answer may already be stale when used — senders
  /// follow up with `forward`.
  [[nodiscard]] virtual sim::Task<sim::ProcId> resolve(Ctx& ctx,
                                                       ObjectId obj) = 0;

  /// A `words`-word request for `obj` just landed at `at`. If the object
  /// has moved on, bounce the request along forwarding pointers until it
  /// reaches the object, compressing the chain and refreshing `requester`'s
  /// cache on success. Returns the processor where the request finally
  /// landed (== `at` when the hint was good).
  [[nodiscard]] virtual sim::Task<sim::ProcId> forward(ObjectId obj,
                                                       sim::ProcId at,
                                                       unsigned words,
                                                       sim::ProcId requester)
      = 0;

  /// Move `obj` (shipping `size_words` of state) to `ctx.proc`, serialised
  /// through the object's directory shard — the distributed replacement for
  /// MobileObject's cross-processor transfer lock. Returns true if this
  /// call actually moved the object (false when a racing mover already
  /// brought it here).
  [[nodiscard]] virtual sim::Task<bool> move_object(Ctx& ctx, ObjectId obj,
                                                    unsigned size_words) = 0;
};

}  // namespace cm::core
