// FIFO mutex for simulated threads. Used for node-level locking in the
// message-passing (RPC / computation-migration) runtime, where a lock
// co-locates with its object: acquiring it is a local operation at the
// object's home, so the simulation cost is just blocking (the coherence-level
// SpinLock in shmem/sync.h is its shared-memory counterpart and does generate
// traffic).
#pragma once

#include <cassert>
#include <coroutine>
#include <deque>

namespace cm::sim {

class AsyncMutex {
 public:
  AsyncMutex() = default;
  AsyncMutex(const AsyncMutex&) = delete;
  AsyncMutex& operator=(const AsyncMutex&) = delete;

  /// Awaitable acquire; suspends FIFO when contended.
  [[nodiscard]] auto lock() {
    struct Awaiter {
      AsyncMutex* m;
      bool await_ready() noexcept {
        if (!m->held_) {
          m->held_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { m->waiters_.push_back(h); }
      void await_resume() noexcept {}
    };
    return Awaiter{this};
  }

  /// Release; if a waiter exists, ownership transfers to it and it resumes
  /// immediately (same simulated instant).
  void unlock() {
    assert(held_);
    if (waiters_.empty()) {
      held_ = false;
      return;
    }
    auto h = waiters_.front();
    waiters_.pop_front();
    h.resume();  // held_ stays true: handed off
  }

  [[nodiscard]] bool held() const noexcept { return held_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiters_.size(); }

 private:
  bool held_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace cm::sim
