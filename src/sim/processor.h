// A simulated processor: one CPU executing simulated-thread work FCFS.
//
// We model CPU occupancy with a virtual finish time (`free_at`): a request
// arriving at `ready` with service demand `cost` begins at
// max(ready, free_at) and completes `cost` cycles later. Because every piece
// of charged work has a known demand when enqueued, this is an exact
// simulation of a non-preemptive FCFS server — which is precisely the
// resource-contention model the paper analyses (e.g. the B-tree root
// bottleneck, where "activations arrive at a rate greater than the rate at
// which the processor completes each activation").
#pragma once

#include <algorithm>

#include "sim/types.h"

namespace cm::sim {

class Processor {
 public:
  explicit Processor(ProcId id) noexcept : id_(id) {}

  [[nodiscard]] ProcId id() const noexcept { return id_; }

  /// Reserve the CPU for `cost` cycles, earliest at `ready`.
  /// Returns the completion time.
  Cycles acquire(Cycles ready, Cycles cost) noexcept {
    const Cycles start = std::max(ready, free_at_);
    free_at_ = start + cost;
    busy_ += cost;
    queue_delay_ += start - ready;
    ++requests_;
    return free_at_;
  }

  /// First time at which the CPU is idle.
  [[nodiscard]] Cycles free_at() const noexcept { return free_at_; }

  /// Total busy cycles charged so far (cumulative; harnesses snapshot this
  /// to compute utilisation over a measurement window).
  [[nodiscard]] Cycles busy_cycles() const noexcept { return busy_; }

  /// Total cycles requests spent waiting behind earlier work (queueing).
  [[nodiscard]] Cycles queue_delay_cycles() const noexcept { return queue_delay_; }

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }

 private:
  ProcId id_;
  Cycles free_at_ = 0;
  Cycles busy_ = 0;
  Cycles queue_delay_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace cm::sim
