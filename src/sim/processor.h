// Simulated processors: CPUs executing simulated-thread work FCFS.
//
// We model CPU occupancy with a virtual finish time (`free_at`): a request
// arriving at `ready` with service demand `cost` begins at
// max(ready, free_at) and completes `cost` cycles later. Because every piece
// of charged work has a known demand when enqueued, this is an exact
// simulation of a non-preemptive FCFS server — which is precisely the
// resource-contention model the paper analyses (e.g. the B-tree root
// bottleneck, where "activations arrive at a rate greater than the rate at
// which the processor completes each activation").
//
// The accounts live in a `ProcessorFile`: one flat array of 32-byte
// records (no per-processor object header, no id field, two records per
// cache line), because `acquire` sits on the engine's per-event hot path —
// every exec/resume/coherence hop charges cycles through it. `ProcessorView`
// is the read-side handle benches and tests use to inspect one account.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace cm::sim {

/// A flat file of per-processor FCFS accounts, indexed by ProcId.
class ProcessorFile {
 public:
  explicit ProcessorFile(ProcId n) : accounts_(n) {}

  [[nodiscard]] ProcId size() const noexcept {
    return static_cast<ProcId>(accounts_.size());
  }

  /// Reserve CPU `p` for `cost` cycles, earliest at `ready`.
  /// Returns the completion time.
  Cycles acquire(ProcId p, Cycles ready, Cycles cost) noexcept {
    assert(p < accounts_.size());
    Account& a = accounts_[p];
    const Cycles start = std::max(ready, a.free_at);
    a.free_at = start + cost;
    a.busy += cost;
    a.queue_delay += start - ready;
    ++a.requests;
    return a.free_at;
  }

  /// First time at which CPU `p` is idle.
  [[nodiscard]] Cycles free_at(ProcId p) const noexcept {
    return accounts_[p].free_at;
  }
  /// Total busy cycles charged to `p` so far (cumulative; harnesses
  /// snapshot this to compute utilisation over a measurement window).
  [[nodiscard]] Cycles busy_cycles(ProcId p) const noexcept {
    return accounts_[p].busy;
  }
  /// Total cycles requests to `p` spent waiting behind earlier work.
  [[nodiscard]] Cycles queue_delay_cycles(ProcId p) const noexcept {
    return accounts_[p].queue_delay;
  }
  [[nodiscard]] std::uint64_t requests(ProcId p) const noexcept {
    return accounts_[p].requests;
  }

  /// Sum of busy cycles over all accounts.
  [[nodiscard]] Cycles total_busy() const noexcept {
    Cycles sum = 0;
    for (const Account& a : accounts_) sum += a.busy;
    return sum;
  }

 private:
  struct Account {
    Cycles free_at = 0;
    Cycles busy = 0;
    Cycles queue_delay = 0;
    std::uint64_t requests = 0;
  };
  static_assert(sizeof(Account) == 32, "two accounts per cache line");

  std::vector<Account> accounts_;
};

/// Read-side handle onto one account of a ProcessorFile; what
/// `Machine::proc(p)` hands out so call sites keep reading naturally
/// (`machine.proc(p).busy_cycles()`).
class ProcessorView {
 public:
  ProcessorView(const ProcessorFile& file, ProcId id) noexcept
      : file_(&file), id_(id) {}

  [[nodiscard]] ProcId id() const noexcept { return id_; }
  [[nodiscard]] Cycles free_at() const noexcept { return file_->free_at(id_); }
  [[nodiscard]] Cycles busy_cycles() const noexcept {
    return file_->busy_cycles(id_);
  }
  [[nodiscard]] Cycles queue_delay_cycles() const noexcept {
    return file_->queue_delay_cycles(id_);
  }
  [[nodiscard]] std::uint64_t requests() const noexcept {
    return file_->requests(id_);
  }

 private:
  const ProcessorFile* file_;
  ProcId id_;
};

}  // namespace cm::sim
