#include "sim/machine.h"

namespace cm::sim {

Machine::Machine(Engine& engine, ProcId nprocs) : engine_(&engine) {
  procs_.reserve(nprocs);
  for (ProcId p = 0; p < nprocs; ++p) procs_.emplace_back(p);
}

void Machine::exec(ProcId p, Cycles cost, std::function<void()> fn) {
  const Cycles done = proc(p).acquire(engine_->now(), cost);
  engine_->at(done, std::move(fn));
}

void Machine::resume_on(ProcId p, Cycles cost, std::coroutine_handle<> h) {
  const Cycles done = proc(p).acquire(engine_->now(), cost);
  engine_->at(done, [h] { h.resume(); });
}

Cycles Machine::total_busy() const {
  Cycles sum = 0;
  for (const auto& pr : procs_) sum += pr.busy_cycles();
  return sum;
}

}  // namespace cm::sim
