// The simulated multiprocessor: P processors sharing one event engine.
#pragma once

#include <coroutine>
#include <cstddef>
#include <functional>
#include <vector>

#include "sim/engine.h"
#include "sim/processor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace cm::sim {

class Machine {
 public:
  Machine(Engine& engine, ProcId nprocs);

  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] ProcId size() const noexcept {
    return static_cast<ProcId>(procs_.size());
  }
  [[nodiscard]] Processor& proc(ProcId p) { return procs_.at(p); }
  [[nodiscard]] const Processor& proc(ProcId p) const { return procs_.at(p); }

  /// Run `fn` on processor `p`: the CPU is occupied for `cost` cycles
  /// starting when it is free, and `fn` runs at the completion time.
  void exec(ProcId p, Cycles cost, std::function<void()> fn);

  /// Resume a suspended coroutine on processor `p`, charging `cost` cycles
  /// of CPU first (e.g. scheduler/dispatch overhead).
  void resume_on(ProcId p, Cycles cost, std::coroutine_handle<> h);

  /// Awaitable: occupy processor `p` for `cost` busy cycles.
  [[nodiscard]] auto compute(ProcId p, Cycles cost) {
    return suspend_to([this, p, cost](std::coroutine_handle<> h) {
      resume_on(p, cost, h);
    });
  }

  /// Awaitable: wall-clock delay of `d` cycles that does NOT occupy the CPU
  /// (e.g. waiting on a hardware resource, backoff between spin probes).
  [[nodiscard]] auto sleep(Cycles d) {
    return suspend_to([this, d](std::coroutine_handle<> h) {
      engine_->after(d, [h] { h.resume(); });
    });
  }

  /// Sum of busy cycles over all processors.
  [[nodiscard]] Cycles total_busy() const;

 private:
  Engine* engine_;
  std::vector<Processor> procs_;
};

}  // namespace cm::sim
