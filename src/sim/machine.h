// The simulated multiprocessor: P processors sharing one event engine.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <utility>

#include "sim/engine.h"
#include "sim/processor.h"
#include "sim/task.h"
#include "sim/types.h"

namespace cm::sim {

class Machine {
 public:
  Machine(Engine& engine, ProcId nprocs) : engine_(&engine), procs_(nprocs) {}

  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const Engine& engine() const noexcept { return *engine_; }
  [[nodiscard]] ProcId size() const noexcept { return procs_.size(); }
  [[nodiscard]] ProcessorView proc(ProcId p) const {
    return ProcessorView(procs_, p);
  }

  /// Run `fn` on processor `p`: the CPU is occupied for `cost` cycles
  /// starting when it is free, and `fn` runs at the completion time. The
  /// event is homed at `p`, so it executes on `p`'s shard; during sharded
  /// runs callers must already be on that shard (cross-shard hand-off is
  /// the network's job — it re-homes delivery via Engine::at_on).
  template <class F>
  void exec(ProcId p, Cycles cost, F&& fn) {
    assert_local(p);
    engine_->at_on(p, procs_.acquire(p, engine_->now(), cost),
                   std::forward<F>(fn));
  }

  /// Resume a suspended coroutine on processor `p`, charging `cost` cycles
  /// of CPU first (e.g. scheduler/dispatch overhead).
  void resume_on(ProcId p, Cycles cost, std::coroutine_handle<> h) {
    assert_local(p);
    engine_->at_on(p, procs_.acquire(p, engine_->now(), cost),
                   [h] { h.resume(); });
  }

  /// Awaitable: occupy processor `p` for `cost` busy cycles.
  [[nodiscard]] auto compute(ProcId p, Cycles cost) {
    return suspend_to([this, p, cost](std::coroutine_handle<> h) {
      resume_on(p, cost, h);
    });
  }

  /// Awaitable: wall-clock delay of `d` cycles that does NOT occupy the CPU
  /// (e.g. waiting on a hardware resource, backoff between spin probes).
  [[nodiscard]] auto sleep(Cycles d) {
    return suspend_to([this, d](std::coroutine_handle<> h) {
      engine_->after(d, [h] { h.resume(); });
    });
  }

  /// Sum of busy cycles over all processors.
  [[nodiscard]] Cycles total_busy() const { return procs_.total_busy(); }

 private:
  /// Processor accounts are shard-partitioned state: touching `p`'s account
  /// from another shard mid-run would race under kThreads and read the
  /// wrong local clock under any backend.
  void assert_local([[maybe_unused]] ProcId p) const noexcept {
    assert(!engine_->in_sharded_run() ||
           engine_->shard_of(p) == engine_->current_shard());
  }

  Engine* engine_;
  ProcessorFile procs_;
};

}  // namespace cm::sim
