#include "sim/engine.h"

#include <cstdio>

namespace cm::sim {

Engine::~Engine() {
  // Destroy (without running) any callbacks still queued in each shard's
  // arena; heap-backend and inbox events clean themselves up via
  // std::function.
  for (unsigned s = 0; s < nshards_; ++s) {
    Shard& sh = shards_[s];
    while (!sh.cal.empty()) sh.arena.destroy(sh.cal.pop_move().idx);
  }
}

void Engine::past_schedule_assert([[maybe_unused]] Cycles distance) noexcept {
#ifndef NDEBUG
  std::fprintf(stderr,
               "Engine: event scheduled %llu cycle(s) in the past (clamped, "
               "counted in sim.clamped_events)\n",
               static_cast<unsigned long long>(distance));
  assert(!"Engine: event scheduled in the past — clamp distance on stderr");
#endif
}

void Engine::configure_shards(unsigned nshards, unsigned nprocs) {
  assert(nshards_ == 1 && shards_[0].executed == 0 && pending() == 0 &&
         "configure_shards must run once, before any event is scheduled");
  if (nshards == 0) nshards = 1;
  if (nprocs > 0 && nshards > nprocs) nshards = nprocs;
  nshards_ = nshards;
  procs_per_shard_ = (nprocs + nshards - 1) / nshards;
  if (procs_per_shard_ == 0) procs_per_shard_ = 1;
  if (nshards > 1) shards_ = std::make_unique<Shard[]>(nshards);
  // One label lane per processor plus lane 0 for setup context, pre-sized
  // so kThreads workers never grow the vector concurrently.
  lane_cnt_.assign(static_cast<std::size_t>(nprocs) + 1, 0);
}

void Engine::enqueue_remote(unsigned dst, Cycles t, std::uint64_t label,
                            std::uint32_t home, std::function<void()> fn) {
  assert(t >= window_end_ &&
         "cross-shard event lands inside the current window: the installed "
         "network's lookahead is smaller than its real minimum latency");
  Shard& dsh = shards_[dst];
  const std::lock_guard<std::mutex> g(dsh.inbox_mu);
  ++dsh.inbound;
  dsh.inbox.push_back(InboxEntry{t, label, home, std::move(fn)});
}

void Engine::drain_inboxes() {
  for (unsigned s = 0; s < nshards_; ++s) {
    Shard& sh = shards_[s];
    std::vector<InboxEntry> in;
    {
      const std::lock_guard<std::mutex> g(sh.inbox_mu);
      in.swap(sh.inbox);
    }
    // Arrival order across sender shards is nondeterministic under
    // kThreads, but (t, label) keys are unique and both queue backends pop
    // in exact (t, label) order regardless of push order, so merging here
    // preserves determinism without sorting.
    for (InboxEntry& e : in) {
      Cycles t = e.t;
      if (t < sh.now) [[unlikely]] {
        ++sh.clamped;
        past_schedule_assert(sh.now - t);
        t = sh.now;
      }
      if (backend_ == QueueBackend::kCalendar) {
        sh.cal.push(t, e.label, sh.arena.emplace(std::move(e.fn)), e.home);
      } else {
        sh.heap.push(t, e.label, e.home, std::move(e.fn));
      }
    }
  }
}

Cycles Engine::shard_next_time(unsigned s) {
  Shard& sh = shards_[s];
  if (backend_ == QueueBackend::kCalendar) {
    return sh.cal.empty() ? kNever : sh.cal.min_time();
  }
  return sh.heap.empty() ? kNever : sh.heap.min_time();
}

void Engine::step(Shard& sh) {
  // Pop before invoking so the handler may schedule new events freely. Both
  // backends genuinely move the event out — no const_cast (see
  // event_queue.h); the calendar path moves a 24-byte key and leaves the
  // callback in its arena slot.
  if (backend_ == QueueBackend::kCalendar) {
    const EventKey k = sh.cal.pop_move();
    sh.now = k.t;
    sh.current_home = static_cast<ProcId>(k.home);
    sh.current_label = k.seq;
    ++sh.executed;
    sh.arena.run(k.idx);
  } else {
    HeapEvent ev = sh.heap.pop_move();
    sh.now = ev.t;
    sh.current_home = static_cast<ProcId>(ev.home);
    sh.current_label = ev.seq;
    ++sh.executed;
    ev.fn();
  }
}

void Engine::run() {
  assert(nshards_ == 1 && "multi-shard runs go through sim::ShardedEngine");
  Shard& sh = shards_[tls_shard_];
  if (backend_ == QueueBackend::kCalendar) {
    while (!sh.cal.empty()) step(sh);
  } else {
    while (!sh.heap.empty()) step(sh);
  }
  sh.current_home = kNoProc;
  sh.current_label = 0;
}

void Engine::run_until(Cycles t) {
  assert(nshards_ == 1 && "multi-shard runs go through sim::ShardedEngine");
  Shard& sh = shards_[tls_shard_];
  if (backend_ == QueueBackend::kCalendar) {
    while (!sh.cal.empty() && sh.cal.min_time() <= t) step(sh);
  } else {
    while (!sh.heap.empty() && sh.heap.min_time() <= t) step(sh);
  }
  sh.current_home = kNoProc;
  sh.current_label = 0;
  // Advance the clock to `t` only when nothing is left to execute: with
  // events still pending past `t`, the clock must stay at the last executed
  // event's time so it never runs ahead of work the queue still owes.
  if (idle() && sh.now < t) sh.now = t;
}

void Engine::run_bounded(std::size_t max_events) {
  assert(nshards_ == 1 && "multi-shard runs go through sim::ShardedEngine");
  Shard& sh = shards_[tls_shard_];
  for (std::size_t i = 0; i < max_events && !idle(); ++i) step(sh);
  sh.current_home = kNoProc;
  sh.current_label = 0;
}

void Engine::run_shard_window(unsigned s, Cycles end) {
  tls_shard_ = s;
  Shard& sh = shards_[s];
  if (backend_ == QueueBackend::kCalendar) {
    while (!sh.cal.empty() && sh.cal.min_time() < end) step(sh);
  } else {
    while (!sh.heap.empty() && sh.heap.min_time() < end) step(sh);
  }
  sh.current_home = kNoProc;
  sh.current_label = 0;
}

bool Engine::idle() const noexcept { return pending() == 0; }

std::size_t Engine::pending() const noexcept {
  std::size_t n = 0;
  for (unsigned s = 0; s < nshards_; ++s) {
    const Shard& sh = shards_[s];
    n += backend_ == QueueBackend::kCalendar ? sh.cal.size() : sh.heap.size();
    n += sh.inbox.size();
  }
  return n;
}

std::size_t Engine::events_executed() const noexcept {
  std::size_t n = 0;
  for (unsigned s = 0; s < nshards_; ++s) n += shards_[s].executed;
  return n;
}

std::uint64_t Engine::clamped_events() const noexcept {
  std::uint64_t n = 0;
  for (unsigned s = 0; s < nshards_; ++s) n += shards_[s].clamped;
  return n;
}

std::uint64_t Engine::cross_shard_msgs() const noexcept {
  std::uint64_t n = 0;
  for (unsigned s = 0; s < nshards_; ++s) n += shards_[s].inbound;
  return n;
}

Cycles Engine::last_dispatch_time() const noexcept {
  Cycles t = 0;
  for (unsigned s = 0; s < nshards_; ++s) {
    if (shards_[s].now > t) t = shards_[s].now;
  }
  return t;
}

}  // namespace cm::sim
