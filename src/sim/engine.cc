#include "sim/engine.h"

#include <cassert>
#include <utility>

namespace cm::sim {

void Engine::at(Cycles t, std::function<void()> fn) {
  if (t < now_) {
    // Scheduling strictly into the past cannot arise from a correct cost
    // model (zero-latency round-trips land exactly on now()). Make the
    // causality bug loud: abort in Debug, count-and-clamp in Release.
    ++clamped_;
    assert(!"Engine::at: event scheduled in the past (clamp distance > 0)");
    t = now_;
  }
  queue_.push(t, seq_++, std::move(fn));
}

void Engine::step() {
  // pop_move() genuinely moves the event out of the queue (no const_cast —
  // see HeapEventQueue). We pop before invoking so the handler may schedule
  // new events freely.
  HeapEvent ev = queue_.pop_move();
  now_ = ev.t;
  ++executed_;
  ev.fn();
}

void Engine::run() {
  while (!queue_.empty()) step();
}

void Engine::run_until(Cycles t) {
  while (!queue_.empty() && queue_.min_time() <= t) step();
  // Advance the clock to `t` only when nothing is left to execute: with
  // events still pending past `t`, the clock must stay at the last executed
  // event's time so it never runs ahead of work the queue still owes.
  if (queue_.empty() && now_ < t) now_ = t;
}

void Engine::run_bounded(std::size_t max_events) {
  for (std::size_t i = 0; i < max_events && !queue_.empty(); ++i) step();
}

}  // namespace cm::sim
