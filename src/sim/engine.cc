#include "sim/engine.h"

namespace cm::sim {

Engine::~Engine() {
  // Destroy (without running) any callbacks still queued in the arena;
  // heap-backend events clean themselves up via std::function.
  while (!cal_.empty()) arena_.destroy(cal_.pop_move().idx);
}

void Engine::step() {
  // Pop before invoking so the handler may schedule new events freely. Both
  // backends genuinely move the event out — no const_cast (see
  // event_queue.h); the calendar path moves a 24-byte key and leaves the
  // callback in its arena slot.
  if (backend_ == QueueBackend::kCalendar) {
    const EventKey k = cal_.pop_move();
    now_ = k.t;
    ++executed_;
    arena_.run(k.idx);
  } else {
    HeapEvent ev = heap_.pop_move();
    now_ = ev.t;
    ++executed_;
    ev.fn();
  }
}

void Engine::run() {
  if (backend_ == QueueBackend::kCalendar) {
    while (!cal_.empty()) step();
  } else {
    while (!heap_.empty()) step();
  }
}

void Engine::run_until(Cycles t) {
  if (backend_ == QueueBackend::kCalendar) {
    while (!cal_.empty() && cal_.min_time() <= t) step();
  } else {
    while (!heap_.empty() && heap_.min_time() <= t) step();
  }
  // Advance the clock to `t` only when nothing is left to execute: with
  // events still pending past `t`, the clock must stay at the last executed
  // event's time so it never runs ahead of work the queue still owes.
  if (idle() && now_ < t) now_ = t;
}

void Engine::run_bounded(std::size_t max_events) {
  for (std::size_t i = 0; i < max_events && !idle(); ++i) step();
}

}  // namespace cm::sim
