#include "sim/sharded_engine.h"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <thread>

namespace cm::sim {

ShardedEngine::ShardedEngine(Engine& engine, ShardOptions opts)
    : engine_(&engine), opts_(opts) {
  const unsigned n = engine.shards();
  assert((n == 1 || opts_.lookahead >= 1) &&
         "multi-shard runs need a positive conservative lookahead");
  rngs_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    // Golden-ratio stride decorrelates the streams even for adjacent root
    // seeds; Rng's own SplitMix64 seeding spreads each over full state.
    rngs_.emplace_back(opts_.seed + 0x9e3779b97f4a7c15ULL * (s + 1));
  }
}

bool ShardedEngine::open_window() {
  engine_->drain_inboxes();
  Cycles v = Engine::kNever;
  for (unsigned s = 0; s < engine_->shards(); ++s) {
    v = std::min(v, engine_->shard_next_time(s));
  }
  if (v == Engine::kNever) return false;
  window_end_ = v >= Engine::kNever - opts_.lookahead ? Engine::kNever
                                                      : v + opts_.lookahead;
  engine_->set_window_end(window_end_);
  return true;
}

void ShardedEngine::run() {
  const unsigned n = engine_->shards();
  if (n == 1) {
    // A single shard needs no windows: both backends are the classic drain
    // loop (bit-identical to the pre-shard engine); kThreads merely hosts
    // it on a worker thread, which is how the chaos soaks exercise the
    // threaded plumbing under TSan.
    if (opts_.backend == ShardBackend::kSequential) {
      engine_->run();
    } else {
      std::thread worker([this] { engine_->run(); });
      worker.join();
    }
    return;
  }
  engine_->begin_sharded_run(opts_.backend == ShardBackend::kThreads);
  done_ = false;
  if (opts_.backend == ShardBackend::kSequential) {
    run_sequential();
  } else {
    run_threads();
  }
  engine_->set_window_end(Engine::kNever);
  engine_->end_sharded_run();
}

void ShardedEngine::run_sequential() {
  const unsigned n = engine_->shards();
  while (open_window()) {
    for (unsigned s = 0; s < n; ++s) {
      engine_->run_shard_window(s, window_end_);
    }
    engine_->bump_window();
  }
}

void ShardedEngine::run_threads() {
  const unsigned n = engine_->shards();
  bool first = true;
  // The completion step is the serial phase: it runs on exactly one thread
  // while every worker is parked in the barrier, and the phase completion
  // strongly happens-before their release — so done_/window_end_ need no
  // atomics and the inbox merge sees all of the windows' sends.
  std::barrier bar(n, [this, &first]() noexcept {
    if (!first) engine_->bump_window();
    first = false;
    if (!open_window()) done_ = true;
  });
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    workers.emplace_back([this, s, &bar] {
      for (;;) {
        bar.arrive_and_wait();
        if (done_) return;
        engine_->run_shard_window(s, window_end_);
      }
    });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace cm::sim
