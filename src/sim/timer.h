// Cancellable one-shot timer over the event engine. The engine itself cannot
// unschedule an event, so the timer wraps each scheduled closure in a
// generation check: `cancel()` (or a newer `arm()`) bumps the generation and
// the stale event becomes a no-op when it fires. Used by the reliable
// transport for ack timeouts, where almost every armed timer is cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "sim/engine.h"
#include "sim/types.h"

namespace cm::sim {

class Timer {
 public:
  explicit Timer(Engine& engine)
      : engine_(&engine), ctl_(std::make_shared<Ctl>()) {}

  /// Arm the timer: `fn` runs `d` cycles from now unless `cancel()` or a
  /// newer `arm()` intervenes first. The scheduled event holds the control
  /// block alive, so destroying the Timer while armed is safe (the pending
  /// event then fires as a no-op).
  void arm(Cycles d, std::function<void()> fn) {
    const std::uint64_t gen = ++ctl_->gen;
    ctl_->armed = true;
    engine_->after(d, [ctl = ctl_, gen, fn = std::move(fn)] {
      if (ctl->gen == gen && ctl->armed) {
        ctl->armed = false;
        fn();
      }
    });
  }

  /// Forget any pending arming; the already-queued engine event is defused.
  void cancel() noexcept {
    ctl_->armed = false;
    ++ctl_->gen;
  }

  [[nodiscard]] bool armed() const noexcept { return ctl_->armed; }

 private:
  struct Ctl {
    std::uint64_t gen = 0;
    bool armed = false;
  };

  Engine* engine_;
  std::shared_ptr<Ctl> ctl_;
};

}  // namespace cm::sim
