// Coroutine plumbing for simulated threads.
//
// A simulated thread (a Prelude lightweight thread in the paper) is a C++20
// coroutine. The coroutine frame holds exactly the live variables across
// suspension points — it *is* the activation record, which is what makes this
// a faithful embedding of activation-frame migration: migrating a frame in
// the simulation re-binds the frame's processor and charges the cost of
// shipping its live words, while the host-side frame object stays put.
//
// `Task<T>` is a lazy awaitable coroutine with symmetric transfer.
// `Detached` is a fire-and-forget root used to launch top-level threads.
// `suspend_to(f)` is the escape hatch: suspends the current coroutine and
// hands its handle to `f`, which arranges resumption via the event engine.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

namespace cm::sim {

namespace detail {

template <class T>
struct ValueStore {
  std::optional<T> value;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take() { return std::move(*value); }
};

template <>
struct ValueStore<void> {
  void return_void() noexcept {}
  void take() noexcept {}
};

}  // namespace detail

/// Lazy awaitable coroutine. Created suspended; starts when awaited (or when
/// `start()` is called by a root). On completion, control transfers
/// symmetrically to the awaiter. Exceptions propagate to the awaiter.
template <class T = void>
class [[nodiscard]] Task {
 public:
  using value_type = T;

  struct promise_type : detail::ValueStore<T> {
    std::coroutine_handle<> continuation;  // who awaits us (may be null)
    std::exception_ptr exception;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  Task() noexcept = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return handle_ != nullptr; }
  [[nodiscard]] bool done() const noexcept { return handle_ && handle_.done(); }

  /// Awaiting a Task starts it and suspends the awaiter until it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (h.promise().exception) std::rethrow_exception(h.promise().exception);
        return h.promise().take();
      }
    };
    return Awaiter{handle_};
  }

  /// For roots: begin executing without an awaiter. The task runs until its
  /// first suspension; the caller keeps ownership and must keep the Task
  /// alive until done.
  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Fire-and-forget root coroutine; self-destroys on completion.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }  // roots must not throw
  };
};

/// Run a Task<void> to completion as an independent simulated thread.
/// The wrapper coroutine owns the task; both frames free themselves when the
/// task finishes.
inline Detached detach(Task<void> t) { co_await std::move(t); }

/// Suspend the current coroutine and pass its handle to `f`. `f` must arrange
/// for the handle to be resumed exactly once (typically via Engine::at).
///
/// CAUTION: if `f` owns non-trivially-destructible state (shared_ptr and
/// friends), bind the result to a named local and await that:
///     auto aw = suspend_to(...); co_await aw;
/// GCC 12.2 (the baked-in toolchain) runs the destructor of a *prvalue*
/// co_await operand twice, which silently corrupts reference counts.
/// Trivially-destructible captures (pointers, ints, handles) are unaffected.
template <class F>
auto suspend_to(F f) {
  struct Awaiter {
    F fn;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { fn(h); }
    void await_resume() const noexcept {}
  };
  return Awaiter{std::move(f)};
}

}  // namespace cm::sim
