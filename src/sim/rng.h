// Deterministic pseudo-random numbers for workloads and data placement.
// xoshiro256** seeded via SplitMix64 — fast, reproducible across platforms
// (unlike std::default_random_engine / std::uniform_int_distribution, whose
// outputs are implementation-defined).
#pragma once

#include <array>
#include <cstdint>

namespace cm::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 to spread the seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply keeps the distribution unbiased enough for workloads.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive (requires lo <= hi).
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo;
    // span + 1 wraps to 0 when the full 64-bit range is requested, which
    // would violate below()'s bound > 0 precondition (and silently return
    // lo forever); the full range needs no rejection step at all.
    if (span == ~std::uint64_t{0}) return next();
    return lo + below(span + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <class It>
  void shuffle(It first, It last) {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = below(i);
      using std::swap;
      swap(first[i - 1], first[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cm::sim
