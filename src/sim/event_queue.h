// Event-queue backends for the simulation engine.
//
// Two interchangeable backends with one ordering contract — lexicographic
// (t, seq): earlier timestamps first, FIFO by insertion sequence within a
// timestamp. That contract is the determinism invariant every experiment in
// this repo leans on, so both backends must agree event-for-event (the
// conformance suite in tests/queue_conformance_test.cc checks exactly this).
//
// `HeapEventQueue` is the classic binary-heap priority queue over full event
// records, kept both as the reference implementation for conformance tests
// and as the measured baseline for the host-performance harness. Unlike
// `std::priority_queue` — whose `top()` is const and therefore cannot hand
// out its payload without a copy or a const_cast — it is built directly on
// `std::push_heap`/`std::pop_heap` and exposes a real `pop_move()`: the heap
// algorithms rotate the minimum element to the back of the vector, from
// where it is legitimately moved out.
//
// `CalendarQueue` + `EventArena` are the hot path: a two-level ladder queue
// over 24-byte POD keys (the callback lives in a slab arena and never moves)
// specialised for the engine's near-monotone timestamps, replacing both the
// O(log n) heap churn and the per-event `std::function` heap allocation.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace cm::sim {

/// Which event-queue implementation an Engine runs on. `kCalendar` is the
/// default hot path; `kHeap` is the legacy binary heap kept as the measured
/// baseline and conformance reference.
enum class QueueBackend : std::uint8_t { kCalendar, kHeap };

/// A scheduled closure with its (time, label) ordering key and the simulated
/// processor the event is homed at (kNoProc-as-uint32 for setup events).
struct HeapEvent {
  Cycles t;
  std::uint64_t seq;
  std::uint32_t home;
  std::function<void()> fn;
};

class HeapEventQueue {
 public:
  void push(Cycles t, std::uint64_t seq, std::uint32_t home,
            std::function<void()> fn) {
    heap_.push_back(HeapEvent{t, seq, home, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest (t, seq) event's timestamp; undefined when empty.
  [[nodiscard]] Cycles min_time() const noexcept { return heap_.front().t; }

  /// Remove and return the earliest (t, seq) event. `pop_heap` swaps it to
  /// the back of the vector, so the move-out is from a mutable element —
  /// no const_cast, no container invariant at risk.
  [[nodiscard]] HeapEvent pop_move() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    HeapEvent ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  // Max-heap comparator inverted into a min-heap on (t, seq).
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::vector<HeapEvent> heap_;
};

/// Slab allocator for event callbacks. Each record is one 64-byte slot: an
/// op thunk, a freelist link, and 48 bytes of inline storage that absorbs
/// the capture list of every hot-path lambda in the simulator (callables
/// that do not fit fall back to one heap allocation, same as the
/// `std::function` they replace). Records are addressed by 32-bit index;
/// slots live in fixed-size chunks so a record's address never moves even
/// while its callback is executing and scheduling new events (which may
/// grow the arena). Freed slots are recycled LIFO, so a steady-state
/// simulation stops allocating entirely.
class EventArena {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Store `fn` in a recycled (or fresh) slot and return its index.
  template <class F>
  std::uint32_t emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = allocate();
    Record& r = record(idx);
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(r.storage)) Fn(std::forward<F>(fn));
      r.op = &inline_op<Fn>;
    } else {
      ::new (static_cast<void*>(r.storage)) Fn*(new Fn(std::forward<F>(fn)));
      r.op = &boxed_op<Fn>;
    }
    return idx;
  }

  /// Invoke the callback at `idx`, then destroy it and recycle the slot.
  /// The slot is recycled even if the callback throws; it is NOT recycled
  /// until the callback returns, so events the callback schedules can never
  /// alias the slot they are being scheduled from.
  void run(std::uint32_t idx) {
    Record& r = record(idx);
    const Recycle guard{this, idx};
    r.op(&r, /*invoke=*/true);
  }

  /// Destroy the callback at `idx` without invoking it (engine teardown
  /// with events still pending) and recycle the slot.
  void destroy(std::uint32_t idx) {
    Record& r = record(idx);
    const Recycle guard{this, idx};
    r.op(&r, /*invoke=*/false);
  }

  /// Slots currently holding a live callback (queue contents, essentially).
  [[nodiscard]] std::size_t live() const noexcept { return live_; }

 private:
  struct Record {
    void (*op)(Record*, bool invoke);
    std::uint32_t next_free;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };
  static_assert(sizeof(Record) == 64, "one event record per half cache pair");

  // Chunked storage: stable addresses, 32-bit indexing.
  static constexpr std::uint32_t kChunkShift = 10;  // 1024 records per chunk
  static constexpr std::uint32_t kChunkRecords = 1u << kChunkShift;
  static constexpr std::uint32_t kNoFree =
      std::numeric_limits<std::uint32_t>::max();

  template <class Fn>
  static void inline_op(Record* r, bool invoke) {
    Fn* f = std::launder(reinterpret_cast<Fn*>(r->storage));
    struct Destroy {
      Fn* f;
      ~Destroy() { f->~Fn(); }
    } d{f};
    if (invoke) (*f)();
  }

  template <class Fn>
  static void boxed_op(Record* r, bool invoke) {
    Fn* f = *std::launder(reinterpret_cast<Fn**>(r->storage));
    const std::unique_ptr<Fn> own(f);
    if (invoke) (*f)();
  }

  struct Recycle {
    EventArena* a;
    std::uint32_t idx;
    ~Recycle() { a->release(idx); }
  };

  [[nodiscard]] Record& record(std::uint32_t idx) noexcept {
    return chunks_[idx >> kChunkShift][idx & (kChunkRecords - 1)];
  }

  [[nodiscard]] std::uint32_t allocate() {
    ++live_;
    if (free_head_ != kNoFree) {
      const std::uint32_t idx = free_head_;
      free_head_ = record(idx).next_free;
      return idx;
    }
    if (bump_ == chunks_.size() * kChunkRecords) {
      chunks_.push_back(std::make_unique<Record[]>(kChunkRecords));
    }
    return bump_++;
  }

  void release(std::uint32_t idx) noexcept {
    record(idx).next_free = free_head_;
    free_head_ = idx;
    --live_;
  }

  std::vector<std::unique_ptr<Record[]>> chunks_;
  std::uint32_t free_head_ = kNoFree;
  std::uint32_t bump_ = 0;  // slots handed out so far (never shrinks)
  std::size_t live_ = 0;
};

/// Ordering key for an arena-resident event: 24 bytes of POD, cheap to
/// shuffle during sorts while the callback stays put in its slab slot. The
/// `home` field (the simulated processor the event is homed at) rides in
/// what used to be padding, so the key stays 24 bytes.
struct EventKey {
  Cycles t;
  std::uint64_t seq;
  std::uint32_t idx;
  std::uint32_t home;
};
static_assert(sizeof(EventKey) == 24, "home must fit in the old padding");

/// Two-level calendar/ladder queue specialised for a discrete-event engine
/// whose timestamps are near-monotone (events are overwhelmingly scheduled
/// a short, bounded distance into the future).
///
///  * `near_` — the current "rung": every pending event with t <= horizon_,
///    kept sorted descending by (t, seq) so the minimum pops from the back
///    in O(1). Inserts below the horizon binary-search their slot; because
///    new events carry the largest seq so far, a same-cycle insert lands at
///    (or next to) the back and moves almost nothing.
///  * `far_` — everything past the horizon, completely unsorted: insertion
///    is O(1) and no comparison work is done for events that are not about
///    to execute.
///
/// When the rung drains, the queue re-spills: it picks a fresh horizon so
/// that roughly `kSpillTarget` of the far events fall below it (adapting to
/// whatever timestamp density the workload exhibits), partitions `far_`
/// once, and sorts the new rung. Each event is therefore touched by at most
/// one partition pass plus one O(log r) sort of a small rung — and the
/// (t, seq) sort makes the pop order *exactly* the total order the heap
/// backend produces, so same-seed runs are bit-identical across backends.
class CalendarQueue {
 public:
  void push(Cycles t, std::uint64_t seq, std::uint32_t idx,
            std::uint32_t home) {
    ++size_;
    if (t <= horizon_) {
      const EventKey k{t, seq, idx, home};
      near_.insert(std::upper_bound(near_.begin(), near_.end(), k, Greater{}),
                   k);
    } else {
      if (t < far_min_) far_min_ = t;
      if (t > far_max_) far_max_ = t;
      far_.push_back(EventKey{t, seq, idx, home});
    }
  }

  /// Earliest pending timestamp; undefined when empty. May re-spill (hence
  /// non-const), but never changes the pop order.
  [[nodiscard]] Cycles min_time() {
    if (near_.empty()) refill();
    return near_.back().t;
  }

  /// Remove and return the earliest (t, seq) key.
  [[nodiscard]] EventKey pop_move() {
    if (near_.empty()) refill();
    const EventKey k = near_.back();
    near_.pop_back();
    --size_;
    return k;
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  // Strictly-descending order; (t, seq) pairs are unique by construction.
  struct Greater {
    bool operator()(const EventKey& a, const EventKey& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  static constexpr std::size_t kSpillTarget = 64;

  void refill() {
    assert(!far_.empty() && "pop/min on an empty CalendarQueue");
    if (far_.size() <= 2 * kSpillTarget) {
      near_.swap(far_);
      far_.clear();
      std::sort(near_.begin(), near_.end(), Greater{});
      horizon_ = near_.front().t;  // max t now owned by the rung
      far_min_ = std::numeric_limits<Cycles>::max();
      far_max_ = 0;
      return;
    }
    // Aim the new horizon so ~kSpillTarget events spill: assume timestamps
    // spread evenly over [far_min_, far_max_] and take a proportional slice
    // of the span. Dense clusters just spill a bigger rung once; the rung
    // is still sorted exactly, so only speed — never order — is heuristic.
    const Cycles span = far_max_ - far_min_;
    const Cycles width =
        std::max<Cycles>(1, span / (far_.size() / kSpillTarget));
    const Cycles h =
        far_max_ - far_min_ < width ? far_max_ : far_min_ + width;
    Cycles nmin = std::numeric_limits<Cycles>::max();
    Cycles nmax = 0;
    std::size_t keep = 0;
    for (EventKey& k : far_) {
      if (k.t <= h) {
        near_.push_back(k);
      } else {
        if (k.t < nmin) nmin = k.t;
        if (k.t > nmax) nmax = k.t;
        far_[keep++] = k;
      }
    }
    far_.resize(keep);
    std::sort(near_.begin(), near_.end(), Greater{});
    horizon_ = h;
    far_min_ = nmin;
    far_max_ = nmax;
  }

  std::vector<EventKey> near_;  // sorted descending (t, seq); pop from back
  std::vector<EventKey> far_;   // unsorted overflow, all t > horizon_
  Cycles horizon_ = 0;
  Cycles far_min_ = std::numeric_limits<Cycles>::max();
  Cycles far_max_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cm::sim
