// Event-queue backends for the simulation engine.
//
// `HeapEventQueue` is the classic binary-heap priority queue over full event
// records, kept both as the reference implementation for conformance tests
// and as the measured baseline for the host-performance harness. Unlike
// `std::priority_queue` — whose `top()` is const and therefore cannot hand
// out its payload without a copy or a const_cast — it is built directly on
// `std::push_heap`/`std::pop_heap` and exposes a real `pop_move()`: the heap
// algorithms rotate the minimum element to the back of the vector, from
// where it is legitimately moved out.
//
// Ordering is lexicographic (t, seq): earlier timestamps first, and FIFO by
// insertion sequence within a timestamp — the determinism contract every
// experiment in this repo leans on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace cm::sim {

/// A scheduled closure with its (time, insertion-sequence) ordering key.
struct HeapEvent {
  Cycles t;
  std::uint64_t seq;
  std::function<void()> fn;
};

class HeapEventQueue {
 public:
  void push(Cycles t, std::uint64_t seq, std::function<void()> fn) {
    heap_.push_back(HeapEvent{t, seq, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest (t, seq) event's timestamp; undefined when empty.
  [[nodiscard]] Cycles min_time() const noexcept { return heap_.front().t; }

  /// Remove and return the earliest (t, seq) event. `pop_heap` swaps it to
  /// the back of the vector, so the move-out is from a mutable element —
  /// no const_cast, no container invariant at risk.
  [[nodiscard]] HeapEvent pop_move() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    HeapEvent ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  // Max-heap comparator inverted into a min-heap on (t, seq).
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::vector<HeapEvent> heap_;
};

}  // namespace cm::sim
