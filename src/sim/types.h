// Basic identifier and quantity types shared by every simulator module.
#pragma once

#include <cstdint>

namespace cm::sim {

/// Simulated processor cycles. All time in the simulator is measured in
/// cycles of the (uniform) processor clock, as in Proteus.
using Cycles = std::uint64_t;

/// Processor identifier; processors are numbered 0..P-1.
using ProcId = std::uint32_t;

/// Machine word (32-bit in the simulated RISC machine). Message sizes and
/// bandwidth are measured in words, matching the paper's "words sent".
using Word = std::uint32_t;

/// Invalid/unset processor id sentinel.
inline constexpr ProcId kNoProc = static_cast<ProcId>(-1);

}  // namespace cm::sim
