#include "sim/tracer.h"

#include <cassert>
#include <cstdio>

namespace cm::sim {

void Tracer::record(TraceEvent ev, ProcId track,
                    std::initializer_list<TraceArg> args) {
  assert(args.size() <= kMaxArgs && "raise Tracer::kMaxArgs");
  Record r;
  r.t = engine_->now();
  r.ev = ev;
  r.track = track;
  r.nargs = static_cast<std::uint8_t>(args.size());
  std::size_t i = 0;
  for (const TraceArg& a : args) r.args[i++] = a;
  records_.push_back(r);
  ++counts_[static_cast<unsigned>(ev)];
  if (track > max_track_) max_track_ = track;
}

std::string Tracer::chrome_json() const {
  std::string out;
  out.reserve(96 * (records_.size() + max_track_ + 2));
  char buf[256];
  out += "{\"traceEvents\":[\n";
  // Track metadata first: one named thread per simulated processor, all in
  // one process (the machine). Deterministic: tracks 0..max in order.
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":0,\"args\":{\"name\":\"machine\"}}");
  out += buf;
  for (ProcId p = 0; p <= max_track_; ++p) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"proc %u\"}}",
                  p, p);
    out += buf;
  }
  // Instant events in record order (deterministic: the simulation itself is).
  for (const Record& r : records_) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\","
                  "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u",
                  static_cast<int>(trace_event_name(r.ev).size()),
                  trace_event_name(r.ev).data(),
                  static_cast<int>(trace_event_category(r.ev).size()),
                  trace_event_category(r.ev).data(),
                  static_cast<unsigned long long>(r.t), r.track);
    out += buf;
    if (r.nargs > 0) {
      out += ",\"args\":{";
      for (std::uint8_t i = 0; i < r.nargs; ++i) {
        std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", i ? "," : "",
                      r.args[i].key,
                      static_cast<unsigned long long>(r.args[i].value));
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cm::sim
