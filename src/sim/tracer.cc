#include "sim/tracer.h"

#include <cassert>
#include <cstdio>

namespace cm::sim {

void Tracer::record(TraceEvent ev, ProcId track,
                    std::initializer_list<TraceArg> args) {
  assert(args.size() <= kMaxArgs && "raise Tracer::kMaxArgs");
  const unsigned s = engine_->current_shard();
  if (s >= shards_.size()) [[unlikely]] {
    // Only reachable when shards were configured after the tracer; that
    // ordering is single-threaded by construction.
    assert(!engine_->threads_active());
    shards_.resize(s + 1);
  }
  ShardBuf& sb = shards_[s];
  Record r;
  r.t = engine_->now();
  r.label = engine_->current_label();
  r.ev = ev;
  r.track = track;
  r.nargs = static_cast<std::uint8_t>(args.size());
  std::size_t i = 0;
  for (const TraceArg& a : args) r.args[i++] = a;
  sb.records.push_back(r);
  ++sb.counts[static_cast<unsigned>(ev)];
  if (track > sb.max_track) sb.max_track = track;
}

std::uint64_t Tracer::next_msg_id() {
  const ProcId home = engine_->current_home();
  const unsigned lane = home == kNoProc ? 0u : static_cast<unsigned>(home) + 1u;
  if (lane >= msg_cnt_.size()) [[unlikely]] {
    assert(!engine_->threads_active());
    msg_cnt_.resize(lane + 1, 0);
  }
  return (std::uint64_t{lane} << 40) | ++msg_cnt_[lane];
}

std::string Tracer::chrome_json() const {
  std::size_t total = 0;
  ProcId max_track = 0;
  for (const ShardBuf& sb : shards_) {
    total += sb.records.size();
    if (sb.max_track > max_track) max_track = sb.max_track;
  }
  std::string out;
  out.reserve(96 * (total + max_track + 2));
  char buf[256];
  out += "{\"traceEvents\":[\n";
  // Track metadata first: one named thread per simulated processor, all in
  // one process (the machine). Deterministic: tracks 0..max in order.
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                "\"tid\":0,\"args\":{\"name\":\"machine\"}}");
  out += buf;
  for (ProcId p = 0; p <= max_track; ++p) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%u,\"args\":{\"name\":\"proc %u\"}}",
                  p, p);
    out += buf;
  }
  // Instant events, merged across shard buffers by (t, label). Each buffer
  // is already sorted: a shard executes events in (t, label) order and all
  // records of one event share its (t, label). Labels are globally unique
  // per event, so equal keys only ever meet inside one buffer, where the
  // merge preserves their relative order — the result is byte-identical
  // for every shard count (one shard degenerates to plain buffer order).
  std::vector<std::size_t> pos(shards_.size(), 0);
  for (std::size_t emitted = 0; emitted < total; ++emitted) {
    std::size_t best = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (pos[s] >= shards_[s].records.size()) continue;
      if (best == shards_.size()) {
        best = s;
        continue;
      }
      const Record& a = shards_[s].records[pos[s]];
      const Record& b = shards_[best].records[pos[best]];
      if (a.t < b.t || (a.t == b.t && a.label < b.label)) best = s;
    }
    const Record& r = shards_[best].records[pos[best]++];
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"i\","
                  "\"s\":\"t\",\"ts\":%llu,\"pid\":0,\"tid\":%u",
                  static_cast<int>(trace_event_name(r.ev).size()),
                  trace_event_name(r.ev).data(),
                  static_cast<int>(trace_event_category(r.ev).size()),
                  trace_event_category(r.ev).data(),
                  static_cast<unsigned long long>(r.t), r.track);
    out += buf;
    if (r.nargs > 0) {
      out += ",\"args\":{";
      for (std::uint8_t i = 0; i < r.nargs; ++i) {
        std::snprintf(buf, sizeof buf, "%s\"%s\":%llu", i ? "," : "",
                      r.args[i].key,
                      static_cast<unsigned long long>(r.args[i].value));
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool Tracer::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cm::sim
