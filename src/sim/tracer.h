// Structured event tracing: cycle-timestamped, typed events on
// per-processor tracks, exported as Chrome trace-event JSON (loadable in
// Perfetto / chrome://tracing).
//
// Nonintrusive by construction, in the spirit of Proteus' instrumentation:
// recording an event reads the engine clock and appends to a host-side
// buffer — it never schedules events, draws random numbers, or charges
// simulated cycles, so a traced run produces bit-identical simulation
// results to an untraced one. When no tracer is installed
// (Engine::tracer() == nullptr, the default) every instrumentation site is
// a single pointer test and all outputs are bit-identical to a build that
// never heard of tracing.
//
// Sharded runs (DESIGN.md §12): each shard appends to its own record
// buffer, so concurrent kThreads workers never share a cache line, and
// `chrome_json()` merges the buffers by (cycle, event label) — the same
// deterministic order the sharded engine itself guarantees — so the JSON
// is byte-identical for every shard count and backend at the same seed.
// Msg ids come from per-lane counters keyed on the *sending* context's
// lane, making them a pure function of causal history (shard-count
// invariant); a single-lane program sees the legacy sequence 1, 2, 3, ...
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.h"
#include "sim/types.h"

namespace cm::sim {

/// Every event the instrumented layers can emit. One enum (rather than free
/// strings) keeps recording allocation-free and lets tests assert exact
/// coverage per type.
enum class TraceEvent : unsigned {
  // net: one send/deliver pair per wire message, linked by a "msg" id.
  kMsgSend = 0,
  kMsgDeliver,
  // core::Runtime: computation migration and RPC control flow.
  kMigrateBegin,        // activation leaves its processor
  kMigrateArrive,       // continuation unmarshalled at the destination
  kMigrateFallback,     // MOVE exhausted its retry budget; stayed put
  kShortCircuitReply,   // migrated activation replies straight home
  kRpcIssue,            // client stub launches a remote call
  kRpcReply,            // reply delivered to the blocked caller
  kThreadCreate,        // server-side thread for an RPC / continuation
  // core::Replicated: software replication of read-mostly objects.
  kReplicaFetch,
  kReplicaInvalidate,
  // core::ReliableTransport: the price of reliability.
  kRetransmit,
  kTimeout,
  kDedup,
  // net::FaultyNetwork: injected faults.
  kFaultDrop,
  kFaultDuplicate,
  kFaultDelay,
  kFaultNicDrop,
  // loc::Locator: distributed object location.
  kLocLookup,    // remote resolution started (object not local)
  kLocHit,       // translation cache supplied the hint
  kLocMiss,      // cache miss; a directory shard was queried
  kLocBounce,    // request landed on a stale host; forwarded one hop
  kLocCompress,  // chain collapsed after the request found the object
  // ft: fail-stop failure detection and recovery.
  kFtSuspect,         // detector declared a processor's NIC dead
  kFtAbort,           // reliable send cancelled (peer suspected / deadline)
  kFtEvacuate,        // stranded activation rebound to a live processor
  kFtFailover,        // directory lookup re-routed to a shard replica
  kFtChainCut,        // forwarding chain through a dead node severed
  kFtPromote,         // object recovered by promoting a replica copy
  kFtRehome,          // object recovery committed at its new home
  kFtLost,            // object declared unrecoverable
  kFtReplyRecovered,  // reply reconstructed after its transfer failed
  // policy: load-aware placement and phase-adaptive replication.
  kPolicySample,    // per-processor load/profile sample on the engine clock
  kPolicyDecision,  // rebalancer verdict or phase edge at an object's home
  kPolicyMove,      // rebalancer issued a bounded attract for an object
  kPolicyFlip,      // phase detector toggled an object's replication mode
  // applications.
  kBalancerVisit,   // counting network: token traverses a balancer
  kBTreeNodeVisit,  // B-tree: operation examines a node
  kCount,
};

[[nodiscard]] constexpr std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kMsgSend: return "msg.send";
    case TraceEvent::kMsgDeliver: return "msg.deliver";
    case TraceEvent::kMigrateBegin: return "migrate.begin";
    case TraceEvent::kMigrateArrive: return "migrate.arrive";
    case TraceEvent::kMigrateFallback: return "migrate.fallback";
    case TraceEvent::kShortCircuitReply: return "migrate.short_circuit";
    case TraceEvent::kRpcIssue: return "rpc.issue";
    case TraceEvent::kRpcReply: return "rpc.reply";
    case TraceEvent::kThreadCreate: return "thread.create";
    case TraceEvent::kReplicaFetch: return "replica.fetch";
    case TraceEvent::kReplicaInvalidate: return "replica.invalidate";
    case TraceEvent::kRetransmit: return "reliable.retransmit";
    case TraceEvent::kTimeout: return "reliable.timeout";
    case TraceEvent::kDedup: return "reliable.dedup";
    case TraceEvent::kFaultDrop: return "fault.drop";
    case TraceEvent::kFaultDuplicate: return "fault.duplicate";
    case TraceEvent::kFaultDelay: return "fault.delay";
    case TraceEvent::kFaultNicDrop: return "fault.nic_drop";
    case TraceEvent::kLocLookup: return "loc.lookup";
    case TraceEvent::kLocHit: return "loc.hit";
    case TraceEvent::kLocMiss: return "loc.miss";
    case TraceEvent::kLocBounce: return "loc.bounce";
    case TraceEvent::kLocCompress: return "loc.compress";
    case TraceEvent::kFtSuspect: return "ft.suspect";
    case TraceEvent::kFtAbort: return "ft.abort";
    case TraceEvent::kFtEvacuate: return "ft.evacuate";
    case TraceEvent::kFtFailover: return "ft.failover";
    case TraceEvent::kFtChainCut: return "ft.chain_cut";
    case TraceEvent::kFtPromote: return "ft.promote";
    case TraceEvent::kFtRehome: return "ft.rehome";
    case TraceEvent::kFtLost: return "ft.lost";
    case TraceEvent::kFtReplyRecovered: return "ft.reply_recovered";
    case TraceEvent::kPolicySample: return "policy.sample";
    case TraceEvent::kPolicyDecision: return "policy.decision";
    case TraceEvent::kPolicyMove: return "policy.move";
    case TraceEvent::kPolicyFlip: return "policy.flip";
    case TraceEvent::kBalancerVisit: return "balancer.visit";
    case TraceEvent::kBTreeNodeVisit: return "btree.node_visit";
    case TraceEvent::kCount: break;
  }
  return "?";
}

/// Perfetto category, for filtering whole layers in the UI.
[[nodiscard]] constexpr std::string_view trace_event_category(TraceEvent e) {
  switch (e) {
    case TraceEvent::kMsgSend:
    case TraceEvent::kMsgDeliver:
      return "net";
    case TraceEvent::kMigrateBegin:
    case TraceEvent::kMigrateArrive:
    case TraceEvent::kMigrateFallback:
    case TraceEvent::kShortCircuitReply:
      return "migration";
    case TraceEvent::kRpcIssue:
    case TraceEvent::kRpcReply:
    case TraceEvent::kThreadCreate:
      return "rpc";
    case TraceEvent::kReplicaFetch:
    case TraceEvent::kReplicaInvalidate:
      return "replication";
    case TraceEvent::kRetransmit:
    case TraceEvent::kTimeout:
    case TraceEvent::kDedup:
      return "reliable";
    case TraceEvent::kFaultDrop:
    case TraceEvent::kFaultDuplicate:
    case TraceEvent::kFaultDelay:
    case TraceEvent::kFaultNicDrop:
      return "fault";
    case TraceEvent::kLocLookup:
    case TraceEvent::kLocHit:
    case TraceEvent::kLocMiss:
    case TraceEvent::kLocBounce:
    case TraceEvent::kLocCompress:
      return "loc";
    case TraceEvent::kFtSuspect:
    case TraceEvent::kFtAbort:
    case TraceEvent::kFtEvacuate:
    case TraceEvent::kFtFailover:
    case TraceEvent::kFtChainCut:
    case TraceEvent::kFtPromote:
    case TraceEvent::kFtRehome:
    case TraceEvent::kFtLost:
    case TraceEvent::kFtReplyRecovered:
      return "ft";
    case TraceEvent::kPolicySample:
    case TraceEvent::kPolicyDecision:
    case TraceEvent::kPolicyMove:
    case TraceEvent::kPolicyFlip:
      return "policy";
    case TraceEvent::kBalancerVisit:
    case TraceEvent::kBTreeNodeVisit:
      return "app";
    case TraceEvent::kCount:
      break;
  }
  return "?";
}

/// One key/value annotation on an event; keys must be string literals (the
/// tracer stores the pointer, not a copy).
struct TraceArg {
  const char* key;
  std::uint64_t value;
};

class Tracer {
 public:
  /// Events are timestamped with `engine.now()` at record time. Construct
  /// after `Engine::configure_shards` (the workload layer does) so the
  /// per-shard buffers and per-lane msg-id counters are pre-sized; an
  /// unconfigured engine gets one shard / one lane and grows lazily.
  explicit Tracer(Engine& engine)
      : engine_(&engine),
        shards_(engine.shards()),
        msg_cnt_(engine.configured_lanes()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Record `ev` on processor `track` at the current cycle, with up to
  /// `kMaxArgs` annotations. Appends to the calling shard's buffer.
  void record(TraceEvent ev, ProcId track,
              std::initializer_list<TraceArg> args = {});

  /// Fresh id linking a msg.send to its msg.deliver:
  /// (sender lane << 40) | per-lane count, shard-count invariant.
  [[nodiscard]] std::uint64_t next_msg_id();

  /// Total records across all shard buffers.
  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const ShardBuf& sb : shards_) n += sb.records.size();
    return n;
  }
  [[nodiscard]] std::uint64_t count(TraceEvent ev) const noexcept {
    std::uint64_t n = 0;
    for (const ShardBuf& sb : shards_) {
      n += sb.counts[static_cast<unsigned>(ev)];
    }
    return n;
  }

  /// The whole trace as a Chrome trace-event JSON object
  /// ({"traceEvents": [...]}) with per-processor thread tracks. Shard
  /// buffers are merged by (cycle, label), so the bytes are identical for
  /// every shard count at the same seed.
  [[nodiscard]] std::string chrome_json() const;

  /// Write `chrome_json()` to `path`; false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

  static constexpr std::size_t kMaxArgs = 4;

 private:
  struct Record {
    Cycles t;
    std::uint64_t label;  // of the emitting event; the cross-shard merge key
    TraceEvent ev;
    ProcId track;
    std::uint8_t nargs;
    std::array<TraceArg, kMaxArgs> args;
  };

  /// One shard's private trace state; shards never share one.
  struct ShardBuf {
    std::vector<Record> records;
    std::array<std::uint64_t, static_cast<unsigned>(TraceEvent::kCount)>
        counts{};
    ProcId max_track = 0;
  };

  Engine* engine_;
  std::vector<ShardBuf> shards_;
  std::vector<std::uint64_t> msg_cnt_;  // per-lane msg-id counters
};

}  // namespace cm::sim
