// Conservative parallel DES driver over the sharded Engine (DESIGN.md §12).
//
// The engine partitions simulated processors into shards, each with its own
// event queue and local clock; this driver advances them in conservative
// windows. With `L` = the installed network's minimum cross-shard latency
// (the lookahead), every cross-shard event created at time `c` lands at
// `t >= c + L`, so the window `[V, V + L)` — where `V` is the global minimum
// pending timestamp — can run barrier-free on every shard: no event that
// another shard might still create can fall inside it. At each window
// boundary the shards' mutex-protected inboxes are merged into the queues;
// (t, label) keys are unique and deterministic, so merge order does not
// depend on host-thread timing.
//
// Two backends behind the same interface:
//  * kSequential — round-robin windows on one host thread. The conformance
//    reference: at one shard it degenerates to the classic `Engine::run()`
//    and is bit-identical to the pre-shard engine.
//  * kThreads — one host thread per shard, window barriers via
//    std::barrier; the barrier's completion step is the serial phase
//    (inbox drain, next-window computation, checker replay hook).
//
// Both backends produce bit-identical output for a fixed seed and shard
// count, and shard counts only change the two `sim.cross_shard_msgs` /
// `sim.window_count` counters — never simulation results.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/types.h"

namespace cm::sim {

/// How a sharded run maps shards onto host threads.
enum class ShardBackend : std::uint8_t { kSequential, kThreads };

struct ShardOptions {
  ShardBackend backend = ShardBackend::kSequential;
  /// Conservative lookahead in cycles: the minimum latency of any
  /// cross-shard interaction (net::Network::min_cross_latency() of the
  /// installed network). Must be >= 1 when the engine has > 1 shard.
  Cycles lookahead = 0;
  /// Root seed the per-shard Rng streams are split from.
  std::uint64_t seed = 0;
};

class ShardedEngine {
 public:
  /// The engine must already be shard-configured (Engine::configure_shards)
  /// and not yet running.
  ShardedEngine(Engine& engine, ShardOptions opts);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Drain every shard's queue to completion.
  void run();

  /// A per-shard random stream, split from ShardOptions::seed with
  /// SplitMix-style hashing so streams are decorrelated. Draw order within
  /// a stream is shard-local: a shard's draws do not depend on how events
  /// interleave on other shards, which keeps seeded randomness
  /// shard-count-invariant for shard-homed consumers.
  [[nodiscard]] Rng& shard_rng(unsigned s) { return rngs_[s]; }

  [[nodiscard]] const ShardOptions& options() const noexcept { return opts_; }

 private:
  void run_sequential();
  void run_threads();

  /// Serial phase between windows: merge inboxes, compute the next window
  /// `[V, V + lookahead)`, or detect completion. Returns false when every
  /// queue is empty.
  bool open_window();

  Engine* engine_;
  ShardOptions opts_;
  std::vector<Rng> rngs_;
  Cycles window_end_ = Engine::kNever;
  bool done_ = false;
};

}  // namespace cm::sim
