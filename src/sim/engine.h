// Discrete-event simulation engine: a monotone cycle clock plus an event
// queue. Deterministic: events at equal timestamps run in scheduling order.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace cm::check {
class Checker;
}  // namespace cm::check

namespace cm::sim {

class Tracer;

/// The heart of the Proteus-style simulator. Client code schedules closures
/// at absolute or relative cycle times; `run()` drains the queue in
/// (time, insertion-sequence) order, advancing the clock as it goes.
///
/// The engine is single-threaded on the host: all "parallelism" of the
/// simulated machine is expressed through event interleavings, which makes
/// every experiment bit-for-bit reproducible for a fixed seed.
///
/// Two queue backends share that contract (see event_queue.h): the default
/// `kCalendar` hot path stores callbacks in a slab arena behind a two-level
/// ladder queue; `kHeap` is the legacy binary heap of `std::function`s,
/// kept as the conformance reference and the host-perf baseline. Same-seed
/// runs are bit-identical across backends.
class Engine {
 public:
  explicit Engine(QueueBackend backend = QueueBackend::kCalendar) noexcept
      : backend_(backend) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] QueueBackend backend() const noexcept { return backend_; }

  /// Current simulated time in cycles.
  [[nodiscard]] Cycles now() const noexcept { return now_; }

  /// Schedule `fn` (any void() callable; captures stay inline in the event
  /// arena when they fit) to run at absolute time `t`. A correct caller
  /// never passes `t < now()` — a zero-latency round-trip lands exactly on
  /// `now()`, never before it. A past timestamp is a causality bug in the
  /// scheduling layer: Release builds clamp it to `now()` and count it in
  /// `clamped_events()` (exported as the `sim.clamped_events` metric) so it
  /// is visible instead of silently swallowed; Debug builds assert.
  template <class F>
  void at(Cycles t, F&& fn) {
    if (t < now_) [[unlikely]] {
      ++clamped_;
      assert(!"Engine::at: event scheduled in the past (clamp distance > 0)");
      t = now_;
    }
    const std::uint64_t seq = seq_++;
    if (backend_ == QueueBackend::kCalendar) {
      cal_.push(t, seq, arena_.emplace(std::forward<F>(fn)));
    } else {
      heap_.push(t, seq, std::function<void()>(std::forward<F>(fn)));
    }
  }

  /// Schedule `fn` to run `d` cycles from now.
  template <class F>
  void after(Cycles d, F&& fn) {
    at(now_ + d, std::forward<F>(fn));
  }

  /// Run until the event queue is empty.
  void run();

  /// Run events with timestamp <= `t`; afterwards `now() == t` if the queue
  /// drained, else `now()` is the last executed event's time (the clock
  /// never advances past events that are still pending).
  void run_until(Cycles t);

  /// Run at most `max_events` further events (safety valve for tests).
  void run_bounded(std::size_t max_events);

  [[nodiscard]] bool idle() const noexcept {
    return backend_ == QueueBackend::kCalendar ? cal_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return backend_ == QueueBackend::kCalendar ? cal_.size() : heap_.size();
  }
  [[nodiscard]] std::size_t events_executed() const noexcept {
    return executed_;
  }

  /// Events whose requested time lay strictly in the past (clamp distance
  /// > 0) and were clamped to `now()`. Nonzero means a layer scheduled
  /// backwards in time — a causality bug; Debug builds assert instead.
  [[nodiscard]] std::uint64_t clamped_events() const noexcept {
    return clamped_;
  }

  /// Event tracing is opt-in: every instrumented layer reaches its tracer
  /// through the engine it already holds, so with no tracer installed (the
  /// default) instrumentation is a null-pointer test and nothing else.
  void set_tracer(Tracer* t) noexcept { tracer_ = t; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  /// Invariant checking follows the same opt-in pattern as tracing: a
  /// null-by-default pointer every instrumented layer reaches through the
  /// engine, so checker-off runs pay one pointer test per site and stay
  /// bit-identical to unchecked builds.
  void set_checker(check::Checker* c) noexcept { checker_ = c; }
  [[nodiscard]] check::Checker* checker() const noexcept { return checker_; }

 private:
  void step();

  CalendarQueue cal_;
  EventArena arena_;
  HeapEventQueue heap_;
  Tracer* tracer_ = nullptr;
  check::Checker* checker_ = nullptr;
  Cycles now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t executed_ = 0;
  std::uint64_t clamped_ = 0;
  QueueBackend backend_;
};

}  // namespace cm::sim
