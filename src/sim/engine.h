// Discrete-event simulation engine: a monotone cycle clock plus an event
// queue. Deterministic: events at equal timestamps run in label order.
//
// Sharded core (DESIGN.md §12): the engine owns N shards, each a complete
// calendar-queue/arena event loop with its own local clock. Simulated
// processors are partitioned across shards in contiguous blocks; every event
// is homed at a processor (or at kNoProc for setup/bookkeeping work, which
// lives on shard 0) and executes on its home's shard. A `ShardedEngine`
// driver (sharded_engine.h) advances all shards in conservative windows
// bounded by the network's minimum cross-shard latency. With one shard —
// the default — the engine behaves exactly like the classic sequential
// engine and `run()` is the classic drain loop.
//
// Determinism contract: every event carries a 64-bit label
// `(lane << 40) | count` where `lane` is the *creating* context's lane
// (lane 0 for setup, lane p+1 for an event homed at processor p) and
// `count` is that lane's private counter. Labels are a pure function of the
// simulation's causal history, so they are identical for every shard count
// and backend; each shard pops its queue in (t, label) order, which makes
// same-seed runs bit-identical across shard counts. A program that only
// ever schedules from lane 0 (every pre-shard unit test) sees labels
// 0, 1, 2, ... — exactly the legacy insertion sequence.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/types.h"

namespace cm::check {
class Checker;
}  // namespace cm::check

namespace cm::sim {

class Tracer;

/// The heart of the Proteus-style simulator. Client code schedules closures
/// at absolute or relative cycle times; `run()` drains the queue in
/// (time, label) order, advancing the clock as it goes.
///
/// Two queue backends share that contract (see event_queue.h): the default
/// `kCalendar` hot path stores callbacks in a slab arena behind a two-level
/// ladder queue; `kHeap` is the legacy binary heap of `std::function`s,
/// kept as the conformance reference and the host-perf baseline. Same-seed
/// runs are bit-identical across backends.
class Engine {
 public:
  /// "No pending event" sentinel for `shard_next_time`, and the window end
  /// that disables window clipping entirely.
  static constexpr Cycles kNever = ~Cycles{0};

  explicit Engine(QueueBackend backend = QueueBackend::kCalendar)
      : shards_(std::make_unique<Shard[]>(1)), backend_(backend) {
    tls_shard_ = 0;
  }
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  [[nodiscard]] QueueBackend backend() const noexcept { return backend_; }

  // -- Sharding ------------------------------------------------------------

  /// Partition `nprocs` simulated processors across `nshards` shards in
  /// contiguous blocks and pre-size the per-lane label counters. Must be
  /// called before any event is scheduled (the workload layer calls it
  /// right after constructing the engine). `nshards == 1` is the classic
  /// single-shard engine.
  void configure_shards(unsigned nshards, unsigned nprocs);

  [[nodiscard]] unsigned shards() const noexcept { return nshards_; }

  /// Which shard events homed at `p` execute on. Setup events (kNoProc)
  /// live on shard 0.
  [[nodiscard]] unsigned shard_of(ProcId p) const noexcept {
    if (nshards_ == 1 || p == kNoProc) return 0;
    const unsigned s = p / procs_per_shard_;
    return s < nshards_ ? s : nshards_ - 1;
  }

  /// The shard whose event (if any) is executing on this host thread.
  [[nodiscard]] unsigned current_shard() const noexcept { return tls_shard_; }

  /// Home processor of the event executing on this host thread (kNoProc
  /// between events and for setup-scheduled work).
  [[nodiscard]] ProcId current_home() const noexcept {
    return shards_[tls_shard_].current_home;
  }

  /// Label of the event executing on this host thread (0 between events).
  /// Tracer records and checker logs key their deterministic merges on it.
  [[nodiscard]] std::uint64_t current_label() const noexcept {
    return shards_[tls_shard_].current_label;
  }

  // -- Clock and scheduling ------------------------------------------------

  /// Current simulated time in cycles — of the shard executing on this host
  /// thread (the global clock of the classic single-shard engine).
  [[nodiscard]] Cycles now() const noexcept {
    return shards_[tls_shard_].now;
  }

  /// Largest local clock across shards: where the simulation as a whole has
  /// advanced to after a run. Equals `now()` for a single shard.
  [[nodiscard]] Cycles last_dispatch_time() const noexcept;

  /// Schedule `fn` (any void() callable; captures stay inline in the event
  /// arena when they fit) to run at absolute time `t`, homed at the calling
  /// context's processor — so the event stays on the calling shard. A
  /// correct caller never passes `t < now()` — a zero-latency round-trip
  /// lands exactly on `now()`, never before it. A past timestamp is a
  /// causality bug in the scheduling layer: the engine counts it in
  /// `clamped_events()` (exported as the `sim.clamped_events` metric) and
  /// clamps it to `now()`; Debug builds then assert, with the clamp
  /// distance reported on stderr (see `past_schedule_assert`).
  template <class F>
  void at(Cycles t, F&& fn) {
    Shard& sh = shards_[tls_shard_];
    schedule_local(sh, t, lane_of(sh),
                   static_cast<std::uint32_t>(sh.current_home),
                   std::forward<F>(fn));
  }

  /// Schedule `fn` to run `d` cycles from now on the calling shard.
  template <class F>
  void after(Cycles d, F&& fn) {
    at(now() + d, std::forward<F>(fn));
  }

  /// Schedule `fn` at absolute time `t`, homed at processor `home` — the
  /// one cross-shard edge in the system. Within the home's shard this is a
  /// plain push; to another shard during a parallel window it goes through
  /// that shard's mutex-protected inbox and is merged into its queue at the
  /// next window barrier. Conservative-sync contract: a cross-shard `t`
  /// must lie at or beyond the current window's end (i.e. the caller keeps
  /// `t >= creation time + lookahead`); Debug builds assert it.
  template <class F>
  void at_on(ProcId home, Cycles t, F&& fn) {
    const unsigned dst = shard_of(home);
    Shard& cur = shards_[tls_shard_];
    const unsigned lane = lane_of(cur);
    if (dst == tls_shard_ || !sharded_running_) {
      schedule_local(shards_[dst], t, lane, static_cast<std::uint32_t>(home),
                     std::forward<F>(fn));
    } else {
      enqueue_remote(dst, t, alloc_label(lane),
                     static_cast<std::uint32_t>(home),
                     std::function<void()>(std::forward<F>(fn)));
    }
  }

  /// Schedule `fn` at `d` cycles from now, homed at `home`.
  template <class F>
  void after_on(ProcId home, Cycles d, F&& fn) {
    at_on(home, now() + d, std::forward<F>(fn));
  }

  // -- Classic (single-shard) run loops ------------------------------------

  /// Run until the event queue is empty. Single-shard engines only; sharded
  /// runs go through ShardedEngine.
  void run();

  /// Run events with timestamp <= `t`; afterwards `now() == t` if the queue
  /// drained, else `now()` is the last executed event's time (the clock
  /// never advances past events that are still pending).
  void run_until(Cycles t);

  /// Run at most `max_events` further events (safety valve for tests).
  void run_bounded(std::size_t max_events);

  // -- Introspection -------------------------------------------------------

  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] std::size_t events_executed() const noexcept;

  /// Events whose requested time lay strictly in the past (clamp distance
  /// > 0) and were clamped to their shard's `now`. Nonzero means a layer
  /// scheduled backwards in time — a causality bug; Debug builds assert at
  /// the offending call site (after counting, so the clamp path is
  /// exercised in every build).
  [[nodiscard]] std::uint64_t clamped_events() const noexcept;

  /// Cross-shard events routed through shard inboxes during sharded runs.
  /// Deterministic for a fixed shard count; grows with the shard count
  /// (and is 0 for classic single-shard runs).
  [[nodiscard]] std::uint64_t cross_shard_msgs() const noexcept;

  /// Conservative windows executed by sharded runs (0 for classic runs).
  [[nodiscard]] std::uint64_t window_count() const noexcept {
    return window_count_;
  }

  /// Event tracing is opt-in: every instrumented layer reaches its tracer
  /// through the engine it already holds, so with no tracer installed (the
  /// default) instrumentation is a null-pointer test and nothing else.
  void set_tracer(Tracer* t) noexcept { tracer_ = t; }
  [[nodiscard]] Tracer* tracer() const noexcept { return tracer_; }

  /// Invariant checking follows the same opt-in pattern as tracing: a
  /// null-by-default pointer every instrumented layer reaches through the
  /// engine, so checker-off runs pay one pointer test per site and stay
  /// bit-identical to unchecked builds.
  void set_checker(check::Checker* c) noexcept { checker_ = c; }
  [[nodiscard]] check::Checker* checker() const noexcept { return checker_; }

  // -- Sharded-driver interface (used by sim::ShardedEngine) ---------------
  // These are the primitives the window loop is built from; application
  // code never calls them directly.

  /// Mark a multi-shard window loop as active: cross-shard `at_on` starts
  /// routing through inboxes and layers that must merge deterministically
  /// (checker) switch to deferred mode. `threads` additionally marks that
  /// shards run on concurrent host threads.
  void begin_sharded_run(bool threads) noexcept {
    sharded_running_ = true;
    threads_active_ = threads;
  }
  void end_sharded_run() noexcept {
    sharded_running_ = false;
    threads_active_ = false;
    tls_shard_ = 0;
  }
  [[nodiscard]] bool in_sharded_run() const noexcept {
    return sharded_running_;
  }

  /// Whether shards are currently running on concurrent host threads.
  /// Layers with lazily-grown per-lane state (tracer msg ids, checker
  /// tokens) assert against this before resizing.
  [[nodiscard]] bool threads_active() const noexcept {
    return threads_active_;
  }

  /// Number of label lanes pre-sized by `configure_shards` (nprocs + 1), or
  /// 1 for an unconfigured engine. Layers that keep per-lane counters size
  /// their arrays from this so no growth happens under threads.
  [[nodiscard]] unsigned configured_lanes() const noexcept {
    return static_cast<unsigned>(lane_cnt_.size());
  }

  /// Merge every inbox entry into its shard's event queue. Serial phase
  /// only (window barrier or sequential loop head).
  void drain_inboxes();

  /// Earliest pending timestamp on shard `s`, or kNever when its queue is
  /// empty. Serial phase only (may re-spill the calendar rung).
  [[nodiscard]] Cycles shard_next_time(unsigned s);

  /// Record the exclusive end of the window about to run (kNever outside
  /// windows); cross-shard sends assert against it.
  void set_window_end(Cycles e) noexcept { window_end_ = e; }

  /// Execute every event on shard `s` with timestamp < `end`, pinning this
  /// host thread's ambient shard to `s` for the duration.
  void run_shard_window(unsigned s, Cycles end);

  /// Count a completed window and fire the barrier hook (serial phase).
  void bump_window() {
    ++window_count_;
    if (barrier_hook_) barrier_hook_();
  }

  /// Hook fired after every completed window, in the serial phase — the
  /// checker uses it to replay its per-shard logs in (t, label) order.
  void set_barrier_hook(std::function<void()> hook) {
    barrier_hook_ = std::move(hook);
  }

 private:
  static constexpr unsigned kLaneShift = 40;  // 2^40 events per lane

  struct InboxEntry {
    Cycles t;
    std::uint64_t label;
    std::uint32_t home;
    std::function<void()> fn;
  };

  struct Shard {
    CalendarQueue cal;
    EventArena arena;
    HeapEventQueue heap;
    Cycles now = 0;
    ProcId current_home = kNoProc;
    std::uint64_t current_label = 0;
    std::size_t executed = 0;
    std::uint64_t clamped = 0;
    std::uint64_t inbound = 0;  // cross-shard events received (under mu)
    std::mutex inbox_mu;
    std::vector<InboxEntry> inbox;
  };

  /// Debug-only half of the past-schedule diagnostic: prints the clamp
  /// distance to stderr, then asserts. The caller increments `clamped`
  /// first, so Release clamp accounting is exercised in Debug too.
  static void past_schedule_assert(Cycles distance) noexcept;

  /// Lane of the context executing on shard `sh`: 0 when idle/setup,
  /// home+1 while an event homed at a processor runs.
  [[nodiscard]] static unsigned lane_of(const Shard& sh) noexcept {
    return sh.current_home == kNoProc
               ? 0u
               : static_cast<unsigned>(sh.current_home) + 1u;
  }

  /// Host shard that owns lane's label counter (for the race assert).
  [[nodiscard]] unsigned lane_owner(unsigned lane) const noexcept {
    return lane == 0 ? 0u : shard_of(static_cast<ProcId>(lane - 1));
  }

  [[nodiscard]] std::uint64_t alloc_label(unsigned lane) {
    assert(!threads_active_ || lane_owner(lane) == tls_shard_);
    if (lane >= lane_cnt_.size()) [[unlikely]] {
      // Unconfigured engines (plain unit tests) grow lanes on first use;
      // configured ones pre-size, so this never runs under threads.
      assert(!threads_active_);
      lane_cnt_.resize(lane + 1, 0);
    }
    return (std::uint64_t{lane} << kLaneShift) | lane_cnt_[lane]++;
  }

  template <class F>
  void schedule_local(Shard& sh, Cycles t, unsigned lane, std::uint32_t home,
                      F&& fn) {
    if (t < sh.now) [[unlikely]] {
      ++sh.clamped;
      past_schedule_assert(sh.now - t);
      t = sh.now;
    }
    const std::uint64_t label = alloc_label(lane);
    if (backend_ == QueueBackend::kCalendar) {
      sh.cal.push(t, label, sh.arena.emplace(std::forward<F>(fn)), home);
    } else {
      sh.heap.push(t, label, home,
                   std::function<void()>(std::forward<F>(fn)));
    }
  }

  void enqueue_remote(unsigned dst, Cycles t, std::uint64_t label,
                      std::uint32_t home, std::function<void()> fn);

  void step(Shard& sh);

  std::unique_ptr<Shard[]> shards_;
  unsigned nshards_ = 1;
  unsigned procs_per_shard_ = 1;
  std::vector<std::uint64_t> lane_cnt_{0};  // lane 0 always exists
  Tracer* tracer_ = nullptr;
  check::Checker* checker_ = nullptr;
  std::function<void()> barrier_hook_;
  Cycles window_end_ = kNever;
  std::uint64_t window_count_ = 0;
  bool sharded_running_ = false;
  bool threads_active_ = false;
  QueueBackend backend_;

  // Which shard's event is executing on this host thread. Thread-local so
  // kThreads workers each see their own shard; 0 on the main thread. This
  // IS the shard-safety machinery (each worker only ever reads its own
  // copy), not state shared across workers.
  // simlint: allow SS001
  inline static thread_local unsigned tls_shard_ = 0;
};

}  // namespace cm::sim
