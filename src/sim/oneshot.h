// One-shot synchronisation between simulated threads: a value set exactly
// once, awaited at most once. Used for RPC replies and migrated-activation
// return values. Timing is the caller's responsibility: the fulfilling side
// runs inside an engine event that already models delivery time, and the
// awaiting side charges any wake-up CPU cost after it resumes.
#pragma once

#include <cassert>
#include <coroutine>
#include <memory>
#include <optional>
#include <utility>

#include "sim/task.h"

namespace cm::sim {

/// Unit type for OneShot<void>-like uses.
struct Unit {};

template <class T>
class OneShot {
 public:
  OneShot() : state_(std::make_shared<State>()) {}

  /// Fulfil the one-shot. If a waiter is suspended on it, the waiter resumes
  /// immediately (same simulated instant).
  void set(T value) const {
    State& st = *state_;
    assert(!st.value.has_value() && "OneShot fulfilled twice");
    st.value.emplace(std::move(value));
    if (st.waiter) {
      auto w = std::exchange(st.waiter, nullptr);
      w.resume();
    }
  }

  [[nodiscard]] bool ready() const noexcept { return state_->value.has_value(); }

  /// Awaitable: suspend until `set` is called (no suspension if already set).
  [[nodiscard]] auto get() const {
    struct Awaiter {
      std::shared_ptr<State> st;
      bool await_ready() const noexcept { return st->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!st->waiter && "OneShot awaited twice");
        st->waiter = h;
      }
      T await_resume() { return std::move(*st->value); }
    };
    return Awaiter{state_};
  }

 private:
  struct State {
    std::optional<T> value;
    std::coroutine_handle<> waiter;
  };
  std::shared_ptr<State> state_;
};

}  // namespace cm::sim
