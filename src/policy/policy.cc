#include "policy/policy.h"

#include <algorithm>

#include "check/checker.h"
#include "core/metrics.h"
#include "sim/tracer.h"

namespace cm::policy {

void put_policy_stats(core::Metrics& m, const PolicyStats& s) {
  m.put("policy.samples", s.samples);
  m.put("policy.global_passes", s.global_passes);
  m.put("policy.load_reports", s.load_reports);
  m.put("policy.broadcast_rounds", s.broadcast_rounds);
  m.put("policy.digests", s.digests);
  m.put("policy.decisions", s.decisions);
  m.put("policy.moves_issued", s.moves_issued);
  m.put("policy.moves_completed", s.moves_completed);
  m.put("policy.suppressed_cooldown", s.suppressed_cooldown);
  m.put("policy.suppressed_bounce", s.suppressed_bounce);
  m.put("policy.suppressed_load", s.suppressed_load);
  m.put("policy.suppressed_cap", s.suppressed_cap);
  m.put("policy.rebounces", s.rebounces);
  m.put("policy.phase_read_edges", s.phase_read_edges);
  m.put("policy.phase_update_edges", s.phase_update_edges);
  m.put("policy.flips_on", s.flips_on);
  m.put("policy.flips_off", s.flips_off);
  m.put("policy.accesses", s.accesses);
  m.put("policy.writes", s.writes);
  m.put("policy.remote_accesses", s.remote_accesses);
  m.put("policy.max_backlog", s.max_backlog);
  m.put("policy.managed", s.managed);
}

PolicyEngine::PolicyEngine(core::Runtime& rt, PolicyConfig cfg)
    : rt_(&rt), cfg_(cfg), nprocs_(rt.machine().size()),
      samplers_(rt.machine().size()),
      slices_(rt.machine().engine().shards()),
      choosers_(rt.machine().engine().shards(),
                core::AdaptiveChooser(cfg.chooser)),
      views_(rt.machine().size()),
      board_levels_(rt.machine().size(), 0) {
  for (Sampler& s : samplers_) {
    s.timer = std::make_unique<sim::Timer>(rt.machine().engine());
  }
}

void PolicyEngine::manage(core::ObjectId id, core::MobileObject* mobile,
                          unsigned object_words, bool replicable) {
  // Mid-run registration on a multi-shard engine would race readers on
  // other shards; those runs profile the setup-time population only.
  if (engine().shards() > 1 && engine().in_sharded_run()) return;
  if (index_.contains(id)) return;
  index_.emplace(id, static_cast<std::uint32_t>(objects_.size()));
  Managed& m = objects_.emplace_back();
  m.id = id;
  m.mobile = mobile;
  m.words = object_words;
  m.replicable = replicable;
  if (replicable && cfg_.phase_adaptive && !cfg_.observe_only) {
    // Pre-built (construction is sim-free) so a flip never allocates or
    // registers anything mid-run.
    m.replica = std::make_unique<core::Replicated>(*rt_, id, object_words);
  }
}

void PolicyEngine::start() {
  started_ = true;
  if (check::Checker* ck = rt_->checker()) {
    ck->on_policy_config(cfg_.cooldown);
  }
  sim::Engine& eng = engine();
  for (ProcId p = 0; p < nprocs_; ++p) {
    samplers_[p].parked = false;
    eng.at_on(p, cfg_.sample_interval, [this, p] { tick(p); });
  }
}

void PolicyEngine::on_access(core::ObjectId id, ProcId accessor, bool write) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Managed& m = objects_[it->second];
  PolicyStats& st = slice();
  ++st.accesses;
  if (write) {
    ++st.writes;
    ++m.win_writes;
  } else {
    ++m.win_reads;
  }
  const ProcId home = rt_->objects().home_of(id);
  if (accessor != home) {
    ++st.remote_accesses;
    ++m.win_remote;
    std::uint64_t& c = m.win_by_accessor[accessor];
    ++c;
    // Strictly-greater replacement: the first accessor to reach a count
    // keeps the argmax, so ties never depend on hash iteration order.
    if (c > m.win_top_count) {
      m.win_top_count = c;
      m.win_top = accessor;
    }
  }
  chooser_slice().record(id, accessor, write);
  Sampler& s = samplers_[home];
  ++s.accesses_since;
  if (s.parked && started_) {
    // Revive the home's sampler from the home's own event context (the
    // method body executes there), keeping the tick on the home's shard.
    s.parked = false;
    s.idle = 0;
    engine().after_on(home, cfg_.sample_interval, [this, home] {
      tick(home);
    });
  }
}

core::Replicated* PolicyEngine::replica_of(core::ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return nullptr;
  Managed& m = objects_[it->second];
  return m.flipped ? m.replica.get() : nullptr;
}

sim::Task<> PolicyEngine::write_barrier(core::Ctx& ctx, core::ObjectId id) {
  if (core::Replicated* r = replica_of(id)) {
    co_await r->invalidate_all(ctx);
  }
}

PolicyStats PolicyEngine::stats() const {
  PolicyStats out;
  for (const PolicyStats& s : slices_) out.add(s);
  out.managed = objects_.size();
  return out;
}

PolicyEngine::Phase PolicyEngine::phase_of(core::ObjectId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? Phase::kNeutral : objects_[it->second].phase;
}

bool PolicyEngine::replicated_mode(core::ObjectId id) const {
  auto it = index_.find(id);
  return it != index_.end() && objects_[it->second].flipped;
}

void PolicyEngine::tick(ProcId p) {
  Sampler& s = samplers_[p];
  ++s.ticks;
  PolicyStats& st = slice();
  ++st.samples;
  sim::Engine& eng = engine();
  const Cycles now = eng.now();
  const Cycles free_at = rt_->machine().proc(p).free_at();
  const Cycles backlog = free_at > now ? free_at - now : 0;
  if (backlog > st.max_backlog) st.max_backlog = backlog;
  const bool global = (s.ticks % cfg_.global_every) == 0;
  if (sim::Tracer* tr = eng.tracer()) {
    tr->record(sim::TraceEvent::kPolicySample, p,
               {{"backlog", backlog},
                {"accesses", s.accesses_since},
                {"tick", s.ticks},
                {"global", global ? 1u : 0u}});
  }

  unsigned moved = 0;
  for (Managed& m : objects_) {
    if (rt_->objects().home_of(m.id) != p) continue;
    const std::uint64_t total = m.win_reads + m.win_writes;
    if (total > 0) {
      evaluate_phase(p, m, total);
      if (global && cfg_.rebalance) {
        // Satellite feedback: the rebalancer moved this object here and it
        // immediately wants to leave again — that is a bounce, and it
        // raises the chooser's bounce rate (which in turn vetoes moves).
        if (m.probe_rebounce && total >= cfg_.min_accesses) {
          m.probe_rebounce = false;
          if (m.win_top != sim::kNoProc &&
              static_cast<double>(m.win_top_count) /
                      static_cast<double>(total) >=
                  cfg_.attract_share) {
            chooser_slice().record_bounce(m.id);
            ++st.rebounces;
          }
        }
        maybe_move(p, m, total, moved);
      }
    }
    if (global || total > 0) reset_window(m);
  }

  if (global) {
    ++st.global_passes;
    const auto level = static_cast<std::uint8_t>(
        std::min<Cycles>(backlog / cfg_.load_quantum, 255));
    ++st.load_reports;
    if (p == cfg_.coordinator) {
      board_note(p, level);
    } else {
      sim::detach(send_report(p, level));
    }
  }

  const bool active = s.accesses_since > 0 || backlog > 0;
  s.accesses_since = 0;
  if (active) {
    s.idle = 0;
  } else {
    ++s.idle;
  }
  if (s.idle < cfg_.idle_stop_after) {
    s.timer->arm(cfg_.sample_interval, [this, p] { tick(p); });
  } else {
    s.parked = true;  // the next on_access at p re-arms
  }
}

void PolicyEngine::evaluate_phase(ProcId p, Managed& m, std::uint64_t total) {
  const double wr =
      static_cast<double>(m.win_writes) / static_cast<double>(total);
  Phase next = m.phase;
  if (total >= cfg_.phase_min_accesses && wr <= cfg_.read_phase_ratio) {
    next = Phase::kRead;
  } else if (m.win_writes >= cfg_.update_min_writes &&
             wr >= cfg_.update_phase_ratio) {
    next = Phase::kUpdate;
  }
  if (next == m.phase) return;
  PolicyStats& st = slice();
  m.phase = next;
  const bool read_edge = next == Phase::kRead;
  if (read_edge) {
    ++st.phase_read_edges;
  } else {
    ++st.phase_update_edges;
  }
  sim::Engine& eng = engine();
  if (sim::Tracer* tr = eng.tracer()) {
    tr->record(sim::TraceEvent::kPolicyDecision, p,
               {{"obj", m.id},
                {"kind", read_edge ? 1u : 2u},  // 1 = READ, 2 = UPDATE edge
                {"total", total},
                {"writes", m.win_writes}});
  }
  if (m.replica == nullptr) return;  // observe-only / not phase-adaptive
  if (read_edge && !m.flipped) {
    m.flipped = true;
    ++st.flips_on;
    if (check::Checker* ck = rt_->checker()) ck->on_policy_flip(m.id, true);
    if (sim::Tracer* tr = eng.tracer()) {
      tr->record(sim::TraceEvent::kPolicyFlip, p, {{"obj", m.id}, {"on", 1}});
    }
  } else if (!read_edge && m.flipped) {
    m.flipped = false;
    ++st.flips_off;
    if (check::Checker* ck = rt_->checker()) ck->on_policy_flip(m.id, false);
    if (sim::Tracer* tr = eng.tracer()) {
      tr->record(sim::TraceEvent::kPolicyFlip, p, {{"obj", m.id}, {"on", 0}});
    }
    // Writers stop invalidating the moment the flip is off; clear the
    // remote valid bits so a later flip-on starts from a coherent set.
    sim::detach(invalidate_replicas(m.replica.get(), p));
  }
}

void PolicyEngine::maybe_move(ProcId p, Managed& m, std::uint64_t total,
                              unsigned& moved) {
  if (m.flipped) return;  // replication owns it; never move a flipped object
  if (total < cfg_.min_accesses) return;
  if (m.win_top == sim::kNoProc) return;
  const double share =
      static_cast<double>(m.win_top_count) / static_cast<double>(total);
  if (share < cfg_.attract_share) return;

  PolicyStats& st = slice();
  ++st.decisions;
  sim::Engine& eng = engine();
  if (sim::Tracer* tr = eng.tracer()) {
    tr->record(sim::TraceEvent::kPolicyDecision, p,
               {{"obj", m.id},
                {"kind", 0u},  // 0 = move verdict
                {"target", m.win_top},
                {"share_pm", static_cast<std::uint64_t>(share * 1000.0)}});
  }
  const Cycles now = eng.now();
  if (m.ever_moved && now - m.last_move_at < cfg_.cooldown) {
    ++st.suppressed_cooldown;
    return;
  }
  if (chooser_slice().bounce_rate(m.id) > cfg_.chooser.bounce_rate_cap) {
    ++st.suppressed_bounce;
    return;
  }
  const View& v = views_[p];
  if (v.round > 0 && v.levels[m.win_top] > v.levels[p] + cfg_.load_slack) {
    ++st.suppressed_load;  // digest says the target is already overloaded
    return;
  }
  if (moved >= cfg_.degree_of_migration) {
    ++st.suppressed_cap;
    return;
  }
  ++moved;
  // Cooldown opens at the committed decision, observe mode included, so
  // the decision stream keeps its hysteresis shape at every shard count.
  m.last_move_at = now;
  m.ever_moved = true;
  if (cfg_.observe_only) return;
  ++st.moves_issued;
  m.probe_rebounce = true;
  if (check::Checker* ck = rt_->checker()) ck->on_policy_move(m.id);
  if (sim::Tracer* tr = eng.tracer()) {
    tr->record(sim::TraceEvent::kPolicyMove, p,
               {{"obj", m.id}, {"from", p}, {"to", m.win_top}});
  }
  sim::detach(do_move(&m, p, m.win_top));
}

void PolicyEngine::reset_window(Managed& m) {
  m.win_reads = 0;
  m.win_writes = 0;
  m.win_remote = 0;
  m.win_top_count = 0;
  m.win_top = sim::kNoProc;
  m.win_by_accessor.clear();
}

void PolicyEngine::board_note(ProcId from, std::uint8_t level) {
  board_levels_[from] = level;
  if (++board_reports_ < nprocs_) return;
  board_reports_ = 0;
  ++round_;
  PolicyStats& st = slice();
  ++st.broadcast_rounds;
  for (ProcId q = 0; q < nprocs_; ++q) {
    ++st.digests;
    if (q == cfg_.coordinator) {
      views_[q].round = round_;
      views_[q].levels = board_levels_;
    } else {
      sim::detach(send_digest(q, round_, board_levels_));
    }
  }
}

sim::Task<> PolicyEngine::do_move(Managed* m, ProcId from, ProcId to) {
  // Rebalance order to the chosen destination, then the standard attract
  // protocol pulls the object there (charges, checker move hooks and stats
  // all live in MobileObject::attract / the locator's move path).
  const core::CostModel& c = rt_->cost();
  co_await rt_->charge(from, c.sender_total(cfg_.ctl_words),
                       core::Category::kObjectMove);
  co_await rt_->transfer(from, to, cfg_.ctl_words);
  co_await rt_->charge(to, c.receiver_total(cfg_.ctl_words, false),
                       core::Category::kObjectMove);
  core::Ctx ctx{rt_, to};
  co_await m->mobile->attract(ctx);
  // Keep the replica set's notion of the primary's home current, so a
  // later phase flip serves from the right processor.
  if (m->replica != nullptr) m->replica->rehome(ctx.proc);
  ++slice().moves_completed;
}

sim::Task<> PolicyEngine::send_report(ProcId from, std::uint8_t level) {
  co_await rt_->transfer(from, cfg_.coordinator, cfg_.report_words);
  // Delivered: this continuation runs at the coordinator's events.
  board_note(from, level);
}

sim::Task<> PolicyEngine::send_digest(ProcId to, std::uint32_t round,
                                      std::vector<std::uint8_t> levels) {
  co_await rt_->transfer(cfg_.coordinator, to, cfg_.digest_words);
  View& v = views_[to];
  if (round > v.round) {
    v.round = round;
    v.levels = std::move(levels);
  }
}

sim::Task<> PolicyEngine::invalidate_replicas(core::Replicated* r,
                                              ProcId at) {
  core::Ctx ctx{rt_, at};
  co_await r->invalidate_all(ctx);
}

}  // namespace cm::policy
