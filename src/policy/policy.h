// Load-aware placement policy: sensing, deciding and actuating over the
// mechanisms the rest of the repo already provides (DESIGN.md §13).
//
// The paper's annotation moves one activation to its data; this layer
// decides *where objects and computations should live over time*:
//
//  * SENSING — a per-processor load sampler on the engine clock
//    (sim::Timer): queue backlog from the processor account, per-object
//    windowed access profiles fed by the apps' instance-method bodies, and
//    the locator's bounce feedback via the shared AdaptiveChooser. Samplers
//    park after a few idle windows and are revived by the next access at
//    their processor, so a drained machine drains the policy too.
//  * DECIDING — a two-tier rebalancer in the spirit of two-level NUMA
//    schedulers: every sample is a local pass over the objects homed at
//    that processor; every `global_every`-th sample is a global pass that
//    reports a quantized load level to a coordinator, which broadcasts a
//    digest back (all cross-processor load knowledge travels in messages,
//    never via host-side shared reads — that is what keeps multi-shard
//    observe runs deterministic). Moves respect migration hysteresis: a
//    per-object cooldown, a `degree_of_migration` cap per pass, a chooser
//    bounce-rate veto, and a digest-based target-overload veto.
//  * ACTUATING — a bounded batch of MobileObject::attract re-homes, and a
//    phase detector (PHASE_READ / PHASE_UPDATE) that flips hot read-mostly
//    objects into core::Replicated mode and back on write bursts.
//
// Null-by-default, the Tracer/Checker pattern: when no PolicyEngine is
// constructed, every app-side site is a single pointer test and runs are
// byte-identical to a build that never heard of policy.
//
// Determinism rules:
//  * `on_access` is called from the method body executing at the object's
//    home, so each object's window profile is single-writer (its home
//    shard); the dominant accessor is tracked with an incremental argmax
//    (first to reach a count wins — never a hash-map iteration).
//  * Actual moves and replication flips mutate global tables (ObjectSpace,
//    the replica registry), so actuating mode is single-shard only;
//    `observe_only` senses, decides and traces without actuating and is
//    safe — and byte-identical — at every shard count and backend.
//  * Mid-run `manage()` calls are ignored on multi-shard engines (the
//    registration tables would race); multi-shard observe runs profile the
//    setup-time object population.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/adaptive.h"
#include "core/mobile.h"
#include "core/replication.h"
#include "core/runtime.h"
#include "sim/task.h"
#include "sim/timer.h"
#include "sim/types.h"

namespace cm::core {
class Metrics;
}  // namespace cm::core

namespace cm::policy {

using sim::Cycles;
using sim::ProcId;

struct PolicyConfig {
  bool enabled = false;
  /// Sense, decide and trace but never move or flip anything. The only
  /// policy mode legal on a multi-shard engine (see header comment).
  bool observe_only = false;

  // ---- sampler ----
  Cycles sample_interval = 5'000;  // local pass period per processor
  unsigned global_every = 4;       // every Nth local pass is a global pass
  unsigned idle_stop_after = 3;    // idle samples before a sampler parks
  Cycles load_quantum = 2'000;     // backlog cycles per digest load level
  ProcId coordinator = 0;          // collects reports, broadcasts digests
  unsigned report_words = 2;       // load-report message payload
  unsigned digest_words = 4;       // digest broadcast message payload

  // ---- rebalancer ----
  bool rebalance = true;
  unsigned degree_of_migration = 2;  // max moves per processor per pass
  Cycles cooldown = 30'000;          // per-object migration hysteresis
  std::uint64_t min_accesses = 8;    // window accesses before deciding
  double attract_share = 0.6;        // dominant remote share to move
  unsigned load_slack = 2;           // digest levels a target may exceed us
  unsigned ctl_words = 2;            // rebalance-order message payload

  // ---- phase detector ----
  bool phase_adaptive = false;
  std::uint64_t phase_min_accesses = 12;  // window accesses for a READ edge
  double read_phase_ratio = 0.05;    // write ratio at/below this -> READ
  double update_phase_ratio = 0.25;  // write ratio at/above this -> UPDATE
  std::uint64_t update_min_writes = 3;  // window writes for an UPDATE edge

  /// Tunables for the per-shard chooser slices the policy feeds (accesses,
  /// rebalance bounces) and consults (`bounce_rate_cap` vetoes moves).
  core::AdaptiveChooser::Tunables chooser{};
};

/// Flat counters exported under "policy.*" keys (put_policy_stats). Kept
/// per engine shard and merged on read, the RtStats pattern.
struct PolicyStats {
  std::uint64_t samples = 0;        // local sampler passes
  std::uint64_t global_passes = 0;  // ... of which global
  std::uint64_t load_reports = 0;   // reports sent to the coordinator
  std::uint64_t broadcast_rounds = 0;
  std::uint64_t digests = 0;        // per-processor digest deliveries sent
  std::uint64_t decisions = 0;      // move verdicts from window profiles
  std::uint64_t moves_issued = 0;
  std::uint64_t moves_completed = 0;
  std::uint64_t suppressed_cooldown = 0;
  std::uint64_t suppressed_bounce = 0;
  std::uint64_t suppressed_load = 0;
  std::uint64_t suppressed_cap = 0;
  std::uint64_t rebounces = 0;      // policy moves that wanted to bounce
  std::uint64_t phase_read_edges = 0;
  std::uint64_t phase_update_edges = 0;
  std::uint64_t flips_on = 0;       // replication-mode flips
  std::uint64_t flips_off = 0;
  std::uint64_t accesses = 0;       // profiled object accesses
  std::uint64_t writes = 0;
  std::uint64_t remote_accesses = 0;
  Cycles max_backlog = 0;           // worst sampled queue backlog
  std::uint64_t managed = 0;        // objects under policy (set on merge)

  void add(const PolicyStats& o) {
    samples += o.samples;
    global_passes += o.global_passes;
    load_reports += o.load_reports;
    broadcast_rounds += o.broadcast_rounds;
    digests += o.digests;
    decisions += o.decisions;
    moves_issued += o.moves_issued;
    moves_completed += o.moves_completed;
    suppressed_cooldown += o.suppressed_cooldown;
    suppressed_bounce += o.suppressed_bounce;
    suppressed_load += o.suppressed_load;
    suppressed_cap += o.suppressed_cap;
    rebounces += o.rebounces;
    phase_read_edges += o.phase_read_edges;
    phase_update_edges += o.phase_update_edges;
    flips_on += o.flips_on;
    flips_off += o.flips_off;
    accesses += o.accesses;
    writes += o.writes;
    remote_accesses += o.remote_accesses;
    if (o.max_backlog > max_backlog) max_backlog = o.max_backlog;
    managed += o.managed;
  }
};

/// Flat "policy.*" keys in the unified metrics schema.
void put_policy_stats(core::Metrics& m, const PolicyStats& s);

class PolicyEngine {
 public:
  /// Per-object phase state (Sniper's PHASE_READ / PHASE_UPDATE idiom).
  enum class Phase : unsigned char { kNeutral = 0, kRead, kUpdate };

  /// Construct after the machine/network/checker are in place; call
  /// `start()` once the managed objects are registered (bootstraps one
  /// sampler per processor). Recording accesses before `start()` is legal
  /// and only feeds profiles.
  PolicyEngine(core::Runtime& rt, PolicyConfig cfg);
  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Put an object under policy management. `mobile` is the handle the
  /// rebalancer actuates through (must outlive the engine); `replicable`
  /// opts the object into phase-adaptive replication. Ignored mid-run on
  /// multi-shard engines (see header), and for already-managed ids.
  void manage(core::ObjectId id, core::MobileObject* mobile,
              unsigned object_words, bool replicable);

  /// Bootstrap the per-processor samplers. Call at setup time, after the
  /// initial `manage()` calls.
  void start();

  /// One profiled access to `id` from `accessor`. Apps call this inside
  /// the instance-method body (which executes at the object's home), or at
  /// the reader's processor on a replica-served read. Never schedules,
  /// draws RNG or charges cycles — except that it may revive the home's
  /// parked sampler.
  void on_access(core::ObjectId id, ProcId accessor, bool write);

  /// The object's replica set while the phase detector has it flipped into
  /// replication mode; null otherwise (including always for unmanaged ids,
  /// observe-only mode, and non-`phase_adaptive` configs). Readers route
  /// through `ensure()` on the returned set.
  [[nodiscard]] core::Replicated* replica_of(core::ObjectId id);

  /// Writer-side barrier: invalidates the replica set if (and only if)
  /// `id` is currently flipped. Apps await this in write bodies; free when
  /// the object is not in replication mode.
  [[nodiscard]] sim::Task<> write_barrier(core::Ctx& ctx, core::ObjectId id);

  [[nodiscard]] const PolicyConfig& config() const noexcept { return cfg_; }
  /// All shard slices merged, plus the managed-object count.
  [[nodiscard]] PolicyStats stats() const;
  /// The shard-0 chooser slice, for single-shard consumers (the locator's
  /// `set_chooser`, tests). Policy decisions always use the calling
  /// shard's own slice.
  [[nodiscard]] core::AdaptiveChooser& chooser() noexcept {
    return choosers_[0];
  }

  // ---- introspection for tests --------------------------------------------
  [[nodiscard]] std::size_t managed_count() const noexcept {
    return objects_.size();
  }
  [[nodiscard]] Phase phase_of(core::ObjectId id) const;
  /// True while the phase detector has `id` flipped into replication mode.
  [[nodiscard]] bool replicated_mode(core::ObjectId id) const;

 private:
  /// One object under management. Window counters are written only from
  /// events at the object's home (single-writer per shard).
  struct Managed {
    core::ObjectId id = 0;
    core::MobileObject* mobile = nullptr;
    unsigned words = 0;
    bool replicable = false;
    std::unique_ptr<core::Replicated> replica;  // actuating configs only
    bool flipped = false;       // currently served from replicas
    Phase phase = Phase::kNeutral;
    Cycles last_move_at = 0;
    bool ever_moved = false;
    bool probe_rebounce = false;  // policy moved it; watch for a bounce
    // -- current window profile --
    std::uint64_t win_reads = 0;
    std::uint64_t win_writes = 0;
    std::uint64_t win_remote = 0;
    std::uint64_t win_top_count = 0;  // incremental argmax over remote
    ProcId win_top = sim::kNoProc;    // accessors; ties keep the earliest
    std::unordered_map<ProcId, std::uint64_t> win_by_accessor;
  };

  /// One processor's sampler. Touched only from events homed at that
  /// processor.
  struct Sampler {
    std::unique_ptr<sim::Timer> timer;
    bool parked = true;
    unsigned idle = 0;
    std::uint64_t ticks = 0;
    std::uint64_t accesses_since = 0;  // activity since the last sample
  };

  /// A processor's private copy of the last load digest it received.
  struct View {
    std::uint32_t round = 0;  // 0 = never received one
    std::vector<std::uint8_t> levels;
  };

  [[nodiscard]] sim::Engine& engine() const noexcept {
    return rt_->machine().engine();
  }
  [[nodiscard]] PolicyStats& slice() noexcept {
    return slices_[engine().current_shard()];
  }
  [[nodiscard]] core::AdaptiveChooser& chooser_slice() noexcept {
    return choosers_[engine().current_shard()];
  }

  void tick(ProcId p);
  void evaluate_phase(ProcId p, Managed& m, std::uint64_t total);
  void maybe_move(ProcId p, Managed& m, std::uint64_t total, unsigned& moved);
  static void reset_window(Managed& m);
  /// Coordinator-side: fold a load report into the board; broadcast a
  /// digest once enough reports arrived. Runs at the coordinator's events.
  void board_note(ProcId from, std::uint8_t level);

  [[nodiscard]] sim::Task<> do_move(Managed* m, ProcId from, ProcId to);
  [[nodiscard]] sim::Task<> send_report(ProcId from, std::uint8_t level);
  [[nodiscard]] sim::Task<> send_digest(ProcId to, std::uint32_t round,
                                        std::vector<std::uint8_t> levels);
  [[nodiscard]] sim::Task<> invalidate_replicas(core::Replicated* r,
                                                ProcId at);

  core::Runtime* rt_;
  PolicyConfig cfg_;
  ProcId nprocs_;
  bool started_ = false;
  std::deque<Managed> objects_;  // deque: stable addresses for coroutines
  std::unordered_map<core::ObjectId, std::uint32_t> index_;
  std::vector<Sampler> samplers_;             // one per processor
  std::vector<PolicyStats> slices_;           // one per engine shard
  std::vector<core::AdaptiveChooser> choosers_;  // one per engine shard
  std::vector<View> views_;                   // one per processor
  // -- coordinator load board; touched only at the coordinator's events --
  std::vector<std::uint8_t> board_levels_;
  unsigned board_reports_ = 0;
  std::uint32_t round_ = 0;
};

}  // namespace cm::policy
