// Placement-policy ablation (DESIGN.md §13): what the load-aware policy
// layer buys over the static placement every other bench uses.
//
//  (a) policy ladder on a skewed B-tree — each requester hammers its own
//      key slice (`key_affinity`), so every leaf has a dominant remote
//      accessor. Rows: static placement, observe-only (decisions without
//      actuation), the rebalancer, and rebalancer + phase detector. The
//      rebalancer moves hot leaves to their dominant accessor and cuts
//      remote calls; the phase detector additionally flips read-mostly
//      internal nodes into replication mode.
//  (b) key-affinity sweep — how skewed must the workload be before the
//      rebalancer finds work? At affinity 0 every leaf is uniformly
//      shared and the policy correctly stays quiet.
//  (c) counting-network control — balancers and counters are write-shared
//      by construction; under paper-default hysteresis the rebalancer
//      issues no moves (aggressive thresholds are shown for contrast).
//  (d) degree-of-migration sweep — the per-pass move cap trades
//      convergence speed against move bursts.
//
// Flags: --check installs the invariant checker on every run; repeated
// `--tune key=value` sets AdaptiveChooser tunables by field name (e.g.
// `--tune bounce_rate_cap 0.25` — see core/adaptive.h) for the chooser
// slices the policy feeds and consults. Optional positional argument:
// unified-schema JSON export path (default ablation_policy.json).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/workload.h"
#include "core/adaptive.h"
#include "core/metrics.h"

#include "bench_util.h"

using cm::apps::BTreeConfig;
using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::core::Mechanism;
using cm::core::Scheme;
using cm::policy::PolicyConfig;

namespace {

struct Options {
  bool check = false;
  cm::core::AdaptiveChooser::Tunables tunables;
};

/// The rebalancer's showcase: lookup-only RPC B-tree, few keys (so a
/// requester's slice maps to a couple of leaves and per-window access
/// counts clear the decision thresholds), high key affinity.
BTreeConfig skewed_tree(const Options& opt) {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kRpc, false, false};
  cfg.mesh = false;
  cfg.requesters = 8;
  cfg.nkeys = 200;
  cfg.max_entries = 20;
  cfg.insert_ratio = 0.0;
  cfg.key_affinity = 0.95;
  cfg.node_procs = 8;
  cfg.ops_per_requester = 200;
  cfg.check = opt.check;
  return cfg;
}

PolicyConfig rebalance_policy(const Options& opt) {
  PolicyConfig p;
  p.enabled = true;
  p.sample_interval = 15'000;
  p.global_every = 1;
  p.min_accesses = 3;
  p.attract_share = 0.55;
  p.degree_of_migration = 4;
  p.chooser = opt.tunables;
  return p;
}

void put_row(cm::core::MetricsRegistry* reg, const std::string& label,
             const RunStats& st) {
  if (reg == nullptr) return;
  cm::apps::put_run_stats(reg->record(label), st);
}

void print_policy_row(const char* label, const RunStats& st) {
  const std::uint64_t suppressed =
      st.policy.suppressed_cooldown + st.policy.suppressed_bounce +
      st.policy.suppressed_load + st.policy.suppressed_cap;
  std::printf("%-18s%10.2f%14llu%8llu%8llu%12llu%10llu\n", label,
              st.throughput_per_1000(),
              static_cast<unsigned long long>(st.remote_calls),
              static_cast<unsigned long long>(st.policy.moves_completed),
              static_cast<unsigned long long>(st.policy.flips_on),
              static_cast<unsigned long long>(st.policy.decisions),
              static_cast<unsigned long long>(suppressed));
}

void section_ladder(const Options& opt, cm::core::MetricsRegistry* reg) {
  std::printf("-- (a) policy ladder on the skewed B-tree --\n");
  std::printf("%-18s%10s%14s%8s%8s%12s%10s\n", "policy", "thr",
              "remote calls", "moves", "flips", "decisions", "suppressed");
  {
    const RunStats st = cm::apps::run_btree(skewed_tree(opt));
    print_policy_row("static", st);
    put_row(reg, "ladder/static", st);
  }
  {
    BTreeConfig cfg = skewed_tree(opt);
    cfg.policy = rebalance_policy(opt);
    cfg.policy.observe_only = true;
    cfg.policy.phase_adaptive = true;
    const RunStats st = cm::apps::run_btree(cfg);
    print_policy_row("observe", st);
    put_row(reg, "ladder/observe", st);
  }
  {
    BTreeConfig cfg = skewed_tree(opt);
    cfg.policy = rebalance_policy(opt);
    const RunStats st = cm::apps::run_btree(cfg);
    print_policy_row("rebalance", st);
    put_row(reg, "ladder/rebalance", st);
  }
  {
    BTreeConfig cfg = skewed_tree(opt);
    cfg.policy = rebalance_policy(opt);
    cfg.policy.phase_adaptive = true;
    const RunStats st = cm::apps::run_btree(cfg);
    print_policy_row("rebalance+phase", st);
    put_row(reg, "ladder/rebalance+phase", st);
  }
}

void section_affinity(const Options& opt, cm::core::MetricsRegistry* reg) {
  std::printf("\n-- (b) key-affinity sweep (rebalancer on) --\n");
  std::printf("%-10s%10s%14s%8s%12s\n", "affinity", "thr", "remote calls",
              "moves", "decisions");
  for (const double affinity : {0.0, 0.5, 0.9, 0.99}) {
    BTreeConfig cfg = skewed_tree(opt);
    cfg.key_affinity = affinity;
    cfg.policy = rebalance_policy(opt);
    const RunStats st = cm::apps::run_btree(cfg);
    std::printf("%-10.2f%10.2f%14llu%8llu%12llu\n", affinity,
                st.throughput_per_1000(),
                static_cast<unsigned long long>(st.remote_calls),
                static_cast<unsigned long long>(st.policy.moves_completed),
                static_cast<unsigned long long>(st.policy.decisions));
    char label[64];
    std::snprintf(label, sizeof label, "affinity/%.2f", affinity);
    put_row(reg, label, st);
  }
}

void section_counting(const Options& opt, cm::core::MetricsRegistry* reg) {
  std::printf("\n-- (c) write-shared counting network (control) --\n");
  std::printf("%-22s%10s%14s%8s%12s\n", "policy", "thr", "remote calls",
              "moves", "decisions");
  CountingConfig base;
  base.scheme = Scheme{Mechanism::kRpc, false, false};
  base.mesh = false;
  base.requesters = 16;
  base.ops_per_requester = 60;
  base.check = opt.check;
  {
    const RunStats st = cm::apps::run_counting(base);
    std::printf("%-22s%10.2f%14llu%8llu%12llu\n", "static",
                st.throughput_per_1000(),
                static_cast<unsigned long long>(st.remote_calls),
                static_cast<unsigned long long>(st.policy.moves_completed),
                static_cast<unsigned long long>(st.policy.decisions));
    put_row(reg, "counting/static", st);
  }
  {
    CountingConfig cfg = base;
    cfg.policy = rebalance_policy(opt);
    cfg.policy.min_accesses = 12;  // paper-default hysteresis: no dominant
    cfg.policy.attract_share = 0.8;  // accessor ever qualifies
    const RunStats st = cm::apps::run_counting(cfg);
    std::printf("%-22s%10.2f%14llu%8llu%12llu\n", "rebalance (default)",
                st.throughput_per_1000(),
                static_cast<unsigned long long>(st.remote_calls),
                static_cast<unsigned long long>(st.policy.moves_completed),
                static_cast<unsigned long long>(st.policy.decisions));
    put_row(reg, "counting/rebalance-default", st);
  }
  {
    CountingConfig cfg = base;
    cfg.policy = rebalance_policy(opt);  // aggressive thresholds, contrast
    const RunStats st = cm::apps::run_counting(cfg);
    std::printf("%-22s%10.2f%14llu%8llu%12llu\n", "rebalance (aggressive)",
                st.throughput_per_1000(),
                static_cast<unsigned long long>(st.remote_calls),
                static_cast<unsigned long long>(st.policy.moves_completed),
                static_cast<unsigned long long>(st.policy.decisions));
    put_row(reg, "counting/rebalance-aggressive", st);
  }
}

void section_degree(const Options& opt, cm::core::MetricsRegistry* reg) {
  std::printf("\n-- (d) degree-of-migration sweep (skewed B-tree) --\n");
  std::printf("%-8s%10s%14s%8s%12s%12s\n", "degree", "thr", "remote calls",
              "moves", "decisions", "cap-suppr");
  for (const unsigned degree : {1u, 2u, 4u, 8u}) {
    BTreeConfig cfg = skewed_tree(opt);
    cfg.policy = rebalance_policy(opt);
    cfg.policy.degree_of_migration = degree;
    const RunStats st = cm::apps::run_btree(cfg);
    std::printf("%-8u%10.2f%14llu%8llu%12llu%12llu\n", degree,
                st.throughput_per_1000(),
                static_cast<unsigned long long>(st.remote_calls),
                static_cast<unsigned long long>(st.policy.moves_completed),
                static_cast<unsigned long long>(st.policy.decisions),
                static_cast<unsigned long long>(st.policy.suppressed_cap));
    char label[64];
    std::snprintf(label, sizeof label, "degree/%u", degree);
    put_row(reg, label, st);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(
      argc, argv, "[--check] [--tune key=value]... [out.json]",
      "Placement-policy ablation: static vs observe vs rebalance vs "
      "phase-adaptive on a skewed B-tree, key-affinity and "
      "degree-of-migration sweeps, and a write-shared counting-network "
      "control; unified-schema JSON export.");
  Options opt;
  opt.check = cm::bench::take_flag(argc, argv, "--check");
  char key[64];
  while (cm::bench::take_value(argc, argv, "--tune", key, sizeof key)) {
    char* eq = std::strchr(key, '=');
    if (eq == nullptr) {
      std::fprintf(stderr, "%s: --tune wants key=value, got '%s'\n", argv[0],
                   key);
      return 1;
    }
    *eq = '\0';
    if (!cm::core::set_tunable(opt.tunables, key, std::atof(eq + 1))) {
      std::fprintf(stderr, "%s: unknown tunable '%s'\n", argv[0], key);
      return 1;
    }
  }
  cm::core::MetricsRegistry reg;
  section_ladder(opt, &reg);
  section_affinity(opt, &reg);
  section_counting(opt, &reg);
  section_degree(opt, &reg);
  const char* path = argc > 1 ? argv[1] : "ablation_policy.json";
  if (!reg.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("\nwrote %s (%zu records)\n", path, reg.size());
  return 0;
}
