// Network-model sensitivity. The reproduction benches use a uniform-latency
// interconnect (matching the paper's 17-cycle "network transit" and its
// position that message-handling software, not the wire, dominates). This
// ablation re-runs the headline experiments over a 2-D mesh with
// dimension-ordered routing and per-link contention — the geometry of the
// machines Proteus modelled — to show the conclusions are not artifacts of
// the simple network model.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

namespace {

void counting_panel(bool mesh) {
  const Scheme series[] = {
      {Mechanism::kSharedMemory, false, false},
      {Mechanism::kMigration, true, false},
      {Mechanism::kMigration, false, false},
      {Mechanism::kRpc, false, false},
  };
  std::printf("%-10s", mesh ? "mesh" : "uniform");
  for (const Scheme& s : series) {
    apps::CountingConfig cfg;
    cfg.scheme = s;
    cfg.requesters = 32;
    cfg.mesh = mesh;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_counting(cfg);
    std::printf("%14.3f", r.throughput_per_1000());
  }
  std::printf("\n");
}

void btree_panel(bool mesh) {
  const Scheme series[] = {
      {Mechanism::kSharedMemory, false, false},
      {Mechanism::kMigration, true, true},
      {Mechanism::kMigration, false, false},
      {Mechanism::kRpc, false, false},
  };
  std::printf("%-10s", mesh ? "mesh" : "uniform");
  for (const Scheme& s : series) {
    apps::BTreeConfig cfg;
    cfg.scheme = s;
    cfg.mesh = mesh;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_btree(cfg);
    std::printf("%14.3f", r.throughput_per_1000());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Network-model sensitivity: uniform-latency vs 2-D mesh interconnect across mechanisms.");

  std::printf("Network-model sensitivity (throughput, ops/1000 cycles)\n");
  std::printf("\nCounting network, 32 requesters, think 0:\n");
  std::printf("%-10s%14s%14s%14s%14s\n", "network", "SM", "CP w/HW", "CP",
              "RPC");
  counting_panel(false);
  counting_panel(true);
  std::printf("\nB-tree, 16 requesters, think 0:\n");
  std::printf("%-10s%14s%14s%14s%14s\n", "network", "SM", "CP w/repl.&HW",
              "CP", "RPC");
  btree_panel(false);
  btree_panel(true);
  std::printf(
      "\nShape: the mesh shifts absolute numbers (distance-dependent\n"
      "latency, hot links near contended homes) but preserves every\n"
      "ordering: SM and CP lead, RPC trails, hardware support and\n"
      "replication keep their value.\n");
  return 0;
}
