// Object-location ablation: what the ObjectSpace oracle has been hiding.
//
// Every other bench resolves an object's home for free through an
// omniscient table. This one enables src/loc — directory shards, bounded
// per-processor translation caches, Emerald-style forwarding chains — and
// measures what mechanistic location costs:
//
//  (a) per mechanism: counting-network throughput with the oracle vs the
//      distributed locator, plus cache hit rate and forwarding-chain
//      statistics. Shared memory is the control: its accesses go through
//      hardware global addresses, not the software locator, so its delta
//      is ~0.
//  (b) translation-cache capacity sweep (0 disables caching: every remote
//      lookup becomes a directory query).
//  (c) directory placement (hash-home vs owner-home) crossed with
//      software vs J-Machine-style hardware GOID translation.
//  (d) forwarding-chain microbenchmark: movers drag a MobileObject around
//      while callers keep invoking it through stale hints — the one
//      workload shape where chains actually grow — sweeping the number of
//      movers.
//
// Optional argv[1]: unified-schema JSON export (default
// ablation_location.json).
#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "core/metrics.h"
#include "core/mobile.h"
#include "core/runtime.h"
#include "loc/locator.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/task.h"

#include "bench_util.h"

using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::core::Mechanism;
using cm::core::Scheme;
using cm::loc::DirectoryPolicy;
using cm::loc::Locality;
using cm::loc::LocatorConfig;
using cm::loc::LocStats;

namespace {

RunStats run(const Scheme& s, const LocatorConfig& lc) {
  CountingConfig cfg;
  cfg.scheme = s;
  cfg.requesters = 16;
  cfg.locator = lc;
  return cm::apps::run_counting(cfg);
}

void put_row(cm::core::MetricsRegistry* reg, const std::string& label,
             const RunStats& st) {
  if (reg == nullptr) return;
  cm::apps::put_run_stats(reg->record(label), st);
}

void section_mechanisms(cm::core::MetricsRegistry* reg) {
  std::printf("-- (a) oracle vs distributed location, per mechanism --\n");
  std::printf("%-6s%12s%12s%8s%10s%8s%10s%10s\n", "mech", "thr(oracle)",
              "thr(loc)", "delta%", "hit rate", "chains", "mean len",
              "max len");
  const Mechanism mechs[] = {Mechanism::kRpc, Mechanism::kMigration,
                             Mechanism::kObjectMigration,
                             Mechanism::kSharedMemory};
  for (Mechanism m : mechs) {
    Scheme s;
    s.mechanism = m;
    LocatorConfig oracle;  // defaults to kOracle
    LocatorConfig dist;
    dist.mode = Locality::kDistributed;
    const RunStats a = run(s, oracle);
    const RunStats b = run(s, dist);
    const double thr_a = a.throughput_per_1000();
    const double thr_b = b.throughput_per_1000();
    const double delta =
        thr_a == 0.0 ? 0.0 : (thr_b - thr_a) / thr_a * 100.0;
    std::printf("%-6s%12.2f%12.2f%8.1f%10.3f%8llu%10.3f%10llu\n",
                cm::core::mechanism_name(m), thr_a, thr_b, delta,
                b.loc.hit_rate(),
                static_cast<unsigned long long>(b.loc.forwarded),
                b.loc.mean_chain(),
                static_cast<unsigned long long>(b.loc.max_chain));
    put_row(reg, std::string("mech/") + cm::core::mechanism_name(m) +
                     "/oracle",
            a);
    put_row(reg, std::string("mech/") + cm::core::mechanism_name(m) +
                     "/distributed",
            b);
  }
}

void section_cache(cm::core::MetricsRegistry* reg) {
  std::printf("\n-- (b) translation-cache capacity (CP, hash-home) --\n");
  std::printf("%-10s%12s%10s%12s%12s%12s\n", "capacity", "thr", "hit rate",
              "dir queries", "evictions", "messages");
  for (unsigned capacity : {0u, 4u, 16u, 64u, 256u}) {
    Scheme s;
    s.mechanism = Mechanism::kMigration;
    LocatorConfig lc;
    lc.mode = Locality::kDistributed;
    lc.cache_capacity = capacity;
    const RunStats st = run(s, lc);
    std::printf("%-10u%12.2f%10.3f%12llu%12llu%12llu\n", capacity,
                st.throughput_per_1000(), st.loc.hit_rate(),
                static_cast<unsigned long long>(st.loc.dir_queries),
                static_cast<unsigned long long>(st.loc.cache_evictions),
                static_cast<unsigned long long>(st.messages));
    char label[64];
    std::snprintf(label, sizeof label, "cache/%u", capacity);
    put_row(reg, label, st);
  }
}

void section_directory(cm::core::MetricsRegistry* reg) {
  // B-tree rather than counting network: with thousands of node objects
  // spread over 48 processors the two placement policies pick genuinely
  // different shards (in the counting network balancer ids coincide with
  // their home processors, making the policies degenerate to the same map).
  std::printf(
      "\n-- (c) directory placement x GOID translation (CP, B-tree) --\n");
  std::printf("%-24s%12s%10s%12s%12s\n", "variant", "thr", "hit rate",
              "dir local", "dir remote");
  for (const bool owner_home : {false, true}) {
    for (const bool hw_oid : {false, true}) {
      cm::apps::BTreeConfig cfg;
      cfg.scheme.mechanism = Mechanism::kMigration;
      cfg.scheme.hw_oid_only = hw_oid;
      cfg.locator.mode = Locality::kDistributed;
      cfg.locator.directory =
          owner_home ? DirectoryPolicy::kOwnerHome : DirectoryPolicy::kHashHome;
      const RunStats st = cm::apps::run_btree(cfg);
      char label[64];
      std::snprintf(label, sizeof label, "dir/%s/%s",
                    owner_home ? "owner-home" : "hash-home",
                    hw_oid ? "hw-oid" : "sw-oid");
      std::printf("%-24s%12.2f%10.3f%12llu%12llu\n", label,
                  st.throughput_per_1000(), st.loc.hit_rate(),
                  static_cast<unsigned long long>(st.loc.dir_local),
                  static_cast<unsigned long long>(st.loc.dir_queries -
                                                  st.loc.dir_local));
      put_row(reg, label, st);
    }
  }
}

// ---- (d) forwarding-chain microbenchmark -----------------------------------

struct ChaseWorld {
  cm::sim::Engine eng;
  cm::sim::Machine machine;
  cm::net::ConstantNetwork net;
  cm::core::ObjectSpace objects;
  cm::core::Runtime rt;

  explicit ChaseWorld(cm::sim::ProcId nprocs)
      : machine(eng, nprocs), net(eng),
        rt(machine, net, objects, cm::core::CostModel::software()) {}
};

cm::sim::Task<> mover_thread(cm::core::Runtime* rt, cm::core::MobileObject* m,
                             cm::sim::ProcId p, int rounds) {
  cm::core::Ctx ctx{rt, p};
  for (int i = 0; i < rounds; ++i) {
    co_await m->attract(ctx);
    co_await rt->machine().sleep(50);
  }
}

cm::sim::Task<> caller_thread(cm::core::Runtime* rt, cm::core::ObjectId oid,
                              cm::sim::ProcId p, int calls) {
  cm::core::Ctx ctx{rt, p};
  for (int i = 0; i < calls; ++i) {
    (void)co_await rt->call(
        ctx, oid, cm::core::CallOpts{4, 2, true},
        [rt](cm::core::Ctx& callee) -> cm::sim::Task<int> {
          co_await rt->compute(callee, 20);
          co_return 0;
        });
  }
}

void section_chains(cm::core::MetricsRegistry* reg) {
  std::printf("\n-- (d) forwarding chains: movers vs callers --\n");
  std::printf("%-8s%10s%10s%10s%10s%12s%12s\n", "movers", "moves", "chains",
              "mean len", "max len", "compress", "fallbacks");
  for (const unsigned movers : {1u, 2u, 4u, 8u}) {
    const cm::sim::ProcId nprocs = 2 + movers + 4;
    ChaseWorld w(nprocs);
    LocatorConfig lc;
    lc.mode = Locality::kDistributed;
    lc.cache_capacity = 8;
    cm::loc::Locator locator(w.rt, lc);
    const auto oid = w.objects.create(0);
    cm::core::MobileObject mobile(w.rt, oid, 16);
    for (unsigned i = 0; i < movers; ++i) {
      cm::sim::detach(mover_thread(&w.rt, &mobile,
                                   static_cast<cm::sim::ProcId>(2 + i), 40));
    }
    for (unsigned i = 0; i < 4; ++i) {
      cm::sim::detach(caller_thread(
          &w.rt, oid, static_cast<cm::sim::ProcId>(2 + movers + i), 40));
    }
    w.eng.run();
    const LocStats& s = locator.stats();
    std::printf("%-8u%10llu%10llu%10.3f%10llu%12llu%12llu\n", movers,
                static_cast<unsigned long long>(s.moves),
                static_cast<unsigned long long>(s.forwarded), s.mean_chain(),
                static_cast<unsigned long long>(s.max_chain),
                static_cast<unsigned long long>(s.compressions),
                static_cast<unsigned long long>(s.fwd_fallbacks));
    if (reg != nullptr) {
      char label[64];
      std::snprintf(label, sizeof label, "chase/%u", movers);
      cm::core::Metrics& m = reg->record(label);
      cm::loc::put_loc_stats(m, s);
      m.put("completed_at", w.eng.now());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(
      argc, argv, "[out.json]",
      "Object-location ablation: oracle vs distributed locator per "
      "mechanism, cache-capacity and directory-policy sweeps, and a "
      "forwarding-chain microbenchmark; unified-schema JSON export.");
  cm::core::MetricsRegistry reg;
  section_mechanisms(&reg);
  section_cache(&reg);
  section_directory(&reg);
  section_chains(&reg);
  const char* path = argc > 1 ? argv[1] : "ablation_location.json";
  if (!reg.write_json(path)) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return 1;
  }
  std::printf("\nwrote %s (%zu records)\n", path, reg.size());
  return 0;
}
