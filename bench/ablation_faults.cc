// Fault-injection sweep: the counting network and the B-tree run a fixed
// amount of work while the interconnect drops / duplicates / delays an
// increasing fraction of runtime messages. The reliable transport retries
// until every effect lands exactly once, so the application-level results
// are identical in every row; what grows is the price paid for reliability —
// retransmissions, acks, dedup work, and completion time. This is the
// paper's "changes only performance, never semantics" claim extended to a
// lossy network.
//
// Output: a human-readable table on stdout plus a JSON dump in the unified
// metrics schema (default ablation_faults.json, or the path given as
// argv[1]) carrying the full fault and reliability counters for downstream
// tooling. An optional argv[2] names a Chrome trace-event file recorded for
// one representative chaos run (counting / CP at the highest loss rate).
#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "core/metrics.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

namespace {

constexpr double kRates[] = {0.0, 0.01, 0.02, 0.05};

net::FaultPlan loss_plan(double rate) {
  net::FaultPlan plan;
  plan.rates.drop = rate;
  plan.rates.duplicate = rate / 2;
  plan.rates.delay = rate;
  plan.seed = 0xab1a7e;
  return plan;
}

struct Row {
  const char* workload;
  const char* mechanism;
  double rate;
  apps::RunStats r;
};

apps::RunStats counting_at(Mechanism mech, double rate,
                           std::string trace_path = {}, bool crash = false) {
  apps::CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 50;
  cfg.faults = loss_plan(rate);
  if (crash) {
    // Fail-stop scenario: a balancer processor dies mid-run on top of the
    // message loss; the ft layer detects and re-homes (see
    // ablation_failstop for the full crash-count sweep).
    cfg.faults.nic_fail_at[2] = 10'000;
    cfg.ft.enabled = true;
  }
  cfg.trace_path = std::move(trace_path);
  return run_counting(cfg);
}

apps::RunStats btree_at(Mechanism mech, double rate, bool crash = false) {
  apps::BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 50;
  cfg.faults = loss_plan(rate);
  if (crash) {
    cfg.faults.nic_fail_at[18] = 15'000;  // hosts several nodes under seed 1
    cfg.ft.enabled = true;
  }
  return run_btree(cfg);
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-10s %-6s %6s %10s %10s %9s %9s %7s %7s %10s\n", "workload",
              "mech", "loss%", "completed", "messages", "dropped", "retrans",
              "dedup", "fallbk", "result");
  for (const Row& row : rows) {
    char result[32];
    if (std::string(row.workload) == "counting") {
      std::snprintf(result, sizeof result, "%ld", row.r.total_exited);
    } else {
      std::snprintf(result, sizeof result, "%016llx",
                    static_cast<unsigned long long>(row.r.btree_digest));
    }
    std::printf("%-10s %-6s %6.1f %10llu %10llu %9llu %9llu %7llu %7llu %10s\n",
                row.workload, row.mechanism, row.rate * 100.0,
                static_cast<unsigned long long>(row.r.completed_at),
                static_cast<unsigned long long>(row.r.net.messages),
                static_cast<unsigned long long>(row.r.net.faults_dropped),
                static_cast<unsigned long long>(row.r.runtime.retransmits),
                static_cast<unsigned long long>(row.r.runtime.dedup_hits),
                static_cast<unsigned long long>(
                    row.r.runtime.migration_fallbacks),
                result);
  }
}

void write_json(const char* path, const std::vector<Row>& rows) {
  core::MetricsRegistry reg;
  for (const Row& row : rows) {
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s/loss=%g", row.workload,
                  row.mechanism, row.rate);
    core::Metrics& m = reg.record(label);
    m.put("workload", row.workload);
    m.put("mechanism", row.mechanism);
    m.put("loss_rate", row.rate);
    apps::put_run_stats(m, row.r);
  }
  if (!reg.write_json(path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "[out.json [trace.json]]",
                         "Fault-injection sweep: fixed work under rising drop/duplicate/delay rates with the reliable transport; JSON export and optional Chrome trace.");
  std::printf("Fault-injection sweep: fixed work under message loss\n");
  std::printf("counting: 16 requesters x 50 ops; B-tree: 8 requesters x 50"
              " ops, 1000 keys\n");
  std::printf("plan: drop = rate, duplicate = rate/2, delay = rate\n\n");

  const char* trace_path = argc > 2 ? argv[2] : "";
  const double max_rate = kRates[std::size(kRates) - 1];
  std::vector<Row> rows;
  for (const double rate : kRates) {
    rows.push_back({"counting", "CP", rate,
                    counting_at(Mechanism::kMigration, rate,
                                rate == max_rate ? trace_path : "")});
    rows.push_back({"counting", "RPC", rate, counting_at(Mechanism::kRpc,
                                                         rate)});
    rows.push_back({"btree", "CP", rate, btree_at(Mechanism::kMigration,
                                                  rate)});
    rows.push_back({"btree", "RPC", rate, btree_at(Mechanism::kRpc, rate)});
  }
  // Fail-stop scenario: the highest loss rate plus a mid-run processor
  // crash, with the ft layer recovering the dead processor's objects. The
  // result column must still match the pair's loss-only rows ("CP+crash"
  // rows; full crash-count sweep in ablation_failstop).
  rows.push_back({"counting", "CP+crash", max_rate,
                  counting_at(Mechanism::kMigration, max_rate, "",
                              /*crash=*/true)});
  rows.push_back({"btree", "CP+crash", max_rate,
                  btree_at(Mechanism::kMigration, max_rate, /*crash=*/true)});
  print_table(rows);

  std::printf(
      "\nShape: every row of a workload/mechanism pair reports the same\n"
      "result column regardless of loss rate — faults cost retransmissions\n"
      "and time, never correctness. At rate 0 the reliable layer is not\n"
      "installed at all (no acks, no retransmit state). The CP+crash rows\n"
      "add a fail-stopped processor on top of the loss: detection plus\n"
      "object re-home preserve the result there too.\n");

  write_json(argc > 1 ? argv[1] : "ablation_faults.json", rows);
  return 0;
}
