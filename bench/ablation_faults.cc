// Fault-injection sweep: the counting network and the B-tree run a fixed
// amount of work while the interconnect drops / duplicates / delays an
// increasing fraction of runtime messages. The reliable transport retries
// until every effect lands exactly once, so the application-level results
// are identical in every row; what grows is the price paid for reliability —
// retransmissions, acks, dedup work, and completion time. This is the
// paper's "changes only performance, never semantics" claim extended to a
// lossy network.
//
// Output: a human-readable table on stdout plus a JSON dump (default
// ablation_faults.json, or the path given as argv[1]) carrying the full
// fault and reliability counters for downstream tooling.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

namespace {

constexpr double kRates[] = {0.0, 0.01, 0.02, 0.05};

net::FaultPlan loss_plan(double rate) {
  net::FaultPlan plan;
  plan.rates.drop = rate;
  plan.rates.duplicate = rate / 2;
  plan.rates.delay = rate;
  plan.seed = 0xab1a7e;
  return plan;
}

struct Row {
  const char* workload;
  const char* mechanism;
  double rate;
  apps::RunStats r;
};

apps::RunStats counting_at(Mechanism mech, double rate) {
  apps::CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 50;
  cfg.faults = loss_plan(rate);
  return run_counting(cfg);
}

apps::RunStats btree_at(Mechanism mech, double rate) {
  apps::BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 50;
  cfg.faults = loss_plan(rate);
  return run_btree(cfg);
}

void print_table(const std::vector<Row>& rows) {
  std::printf("%-10s %-6s %6s %10s %10s %9s %9s %7s %7s %10s\n", "workload",
              "mech", "loss%", "completed", "messages", "dropped", "retrans",
              "dedup", "fallbk", "result");
  for (const Row& row : rows) {
    char result[32];
    if (std::string(row.workload) == "counting") {
      std::snprintf(result, sizeof result, "%ld", row.r.total_exited);
    } else {
      std::snprintf(result, sizeof result, "%016llx",
                    static_cast<unsigned long long>(row.r.btree_digest));
    }
    std::printf("%-10s %-6s %6.1f %10llu %10llu %9llu %9llu %7llu %7llu %10s\n",
                row.workload, row.mechanism, row.rate * 100.0,
                static_cast<unsigned long long>(row.r.completed_at),
                static_cast<unsigned long long>(row.r.net.messages),
                static_cast<unsigned long long>(row.r.net.faults_dropped),
                static_cast<unsigned long long>(row.r.runtime.retransmits),
                static_cast<unsigned long long>(row.r.runtime.dedup_hits),
                static_cast<unsigned long long>(
                    row.r.runtime.migration_fallbacks),
                result);
  }
}

void write_json(const char* path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const core::RtStats& rt = row.r.runtime;
    const net::NetStats& nt = row.r.net;
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"mechanism\": \"%s\", \"loss_rate\": %g,\n"
        "   \"completed_at\": %llu, \"messages\": %llu, \"words\": %llu,\n"
        "   \"faults\": {\"dropped\": %llu, \"duplicated\": %llu,"
        " \"delayed\": %llu, \"nic_dropped\": %llu},\n"
        "   \"reliability\": {\"reliable_sends\": %llu, \"retransmits\": %llu,"
        " \"timeouts_fired\": %llu, \"acks_sent\": %llu,"
        " \"dedup_hits\": %llu, \"stale_deliveries\": %llu,"
        " \"delivery_failures\": %llu, \"migration_fallbacks\": %llu},\n"
        "   \"result\": {\"total_exited\": %ld, \"step_property\": %s,"
        " \"btree_keys\": %llu, \"btree_digest\": \"%016llx\","
        " \"invariants_ok\": %s}}%s\n",
        row.workload, row.mechanism, row.rate,
        static_cast<unsigned long long>(row.r.completed_at),
        static_cast<unsigned long long>(nt.messages),
        static_cast<unsigned long long>(nt.words),
        static_cast<unsigned long long>(nt.faults_dropped),
        static_cast<unsigned long long>(nt.faults_duplicated),
        static_cast<unsigned long long>(nt.faults_delayed),
        static_cast<unsigned long long>(nt.faults_nic_dropped),
        static_cast<unsigned long long>(rt.reliable_sends),
        static_cast<unsigned long long>(rt.retransmits),
        static_cast<unsigned long long>(rt.timeouts_fired),
        static_cast<unsigned long long>(rt.acks_sent),
        static_cast<unsigned long long>(rt.dedup_hits),
        static_cast<unsigned long long>(rt.stale_deliveries),
        static_cast<unsigned long long>(rt.delivery_failures),
        static_cast<unsigned long long>(rt.migration_fallbacks),
        row.r.total_exited, row.r.step_property ? "true" : "false",
        static_cast<unsigned long long>(row.r.btree_keys),
        static_cast<unsigned long long>(row.r.btree_digest),
        row.r.invariants_ok ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Fault-injection sweep: fixed work under message loss\n");
  std::printf("counting: 16 requesters x 50 ops; B-tree: 8 requesters x 50"
              " ops, 1000 keys\n");
  std::printf("plan: drop = rate, duplicate = rate/2, delay = rate\n\n");

  std::vector<Row> rows;
  for (const double rate : kRates) {
    rows.push_back({"counting", "CP", rate, counting_at(Mechanism::kMigration,
                                                        rate)});
    rows.push_back({"counting", "RPC", rate, counting_at(Mechanism::kRpc,
                                                         rate)});
    rows.push_back({"btree", "CP", rate, btree_at(Mechanism::kMigration,
                                                  rate)});
    rows.push_back({"btree", "RPC", rate, btree_at(Mechanism::kRpc, rate)});
  }
  print_table(rows);

  std::printf(
      "\nShape: every row of a workload/mechanism pair reports the same\n"
      "result column regardless of loss rate — faults cost retransmissions\n"
      "and time, never correctness. At rate 0 the reliable layer is not\n"
      "installed at all (no acks, no retransmit state).\n");

  write_json(argc > 1 ? argv[1] : "ablation_faults.json", rows);
  return 0;
}
