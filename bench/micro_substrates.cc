// Host-side microbenchmarks (google-benchmark) for the simulator
// substrates: how fast the simulation itself runs. Useful when sizing
// larger experiments; not part of the paper reproduction.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/workload.h"
#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "net/mesh_net.h"
#include "shmem/cache.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"

using namespace cm;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      eng.at(static_cast<sim::Cycles>(i % 97), [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_CacheInstallLookup(benchmark::State& state) {
  shmem::Cache cache;
  sim::Rng rng(1);
  for (auto _ : state) {
    const shmem::Line line = rng.below(16384);
    if (cache.lookup(line) == shmem::LineState::kInvalid) {
      benchmark::DoNotOptimize(cache.install(line, shmem::LineState::kShared));
    }
    benchmark::DoNotOptimize(cache.lookup(line));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInstallLookup);

void BM_MeshRouting(benchmark::State& state) {
  sim::Engine eng;
  net::MeshNetwork net(eng, 64, {});
  sim::Rng rng(2);
  for (auto _ : state) {
    const auto a = static_cast<sim::ProcId>(rng.below(64));
    const auto b = static_cast<sim::ProcId>(rng.below(64));
    benchmark::DoNotOptimize(net.latency(a, b, 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRouting);

sim::Task<> ping(core::Runtime* rt, core::ObjectId obj, int n) {
  core::Ctx ctx{rt, 0};
  for (int i = 0; i < n; ++i) {
    (void)co_await rt->call(ctx, obj, core::CallOpts{4, 2, false},
                            [rt](core::Ctx& c) -> sim::Task<int> {
                              co_await rt->compute(c, 10);
                              co_return 0;
                            });
  }
}

void BM_SimulatedRpc(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Machine machine(eng, 2);
    net::ConstantNetwork net(eng);
    core::ObjectSpace objects;
    core::Runtime rt(machine, net, objects, core::CostModel::software());
    const auto obj = objects.create(1);
    sim::detach(ping(&rt, obj, 100));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimulatedRpc);

sim::Task<> hopper(core::Runtime* rt, std::vector<core::ObjectId> objs,
                   int rounds) {
  core::Ctx ctx{rt, 0};
  for (int r = 0; r < rounds; ++r) {
    for (const auto obj : objs) co_await rt->migrate(ctx, obj, 8);
    co_await rt->return_home(ctx, 0, 2);
  }
}

void BM_SimulatedMigration(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Machine machine(eng, 9);
    net::ConstantNetwork net(eng);
    core::ObjectSpace objects;
    core::Runtime rt(machine, net, objects, core::CostModel::software());
    std::vector<core::ObjectId> objs;
    for (sim::ProcId p = 1; p < 9; ++p) objs.push_back(objects.create(p));
    sim::detach(hopper(&rt, objs, 20));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 160);
}
BENCHMARK(BM_SimulatedMigration);

sim::Task<> toucher(shmem::CoherentMemory* mem, shmem::Addr a, int n) {
  for (int i = 0; i < n; ++i) {
    co_await mem->write(1, a, 16);
    co_await mem->write(2, a, 16);  // ping-pong
  }
}

void BM_CoherenceMigratoryLine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    sim::Machine machine(eng, 4);
    net::ConstantNetwork net(eng);
    shmem::CoherentMemory mem(machine, net);
    const shmem::Addr a = mem.alloc(0, 16);
    sim::detach(toucher(&mem, a, 50));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_CoherenceMigratoryLine);

void BM_FullCountingNetworkRun(benchmark::State& state) {
  for (auto _ : state) {
    apps::CountingConfig cfg;
    cfg.scheme = core::Scheme{core::Mechanism::kMigration, false, false};
    cfg.requesters = 16;
    cfg.window = apps::Window{5'000, 30'000};
    const auto r = run_counting(cfg);
    benchmark::DoNotOptimize(r.ops);
  }
}
BENCHMARK(BM_FullCountingNetworkRun);

void BM_FullBTreeRun(benchmark::State& state) {
  for (auto _ : state) {
    apps::BTreeConfig cfg;
    cfg.scheme = core::Scheme{core::Mechanism::kMigration, false, true};
    cfg.nkeys = 2'000;
    cfg.window = apps::Window{5'000, 30'000};
    const auto r = run_btree(cfg);
    benchmark::DoNotOptimize(r.ops);
  }
}
BENCHMARK(BM_FullBTreeRun);

}  // namespace

BENCHMARK_MAIN();
