// Automatic mechanism selection (§6 future work, implemented as a
// profile-guided runtime chooser — see core/adaptive.h).
//
// The setting is a message-passing machine without coherent-shared-memory
// hardware ("In non-shared memory systems, it would certainly be more
// efficient to use computation migration than data migration", §6), so the
// chooser picks among RPC, computation migration, object migration and
// thread migration. Three object populations whose best mechanisms differ:
//   * "config"  — read-mostly tables, read by every thread   -> CM
//     (1 message per access run vs RPC's 2 per access);
//   * "counter" — write-shared tallies touched by everyone   -> CM;
//   * "journal" — one per thread, homed remotely, written in
//                 long exclusive runs                        -> OBJ.
// We run the whole application under each single static mechanism, then
// let the chooser profile a short prefix and assign a mechanism per
// object. No single mechanism suits all three populations — the paper's
// §1 thesis — so per-object adaptive should beat every static policy.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/adaptive.h"
#include "core/mobile.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"

#include "bench_util.h"

using namespace cm;
using core::Ctx;
using core::Mechanism;

namespace {

constexpr unsigned kThreads = 8;
constexpr unsigned kConfigs = 12;
constexpr unsigned kCounters = 4;
constexpr int kRounds = 30;

struct Obj {
  core::ObjectId oid;
  shmem::Addr addr;
  std::unique_ptr<core::MobileObject> mobile;
  long value = 0;
};

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;
  core::AdaptiveChooser chooser;

  static core::AdaptiveChooser::Tunables tunables() {
    core::AdaptiveChooser::Tunables t;
    t.allow_shared_memory = false;  // message-passing machine
    return t;
  }

  std::vector<Obj> configs;
  std::vector<Obj> counters;
  std::vector<Obj> journals;  // one per thread

  World() : machine(eng, 16 + kThreads), net(eng), mem(machine, net),
            rt(machine, net, objects, core::CostModel::software()),
            chooser(tunables()) {
    sim::Rng rng(11);
    auto make = [&](std::vector<Obj>& into) {
      Obj o;
      const auto home = static_cast<sim::ProcId>(rng.below(16));
      o.oid = objects.create(home);
      o.addr = mem.alloc(home, 16);
      o.mobile = std::make_unique<core::MobileObject>(rt, o.oid, 8);
      into.push_back(std::move(o));
    };
    for (unsigned i = 0; i < kConfigs; ++i) make(configs);
    for (unsigned i = 0; i < kCounters; ++i) make(counters);
    for (unsigned i = 0; i < kThreads; ++i) make(journals);
  }

  [[nodiscard]] sim::ProcId thread_proc(unsigned t) const {
    return static_cast<sim::ProcId>(16 + t);
  }
};

sim::Task<> access(World* w, Ctx& ctx, Obj& o, Mechanism mech, bool write,
                   bool profile, sim::ProcId requester) {
  // Profile by the logical requester, not ctx.proc: under migratory
  // execution the activation sits wherever its previous access took it.
  if (profile) w->chooser.record(o.oid, requester, write);
  switch (mech) {
    case Mechanism::kSharedMemory:
      if (write) {
        co_await w->mem.write(ctx.proc, o.addr, 16);
      } else {
        co_await w->mem.read(ctx.proc, o.addr, 16);
      }
      co_await w->machine.compute(ctx.proc, 30);
      if (write) ++o.value;
      co_return;
    case Mechanism::kMigration:
      co_await w->rt.migrate(ctx, o.oid, 8);
      break;
    case Mechanism::kThreadMigration:
      co_await w->rt.migrate(ctx, o.oid, 96);
      break;
    case Mechanism::kObjectMigration:
      co_await o.mobile->attract(ctx);
      break;
    case Mechanism::kRpc:
      break;
  }
  (void)co_await w->rt.call(ctx, o.oid, core::CallOpts{4, 2, false},
                            [w, &o, write](Ctx& c) -> sim::Task<int> {
                              co_await w->rt.compute(c, 30);
                              if (write) ++o.value;
                              co_return 0;
                            });
}

/// One thread's round: read a few configs, bump the shared counters, then
/// a long exclusive run on its own journal.
sim::Task<> worker(World* w, unsigned t, int rounds, bool profile,
                   const std::vector<Mechanism>* per_object_mech,
                   Mechanism uniform) {
  Ctx ctx{&w->rt, w->thread_proc(t)};
  sim::Rng rng(100 + t);
  auto mech_for = [&](std::size_t global_idx) {
    return per_object_mech != nullptr ? (*per_object_mech)[global_idx]
                                      : uniform;
  };
  for (int r = 0; r < rounds; ++r) {
    // A round is one logical operation: the activation chains through the
    // configs, counters and the journal, then returns home once — the
    // access-chain structure that lets computation migration amortise its
    // short-circuit return (free for mechanisms that never moved).
    for (int i = 0; i < 3; ++i) {
      const auto c = static_cast<std::size_t>(rng.below(kConfigs));
      co_await access(w, ctx, w->configs[c], mech_for(c),
                      /*write=*/rng.chance(0.02), profile,
                      w->thread_proc(t));
    }
    for (unsigned i = 0; i < kCounters; ++i) {
      co_await access(w, ctx, w->counters[i], mech_for(kConfigs + i), true,
                      profile, w->thread_proc(t));
    }
    // The journal phase is the thread's private work: come home first so
    // an attracted journal lands on the owner's processor, not wherever
    // the shared-phase chain happened to end. (Mixing mechanisms has real
    // composition rules — an activation that wanders while attracting
    // objects drags them along with it.)
    co_await w->rt.return_home(ctx, w->thread_proc(t), 2);
    for (int i = 0; i < 6; ++i) {
      co_await access(w, ctx, w->journals[t],
                      mech_for(kConfigs + kCounters + t), true, profile,
                      w->thread_proc(t));
    }
    co_await w->rt.return_home(ctx, w->thread_proc(t), 2);
  }
}

sim::Cycles run_uniform(Mechanism mech) {
  World w;
  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(worker(&w, t, kRounds, false, nullptr, mech));
  }
  w.eng.run();
  return w.eng.now();
}

sim::Cycles run_adaptive(std::vector<Mechanism>* picks_out) {
  World w;
  // Profiling prefix under the default mechanism.
  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(worker(&w, t, 4, true, nullptr, Mechanism::kMigration));
  }
  w.eng.run();
  const sim::Cycles profile_end = w.eng.now();

  std::vector<Mechanism> picks;
  auto pick = [&](const Obj& o) {
    picks.push_back(w.chooser.recommend(o.oid, 8, 8));
  };
  for (const auto& o : w.configs) pick(o);
  for (const auto& o : w.counters) pick(o);
  for (const auto& o : w.journals) pick(o);
  *picks_out = picks;

  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(worker(&w, t, kRounds, false, &picks, Mechanism::kRpc));
  }
  w.eng.run();
  return w.eng.now() - profile_end;  // steady-state cost, excluding profiling
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Adaptive mechanism selection: profile-guided chooser vs fixed mechanisms on both workloads.");

  std::printf("Adaptive mechanism selection on a mixed application\n"
              "(message-passing machine: no coherent-memory hardware)\n");
  std::printf("(%u threads; read-mostly configs, write-shared counters, "
              "per-thread journals)\n\n", kThreads);
  std::printf("%-22s %12s\n", "policy", "cycles");
  sim::Cycles best_static = ~0ull;
  for (const Mechanism m :
       {Mechanism::kRpc, Mechanism::kMigration, Mechanism::kObjectMigration,
        Mechanism::kThreadMigration}) {
    const sim::Cycles t = run_uniform(m);
    best_static = std::min(best_static, t);
    std::printf("static %-15s %12llu\n", mechanism_name(m),
                static_cast<unsigned long long>(t));
  }
  std::vector<Mechanism> picks;
  const sim::Cycles adaptive = run_adaptive(&picks);
  std::printf("%-22s %12llu\n", "adaptive (per object)",
              static_cast<unsigned long long>(adaptive));

  int cfg_cm = 0, ctr_cm = 0, jrn_obj = 0;
  for (unsigned i = 0; i < kConfigs; ++i) {
    cfg_cm += picks[i] == Mechanism::kMigration;
  }
  for (unsigned i = 0; i < kCounters; ++i) {
    ctr_cm += picks[kConfigs + i] == Mechanism::kMigration;
  }
  for (unsigned i = 0; i < kThreads; ++i) {
    jrn_obj += picks[kConfigs + kCounters + i] == Mechanism::kObjectMigration;
  }
  std::printf(
      "\nChooser assignments: %d/%u configs -> CP, %d/%u counters -> CP, "
      "%d/%u journals -> OBJ\n", cfg_cm, kConfigs, ctr_cm, kCounters,
      jrn_obj, kThreads);
  std::printf(
      "Adaptive vs best static: %.2fx\n",
      static_cast<double>(adaptive) / static_cast<double>(best_static));
  std::printf(
      "\nShape: profiling a short prefix recovers an interpretable\n"
      "per-object assignment (read-mostly tables and shared tallies vs.\n"
      "private journals) and beats the RPC, CP and TM static policies\n"
      "outright. The best static policy stays within ~10%%: mixing\n"
      "mechanisms has a composition tax — an activation that migrates for\n"
      "one object's sake pays return trips that a stationary one never\n"
      "does, and drags attracted objects to wherever it currently is.\n"
      "Automating the choice (§6) is workable, but placement interacts\n"
      "across objects — exactly why the paper wants the compiler, which\n"
      "sees whole chains, to make these decisions.\n");
  return 0;
}
