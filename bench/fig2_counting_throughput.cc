// Figure 2: counting-network throughput (requests / 1000 cycles) as a
// function of the number of requesting threads, for think times of 10,000
// and 0 cycles. Series: shared memory, computation migration w/ and w/o
// hardware support, RPC w/ and w/o hardware support — exactly the paper's
// legend.
//
// Optional argv[1]: write every run's full counter set as unified-schema
// JSON (stdout is unchanged either way).
#include <cstdio>

#include "apps/workload.h"
#include "core/metrics.h"

#include "bench_util.h"

using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

namespace {

const Scheme kSeries[] = {
    {Mechanism::kSharedMemory, false, false},
    {Mechanism::kMigration, true, false},
    {Mechanism::kMigration, false, false},
    {Mechanism::kRpc, true, false},
    {Mechanism::kRpc, false, false},
};

struct CheckTotals {
  bool enabled = false;
  unsigned runs = 0;
  std::uint64_t violations = 0;
  std::uint64_t hb_edges = 0;
};

void run_panel(cm::sim::Cycles think, cm::core::MetricsRegistry* reg,
               CheckTotals* check) {
  std::printf("\n-- think time %llu cycles --\n",
              static_cast<unsigned long long>(think));
  std::printf("%-10s", "threads");
  for (const Scheme& s : kSeries) std::printf("%14s", s.name().c_str());
  std::printf("\n");
  for (unsigned n = 8; n <= 64; n += 8) {
    std::printf("%-10u", n);
    for (const Scheme& s : kSeries) {
      CountingConfig cfg;
      cfg.scheme = s;
      cfg.requesters = n;
      cfg.think = think;
      cfg.window = Window{30'000, 200'000};
      cfg.check = check->enabled;
      const RunStats r = run_counting(cfg);
      if (r.checker_enabled) {
        ++check->runs;
        check->violations += r.check.total_violations;
        check->hb_edges += r.check.delivers;
        for (const auto& v : r.check_violations) {
          std::fprintf(stderr, "check: %s at cycle %llu: %s\n",
                       std::string(violation_name(v.kind)).c_str(),
                       static_cast<unsigned long long>(v.at),
                       v.detail.c_str());
        }
      }
      std::printf("%14.3f", r.throughput_per_1000());
      if (reg != nullptr) {
        char label[64];
        std::snprintf(label, sizeof label, "think=%llu/threads=%u/%s",
                      static_cast<unsigned long long>(think), n,
                      s.name().c_str());
        cm::core::Metrics& m = reg->record(label);
        put_run_stats(m, r);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "[--check] [out.json]",
                         "Figure 2: counting-network throughput vs requesters for SM/CP/RPC at think 0 and 10k cycles; optional unified-schema JSON export. --check runs every point under the invariant checker (stdout unchanged; exits nonzero on any violation).");
  cm::core::MetricsRegistry reg;
  CheckTotals check;
  check.enabled = cm::bench::take_flag(argc, argv, "--check");
  const char* json_path = argc > 1 ? argv[1] : nullptr;
  std::printf("Figure 2: counting-network throughput (requests/1000 cycles)\n");
  std::printf("8x8 bitonic network, 24 balancers on 24 processors; each\n");
  std::printf("requester on its own processor.\n");
  run_panel(10'000, json_path != nullptr ? &reg : nullptr, &check);
  run_panel(0, json_path != nullptr ? &reg : nullptr, &check);
  std::printf(
      "\nPaper shape: all series rise with threads; SM and CM w/HW lead (CM\n"
      "w/HW competitive with SM at high contention); CM above RPC\n"
      "everywhere; hardware support helps both message-passing schemes.\n");
  if (json_path != nullptr) {
    if (reg.write_json(json_path)) {
      std::fprintf(stderr, "wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  if (check.enabled) {
    std::fprintf(stderr,
                 "check: %u runs, %llu happens-before edges, "
                 "%llu violations\n",
                 check.runs,
                 static_cast<unsigned long long>(check.hb_edges),
                 static_cast<unsigned long long>(check.violations));
    if (check.violations != 0) return 1;
  }
  return 0;
}
