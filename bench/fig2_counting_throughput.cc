// Figure 2: counting-network throughput (requests / 1000 cycles) as a
// function of the number of requesting threads, for think times of 10,000
// and 0 cycles. Series: shared memory, computation migration w/ and w/o
// hardware support, RPC w/ and w/o hardware support — exactly the paper's
// legend.
#include <cstdio>

#include "apps/workload.h"

using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

namespace {

const Scheme kSeries[] = {
    {Mechanism::kSharedMemory, false, false},
    {Mechanism::kMigration, true, false},
    {Mechanism::kMigration, false, false},
    {Mechanism::kRpc, true, false},
    {Mechanism::kRpc, false, false},
};

void run_panel(cm::sim::Cycles think) {
  std::printf("\n-- think time %llu cycles --\n",
              static_cast<unsigned long long>(think));
  std::printf("%-10s", "threads");
  for (const Scheme& s : kSeries) std::printf("%14s", s.name().c_str());
  std::printf("\n");
  for (unsigned n = 8; n <= 64; n += 8) {
    std::printf("%-10u", n);
    for (const Scheme& s : kSeries) {
      CountingConfig cfg;
      cfg.scheme = s;
      cfg.requesters = n;
      cfg.think = think;
      cfg.window = Window{30'000, 200'000};
      const RunStats r = run_counting(cfg);
      std::printf("%14.3f", r.throughput_per_1000());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("Figure 2: counting-network throughput (requests/1000 cycles)\n");
  std::printf("8x8 bitonic network, 24 balancers on 24 processors; each\n");
  std::printf("requester on its own processor.\n");
  run_panel(10'000);
  run_panel(0);
  std::printf(
      "\nPaper shape: all series rise with threads; SM and CM w/HW lead (CM\n"
      "w/HW competitive with SM at high contention); CM above RPC\n"
      "everywhere; hardware support helps both message-passing schemes.\n");
  return 0;
}
