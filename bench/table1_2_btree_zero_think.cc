// Tables 1 and 2: distributed B-tree at zero think time — throughput
// (ops/1000 cycles) and bandwidth (words/10 cycles) for all nine schemes.
// 10,000-key tree, branching <= 100, nodes random over 48 processors,
// 16 requester threads on separate processors.
//
// Optional argv[1]: write every scheme's full counter set as unified-schema
// JSON (stdout is unchanged either way).
#include <cstdio>

#include "apps/workload.h"
#include "core/metrics.h"

#include "bench_util.h"

using cm::apps::BTreeConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "[--check] [out.json]",
                         "Tables 1-2: distributed B-tree throughput and bandwidth at zero think time, all schemes; optional unified-schema JSON export. --check runs every scheme under the invariant checker (stdout unchanged; exits nonzero on any violation).");
  const bool check_on = cm::bench::take_flag(argc, argv, "--check");
  std::uint64_t check_violations = 0;
  std::uint64_t check_hb_edges = 0;
  const Scheme schemes[] = {
      {Mechanism::kSharedMemory, false, false},
      {Mechanism::kRpc, false, false},
      {Mechanism::kRpc, true, false},
      {Mechanism::kRpc, false, true},
      {Mechanism::kRpc, true, true},
      {Mechanism::kMigration, false, false},
      {Mechanism::kMigration, true, false},
      {Mechanism::kMigration, false, true},
      {Mechanism::kMigration, true, true},
  };
  // Paper values for side-by-side comparison (Table 1 / Table 2).
  const double paper_thr[] = {1.837, 0.3828, 0.5133, 0.6060, 0.7830,
                              0.8018, 0.9570, 1.155,  1.341};
  const double paper_bw[] = {75, 7.3, 9.9, 7.0, 9.3, 3.5, 4.3, 3.8, 3.9};

  std::printf("Tables 1+2: B-tree, 0-cycle think time, 16 requesters\n");
  std::printf("%-18s %12s %12s | %12s %12s | %9s\n", "Scheme",
              "thr/1000cy", "paper", "bw words/10", "paper", "hit rate");
  cm::core::MetricsRegistry reg;
  const char* json_path = argc > 1 ? argv[1] : nullptr;
  double rpc_base = 0, cp_base = 0, sm = 0;
  for (unsigned i = 0; i < 9; ++i) {
    BTreeConfig cfg;
    cfg.scheme = schemes[i];
    cfg.window = Window{30'000, 250'000};
    cfg.check = check_on;
    const RunStats r = run_btree(cfg);
    if (r.checker_enabled) {
      check_violations += r.check.total_violations;
      check_hb_edges += r.check.delivers;
      for (const auto& v : r.check_violations) {
        std::fprintf(stderr, "check: %s at cycle %llu: %s\n",
                     std::string(violation_name(v.kind)).c_str(),
                     static_cast<unsigned long long>(v.at), v.detail.c_str());
      }
    }
    std::printf("%-18s %12.4f %12.4f | %12.2f %12.1f | %9.3f\n",
                schemes[i].name().c_str(), r.throughput_per_1000(),
                paper_thr[i], r.words_per_10(), paper_bw[i],
                r.cache_hit_rate);
    if (json_path != nullptr) {
      cm::core::Metrics& m = reg.record(schemes[i].name());
      m.put("paper_throughput", paper_thr[i]);
      m.put("paper_bandwidth", paper_bw[i]);
      put_run_stats(m, r);
    }
    if (i == 0) sm = r.throughput_per_1000();
    if (i == 1) rpc_base = r.throughput_per_1000();
    if (i == 5) cp_base = r.throughput_per_1000();
  }
  std::printf(
      "\nKey ratios   measured   paper\n"
      "SM / RPC     %8.2f   %6.2f\n"
      "SM / CP      %8.2f   %6.2f\n"
      "CP / RPC     %8.2f   %6.2f\n",
      sm / rpc_base, 1.837 / 0.3828, sm / cp_base, 1.837 / 0.8018,
      cp_base / rpc_base, 0.8018 / 0.3828);
  std::printf(
      "\nPaper shape: SM leads (hardware replication of upper levels);\n"
      "every CP variant beats the matching RPC variant; replication and\n"
      "hardware support each help both message-passing mechanisms; SM's\n"
      "bandwidth dwarfs everything else.\n");
  if (json_path != nullptr) {
    if (reg.write_json(json_path)) {
      std::fprintf(stderr, "wrote %s\n", json_path);
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
  }
  if (check_on) {
    std::fprintf(stderr,
                 "check: 9 schemes, %llu happens-before edges, "
                 "%llu violations\n",
                 static_cast<unsigned long long>(check_hb_edges),
                 static_cast<unsigned long long>(check_violations));
    if (check_violations != 0) return 1;
  }
  return 0;
}
