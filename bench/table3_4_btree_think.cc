// Tables 3 and 4: distributed B-tree with a 10,000-cycle think time —
// with the root bottleneck relieved by lighter load, computation migration
// with replication and hardware support matches shared memory's throughput
// while using a fraction of the network.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using cm::apps::BTreeConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Tables 3-4: distributed B-tree throughput and bandwidth with 10,000-cycle think time, all schemes.");

  const Scheme schemes[] = {
      {Mechanism::kSharedMemory, false, false},
      {Mechanism::kMigration, false, true},
      {Mechanism::kMigration, true, true},
  };
  const double paper_thr[] = {1.071, 0.9816, 1.053};
  const double paper_bw[] = {16, 2.5, 2.7};

  std::printf("Tables 3+4: B-tree, 10,000-cycle think time, 16 requesters\n");
  std::printf("%-18s %12s %12s | %12s %12s\n", "Scheme", "thr/1000cy",
              "paper", "bw words/10", "paper");
  for (unsigned i = 0; i < 3; ++i) {
    BTreeConfig cfg;
    cfg.scheme = schemes[i];
    cfg.think = 10'000;
    cfg.window = Window{40'000, 300'000};
    const RunStats r = run_btree(cfg);
    std::printf("%-18s %12.4f %12.4f | %12.2f %12.1f\n",
                schemes[i].name().c_str(), r.throughput_per_1000(),
                paper_thr[i], r.words_per_10(), paper_bw[i]);
  }
  std::printf(
      "\nPaper shape: with lighter root contention the three schemes'\n"
      "throughputs nearly tie, while shared memory still pays several times\n"
      "the bandwidth to maintain coherence.\n");
  return 0;
}
