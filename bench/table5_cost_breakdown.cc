// Table 5: approximate cost of migrating one activation in the counting
// network, broken down by category. We run the computation-migration
// counting-network workload, then divide the runtime's per-category cycle
// accumulators by the number of migrations.
#include <cstdio>

#include "apps/workload.h"
#include "core/cost_model.h"
#include "core/stats.h"

#include "bench_util.h"

using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Breakdown;
using cm::core::Category;
using cm::core::CostModel;
using cm::core::Mechanism;
using cm::core::Scheme;

namespace {

struct Row {
  Category cat;
  double paper_cycles;  // Table 5 (0 = not reported separately)
};

void print_breakdown(const RunStats& r, const char* title) {
  const Breakdown& bd = r.runtime.breakdown;
  const double migs = static_cast<double>(r.runtime.migrations);
  if (migs == 0) return;

  // The accumulators also include the per-op return-home reply and the
  // user code between hops; dividing everything by migrations matches the
  // paper's "approximate costs ... to migrate one activation".
  const Row receiver_rows[] = {
      {Category::kCopyPacket, 76},      {Category::kThreadCreation, 66},
      {Category::kRecvLinkage, 66},     {Category::kUnmarshal, 51},
      {Category::kOidTranslation, 36},  {Category::kScheduler, 36},
      {Category::kForwardingCheck, 23}, {Category::kRecvAllocPacket, 16},
  };
  const Row sender_rows[] = {
      {Category::kSendLinkage, 44},
      {Category::kSendAllocPacket, 35},
      {Category::kMessageSend, 23},
      {Category::kMarshal, 22},
  };

  double recv_total = 0, send_total = 0;
  for (const Row& row : receiver_rows) {
    recv_total += static_cast<double>(bd.get(row.cat)) / migs;
  }
  for (const Row& row : sender_rows) {
    send_total += static_cast<double>(bd.get(row.cat)) / migs;
  }
  const double user = static_cast<double>(bd.get(Category::kUserCode)) / migs;
  const double transit =
      static_cast<double>(bd.get(Category::kNetworkTransit)) / migs;
  const double total = user + transit + recv_total + send_total;

  std::printf("\n%s\n", title);
  std::printf("%-28s %9s %9s %8s\n", "Category", "cycles", "paper", "pct");
  auto line = [&](const char* name, double v, double paper) {
    std::printf("%-28s %9.1f %9.1f %7.1f%%\n", name, v, paper,
                100.0 * v / total);
  };
  line("Total time", total, 651);
  line("User code", user, 150);
  line("Network transit", transit, 17);
  line("Message overhead total", recv_total + send_total, 484);
  line("Receiver total", recv_total, 341);
  for (const Row& row : receiver_rows) {
    line(std::string("  ").append(category_name(row.cat)).c_str(),
         static_cast<double>(bd.get(row.cat)) / migs, row.paper_cycles);
  }
  line("Sender total", send_total, 143);
  for (const Row& row : sender_rows) {
    line(std::string("  ").append(category_name(row.cat)).c_str(),
         static_cast<double>(bd.get(row.cat)) / migs, row.paper_cycles);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Table 5: per-category cycle breakdown of one migrated activation in the counting network.");

  std::printf("Table 5: approximate costs for migration in the counting "
              "network\n(per-category cycles divided by migrations)\n");

  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.think = 10'000;  // light load: per-migration costs, not queueing
  cfg.window = Window{30'000, 200'000};
  print_breakdown(run_counting(cfg), "-- software runtime --");

  cfg.scheme = Scheme{Mechanism::kMigration, true, false};
  print_breakdown(run_counting(cfg),
                  "-- with hardware support (register NI + OID translation; "
                  "paper estimate: ~26% of overhead removed) --");

  std::printf(
      "\nPaper shape: message overhead dominates the migration (~74%% of the\n"
      "end-to-end time in software); hardware support removes the packet\n"
      "copies/allocations, halves (un)marshaling, and eliminates object-ID\n"
      "translation.\n");
  return 0;
}
