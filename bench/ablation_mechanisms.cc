// Five-way mechanism comparison — the full §2 design space on both paper
// workloads, including the two mechanisms the paper discusses but does not
// measure:
//   * OBJ — Emerald-style object migration [JLHB88], the comparison §4
//     explicitly wished for ("our group has not finished implementing
//     object migration in Prelude yet");
//   * TM  — whole-thread migration (§2.3), i.e. computation migration with
//     the entire thread state shipped on every hop.
// Expected shapes, from the paper's arguments:
//   * OBJ collapses on write-shared structures (balancers, B-tree upper
//     levels ping-pong with their full state in tow) but excels when one
//     thread has an affinity run to an object;
//   * TM behaves like CP taxed by its larger per-hop payload ("the grain
//     of migration is too coarse ... the amount of state to be moved is
//     large").
#include <cstdio>
#include <vector>

#include "apps/workload.h"
#include "core/mobile.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

#include "bench_util.h"

using namespace cm;
using core::Ctx;
using core::Mechanism;
using core::Scheme;

namespace {

const Mechanism kAll[] = {Mechanism::kRpc, Mechanism::kMigration,
                          Mechanism::kSharedMemory,
                          Mechanism::kObjectMigration,
                          Mechanism::kThreadMigration};

void counting_panel() {
  std::printf("\nCounting network, 32 requesters, think 0 "
              "(write-shared balancers):\n");
  std::printf("%-5s %12s %14s\n", "mech", "thr/1000cy", "bw words/10cy");
  for (const Mechanism m : kAll) {
    apps::CountingConfig cfg;
    cfg.scheme = Scheme{m, false, false};
    cfg.requesters = 32;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_counting(cfg);
    std::printf("%-5s %12.3f %14.2f\n", mechanism_name(m),
                r.throughput_per_1000(), r.words_per_10());
  }
}

void btree_panel() {
  std::printf("\nDistributed B-tree, 16 requesters, think 0 "
              "(hot root, large nodes):\n");
  std::printf("%-5s %12s %14s\n", "mech", "thr/1000cy", "bw words/10cy");
  for (const Mechanism m : kAll) {
    apps::BTreeConfig cfg;
    cfg.scheme = Scheme{m, false, false};
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_btree(cfg);
    std::printf("%-5s %12.3f %14.2f\n", mechanism_name(m),
                r.throughput_per_1000(), r.words_per_10());
  }
}

// Affinity scenario: each thread owns a long access run to "its" object
// before anyone else touches it — object migration's home turf.
sim::Task<> affinity_run(core::Runtime* rt, core::MobileObject* mob,
                         core::ObjectId oid, Mechanism mech, sim::ProcId home,
                         int runs, int accesses) {
  Ctx ctx{rt, home};
  for (int r = 0; r < runs; ++r) {
    if (mech == Mechanism::kObjectMigration) co_await mob->attract(ctx);
    if (mech == Mechanism::kMigration) co_await rt->migrate(ctx, oid, 8);
    for (int a = 0; a < accesses; ++a) {
      (void)co_await rt->call(ctx, oid, core::CallOpts{4, 2, false},
                              [rt](Ctx& c) -> sim::Task<int> {
                                co_await rt->compute(c, 40);
                                co_return 0;
                              });
    }
    co_await rt->return_home(ctx, home, 2);
  }
}

void affinity_panel() {
  std::printf("\nAffinity scenario: 4 threads, each with exclusive 32-access "
              "runs to its own object:\n");
  std::printf("%-5s %12s %10s\n", "mech", "cycles", "messages");
  for (const Mechanism m : {Mechanism::kRpc, Mechanism::kMigration,
                            Mechanism::kObjectMigration}) {
    sim::Engine eng;
    sim::Machine machine(eng, 8);
    net::ConstantNetwork net(eng);
    core::ObjectSpace objects;
    core::Runtime rt(machine, net, objects, core::CostModel::software());
    std::vector<core::ObjectId> oids;
    std::vector<std::unique_ptr<core::MobileObject>> mobs;
    for (int t = 0; t < 4; ++t) {
      oids.push_back(objects.create(static_cast<sim::ProcId>(4 + t)));
      mobs.push_back(std::make_unique<core::MobileObject>(rt, oids[t], 24));
    }
    for (int t = 0; t < 4; ++t) {
      sim::detach(affinity_run(&rt, mobs[t].get(), oids[t], m,
                               static_cast<sim::ProcId>(t), 4, 32));
    }
    eng.run();
    std::printf("%-5s %12llu %10llu\n", mechanism_name(m),
                static_cast<unsigned long long>(eng.now()),
                static_cast<unsigned long long>(net.stats().messages));
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Five-way mechanism comparison (RPC/CP/TM/OBJ/SM) on both paper workloads.");

  std::printf("Mechanism design space (§2): RPC, computation migration,\n"
              "shared memory, object migration, thread migration\n");
  counting_panel();
  btree_panel();
  affinity_panel();
  std::printf(
      "\nShapes: on the paper's write-shared workloads CP dominates the\n"
      "other migratory mechanisms (TM pays its payload every hop; OBJ drags\n"
      "whole objects through the network); with exclusive affinity runs,\n"
      "object migration matches computation migration — each mechanism has\n"
      "a regime, which is the paper's §1 argument for letting the\n"
      "programmer choose per call site.\n");
  return 0;
}
