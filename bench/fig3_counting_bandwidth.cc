// Figure 3: network bandwidth consumed by the counting network (words sent
// per 10 cycles) vs. number of requesters, for RPC, shared memory, and
// computation migration, at both think times.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

namespace {

const Scheme kSeries[] = {
    {Mechanism::kRpc, false, false},
    {Mechanism::kSharedMemory, false, false},
    {Mechanism::kMigration, false, false},
};

void run_panel(cm::sim::Cycles think) {
  std::printf("\n-- think time %llu cycles --\n",
              static_cast<unsigned long long>(think));
  std::printf("%-10s", "threads");
  for (const Scheme& s : kSeries) std::printf("%18s", s.name().c_str());
  std::printf("%18s\n", "CP words/op");
  for (unsigned n = 8; n <= 64; n += 8) {
    std::printf("%-10u", n);
    double cp_per_op = 0;
    for (const Scheme& s : kSeries) {
      CountingConfig cfg;
      cfg.scheme = s;
      cfg.requesters = n;
      cfg.think = think;
      cfg.window = Window{30'000, 200'000};
      const RunStats r = run_counting(cfg);
      std::printf("%18.3f", r.words_per_10());
      if (s.mechanism == Mechanism::kMigration && r.ops > 0) {
        cp_per_op = static_cast<double>(r.words) / static_cast<double>(r.ops);
      }
    }
    std::printf("%18.1f\n", cp_per_op);
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Figure 3: counting-network bandwidth (words/10 cycles) vs requesters for SM/CP/RPC at both think times.");

  std::printf(
      "Figure 3: counting-network bandwidth (words sent / 10 cycles)\n");
  run_panel(10'000);
  run_panel(0);
  std::printf(
      "\nPaper shape: shared memory consumes by far the most bandwidth under\n"
      "high contention (coherence/invalidation storms on the write-shared\n"
      "balancers); per operation, computation migration moves the fewest\n"
      "words of all three mechanisms.\n");
  return 0;
}
