// §4.2 branching-factor ablation: with nodes constrained to at most 10
// entries (instead of 100) the level below the root widens and individual
// node visits get cheaper, relieving the sub-root resource contention that
// limits computation migration w/ replication — so its throughput closes
// most of the gap to shared memory (paper: 2.076 vs 2.427 ops/1000 cycles).
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using cm::apps::BTreeConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Branching-factor ablation (sec 4.2): B-tree schemes with node fanout capped at 10 vs 100.");

  std::printf("B-tree branching-factor ablation (0 think time)\n");
  std::printf("%-10s %-18s %12s %14s\n", "branching", "Scheme", "thr/1000cy",
              "bw words/10cy");
  double thr[2][2] = {};
  const Scheme schemes[] = {
      {Mechanism::kSharedMemory, false, false},
      {Mechanism::kMigration, false, true},
  };
  int fi = 0;
  for (unsigned fanout : {100u, 10u}) {
    int si = 0;
    for (const Scheme& s : schemes) {
      BTreeConfig cfg;
      cfg.scheme = s;
      cfg.max_entries = fanout;
      cfg.window = Window{30'000, 250'000};
      const RunStats r = run_btree(cfg);
      thr[fi][si] = r.throughput_per_1000();
      std::printf("%-10u %-18s %12.4f %14.2f\n", fanout, s.name().c_str(),
                  r.throughput_per_1000(), r.words_per_10());
      ++si;
    }
    ++fi;
  }
  std::printf("\nCP w/repl. gain from narrower nodes: %.2fx (paper: %.2fx)\n",
              thr[1][1] / thr[0][1], 2.076 / 1.155);
  std::printf("SM : CP w/repl. ratio at branching 10: %.2f (paper: %.2f)\n",
              thr[1][0] / thr[1][1], 2.427 / 2.076);
  return 0;
}
