// Prefetching ablation. §2.5: "Our model also does not take into account
// techniques for hiding latency, such as prefetching and multithreading.
// Prefetching will lower the relative cost of performing data migration,
// since the delays involved with data migration can be overlapped with
// computation."
//
// One thread on P0 works through m remote 160-byte blocks, n accesses each
// with real compute between accesses. We compare computation migration,
// plain data migration (coherent reads), and data migration with a
// software prefetch of block i+1 issued while working on block i.
#include <cstdio>
#include <vector>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"

#include "bench_util.h"

using namespace cm;
using core::Ctx;

namespace {

constexpr unsigned kBlocks = 12;
constexpr unsigned kBlockBytes = 160;  // 10 lines
constexpr unsigned kAccesses = 4;
constexpr sim::Cycles kWork = 150;

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;

  World()
      : machine(eng, kBlocks + 1), net(eng), mem(machine, net),
        rt(machine, net, objects, core::CostModel::software()) {}
};

sim::Task<> data_migration(World* w, std::vector<shmem::Addr> blocks,
                           bool prefetch) {
  for (unsigned i = 0; i < blocks.size(); ++i) {
    if (prefetch && i + 1 < blocks.size()) {
      w->mem.prefetch(0, blocks[i + 1], kBlockBytes);
    }
    for (unsigned a = 0; a < kAccesses; ++a) {
      co_await w->mem.read(0, blocks[i], kBlockBytes);
      co_await w->machine.compute(0, kWork);
    }
  }
}

sim::Task<> comp_migration(World* w, std::vector<core::ObjectId> objs) {
  Ctx ctx{&w->rt, 0};
  for (const auto obj : objs) {
    co_await w->rt.migrate(ctx, obj, 8);
    for (unsigned a = 0; a < kAccesses; ++a) {
      (void)co_await w->rt.call(ctx, obj, core::CallOpts{4, 2, false},
                                [w](Ctx& c) -> sim::Task<int> {
                                  co_await w->rt.compute(c, kWork);
                                  co_return 0;
                                });
    }
  }
  co_await w->rt.return_home(ctx, 0, 2);
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Prefetching ablation (sec 2.5): latency hiding lowering the relative cost of data migration.");

  std::printf("Latency hiding: %u remote blocks x %u accesses, %llu cycles "
              "of work per access\n\n", kBlocks, kAccesses,
              static_cast<unsigned long long>(kWork));

  sim::Cycles cm = 0, dm = 0, dmpf = 0;
  std::uint64_t dm_words = 0, dmpf_words = 0, cm_words = 0;
  {
    World w;
    std::vector<core::ObjectId> objs;
    for (unsigned i = 0; i < kBlocks; ++i) {
      objs.push_back(w.objects.create(static_cast<sim::ProcId>(i + 1)));
    }
    sim::detach(comp_migration(&w, objs));
    w.eng.run();
    cm = w.eng.now();
    cm_words = w.net.stats().words;
  }
  for (const bool pf : {false, true}) {
    World w;
    std::vector<shmem::Addr> blocks;
    for (unsigned i = 0; i < kBlocks; ++i) {
      blocks.push_back(w.mem.alloc(static_cast<sim::ProcId>(i + 1),
                                   kBlockBytes));
    }
    sim::detach(data_migration(&w, blocks, pf));
    w.eng.run();
    (pf ? dmpf : dm) = w.eng.now();
    (pf ? dmpf_words : dm_words) = w.net.stats().words;
  }

  std::printf("%-28s %10s %10s\n", "mechanism", "cycles", "words");
  std::printf("%-28s %10llu %10llu\n", "computation migration",
              static_cast<unsigned long long>(cm),
              static_cast<unsigned long long>(cm_words));
  std::printf("%-28s %10llu %10llu\n", "data migration",
              static_cast<unsigned long long>(dm),
              static_cast<unsigned long long>(dm_words));
  std::printf("%-28s %10llu %10llu\n", "data migration + prefetch",
              static_cast<unsigned long long>(dmpf),
              static_cast<unsigned long long>(dmpf_words));
  std::printf(
      "\nShape: two of §2's predictions at once. The blocks here are\n"
      "read-only and re-accessed, so plain data migration already beats\n"
      "computation migration (\"when the amount of data that is accessed is\n"
      "small and rarely written, data migration should outperform\n"
      "computation migration\", §2.4) — and prefetching widens that edge by\n"
      "another %.0f%% at identical word cost (\"prefetching will lower the\n"
      "relative cost of performing data migration\", §2.5). Data migration\n"
      "pays ~%.0fx the bandwidth either way.\n",
      100.0 * (static_cast<double>(dm) / static_cast<double>(dmpf) - 1.0),
      static_cast<double>(dm_words) / static_cast<double>(cm_words));
  return 0;
}
