// Shared helpers for the bench binaries. Header-only on purpose: each bench
// is a self-contained program and the helpers are a handful of lines.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cm::bench {

/// Print a usage line and exit(0) when any argument is -h/--help.
/// `args` documents the positional arguments ("" when the bench takes
/// none); `what` is a one-line description of what the bench prints.
inline void maybe_usage(int argc, char** argv, const char* args,
                        const char* what) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-h") != 0 &&
        std::strcmp(argv[i], "--help") != 0) {
      continue;
    }
    std::printf("usage: %s%s%s\n%s\n", argv[0], *args != '\0' ? " " : "",
                args, what);
    std::exit(0);
  }
}

/// Remove `flag` from argv when present and report whether it was there.
/// Keeps positional-argument handling in the benches untouched by optional
/// flags like --check.
inline bool take_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    return true;
  }
  return false;
}

/// Remove one `flag <value>` pair from argv and copy the value out.
/// Returns false (argv untouched) when the flag is absent; exits with a
/// message when the flag is last, with no value after it. Call in a loop
/// to collect repeatable flags like `--tune key=value`.
inline bool take_value(int& argc, char** argv, const char* flag, char* out,
                       std::size_t out_size) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
      std::exit(1);
    }
    std::snprintf(out, out_size, "%s", argv[i + 1]);
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return true;
  }
  return false;
}

}  // namespace cm::bench
