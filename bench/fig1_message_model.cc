// Figure 1 / §2.5: the message-count model. One thread on processor P0
// makes n consecutive accesses to each of m data items living on processors
// 1..m. The model predicts:
//   RPC                   : 2*n*m messages (two per access)
//   data migration        : 2*m   messages (each datum fetched once, then
//                           local; cache-coherent shared memory)
//   computation migration : m + 1 messages (one hop per datum, one
//                           short-circuited return)
// This bench MEASURES all three against the model using the real substrates.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"

#include "bench_util.h"

using namespace cm;
using core::Ctx;

namespace {

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  shmem::CoherentMemory mem;
  core::ObjectSpace objects;
  core::Runtime rt;

  explicit World(unsigned m)
      : machine(eng, m + 1), net(eng), mem(machine, net),
        rt(machine, net, objects, core::CostModel::software()) {}
};

sim::Task<> rpc_sweep(World* w, std::vector<core::ObjectId> objs, unsigned n) {
  Ctx ctx{&w->rt, 0};
  for (const auto obj : objs) {
    for (unsigned i = 0; i < n; ++i) {
      (void)co_await w->rt.call(ctx, obj, core::CallOpts{4, 2, false},
                                [w](Ctx& callee) -> sim::Task<int> {
                                  co_await w->rt.compute(callee, 50);
                                  co_return 0;
                                });
    }
  }
}

sim::Task<> migrate_sweep(World* w, std::vector<core::ObjectId> objs,
                          unsigned n) {
  Ctx ctx{&w->rt, 0};
  for (const auto obj : objs) {
    co_await w->rt.migrate(ctx, obj, 8);  // the annotation
    for (unsigned i = 0; i < n; ++i) {
      (void)co_await w->rt.call(ctx, obj, core::CallOpts{4, 2, false},
                                [w](Ctx& callee) -> sim::Task<int> {
                                  co_await w->rt.compute(callee, 50);
                                  co_return 0;
                                });
    }
  }
  co_await w->rt.return_home(ctx, 0, 2);
}

sim::Task<> data_sweep(World* w, std::vector<shmem::Addr> addrs, unsigned n) {
  // Data migration: the datum's cache line moves to P0 once, then all n
  // accesses hit locally.
  for (const auto a : addrs) {
    for (unsigned i = 0; i < n; ++i) {
      co_await w->mem.write(0, a, 4);
      co_await w->machine.compute(0, 50);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Figure 1 (sec 2.5): predicted vs simulated message counts for n accesses to each of m remote items, per mechanism.");

  std::printf("Figure 1: messages for one thread making n accesses to each "
              "of m remote data items\n");
  std::printf("%4s %4s | %10s %6s | %10s %6s | %10s %6s\n", "m", "n",
              "RPC", "2nm", "data mig.", "2m", "comp mig.", "m+1");
  for (unsigned m : {1u, 2u, 4u, 8u, 16u, 32u}) {
    for (unsigned n : {1u, 2u, 8u}) {
      std::uint64_t rpc_msgs = 0, dm_msgs = 0, cm_msgs = 0;
      {
        World w(m);
        std::vector<core::ObjectId> objs;
        for (unsigned i = 0; i < m; ++i) {
          objs.push_back(w.objects.create(static_cast<sim::ProcId>(i + 1)));
        }
        sim::detach(rpc_sweep(&w, objs, n));
        w.eng.run();
        rpc_msgs = w.net.stats().messages;
      }
      {
        World w(m);
        std::vector<shmem::Addr> addrs;
        for (unsigned i = 0; i < m; ++i) {
          addrs.push_back(w.mem.alloc(static_cast<sim::ProcId>(i + 1), 4));
        }
        sim::detach(data_sweep(&w, addrs, n));
        w.eng.run();
        dm_msgs = w.net.stats().messages;
      }
      {
        World w(m);
        std::vector<core::ObjectId> objs;
        for (unsigned i = 0; i < m; ++i) {
          objs.push_back(w.objects.create(static_cast<sim::ProcId>(i + 1)));
        }
        sim::detach(migrate_sweep(&w, objs, n));
        w.eng.run();
        cm_msgs = w.net.stats().messages;
      }
      std::printf("%4u %4u | %10llu %6u | %10llu %6u | %10llu %6u\n", m, n,
                  static_cast<unsigned long long>(rpc_msgs), 2 * n * m,
                  static_cast<unsigned long long>(dm_msgs), 2 * m,
                  static_cast<unsigned long long>(cm_msgs), m + 1);
    }
  }
  std::printf("\nEvery measured count should equal the model column beside "
              "it.\n");
  return 0;
}
