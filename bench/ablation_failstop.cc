// Fail-stop ablation: the counting network and the B-tree run a fixed
// amount of work while 0, 1, 2 or 4 processors fail-stop mid-run at
// staggered times. The ft layer detects each death by lease expiry,
// cancels sends into the void, and re-homes the dead processors' objects
// from simulated backups — so every row of a workload/mechanism pair
// reports exactly the same application result, and what varies is
// availability: throughput relative to the crash-free run, plus the
// detection and recovery latencies behind it. A final row runs the
// no-recovery mode (`rehome_unreplicated = false`) to show the graceful
// degradation path: condemned objects cost operations, not hangs.
//
// Output: a human-readable table on stdout plus a JSON dump in the unified
// metrics schema (default ablation_failstop.json, or the path given as
// argv[1]) carrying the full ft counters for downstream tooling.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "core/metrics.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

namespace {

constexpr unsigned kCrashCounts[] = {0, 1, 2, 4};

// Victims are pairwise non-adjacent on the monitor ring (monitors = 2), so
// simultaneous deaths never falsely expire a live processor's lease.
// Counting: balancer processors (procs 0..23 at width 8; requesters on
// 24..39). B-tree: node processors that host nodes under seed 1
// (requesters on 48+).
constexpr sim::ProcId kCountingVictims[] = {2, 9, 14, 19};
constexpr sim::Cycles kCountingTimes[] = {10'000, 25'000, 40'000, 55'000};
constexpr sim::ProcId kBTreeVictims[] = {18, 47, 24, 44};
constexpr sim::Cycles kBTreeTimes[] = {15'000, 45'000, 75'000, 105'000};

net::FaultPlan crash_plan(unsigned crashes, const sim::ProcId* victims,
                          const sim::Cycles* times) {
  net::FaultPlan plan;
  for (unsigned i = 0; i < crashes; ++i) {
    plan.nic_fail_at[victims[i]] = times[i];
  }
  return plan;
}

ft::FtConfig ft_on() {
  ft::FtConfig cfg;
  cfg.enabled = true;
  return cfg;
}

struct Row {
  const char* workload;
  const char* mechanism;
  const char* mode;  // "off", "rehome" or "lost"
  unsigned crashes;
  apps::RunStats r;
};

apps::RunStats counting_at(Mechanism mech, unsigned crashes, bool ft,
                           bool rehome = true) {
  apps::CountingConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 16;
  cfg.ops_per_requester = 50;
  cfg.faults = crash_plan(crashes, kCountingVictims, kCountingTimes);
  if (ft) {
    cfg.ft = ft_on();
    cfg.ft.rehome_unreplicated = rehome;
  }
  return run_counting(cfg);
}

apps::RunStats btree_at(Mechanism mech, unsigned crashes, bool ft) {
  apps::BTreeConfig cfg;
  cfg.scheme = Scheme{mech, false, false};
  cfg.requesters = 8;
  cfg.nkeys = 1000;
  cfg.max_entries = 20;
  cfg.ops_per_requester = 50;
  cfg.faults = crash_plan(crashes, kBTreeVictims, kBTreeTimes);
  if (ft) cfg.ft = ft_on();
  return run_btree(cfg);
}

double fixed_work_throughput(const apps::RunStats& r) {
  return r.completed_at == 0
             ? 0.0
             : static_cast<double>(r.ops) * 1000.0 /
                   static_cast<double>(r.completed_at);
}

void print_table(const std::vector<Row>& rows) {
  // Availability = throughput / the same pair's crash-free ft-on throughput.
  std::printf("%-9s %-5s %-7s %3s %10s %7s %6s %10s %10s %5s %5s %10s\n",
              "workload", "mech", "mode", "n", "completed", "thr", "avail",
              "detect_cy", "rehome_cy", "rec", "lost", "result");
  for (const Row& row : rows) {
    double base = 0.0;
    for (const Row& other : rows) {
      if (other.workload == row.workload &&
          other.mechanism == row.mechanism && other.crashes == 0 &&
          std::string(other.mode) == "rehome") {
        base = fixed_work_throughput(other.r);
      }
    }
    const double thr = fixed_work_throughput(row.r);
    char result[32];
    if (std::string(row.workload) == "counting") {
      std::snprintf(result, sizeof result, "%ld", row.r.total_exited);
    } else {
      std::snprintf(result, sizeof result, "%016llx",
                    static_cast<unsigned long long>(row.r.btree_digest));
    }
    std::printf(
        "%-9s %-5s %-7s %3u %10llu %7.2f %6.2f %10.0f %10.0f %5llu %5ld %10s\n",
        row.workload, row.mechanism, row.mode, row.crashes,
        static_cast<unsigned long long>(row.r.completed_at), thr,
        base == 0.0 ? 0.0 : thr / base, row.r.ft.mean_detect_latency(),
        row.r.ft.mean_rehome_latency(),
        static_cast<unsigned long long>(row.r.ft.recoveries),
        row.r.ft_lost_ops, result);
  }
}

void write_json(const char* path, const std::vector<Row>& rows) {
  core::MetricsRegistry reg;
  for (const Row& row : rows) {
    char label[64];
    std::snprintf(label, sizeof label, "%s/%s/%s/crashes=%u", row.workload,
                  row.mechanism, row.mode, row.crashes);
    core::Metrics& m = reg.record(label);
    m.put("workload", row.workload);
    m.put("mechanism", row.mechanism);
    m.put("ft_mode", row.mode);
    m.put("crashes", static_cast<std::uint64_t>(row.crashes));
    apps::put_run_stats(m, row.r);
  }
  if (!reg.write_json(path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "[out.json]",
                         "Fail-stop ablation: fixed work while 0/1/2/4 processors crash mid-run; availability, detection and recovery latency, JSON export.");
  std::printf("Fail-stop ablation: fixed work under processor crashes\n");
  std::printf("counting: 16 requesters x 50 ops; B-tree: 8 requesters x 50"
              " ops, 1000 keys\n");
  std::printf("detector: heartbeat every 2000 cycles, 2 ring monitors,"
              " lease = 3 intervals\n\n");

  std::vector<Row> rows;
  rows.push_back({"counting", "CP", "off", 0,
                  counting_at(Mechanism::kMigration, 0, /*ft=*/false)});
  for (const unsigned n : kCrashCounts) {
    rows.push_back({"counting", "CP", "rehome", n,
                    counting_at(Mechanism::kMigration, n, /*ft=*/true)});
  }
  for (const unsigned n : kCrashCounts) {
    rows.push_back({"counting", "RPC", "rehome", n,
                    counting_at(Mechanism::kRpc, n, /*ft=*/true)});
  }
  for (const unsigned n : kCrashCounts) {
    rows.push_back({"btree", "CP", "rehome", n,
                    btree_at(Mechanism::kMigration, n, /*ft=*/true)});
  }
  // Graceful degradation: no backup restore, condemned objects cost ops.
  rows.push_back({"counting", "RPC", "lost", 1,
                  counting_at(Mechanism::kRpc, 1, /*ft=*/true,
                              /*rehome=*/false)});
  print_table(rows);

  std::printf(
      "\nShape: within a workload/mechanism pair every re-home row reports\n"
      "the same result column — crashes cost detection + recovery time\n"
      "(availability dips with the crash count), never correctness. The\n"
      "ft-off row shows the detector's overhead is pure heartbeat traffic;\n"
      "the lost row shows degradation without recovery: completed ops drop\n"
      "by exactly the condemned operations, and nothing hangs.\n");

  write_json(argc > 1 ? argv[1] : "ablation_failstop.json", rows);
  return 0;
}
