// Ablation for the paper's design discussion (§2.4, §6):
//  (a) Migration-state sweep: "the cost of using [computation migration]
//      depends on the amount of computation state that must be moved" —
//      sweep the live-frame size and find where RPC becomes competitive.
//  (b) Multi-activation migration (future work in §6): migrating a 2-frame
//      group in one message vs. migrating only the top activation (which
//      forces the eventual return to relay through the caller's processor).
#include <cstdio>
#include <vector>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

#include "bench_util.h"

using namespace cm;
using core::Ctx;

namespace {

struct World {
  sim::Engine eng;
  sim::Machine machine;
  net::ConstantNetwork net;
  core::ObjectSpace objects;
  core::Runtime rt;

  explicit World(unsigned procs)
      : machine(eng, procs), net(eng),
        rt(machine, net, objects, core::CostModel::software()) {}
};

constexpr unsigned kHops = 8;
constexpr unsigned kAccessesPerDatum = 2;

sim::Task<> chain_migrate(World* w, std::vector<core::ObjectId> objs,
                          unsigned frame_words, sim::Cycles* out) {
  Ctx ctx{&w->rt, 0};
  for (const auto obj : objs) {
    co_await w->rt.migrate(ctx, obj, frame_words);
    for (unsigned i = 0; i < kAccessesPerDatum; ++i) {
      (void)co_await w->rt.call(ctx, obj, core::CallOpts{4, 2, false},
                                [w](Ctx& c) -> sim::Task<int> {
                                  co_await w->rt.compute(c, 60);
                                  co_return 0;
                                });
    }
  }
  co_await w->rt.return_home(ctx, 0, 2);
  *out = w->eng.now();
}

sim::Task<> chain_rpc(World* w, std::vector<core::ObjectId> objs,
                      sim::Cycles* out) {
  Ctx ctx{&w->rt, 0};
  for (const auto obj : objs) {
    for (unsigned i = 0; i < kAccessesPerDatum; ++i) {
      (void)co_await w->rt.call(ctx, obj, core::CallOpts{4, 2, false},
                                [w](Ctx& c) -> sim::Task<int> {
                                  co_await w->rt.compute(c, 60);
                                  co_return 0;
                                });
    }
  }
  *out = w->eng.now();
}

std::vector<core::ObjectId> make_objs(World& w) {
  std::vector<core::ObjectId> objs;
  for (unsigned i = 0; i < kHops; ++i) {
    objs.push_back(w.objects.create(static_cast<sim::ProcId>(i + 1)));
  }
  return objs;
}

// (b) A parent+child activation pair that both want to be at the data:
// migrate them together (one message, local return) or only the child
// (the child's return relays through the parent's processor every hop).
sim::Task<> nested_top_only(World* w, std::vector<core::ObjectId> objs,
                            unsigned frame_words, sim::Cycles* out) {
  Ctx parent{&w->rt, 0};
  for (const auto obj : objs) {
    // The child activation migrates; the parent stays put, so the child's
    // result is a cross-processor reply back to the parent.
    Ctx child{&w->rt, parent.proc};
    co_await w->rt.migrate(child, obj, frame_words);
    (void)co_await w->rt.call(child, obj, core::CallOpts{4, 2, false},
                              [w](Ctx& c) -> sim::Task<int> {
                                co_await w->rt.compute(c, 60);
                                co_return 0;
                              });
    co_await w->rt.return_home(child, parent.proc, 2);
  }
  *out = w->eng.now();
}

sim::Task<> nested_group(World* w, std::vector<core::ObjectId> objs,
                         unsigned frame_words, sim::Cycles* out) {
  Ctx parent{&w->rt, 0};
  Ctx child{&w->rt, 0};
  for (const auto obj : objs) {
    std::vector<Ctx*> group{&child, &parent};
    co_await w->rt.migrate_group(group, obj, 2 * frame_words);
    (void)co_await w->rt.call(child, obj, core::CallOpts{4, 2, false},
                              [w](Ctx& c) -> sim::Task<int> {
                                co_await w->rt.compute(c, 60);
                                co_return 0;
                              });
    // The parent is co-located, so the child's return is local.
  }
  co_await w->rt.return_home(parent, 0, 2);
  *out = w->eng.now();
}

}  // namespace

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Migration-grain ablation: live-state size sweep, thread- vs computation-migration, and group migration.");

  std::printf("(a) Migration cost vs. live-frame size (%u-hop chain, %u "
              "accesses per datum)\n", kHops, kAccessesPerDatum);
  sim::Cycles rpc_time = 0;
  {
    World w(kHops + 1);
    auto objs = make_objs(w);
    sim::detach(chain_rpc(&w, objs, &rpc_time));
    w.eng.run();
  }
  std::printf("%-14s %12s %14s\n", "frame words", "CM cycles",
              "RPC = " );
  for (unsigned frame : {2u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    World w(kHops + 1);
    auto objs = make_objs(w);
    sim::Cycles t = 0;
    sim::detach(chain_migrate(&w, objs, frame, &t));
    w.eng.run();
    std::printf("%-14u %12llu %14llu%s\n", frame,
                static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(rpc_time),
                t < rpc_time ? "   CM wins" : "   RPC wins");
  }

  std::printf("\n(b) Multi-activation migration (%u hops, parent+child)\n",
              kHops);
  for (unsigned frame : {8u, 32u}) {
    sim::Cycles top = 0, group = 0;
    {
      World w(kHops + 1);
      auto objs = make_objs(w);
      sim::detach(nested_top_only(&w, objs, frame, &top));
      w.eng.run();
    }
    {
      World w(kHops + 1);
      auto objs = make_objs(w);
      sim::detach(nested_group(&w, objs, frame, &group));
      w.eng.run();
    }
    std::printf("frame %3u words: top-only %llu cycles, group %llu cycles "
                "(%.2fx)\n", frame, static_cast<unsigned long long>(top),
                static_cast<unsigned long long>(group),
                static_cast<double>(top) / static_cast<double>(group));
  }
  std::printf(
      "\nShape: computation migration wins while the frame is small and the\n"
      "access run length amortises it; huge frames hand the advantage back\n"
      "to RPC. Migrating the whole 2-frame group in one message wins when\n"
      "frames are small (it removes the cross-processor reply relay), but\n"
      "with large frames shipping both activations costs more than the\n"
      "relay it saves — exactly the granularity trade-off that §6 argues\n"
      "the programmer needs control over.\n");
  return 0;
}
