// Write-sharing ablation. §2.2: "data migration in the form of
// cache-coherent shared memory performs poorly for write-shared data
// because of the communication involved in maintaining consistency", and
// §2.5: "if the data is write-shared between many threads, computation
// migration will almost always perform better than data migration".
//
// We sweep the B-tree insert ratio from a read-only workload to an
// update-only one and watch shared memory's throughput advantage over
// computation migration erode while its bandwidth bill explodes.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Write-sharing ablation: per-mechanism sensitivity to the fraction of writes.");

  std::printf("B-tree insert-ratio sweep, 16 requesters, think 0\n\n");
  std::printf("%-8s | %12s %14s | %12s %14s | %8s\n", "inserts",
              "SM thr", "SM bw w/10cy", "CP+r thr", "CP+r bw", "SM/CP");
  for (const double ratio : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    apps::BTreeConfig cfg;
    cfg.insert_ratio = ratio;
    cfg.window = apps::Window{20'000, 200'000};

    cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
    const auto sm = run_btree(cfg);
    cfg.scheme = Scheme{Mechanism::kMigration, false, true};
    const auto cp = run_btree(cfg);

    std::printf("%-8.2f | %12.3f %14.2f | %12.3f %14.2f | %8.2f\n", ratio,
                sm.throughput_per_1000(), sm.words_per_10(),
                cp.throughput_per_1000(), cp.words_per_10(),
                sm.throughput_per_1000() / cp.throughput_per_1000());
  }

  std::printf("\nCounting network: every access writes (balancers are "
              "write-shared by construction);\nfor contrast, a read-mostly "
              "structure is emulated by the B-tree at inserts=0.\n");
  std::printf(
      "\nShape: shared memory's edge comes from replicating read-shared\n"
      "data; as the write fraction grows, invalidations eat the benefit\n"
      "and the SM/CP ratio falls, while SM's bandwidth stays an order of\n"
      "magnitude above CP's.\n");
  return 0;
}
