// Counting-network width scalability. The paper motivates counting
// networks as "trading latency under low-contention conditions for much
// higher scalability of throughput" [AHS91]. Wider networks have more
// balancers per stage (more parallelism) but more stages (more hops per
// request). We sweep the width under computation migration and shared
// memory at fixed offered load.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "Counting-network width scalability: throughput vs network width per mechanism.");

  std::printf("Counting-network width sweep, 48 requesters, think 0\n\n");
  std::printf("%-7s %-9s %-7s | %12s %12s\n", "width", "balancers", "depth",
              "CP thr", "SM thr");
  for (const unsigned width : {2u, 4u, 8u, 16u}) {
    double thr[2] = {0, 0};
    int i = 0;
    for (const Mechanism m :
         {Mechanism::kMigration, Mechanism::kSharedMemory}) {
      apps::CountingConfig cfg;
      cfg.scheme = Scheme{m, false, false};
      cfg.width = width;
      cfg.requesters = 48;
      cfg.window = apps::Window{20'000, 150'000};
      thr[i++] = run_counting(cfg).throughput_per_1000();
    }
    unsigned lg = 0;
    while ((1u << lg) < width) ++lg;
    const unsigned depth = lg * (lg + 1) / 2;
    std::printf("%-7u %-9u %-7u | %12.3f %12.3f\n", width,
                (width / 2) * depth, depth, thr[0], thr[1]);
  }
  std::printf(
      "\nShape: very narrow networks serialise on a handful of balancers;\n"
      "widening adds parallel balancers faster than it adds hop latency,\n"
      "until the fixed requester population can no longer fill the deeper\n"
      "pipeline — the AHS latency-for-throughput trade.\n");
  return 0;
}
