// Host-performance harness: how fast does the simulator itself run?
//
// Every experiment in this reproduction bottoms out in sim::Engine's event
// loop, so its host-side throughput — simulated events per wall second —
// is the quantity that decides how far the system scales (1000+ simulated
// processors, parameter sweeps, chaos soaks). This harness runs fixed-seed
// fig2 (counting network, 64 requesters) and table1_2 (B-tree) workload
// configurations on both queue backends, times them, and writes
// BENCH_host_perf.json in the unified metrics schema:
//
//   label                         = "<config>/<backend>"
//   host.wall_seconds             = best-of-R wall time for the run
//   host.events_per_sec           = events_executed / wall_seconds
//   host.sim_cycles_per_sec       = completed_at / wall_seconds
//   sim.events_executed, sim.completed_at, host.repetitions
//
// The calendar records are the tracked trajectory (tools/bench_report
// gates CI on them); the heap records keep the legacy baseline measured in
// the same binary so the calendar-vs-heap speedup is a single-file diff.
// Simulation results are asserted identical across backends before any
// number is reported: a backend that got faster by computing something
// else would fail here, not in CI triage.
//
// The sharded section (fig2_256/*) measures the conservative-parallel
// engine (DESIGN.md §12) on a 256-requester fig2 workload: events/sec at
// each shard count plus the kThreads/kSequential parallel speedup at the
// top count. Only the shards1 record carries the gated "/calendar" suffix;
// multi-shard rows are reported but never gated (their wall time depends
// on host core count, which CI does not control).
//
// Usage: host_perf [--shards N] [out.json]   (default: 4, BENCH_host_perf.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/workload.h"
#include "core/metrics.h"
#include "sim/event_queue.h"
#include "sim/sharded_engine.h"

using cm::apps::BTreeConfig;
using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::MetricsRegistry;
using cm::core::Scheme;
using cm::sim::QueueBackend;
using cm::sim::ShardBackend;

namespace {

constexpr int kReps = 5;  // best-of, to shed scheduler noise

struct Timed {
  RunStats stats;
  double wall_seconds = 0.0;
};

template <class RunFn>
Timed best_of(RunFn&& run) {
  Timed best;
  for (int i = 0; i < kReps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    RunStats s = run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (i == 0 || secs < best.wall_seconds) {
      best.stats = std::move(s);
      best.wall_seconds = secs;
    }
  }
  return best;
}

const char* backend_name(QueueBackend b) {
  return b == QueueBackend::kCalendar ? "calendar" : "heap";
}

void report_label(MetricsRegistry& reg, const std::string& config,
                  const char* variant, const Timed& t) {
  cm::core::Metrics& m = reg.record(config + "/" + variant);
  const double events = static_cast<double>(t.stats.events_executed);
  const double cycles = static_cast<double>(t.stats.completed_at);
  m.put("host.wall_seconds", t.wall_seconds);
  m.put("host.events_per_sec", events / t.wall_seconds);
  m.put("host.sim_cycles_per_sec", cycles / t.wall_seconds);
  m.put("host.repetitions", kReps);
  m.put("sim.events_executed", t.stats.events_executed);
  m.put("sim.completed_at", t.stats.completed_at);
  m.put("sim.cross_shard_msgs", t.stats.cross_shard_msgs);
  m.put("sim.window_count", t.stats.window_count);
  std::printf("%-18s %-9s %10.3fs  %12.0f events/s  %12.0f cycles/s\n",
              config.c_str(), variant, t.wall_seconds,
              events / t.wall_seconds, cycles / t.wall_seconds);
}

void report(MetricsRegistry& reg, const std::string& config, QueueBackend b,
            const Timed& t) {
  report_label(reg, config, backend_name(b), t);
}

// A backend switch must never change simulation results — only how fast
// the host produces them. Abort loudly if the two runs diverge.
void check_identical(const char* config, const RunStats& a,
                     const RunStats& b) {
  if (a.events_executed != b.events_executed ||
      a.completed_at != b.completed_at || a.ops != b.ops ||
      a.words != b.words) {
    std::fprintf(stderr,
                 "FATAL: %s simulation diverged across queue backends\n"
                 "  events %llu vs %llu  completed_at %llu vs %llu\n"
                 "  ops %ld vs %ld  words %llu vs %llu\n",
                 config, static_cast<unsigned long long>(a.events_executed),
                 static_cast<unsigned long long>(b.events_executed),
                 static_cast<unsigned long long>(a.completed_at),
                 static_cast<unsigned long long>(b.completed_at), a.ops, b.ops,
                 static_cast<unsigned long long>(a.words),
                 static_cast<unsigned long long>(b.words));
    std::exit(2);
  }
}

CountingConfig fig2_64() {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 64;  // the paper's largest fig2 point: deepest queues
  cfg.think = 0;
  // Same shape as the paper's fig2 run but a 10x measurement window: the
  // harness times host work, and a ~100ms run is what it takes for wall
  // clocks to resolve a 10% difference reliably.
  cfg.window = Window{30'000, 2'000'000};
  return cfg;
}

BTreeConfig table1_2() {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.window = Window{20'000, 1'500'000};  // 10x window; see fig2_64
  return cfg;
}

// Sharded scaling workload: 4x the requesters of fig2_64 (more independent
// work per window) on the uniform-latency network — mesh link contention
// is a global per-link FIFO timeline and is auto-disabled at N>1, so the
// N=1 reference must drop it too for results to be comparable.
CountingConfig fig2_256() {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.mesh = false;
  cfg.requesters = 256;
  cfg.think = 0;
  cfg.window = Window{30'000, 500'000};
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned max_shards = 4;
  std::string out = "BENCH_host_perf.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      max_shards = static_cast<unsigned>(std::atoi(argv[++i]));
      if (max_shards == 0) max_shards = 1;
    } else {
      out = arg;
    }
  }
  MetricsRegistry reg;
  std::printf("%-18s %-9s %11s  %21s  %21s\n", "config", "backend", "wall",
              "event rate", "cycle rate");

  {
    Timed cal;
    Timed heap;
    {
      CountingConfig cfg = fig2_64();
      cfg.queue_backend = QueueBackend::kCalendar;
      cal = best_of([&] { return run_counting(cfg); });
      cfg.queue_backend = QueueBackend::kHeap;
      heap = best_of([&] { return run_counting(cfg); });
    }
    check_identical("fig2_64", cal.stats, heap.stats);
    report(reg, "fig2_64", QueueBackend::kCalendar, cal);
    report(reg, "fig2_64", QueueBackend::kHeap, heap);
    std::printf("%-18s speedup calendar/heap: %.2fx\n", "fig2_64",
                heap.wall_seconds / cal.wall_seconds);
  }

  {
    Timed cal;
    Timed heap;
    {
      BTreeConfig cfg = table1_2();
      cfg.queue_backend = QueueBackend::kCalendar;
      cal = best_of([&] { return run_btree(cfg); });
      cfg.queue_backend = QueueBackend::kHeap;
      heap = best_of([&] { return run_btree(cfg); });
    }
    check_identical("table1_2", cal.stats, heap.stats);
    report(reg, "table1_2", QueueBackend::kCalendar, cal);
    report(reg, "table1_2", QueueBackend::kHeap, heap);
    std::printf("%-18s speedup calendar/heap: %.2fx\n", "table1_2",
                heap.wall_seconds / cal.wall_seconds);
  }

  {
    // Sharded engine scaling sweep: kSequential at 1, 2, ..., max_shards
    // (powers of two), kThreads at the top count. Every run must produce
    // bit-identical simulation results — that is the engine's determinism
    // contract, and a shard count that "won" by simulating something else
    // would be caught here, not in CI triage.
    Timed ref;
    Timed top_seq;
    unsigned top = 1;
    for (unsigned s = 1; s <= max_shards; s *= 2) {
      CountingConfig cfg = fig2_256();
      cfg.nshards = s;
      cfg.shard_backend = ShardBackend::kSequential;
      Timed seq = best_of([&] { return run_counting(cfg); });
      char variant[32];
      if (s == 1) {
        // The gated trajectory row: classic single-shard hot path.
        std::snprintf(variant, sizeof variant, "calendar");
        ref = seq;
      } else {
        std::snprintf(variant, sizeof variant, "seq%u", s);
        check_identical("fig2_256", ref.stats, seq.stats);
      }
      report_label(reg, s == 1 ? "fig2_256/shards1" : "fig2_256", variant,
                   seq);
      top = s;
      top_seq = seq;
    }
    if (top > 1) {
      CountingConfig cfg = fig2_256();
      cfg.nshards = top;
      cfg.shard_backend = ShardBackend::kThreads;
      Timed thr = best_of([&] { return run_counting(cfg); });
      check_identical("fig2_256", ref.stats, thr.stats);
      char variant[32];
      std::snprintf(variant, sizeof variant, "threads%u", top);
      report_label(reg, "fig2_256", variant, thr);
      std::printf("%-18s parallel speedup threads%u/seq%u: %.2fx  "
                  "(vs shards1: %.2fx)\n",
                  "fig2_256", top, top, top_seq.wall_seconds / thr.wall_seconds,
                  ref.wall_seconds / thr.wall_seconds);
    }
  }

  if (!reg.write_json(out)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
