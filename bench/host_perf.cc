// Host-performance harness: how fast does the simulator itself run?
//
// Every experiment in this reproduction bottoms out in sim::Engine's event
// loop, so its host-side throughput — simulated events per wall second —
// is the quantity that decides how far the system scales (1000+ simulated
// processors, parameter sweeps, chaos soaks). This harness runs fixed-seed
// fig2 (counting network, 64 requesters) and table1_2 (B-tree) workload
// configurations on both queue backends, times them, and writes
// BENCH_host_perf.json in the unified metrics schema:
//
//   label                         = "<config>/<backend>"
//   host.wall_seconds             = best-of-R wall time for the run
//   host.events_per_sec           = events_executed / wall_seconds
//   host.sim_cycles_per_sec       = completed_at / wall_seconds
//   sim.events_executed, sim.completed_at, host.repetitions
//
// The calendar records are the tracked trajectory (tools/bench_report
// gates CI on them); the heap records keep the legacy baseline measured in
// the same binary so the calendar-vs-heap speedup is a single-file diff.
// Simulation results are asserted identical across backends before any
// number is reported: a backend that got faster by computing something
// else would fail here, not in CI triage.
//
// Usage: host_perf [out.json]   (default BENCH_host_perf.json)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/workload.h"
#include "core/metrics.h"
#include "sim/event_queue.h"

using cm::apps::BTreeConfig;
using cm::apps::CountingConfig;
using cm::apps::RunStats;
using cm::apps::Window;
using cm::core::Mechanism;
using cm::core::MetricsRegistry;
using cm::core::Scheme;
using cm::sim::QueueBackend;

namespace {

constexpr int kReps = 5;  // best-of, to shed scheduler noise

struct Timed {
  RunStats stats;
  double wall_seconds = 0.0;
};

template <class RunFn>
Timed best_of(RunFn&& run) {
  Timed best;
  for (int i = 0; i < kReps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    RunStats s = run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (i == 0 || secs < best.wall_seconds) {
      best.stats = std::move(s);
      best.wall_seconds = secs;
    }
  }
  return best;
}

const char* backend_name(QueueBackend b) {
  return b == QueueBackend::kCalendar ? "calendar" : "heap";
}

void report(MetricsRegistry& reg, const std::string& config, QueueBackend b,
            const Timed& t) {
  cm::core::Metrics& m = reg.record(config + "/" + backend_name(b));
  const double events = static_cast<double>(t.stats.events_executed);
  const double cycles = static_cast<double>(t.stats.completed_at);
  m.put("host.wall_seconds", t.wall_seconds);
  m.put("host.events_per_sec", events / t.wall_seconds);
  m.put("host.sim_cycles_per_sec", cycles / t.wall_seconds);
  m.put("host.repetitions", kReps);
  m.put("sim.events_executed", t.stats.events_executed);
  m.put("sim.completed_at", t.stats.completed_at);
  std::printf("%-18s %-9s %10.3fs  %12.0f events/s  %12.0f cycles/s\n",
              config.c_str(), backend_name(b), t.wall_seconds,
              events / t.wall_seconds, cycles / t.wall_seconds);
}

// A backend switch must never change simulation results — only how fast
// the host produces them. Abort loudly if the two runs diverge.
void check_identical(const char* config, const RunStats& a,
                     const RunStats& b) {
  if (a.events_executed != b.events_executed ||
      a.completed_at != b.completed_at || a.ops != b.ops ||
      a.words != b.words) {
    std::fprintf(stderr,
                 "FATAL: %s simulation diverged across queue backends\n",
                 config);
    std::exit(2);
  }
}

CountingConfig fig2_64() {
  CountingConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 64;  // the paper's largest fig2 point: deepest queues
  cfg.think = 0;
  // Same shape as the paper's fig2 run but a 10x measurement window: the
  // harness times host work, and a ~100ms run is what it takes for wall
  // clocks to resolve a 10% difference reliably.
  cfg.window = Window{30'000, 2'000'000};
  return cfg;
}

BTreeConfig table1_2() {
  BTreeConfig cfg;
  cfg.scheme = Scheme{Mechanism::kMigration, false, false};
  cfg.requesters = 16;
  cfg.window = Window{20'000, 1'500'000};  // 10x window; see fig2_64
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_host_perf.json";
  MetricsRegistry reg;
  std::printf("%-18s %-9s %11s  %21s  %21s\n", "config", "backend", "wall",
              "event rate", "cycle rate");

  {
    Timed cal;
    Timed heap;
    {
      CountingConfig cfg = fig2_64();
      cfg.queue_backend = QueueBackend::kCalendar;
      cal = best_of([&] { return run_counting(cfg); });
      cfg.queue_backend = QueueBackend::kHeap;
      heap = best_of([&] { return run_counting(cfg); });
    }
    check_identical("fig2_64", cal.stats, heap.stats);
    report(reg, "fig2_64", QueueBackend::kCalendar, cal);
    report(reg, "fig2_64", QueueBackend::kHeap, heap);
    std::printf("%-18s speedup calendar/heap: %.2fx\n", "fig2_64",
                heap.wall_seconds / cal.wall_seconds);
  }

  {
    Timed cal;
    Timed heap;
    {
      BTreeConfig cfg = table1_2();
      cfg.queue_backend = QueueBackend::kCalendar;
      cal = best_of([&] { return run_btree(cfg); });
      cfg.queue_backend = QueueBackend::kHeap;
      heap = best_of([&] { return run_btree(cfg); });
    }
    check_identical("table1_2", cal.stats, heap.stats);
    report(reg, "table1_2", QueueBackend::kCalendar, cal);
    report(reg, "table1_2", QueueBackend::kHeap, heap);
    std::printf("%-18s speedup calendar/heap: %.2fx\n", "table1_2",
                heap.wall_seconds / cal.wall_seconds);
  }

  if (!reg.write_json(out)) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
