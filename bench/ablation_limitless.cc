// LimitLESS directory ablation. The paper's target machine "uses the same
// cache coherence protocol that Alewife does [CKA91]" — LimitLESS limited
// directories: a few hardware sharer pointers per line, with overflow
// handled by software traps on the home node's CPU. The reproduction
// benches run the full-map configuration (hardware handles everything);
// this ablation shows how shared memory's advantage erodes as the pointer
// budget shrinks and widely-shared lines (the B-tree's upper levels, the
// balancer wiring) start trapping — while the message-passing mechanisms
// are unaffected by construction.
#include <cstdio>

#include "apps/workload.h"

#include "bench_util.h"

using namespace cm;
using core::Mechanism;
using core::Scheme;

int main(int argc, char** argv) {
  cm::bench::maybe_usage(argc, argv, "",
                         "LimitLESS directory ablation: shared-memory schemes vs hardware sharer-pointer count.");

  std::printf("LimitLESS directory ablation (SM scheme; message-passing "
              "schemes shown for reference)\n");

  std::printf("\nDistributed B-tree, 16 requesters, think 0:\n");
  std::printf("%-22s %12s\n", "directory", "thr/1000cy");
  for (unsigned ptrs : {0u, 8u, 4u, 2u, 1u}) {
    apps::BTreeConfig cfg;
    cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
    cfg.limitless_pointers = ptrs;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_btree(cfg);
    if (ptrs == 0) {
      std::printf("%-22s %12.3f\n", "full-map (hardware)",
                  r.throughput_per_1000());
    } else {
      std::printf("LimitLESS, %2u ptrs     %12.3f\n", ptrs,
                  r.throughput_per_1000());
    }
  }
  {
    apps::BTreeConfig cfg;
    cfg.scheme = Scheme{Mechanism::kMigration, true, true};
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_btree(cfg);
    std::printf("%-22s %12.3f\n", "(CP w/repl.&HW)", r.throughput_per_1000());
  }

  std::printf("\nCounting network, 32 requesters, think 0:\n");
  std::printf("%-22s %12s\n", "directory", "thr/1000cy");
  for (unsigned ptrs : {0u, 8u, 4u, 2u, 1u}) {
    apps::CountingConfig cfg;
    cfg.scheme = Scheme{Mechanism::kSharedMemory, false, false};
    cfg.limitless_pointers = ptrs;
    cfg.requesters = 32;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_counting(cfg);
    if (ptrs == 0) {
      std::printf("%-22s %12.3f\n", "full-map (hardware)",
                  r.throughput_per_1000());
    } else {
      std::printf("LimitLESS, %2u ptrs     %12.3f\n", ptrs,
                  r.throughput_per_1000());
    }
  }
  {
    apps::CountingConfig cfg;
    cfg.scheme = Scheme{Mechanism::kMigration, true, false};
    cfg.requesters = 32;
    cfg.window = apps::Window{20'000, 150'000};
    const auto r = run_counting(cfg);
    std::printf("%-22s %12.3f\n", "(CP w/HW)", r.throughput_per_1000());
  }

  std::printf(
      "\nShape: shrinking the hardware pointer budget costs shared memory\n"
      "throughput on read-shared data (B-tree upper levels, balancer\n"
      "wiring); the write-shared lock/toggle lines rarely have more than a\n"
      "couple of sharers, so the counting network degrades more gently.\n");
  return 0;
}
