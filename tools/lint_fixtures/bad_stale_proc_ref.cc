// coro_lint fixture: a reference to processor-local state held across a
// migration. NOT compiled — pattern food for tools/coro_lint --self-test.
#include <cstdint>

namespace fixture {

struct Slot {
  std::uint64_t count = 0;
};

struct Ctx {
  unsigned proc;
};

struct Rt {
  Slot procs_[64];
  void* migrate(Ctx&, int, unsigned);
};

void bad_ref_across_migrate(Rt* rt, Ctx& ctx) {
  auto& slot = rt->procs_[ctx.proc];
  slot.count++;  // fine: still on the declaring processor
  co_await rt->migrate(ctx, 7, 16);
  slot.count++;  // EXPECT-LINT: CL002
}

void bad_ptr_across_migrate_group(Rt* rt, Ctx& ctx) {
  Slot* here = &rt->procs_[ctx.proc];
  co_await rt->migrate_group(ctx, 7, 16);
  here->count++;  // EXPECT-LINT: CL002
}

}  // namespace fixture
