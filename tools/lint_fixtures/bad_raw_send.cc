// simlint fixture: raw fire-and-forget Network sends in reliability paths.
// NOT compiled. Nothing retransmits, acks or excuses these messages, so a
// single drop under a FaultPlan strands whoever is gated on their effect —
// the exact Replicated::invalidate_all bug class PR 9 fixed.
#include <cstdint>
#include <functional>

namespace fixture {

struct Network {
  void send(unsigned src, unsigned dst, unsigned words, int kind,
            std::function<void()> deliver);
};

struct Barrier {
  int remaining = 0;
  void arrive();
};

struct Invalidator {
  Network* network_ = nullptr;
  Barrier barrier_;

  void bad_fire_and_forget_invalidate(unsigned from, unsigned to) {
    // The barrier waits for this message's effect, but a dropped copy
    // never arrives and nothing retries: the writer hangs forever.
    network_->send(from, to, 4, 0, [this] {  // EXPECT-LINT: SS002
      barrier_.arrive();
    });
  }

  void bad_unacked_notification(unsigned from, unsigned to) {
    network_->send(from, to, 2, 0, [] {});  // EXPECT-LINT: SS002
  }
};

}  // namespace fixture
