// coro_lint fixture: the two sanctioned suspend_to idioms — a named-lvalue
// awaiter for owning captures, and direct awaits for trivially-destructible
// ones. NOT compiled — pattern food for tools/coro_lint --self-test.
#include <memory>

#include "sim/task.h"

namespace fixture {

struct State {
  std::coroutine_handle<> waiter;
};

cm::sim::Task<> good_named_lvalue(std::shared_ptr<State> st) {
  // Owning capture, but the awaiter is a named local: destroyed once.
  auto arm_and_wait = cm::sim::suspend_to([st](std::coroutine_handle<> h) {
    st->waiter = h;
  });
  co_await arm_and_wait;
}

cm::sim::Task<> good_trivial_captures(State* st, int cost) {
  // Raw pointer + int captures: trivially destructible, the double-destroy
  // is harmless, and the direct await is the tree's common idiom.
  co_await cm::sim::suspend_to([st, cost](std::coroutine_handle<> h) {
    st->waiter = h;
  });
}

cm::sim::Task<> good_by_reference(std::shared_ptr<State>& st) {
  // By-reference capture of an owning type: the lambda holds a reference,
  // not the object, so no destructor runs in the awaiter at all.
  co_await cm::sim::suspend_to([&st](std::coroutine_handle<> h) {
    st->waiter = h;
  });
}

}  // namespace fixture
