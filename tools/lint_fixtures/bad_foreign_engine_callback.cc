// coro_lint fixture: event callbacks that touch an Engine other than the
// one they are scheduled on. NOT compiled — pattern food for the
// --self-test. Under the kThreads backend the callback body runs on the
// host thread of the shard owning its home processor; poking a different
// engine from there bypasses the inbox/window machinery.
#include <cstdint>

namespace fixture {

struct Engine {
  void at(std::uint64_t, void (*)());
  template <class F>
  void at(std::uint64_t, F&&);
  template <class F>
  void at_on(unsigned, std::uint64_t, F&&);
};

void bad_schedules_into_other_engine(Engine& eng, Engine& replica) {
  eng.at(100, [&replica] {  // EXPECT-LINT: CL003
    replica.at(200, [] {});
  });
}

void bad_homed_callback_reads_other_engine(Engine& primary, Engine& shadow) {
  primary.at_on(3, 500, [&] {  // EXPECT-LINT: CL003
    shadow.at_on(3, 600, [] {});
  });
}

}  // namespace fixture
