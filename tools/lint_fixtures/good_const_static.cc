// simlint fixture: the static shapes SS001 must not flag — immutable
// constants, static member functions, internal-linkage free functions and
// static_assert. NOT compiled.
#include <cstdint>

namespace fixture {

static constexpr std::uint64_t kWindowBits = 40;

static const char kSchemaName[] = "flat-json-v1";

struct Codec {
  static constexpr unsigned kHeaderWords = 2;

  static std::uint64_t pack(std::uint64_t lane, std::uint64_t seq);
  static void unpack(std::uint64_t label);
};

// Internal linkage on a free function is a visibility choice, not state.
static std::uint64_t fold(std::uint64_t a, std::uint64_t b) {
  return a ^ (b << 1);
}

static_assert(kWindowBits < 64, "label layout");

std::uint64_t use_all(std::uint64_t x) {
  return fold(Codec::pack(1, x), kWindowBits);
}

}  // namespace fixture
