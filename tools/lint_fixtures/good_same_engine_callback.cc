// coro_lint fixture: event callbacks that stay on their own engine — the
// common, correct shapes CL003 must not flag. NOT compiled.
#include <cstdint>

namespace fixture {

struct Engine {
  template <class F>
  void at(std::uint64_t, F&&);
  template <class F>
  void at_on(unsigned, std::uint64_t, F&&);
  std::uint64_t now() const;
};

struct Stats {
  std::uint64_t words = 0;
};

// Rescheduling into the same engine is the bread-and-butter event shape.
void good_same_engine_reschedule(Engine& eng) {
  eng.at(100, [&eng] { eng.at(200, [] {}); });
}

// A second engine elsewhere in the function is fine as long as the
// callback never touches it.
void good_other_engine_untouched(Engine& eng, Engine& other) {
  other.at(50, [] {});
  eng.at_on(2, 100, [&eng] { (void)eng.now(); });
}

// Non-engine captures (stats slots, plain data) are never CL003 business.
void good_plain_captures(Engine& eng, Stats& sc) {
  eng.at_on(1, 100, [&sc] { sc.words++; });
}

}  // namespace fixture
