// coro_lint fixture: proc-local references handled correctly around a
// migration — re-derived afterwards, or never used again. NOT compiled.
#include <cstdint>

namespace fixture {

struct Slot {
  std::uint64_t count = 0;
};

struct Ctx {
  unsigned proc;
};

struct Rt {
  Slot procs_[64];
  void* migrate(Ctx&, int, unsigned);
};

void good_rederive_after_migrate(Rt* rt, Ctx& ctx) {
  auto& slot = rt->procs_[ctx.proc];
  slot.count++;
  co_await rt->migrate(ctx, 7, 16);
  auto& fresh = rt->procs_[ctx.proc];  // re-derived: new processor's slot
  fresh.count++;
}

void good_unused_after_migrate(Rt* rt, Ctx& ctx) {
  auto& slot = rt->procs_[ctx.proc];
  slot.count++;
  co_await rt->migrate(ctx, 7, 16);
}

void good_non_proc_reference(Rt* rt, Ctx& ctx, Slot* table) {
  auto& node = table[3];  // global simulation state, not proc-local
  co_await rt->migrate(ctx, 7, 16);
  node.count++;
}

}  // namespace fixture
