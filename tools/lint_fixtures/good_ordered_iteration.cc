// simlint fixture: the container shapes DS001 must not flag — ordered
// iteration, point lookups into hash tables (the tree's dominant idiom),
// and the sorted-copy escape hatch. NOT compiled.
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Ledger {
  std::map<unsigned, std::uint64_t> credits_by_proc;
  std::unordered_map<unsigned, std::uint64_t> balance_index;
};

std::uint64_t good_ordered_range_for(const Ledger& l) {
  std::uint64_t sum = 0;
  for (const auto& [proc, credits] : l.credits_by_proc) {
    sum += credits * proc;  // std::map walks keys in sorted order
  }
  return sum;
}

std::uint64_t good_point_lookups(Ledger& l, unsigned proc) {
  // find/count/operator[]/erase never observe hash order.
  const auto it = l.balance_index.find(proc);
  if (it == l.balance_index.end()) return 0;
  l.balance_index.erase(proc);
  return it->second;
}

std::vector<unsigned> good_sorted_copy(const Ledger& l) {
  // The sanctioned fix for an unavoidable walk: materialise the keys,
  // sort, then iterate the vector.
  std::vector<unsigned> keys;
  keys.reserve(l.balance_index.size());
  for (const auto& [proc, credits] : l.credits_by_proc) keys.push_back(proc);
  std::set<unsigned> dedup(keys.begin(), keys.end());
  return {dedup.begin(), dedup.end()};
}

}  // namespace fixture
