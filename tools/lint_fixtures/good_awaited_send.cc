// simlint fixture: the send shapes SS002 must not flag — a delivery
// callback that resumes a suspended sender (an awaited send: the caller
// observes completion), and sends routed through the reliable transport.
// NOT compiled.
#include <coroutine>
#include <cstdint>
#include <functional>

namespace fixture {

struct Network {
  void send(unsigned src, unsigned dst, unsigned words, int kind,
            std::function<void()> deliver);
};

struct Reliable {
  void* send(unsigned src, unsigned dst, unsigned words, unsigned budget);
};

struct Transport {
  Network* network_ = nullptr;
  Reliable* reliable_ = nullptr;

  void* good_awaited_delivery(unsigned src, unsigned dst, unsigned total);

  void* good_reliable_path(unsigned src, unsigned dst, unsigned words) {
    // The transport owns retransmission, dedup and acks.
    return reliable_->send(src, dst, words, /*budget=*/0);
  }
};

void* suspend_point(std::coroutine_handle<> h);

void* Transport::good_awaited_delivery(unsigned src, unsigned dst,
                                       unsigned total) {
  // The sender suspends until the delivery callback resumes it: a drop
  // cannot strand silently because the reliable layer above this one is
  // what decides to use the raw path (fault-free runs only).
  return suspend_point([this, src, dst, total](std::coroutine_handle<> h) {
    network_->send(src, dst, total, 0, [h] { h.resume(); });
    return nullptr;
  });
}

}  // namespace fixture
