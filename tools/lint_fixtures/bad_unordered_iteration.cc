// simlint fixture: iteration over unordered containers — the hash-order
// determinism leak DS001 exists for. NOT compiled. Iteration order of a
// libstdc++ hash table depends on the library version and on insertion
// addresses, so any metric, trace, message or scheduling decision derived
// from these loops differs across toolchains while same-seed runs must be
// byte-identical.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct HotProfile {
  std::unordered_map<unsigned, std::uint64_t> hits_by_proc;
};

std::uint64_t bad_range_for_member(const HotProfile& p) {
  std::uint64_t sum = 0;
  for (const auto& [proc, hits] : p.hits_by_proc) {  // EXPECT-LINT: DS001
    sum += hits * proc;  // order-dependent accumulation feeds a metric
  }
  return sum;
}

void emit(unsigned v);

void bad_emit_in_hash_order(std::unordered_set<unsigned> live_ids) {
  for (unsigned id : live_ids) {  // EXPECT-LINT: DS001
    emit(id);  // message emission in hash order
  }
}

unsigned bad_iterator_walk(const HotProfile& p) {
  auto it = p.hits_by_proc.begin();  // EXPECT-LINT: DS001
  return it->first;
}

}  // namespace fixture
