// simlint fixture: mutable static-storage state — shared across kThreads
// shard workers with none of the inbox/window discipline, so it is both a
// data race and a shard-count determinism hole. NOT compiled.
#include <cstdint>
#include <vector>

namespace fixture {

static std::uint64_t g_event_count = 0;  // EXPECT-LINT: SS001

static std::vector<int> g_audit_log;  // EXPECT-LINT: SS001

struct Dispatcher {
  // A static member is one instance shared by every shard's dispatcher.
  inline static unsigned next_ticket_ = 0;  // EXPECT-LINT: SS001
};

std::uint64_t bad_function_local_counter() {
  static std::uint64_t calls = 0;  // EXPECT-LINT: SS001
  return ++calls;
}

unsigned bad_thread_local_cache() {
  // thread_local is per-worker, which makes results depend on which shard
  // ran the event — a different value at every shard count.
  thread_local unsigned last_hit = 0;  // EXPECT-LINT: SS001
  return ++last_hit;
}

}  // namespace fixture
