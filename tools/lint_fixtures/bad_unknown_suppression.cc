// simlint fixture: a suppression naming a rule the tool does not know
// silences nothing — the typo is itself a finding (SL000), because a
// misspelled allow otherwise reads as "handled" while the real rule keeps
// firing (or worse, never existed). NOT compiled.
#include <cstdint>

namespace fixture {

std::uint64_t typo_rule_id() {
  std::uint64_t x = 7;  // simlint: allow DS01  // EXPECT-LINT: SL000
  return x;
}

std::uint64_t unknown_rule_family() {
  std::uint64_t y = 9;  // simlint: allow ZZ999  // EXPECT-LINT: SL000
  return y;
}

}  // namespace fixture
