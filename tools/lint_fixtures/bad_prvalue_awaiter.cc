// coro_lint fixture: the GCC 12.2 prvalue-awaiter double-destroy hazard.
// NOT compiled — pattern food for tools/coro_lint --self-test.
#include <memory>

#include "sim/task.h"

namespace fixture {

struct State {
  std::coroutine_handle<> waiter;
};

cm::sim::Task<> bad_shared_ptr_capture(std::shared_ptr<State> st) {
  // The lambda copies a shared_ptr into a prvalue awaiter: its destructor
  // runs twice under GCC 12.2 and the refcount goes wrong silently.
  co_await cm::sim::suspend_to([st](std::coroutine_handle<> h) {  // EXPECT-LINT: CL001
    st->waiter = h;
  });
}

cm::sim::Task<> bad_init_capture() {
  auto st = std::make_shared<State>();
  co_await cm::sim::suspend_to(  // EXPECT-LINT: CL001
      [keep = std::make_shared<State>()](std::coroutine_handle<> h) {
        keep->waiter = h;
      });
  co_return;
}

}  // namespace fixture
