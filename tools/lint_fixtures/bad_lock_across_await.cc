// simlint fixture: host lock guards held across a co_await suspension.
// NOT compiled — pattern food for tools/simlint --self-test. The coroutine
// frame resumes on whichever host thread runs the owning shard, so a
// std::mutex guard that survives the suspension unlocks on a thread that
// never locked it (UB) or deadlocks the shard worker.
#include <mutex>

namespace fixture {

struct Channel {
  std::mutex mu;
  int backlog = 0;
};

void* await_something();

void bad_guard_across_await(Channel& ch) {
  const std::lock_guard<std::mutex> g(ch.mu);
  ch.backlog++;
  co_await await_something();  // EXPECT-LINT: CL004
}

void bad_unique_lock_in_nested_scope(Channel& ch) {
  {
    std::unique_lock<std::mutex> hold(ch.mu);
    ch.backlog++;
    co_await await_something();  // EXPECT-LINT: CL004
  }
}

}  // namespace fixture
