// simlint fixture: ambient nondeterminism — host entropy, wall clocks and
// address-derived keys that make same-seed runs differ. NOT compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <unordered_map>

namespace fixture {

unsigned bad_host_entropy_seed() {
  std::random_device rd;  // EXPECT-LINT: DS002
  return rd();
}

unsigned bad_libc_rand() {
  return static_cast<unsigned>(rand());  // EXPECT-LINT: DS002
}

long bad_wall_clock_in_model() {
  // EXPECT-LINT: DS002
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return t.count();
}

long bad_time_seed() {
  return time(nullptr);  // EXPECT-LINT: DS002
}

const char* bad_env_config() {
  return getenv("CM_SECRET_TUNING");  // EXPECT-LINT: DS002
}

struct Registry {
  // Keyed by host addresses: hash values and any ordering follow the
  // allocator, not the simulation.
  std::unordered_map<const void*, unsigned> ids;  // EXPECT-LINT: DS002
  std::map<void*, unsigned> ordered_by_address;   // EXPECT-LINT: DS002
};

}  // namespace fixture
