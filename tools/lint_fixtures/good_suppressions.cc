// simlint fixture: the suppression machinery. A `// simlint: allow RULE`
// directive silences exactly that rule on exactly one line (trailing form:
// its own line; standalone-comment form: the next line); the legacy
// `// coro-lint: allow CLnnn` spelling still works; and a directive never
// bleeds onto other lines or other rules. NOT compiled.
#include <cstdlib>
#include <memory>

#include "sim/task.h"

namespace fixture {

struct WaiterState {
  std::coroutine_handle<> waiter;
};

unsigned trailing_form_silences_ds002() {
  return static_cast<unsigned>(rand());  // simlint: allow DS002
}

unsigned standalone_form_silences_next_line() {
  // simlint: allow DS002 (justification prose may follow the rule ids)
  return static_cast<unsigned>(rand());
}

unsigned directive_does_not_bleed_to_later_lines() {
  unsigned a = 1;  // simlint: allow DS002 (nothing to silence here)
  a += static_cast<unsigned>(rand());  // EXPECT-LINT: DS002
  return a;
}

std::uint64_t wrong_rule_id_silences_nothing() {
  static std::uint64_t calls = 0;  // simlint: allow DS002  // EXPECT-LINT: SS001
  return ++calls;
}

cm::sim::Task<> legacy_coro_lint_spelling(std::shared_ptr<WaiterState> st) {
  co_await cm::sim::suspend_to([st](std::coroutine_handle<> h) {  // coro-lint: allow CL001
    st->waiter = h;
  });
}

}  // namespace fixture
