// simlint fixture: the sanctioned determinism idioms DS002 must not flag —
// sim::Rng streams, engine time, dense first-seen ids instead of address
// keys, and signatures that merely pass an address-keyed registry through
// (judged at its declaration site, not at every mention). NOT compiled.
#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Rng {
  explicit Rng(std::uint64_t seed);
  std::uint64_t next();
};

struct Engine {
  std::uint64_t now() const;
};

std::uint64_t good_seeded_stream(std::uint64_t seed) {
  Rng rng(seed);  // every random draw derives from the run config
  return rng.next();
}

std::uint64_t good_simulated_time(const Engine& eng) {
  return eng.now();  // simulated cycles, not host wall time
}

struct DenseIds {
  std::unordered_map<std::uint64_t, unsigned> by_id;  // keyed by minted ids
};

// Passing an address-keyed registry by reference is not a new declaration;
// the member itself carries the suppression at its declaration site.
unsigned good_signature_mention(
    std::unordered_map<const void*, unsigned>& reg, const void* p) {
  return reg.at(p);
}

}  // namespace fixture
