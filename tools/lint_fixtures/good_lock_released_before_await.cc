// simlint fixture: the correct lock shapes CL004 must not flag — a guard
// whose scope closes before the suspension, host-only functions with no
// co_await at all (the engine's inbox pattern), and the simulator's own
// awaitable sim::AsyncMutex. NOT compiled.
#include <mutex>

namespace fixture {

struct Channel {
  std::mutex mu;
  int backlog = 0;
};

struct AsyncMutex {
  void* lock();
  void unlock();
};

void* await_something();

void good_scope_closes_before_await(Channel& ch) {
  {
    const std::lock_guard<std::mutex> g(ch.mu);
    ch.backlog++;
  }
  co_await await_something();
}

// The engine drains shard inboxes under a lock with no coroutine in sight;
// plain host functions are never CL004 business.
void good_host_only_function(Channel& ch) {
  const std::lock_guard<std::mutex> g(ch.mu);
  ch.backlog++;
}

// sim::AsyncMutex is designed to be held across suspensions: it parks the
// activation, not a host thread.
void good_async_mutex(AsyncMutex& m, Channel& ch) {
  co_await m.lock();
  ch.backlog++;
  m.unlock();
}

}  // namespace fixture
