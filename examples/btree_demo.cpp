// Distributed B-tree demo (the paper's §4.2 workload as a user program).
//
// Builds a 2,000-key tree scattered over 16 processors, then runs a mixed
// lookup/insert workload from 8 requester threads under RPC, computation
// migration (with and without a software-replicated root), and coherent
// shared memory. Afterwards it verifies the trees are structurally sound
// and identical across mechanisms.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/btree.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"
#include "sim/rng.h"

using namespace cm;
using core::Ctx;
using core::Mechanism;

namespace {

constexpr unsigned kNodeProcs = 16;
constexpr unsigned kThreads = 8;
constexpr int kOpsPerThread = 40;

sim::Task<> worker(core::Runtime* rt, apps::DistributedBTree* bt,
                   Mechanism mech, sim::ProcId home, std::uint64_t seed,
                   long* hits) {
  Ctx ctx{rt, home};
  sim::Rng rng(seed);
  for (int i = 0; i < kOpsPerThread; ++i) {
    const std::uint64_t key = 1 + rng.below(8000);
    if (rng.chance(0.5)) {
      (void)co_await bt->insert(ctx, mech, key, key);
    } else if (co_await bt->lookup(ctx, mech, key)) {
      ++*hits;
    }
  }
}

std::vector<std::uint64_t> run(Mechanism mech, bool replicate,
                               const char* label) {
  sim::Engine engine;
  sim::Machine machine(engine, kNodeProcs + kThreads);
  net::ConstantNetwork network(engine);
  shmem::CoherentMemory memory(machine, network);
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, core::CostModel::software());

  apps::DistributedBTree::Params params;
  params.max_entries = 16;
  params.node_procs = kNodeProcs;
  params.replication = replicate;
  apps::DistributedBTree bt(rt, &memory, params);

  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 2; k <= 4000; k += 2) keys.push_back(k);
  bt.bulk_load(keys);

  long hits = 0;
  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(worker(&rt, &bt, mech, kNodeProcs + t, 100 + t, &hits));
  }
  engine.run();

  std::string why;
  const bool ok = bt.check_invariants(&why);
  std::printf(
      "%-14s: %5zu keys, height %u, invariants %s, %ld lookup hits,\n"
      "                %7llu cycles, %6llu messages, %6llu words\n",
      label, bt.num_keys(), bt.height(), ok ? "ok" : why.c_str(), hits,
      static_cast<unsigned long long>(engine.now()),
      static_cast<unsigned long long>(network.stats().messages),
      static_cast<unsigned long long>(network.stats().words));
  return bt.keys_host();
}

}  // namespace

int main() {
  std::printf("Distributed B-tree: %u threads x %d mixed ops over a "
              "2000-key tree\n\n", kThreads, kOpsPerThread);
  const auto rpc = run(Mechanism::kRpc, false, "RPC");
  const auto mig = run(Mechanism::kMigration, false, "CP");
  const auto rep = run(Mechanism::kMigration, true, "CP w/repl.");
  const auto sm = run(Mechanism::kSharedMemory, false, "SM");
  const bool same = rpc == mig && mig == rep && rep == sm;
  std::printf("\nFinal key sets identical across mechanisms: %s\n",
              same ? "yes" : "NO");
  return same ? 0 : 1;
}
