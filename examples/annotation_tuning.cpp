// Annotation tuning (the paper's §3.1 workflow as a user program).
//
// "Changing where migration occurs simply involves moving the annotation,
// and the programmer can easily switch between using computation migration,
// RPC, and data migration."
//
// The program below walks a chain of 12 objects spread over 12 processors,
// doing a few accesses at each. It is written ONCE; the only thing that
// varies between runs is where the `migrate` annotation sits:
//   * no annotation        : every access is an RPC;
//   * annotate every node  : classic computation migration;
//   * annotate every 3rd   : partial migration — the activation camps at
//     one node per group and reaches the others by RPC, trading migration
//     cost against access locality.
// Semantics are identical in all three runs; only cost changes.
#include <cstdio>
#include <vector>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

using namespace cm;
using core::Ctx;

namespace {

constexpr unsigned kChain = 12;
constexpr int kAccessesPerNode = 3;

/// Annotation policy: migrate before visiting node i?
using Policy = bool (*)(unsigned i);
bool never(unsigned) { return false; }
bool always(unsigned) { return true; }
bool every_third(unsigned i) { return i % 3 == 0; }

struct Result {
  long sum = 0;
  sim::Cycles cycles = 0;
  std::uint64_t messages = 0;
};

sim::Task<> walk(core::Runtime* rt, std::vector<core::ObjectId> chain,
                 std::vector<int>* data, Policy annotate, Result* out) {
  Ctx ctx{rt, 0};
  long sum = 0;
  for (unsigned i = 0; i < chain.size(); ++i) {
    if (annotate(i)) {
      // <<< the annotation: one line, moves the activation to the data >>>
      co_await rt->migrate(ctx, chain[i], 8);
    }
    for (int a = 0; a < kAccessesPerNode; ++a) {
      sum += co_await rt->call(
          ctx, chain[i], core::CallOpts{4, 2, false},
          [rt, data, i](Ctx& self) -> sim::Task<int> {
            co_await rt->compute(self, 30);
            co_return (*data)[i];
          });
    }
  }
  co_await rt->return_home(ctx, 0, 2);
  out->sum = sum;
}

Result run(Policy annotate) {
  sim::Engine engine;
  sim::Machine machine(engine, kChain + 1);
  net::ConstantNetwork network(engine);
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, core::CostModel::software());

  std::vector<core::ObjectId> chain;
  std::vector<int> data;
  for (unsigned i = 0; i < kChain; ++i) {
    chain.push_back(objects.create(static_cast<sim::ProcId>(i + 1)));
    data.push_back(static_cast<int>(i * i));
  }

  Result r;
  sim::detach(walk(&rt, chain, &data, annotate, &r));
  engine.run();
  r.cycles = engine.now();
  r.messages = network.stats().messages;
  return r;
}

}  // namespace

int main() {
  std::printf("Annotation tuning: a 12-node chain walk, %d accesses/node\n\n",
              kAccessesPerNode);
  struct Case {
    const char* name;
    Policy policy;
  };
  const Case cases[] = {
      {"no annotation (pure RPC)", never},
      {"annotate every node (CM)", always},
      {"annotate every 3rd node", every_third},
  };
  long expect = -1;
  for (const Case& c : cases) {
    const Result r = run(c.policy);
    std::printf("%-28s sum=%-6ld %7llu cycles %5llu messages\n", c.name,
                r.sum, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.messages));
    if (expect < 0) expect = r.sum;
    if (r.sum != expect) {
      std::printf("BUG: annotation changed program semantics!\n");
      return 1;
    }
  }
  std::printf(
      "\nSame answer every time — the annotation is pure tuning. Moving it\n"
      "trades migration cost against access locality, with no program\n"
      "restructuring (contrast with hand-coded continuation-passing).\n");
  return 0;
}
