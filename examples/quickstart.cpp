// Quickstart: the computation-migration runtime in ~80 lines.
//
// We build a small simulated distributed-memory machine, place an object on
// a remote processor, and access it three ways:
//   1. RPC                — execute the method remotely, stay put;
//   2. computation migration — move this activation to the data (the
//      paper's one-line annotation), then access it locally;
//   3. repeated access    — where migration's locality pays off.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/object.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

using namespace cm;
using core::Ctx;

namespace {

// An "instance method" on the remote object: bump a counter, return it.
// Method bodies are coroutines; they always execute at the object's home.
sim::Task<int> bump(core::Runtime& rt, Ctx& self, int* counter) {
  co_await rt.compute(self, 40);  // 40 cycles of user code
  co_return ++*counter;
}

sim::Task<> demo(core::Runtime* rt, core::ObjectId obj, int* counter) {
  Ctx ctx{rt, /*proc=*/0};  // this thread starts on processor 0
  const auto& net = rt->network().stats();

  // --- 1. RPC: each access costs a request and a reply ------------------
  std::uint64_t msgs = net.messages;
  int v = co_await rt->call(ctx, obj, core::CallOpts{4, 2, false},
                            [rt, counter](Ctx& self) -> sim::Task<int> {
                              co_return co_await bump(*rt, self, counter);
                            });
  std::printf("RPC access:       counter=%d, %llu messages, still on proc %u\n",
              v, static_cast<unsigned long long>(net.messages - msgs),
              ctx.proc);

  // --- 2. The annotation: migrate this activation to the object ---------
  msgs = net.messages;
  co_await rt->migrate(ctx, obj, /*live_words=*/8);
  v = co_await rt->call(ctx, obj, core::CallOpts{4, 2, false},
                        [rt, counter](Ctx& self) -> sim::Task<int> {
                          co_return co_await bump(*rt, self, counter);
                        });
  std::printf("Migrated access:  counter=%d, %llu message(s), now on proc %u\n",
              v, static_cast<unsigned long long>(net.messages - msgs),
              ctx.proc);

  // --- 3. Locality: subsequent accesses are free of communication -------
  msgs = net.messages;
  for (int i = 0; i < 5; ++i) {
    v = co_await rt->call(ctx, obj, core::CallOpts{4, 2, false},
                          [rt, counter](Ctx& self) -> sim::Task<int> {
                            co_return co_await bump(*rt, self, counter);
                          });
  }
  std::printf("5 local accesses: counter=%d, %llu messages\n", v,
              static_cast<unsigned long long>(net.messages - msgs));

  // Return home; the single reply message is the short-circuit return.
  msgs = net.messages;
  co_await rt->return_home(ctx, 0, 2);
  std::printf("Return home:      %llu message, back on proc %u\n",
              static_cast<unsigned long long>(net.messages - msgs), ctx.proc);
}

}  // namespace

int main() {
  sim::Engine engine;                      // discrete-event clock
  sim::Machine machine(engine, /*procs=*/4);
  net::ConstantNetwork network(engine);    // uniform-latency interconnect
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects,
                   core::CostModel::software());  // Table-5 cost model

  int counter = 0;
  const core::ObjectId obj = objects.create(/*home=*/3);

  sim::detach(demo(&rt, obj, &counter));
  engine.run();

  std::printf("\nSimulated time: %llu cycles; total network words: %llu\n",
              static_cast<unsigned long long>(engine.now()),
              static_cast<unsigned long long>(network.stats().words));
  return 0;
}
