// Counting-network demo (the paper's §4.1 workload as a user program).
//
// Eight threads draw values from a width-8 bitonic counting network under
// each remote-access mechanism. The point of the demo:
//   * the mechanism annotation changes PERFORMANCE, never SEMANTICS — all
//     three runs hand out exactly the values 0..n-1 and leave the network
//     with the step property;
//   * computation migration uses the fewest messages; shared memory uses
//     the most bandwidth.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/counting_network.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "shmem/coherent_memory.h"
#include "sim/engine.h"
#include "sim/machine.h"

using namespace cm;
using core::Ctx;
using core::Mechanism;

namespace {

constexpr unsigned kThreads = 8;
constexpr int kPerThread = 12;

sim::Task<> requester(core::Runtime* rt, apps::CountingNetwork* cn,
                      Mechanism mech, sim::ProcId home, unsigned wire,
                      std::vector<long>* out) {
  Ctx ctx{rt, home};
  for (int i = 0; i < kPerThread; ++i) {
    const long v = co_await cn->get_next(ctx, mech, wire);
    co_await rt->return_home(ctx, home, 2);
    out->push_back(v);
  }
}

void run(Mechanism mech) {
  sim::Engine engine;
  sim::Machine machine(engine, 24 + kThreads);
  net::ConstantNetwork network(engine);
  shmem::CoherentMemory memory(machine, network);
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, core::CostModel::software());
  apps::CountingNetwork cn(rt, &memory, {});

  std::vector<std::vector<long>> values(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    sim::detach(requester(&rt, &cn, mech, 24 + t, t % 8, &values[t]));
  }
  engine.run();

  std::vector<long> all;
  for (const auto& v : values) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  bool contiguous = true;
  for (std::size_t i = 0; i < all.size(); ++i) {
    contiguous &= all[i] == static_cast<long>(i);
  }

  std::printf(
      "%-4s: %zu values, contiguous 0..n-1: %s, step property: %s,\n"
      "      %6llu cycles, %5llu messages, %6llu words\n",
      mechanism_name(mech), all.size(), contiguous ? "yes" : "NO",
      cn.has_step_property() ? "yes" : "NO",
      static_cast<unsigned long long>(engine.now()),
      static_cast<unsigned long long>(network.stats().messages),
      static_cast<unsigned long long>(network.stats().words));
}

}  // namespace

int main() {
  std::printf("Counting network: %u threads x %d values each, width 8\n\n",
              kThreads, kPerThread);
  run(Mechanism::kRpc);
  run(Mechanism::kMigration);
  run(Mechanism::kSharedMemory);
  std::printf(
      "\nSame values under every mechanism (the annotation affects only\n"
      "performance); migration finishes with the fewest messages.\n");
  return 0;
}
