// Mobile objects (Emerald-style object migration) next to computation
// migration — the comparison the paper wanted to run ("We would like to
// compare our results to object migration, such as the mechanism in
// Emerald, but our group has not finished implementing object migration in
// Prelude yet", §4).
//
// A "document" object starts on processor 3. An editor thread on processor
// 0 works on it in long bursts. Under computation migration the editor's
// activation commutes to the document for every burst; under object
// migration the document moves in with the editor once. Then a reviewer on
// another processor takes over — and the document follows the work.
#include <cstdio>

#include "core/mobile.h"
#include "core/runtime.h"
#include "net/constant_net.h"
#include "sim/engine.h"
#include "sim/machine.h"

using namespace cm;
using core::Ctx;

namespace {

sim::Task<int> edit(core::Runtime& rt, Ctx& self, int* words) {
  co_await rt.compute(self, 60);
  co_return ++*words;
}

sim::Task<> session(core::Runtime* rt, core::MobileObject* doc, int* words,
                    sim::ProcId editor, int bursts, int edits_per_burst,
                    const char* who) {
  Ctx ctx{rt, editor};
  const auto msgs0 = rt->network().stats().messages;
  for (int b = 0; b < bursts; ++b) {
    co_await doc->attract(ctx);  // usually free after the first burst
    for (int e = 0; e < edits_per_burst; ++e) {
      (void)co_await rt->call(ctx, doc->id(), core::CallOpts{4, 2, false},
                              [rt, words](Ctx& self) -> sim::Task<int> {
                                co_return co_await edit(*rt, self, words);
                              });
    }
  }
  std::printf("%-10s on proc %u: %d edits, %llu messages, doc now lives on "
              "proc %u\n",
              who, editor, bursts * edits_per_burst,
              static_cast<unsigned long long>(rt->network().stats().messages -
                                              msgs0),
              doc->home());
}

sim::Task<> commuter(core::Runtime* rt, core::ObjectId doc, int* words,
                     sim::ProcId editor, int bursts, int edits_per_burst) {
  Ctx ctx{rt, editor};
  const auto msgs0 = rt->network().stats().messages;
  for (int b = 0; b < bursts; ++b) {
    co_await rt->migrate(ctx, doc, 8);  // commute to the document
    for (int e = 0; e < edits_per_burst; ++e) {
      (void)co_await rt->call(ctx, doc, core::CallOpts{4, 2, false},
                              [rt, words](Ctx& self) -> sim::Task<int> {
                                co_return co_await edit(*rt, self, words);
                              });
    }
    co_await rt->return_home(ctx, editor, 2);  // ... and back
  }
  std::printf("%-10s on proc %u: %d edits, %llu messages (commuting "
              "activation)\n",
              "commuter", editor, bursts * edits_per_burst,
              static_cast<unsigned long long>(rt->network().stats().messages -
                                              msgs0));
}

}  // namespace

int main() {
  sim::Engine engine;
  sim::Machine machine(engine, 6);
  net::ConstantNetwork network(engine);
  core::ObjectSpace objects;
  core::Runtime rt(machine, network, objects, core::CostModel::software());

  int words = 0;
  const core::ObjectId doc_id = objects.create(/*home=*/3);
  core::MobileObject doc(rt, doc_id, /*size_words=*/24);

  std::printf("A document object starts on processor %u.\n\n", doc.home());

  // Editor works in bursts with the object attracted to them...
  sim::detach(session(&rt, &doc, &words, /*editor=*/0, 4, 8, "editor"));
  engine.run();
  // ... then a reviewer takes over and the document follows.
  sim::detach(session(&rt, &doc, &words, /*editor=*/1, 4, 8, "reviewer"));
  engine.run();
  // For contrast: an activation that commutes instead of moving the data.
  sim::detach(commuter(&rt, doc_id, &words, /*editor=*/2, 4, 8));
  engine.run();

  std::printf("\nTotal edits applied: %d (object moved %llu times)\n", words,
              static_cast<unsigned long long>(doc.moves()));
  std::printf(
      "\nWith strong affinity the object moves once per ownership change;\n"
      "the commuting activation pays two messages per burst forever. Flip\n"
      "the access pattern to fine-grained sharing and the verdict flips too\n"
      "— run bench/ablation_mechanisms to see both regimes.\n");
  return 0;
}
