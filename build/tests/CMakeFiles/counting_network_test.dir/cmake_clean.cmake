file(REMOVE_RECURSE
  "CMakeFiles/counting_network_test.dir/counting_network_test.cc.o"
  "CMakeFiles/counting_network_test.dir/counting_network_test.cc.o.d"
  "counting_network_test"
  "counting_network_test.pdb"
  "counting_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
