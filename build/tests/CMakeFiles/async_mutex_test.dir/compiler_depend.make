# Empty compiler generated dependencies file for async_mutex_test.
# This may be replaced when dependencies are built.
