file(REMOVE_RECURSE
  "CMakeFiles/async_mutex_test.dir/async_mutex_test.cc.o"
  "CMakeFiles/async_mutex_test.dir/async_mutex_test.cc.o.d"
  "async_mutex_test"
  "async_mutex_test.pdb"
  "async_mutex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_mutex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
