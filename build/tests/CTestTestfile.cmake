# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/processor_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/coherence_test[1]_include.cmake")
include("/root/repo/build/tests/sync_test[1]_include.cmake")
include("/root/repo/build/tests/async_mutex_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/counting_network_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/mobile_test[1]_include.cmake")
include("/root/repo/build/tests/adaptive_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
