# Empty dependencies file for table3_4_btree_think.
# This may be replaced when dependencies are built.
