file(REMOVE_RECURSE
  "CMakeFiles/table3_4_btree_think.dir/table3_4_btree_think.cc.o"
  "CMakeFiles/table3_4_btree_think.dir/table3_4_btree_think.cc.o.d"
  "table3_4_btree_think"
  "table3_4_btree_think.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_4_btree_think.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
