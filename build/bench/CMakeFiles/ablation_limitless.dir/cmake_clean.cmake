file(REMOVE_RECURSE
  "CMakeFiles/ablation_limitless.dir/ablation_limitless.cc.o"
  "CMakeFiles/ablation_limitless.dir/ablation_limitless.cc.o.d"
  "ablation_limitless"
  "ablation_limitless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_limitless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
