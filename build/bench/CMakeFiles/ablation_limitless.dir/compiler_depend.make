# Empty compiler generated dependencies file for ablation_limitless.
# This may be replaced when dependencies are built.
