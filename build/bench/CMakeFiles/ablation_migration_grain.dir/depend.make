# Empty dependencies file for ablation_migration_grain.
# This may be replaced when dependencies are built.
