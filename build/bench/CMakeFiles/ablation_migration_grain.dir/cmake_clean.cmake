file(REMOVE_RECURSE
  "CMakeFiles/ablation_migration_grain.dir/ablation_migration_grain.cc.o"
  "CMakeFiles/ablation_migration_grain.dir/ablation_migration_grain.cc.o.d"
  "ablation_migration_grain"
  "ablation_migration_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_migration_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
