# Empty compiler generated dependencies file for fig3_counting_bandwidth.
# This may be replaced when dependencies are built.
