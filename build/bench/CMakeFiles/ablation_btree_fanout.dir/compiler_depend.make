# Empty compiler generated dependencies file for ablation_btree_fanout.
# This may be replaced when dependencies are built.
