file(REMOVE_RECURSE
  "CMakeFiles/ablation_btree_fanout.dir/ablation_btree_fanout.cc.o"
  "CMakeFiles/ablation_btree_fanout.dir/ablation_btree_fanout.cc.o.d"
  "ablation_btree_fanout"
  "ablation_btree_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_btree_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
