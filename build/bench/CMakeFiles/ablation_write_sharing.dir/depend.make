# Empty dependencies file for ablation_write_sharing.
# This may be replaced when dependencies are built.
