file(REMOVE_RECURSE
  "CMakeFiles/ablation_write_sharing.dir/ablation_write_sharing.cc.o"
  "CMakeFiles/ablation_write_sharing.dir/ablation_write_sharing.cc.o.d"
  "ablation_write_sharing"
  "ablation_write_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_write_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
