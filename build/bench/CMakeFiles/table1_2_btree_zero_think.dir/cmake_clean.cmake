file(REMOVE_RECURSE
  "CMakeFiles/table1_2_btree_zero_think.dir/table1_2_btree_zero_think.cc.o"
  "CMakeFiles/table1_2_btree_zero_think.dir/table1_2_btree_zero_think.cc.o.d"
  "table1_2_btree_zero_think"
  "table1_2_btree_zero_think.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_2_btree_zero_think.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
