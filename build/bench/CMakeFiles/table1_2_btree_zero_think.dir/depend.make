# Empty dependencies file for table1_2_btree_zero_think.
# This may be replaced when dependencies are built.
