file(REMOVE_RECURSE
  "CMakeFiles/fig2_counting_throughput.dir/fig2_counting_throughput.cc.o"
  "CMakeFiles/fig2_counting_throughput.dir/fig2_counting_throughput.cc.o.d"
  "fig2_counting_throughput"
  "fig2_counting_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_counting_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
