file(REMOVE_RECURSE
  "CMakeFiles/table5_cost_breakdown.dir/table5_cost_breakdown.cc.o"
  "CMakeFiles/table5_cost_breakdown.dir/table5_cost_breakdown.cc.o.d"
  "table5_cost_breakdown"
  "table5_cost_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cost_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
