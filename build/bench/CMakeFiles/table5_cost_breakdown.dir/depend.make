# Empty dependencies file for table5_cost_breakdown.
# This may be replaced when dependencies are built.
