file(REMOVE_RECURSE
  "CMakeFiles/ablation_network_width.dir/ablation_network_width.cc.o"
  "CMakeFiles/ablation_network_width.dir/ablation_network_width.cc.o.d"
  "ablation_network_width"
  "ablation_network_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_network_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
