# Empty compiler generated dependencies file for ablation_network_width.
# This may be replaced when dependencies are built.
