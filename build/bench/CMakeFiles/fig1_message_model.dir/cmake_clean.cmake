file(REMOVE_RECURSE
  "CMakeFiles/fig1_message_model.dir/fig1_message_model.cc.o"
  "CMakeFiles/fig1_message_model.dir/fig1_message_model.cc.o.d"
  "fig1_message_model"
  "fig1_message_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_message_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
