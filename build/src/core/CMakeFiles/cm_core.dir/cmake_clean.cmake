file(REMOVE_RECURSE
  "CMakeFiles/cm_core.dir/adaptive.cc.o"
  "CMakeFiles/cm_core.dir/adaptive.cc.o.d"
  "CMakeFiles/cm_core.dir/mobile.cc.o"
  "CMakeFiles/cm_core.dir/mobile.cc.o.d"
  "CMakeFiles/cm_core.dir/replication.cc.o"
  "CMakeFiles/cm_core.dir/replication.cc.o.d"
  "CMakeFiles/cm_core.dir/runtime.cc.o"
  "CMakeFiles/cm_core.dir/runtime.cc.o.d"
  "libcm_core.a"
  "libcm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
