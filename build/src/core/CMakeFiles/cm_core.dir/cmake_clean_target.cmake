file(REMOVE_RECURSE
  "libcm_core.a"
)
