
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/cm_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/cm_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/mobile.cc" "src/core/CMakeFiles/cm_core.dir/mobile.cc.o" "gcc" "src/core/CMakeFiles/cm_core.dir/mobile.cc.o.d"
  "/root/repo/src/core/replication.cc" "src/core/CMakeFiles/cm_core.dir/replication.cc.o" "gcc" "src/core/CMakeFiles/cm_core.dir/replication.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/cm_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/cm_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/cm_shmem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
