
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/constant_net.cc" "src/net/CMakeFiles/cm_net.dir/constant_net.cc.o" "gcc" "src/net/CMakeFiles/cm_net.dir/constant_net.cc.o.d"
  "/root/repo/src/net/mesh_net.cc" "src/net/CMakeFiles/cm_net.dir/mesh_net.cc.o" "gcc" "src/net/CMakeFiles/cm_net.dir/mesh_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
