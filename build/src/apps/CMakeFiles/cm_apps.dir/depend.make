# Empty dependencies file for cm_apps.
# This may be replaced when dependencies are built.
