
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/btree.cc" "src/apps/CMakeFiles/cm_apps.dir/btree.cc.o" "gcc" "src/apps/CMakeFiles/cm_apps.dir/btree.cc.o.d"
  "/root/repo/src/apps/counting_network.cc" "src/apps/CMakeFiles/cm_apps.dir/counting_network.cc.o" "gcc" "src/apps/CMakeFiles/cm_apps.dir/counting_network.cc.o.d"
  "/root/repo/src/apps/workload.cc" "src/apps/CMakeFiles/cm_apps.dir/workload.cc.o" "gcc" "src/apps/CMakeFiles/cm_apps.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/shmem/CMakeFiles/cm_shmem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
