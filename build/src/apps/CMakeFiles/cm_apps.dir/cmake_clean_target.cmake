file(REMOVE_RECURSE
  "libcm_apps.a"
)
