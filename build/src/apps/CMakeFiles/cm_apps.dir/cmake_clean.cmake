file(REMOVE_RECURSE
  "CMakeFiles/cm_apps.dir/btree.cc.o"
  "CMakeFiles/cm_apps.dir/btree.cc.o.d"
  "CMakeFiles/cm_apps.dir/counting_network.cc.o"
  "CMakeFiles/cm_apps.dir/counting_network.cc.o.d"
  "CMakeFiles/cm_apps.dir/workload.cc.o"
  "CMakeFiles/cm_apps.dir/workload.cc.o.d"
  "libcm_apps.a"
  "libcm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
