# Empty dependencies file for cm_shmem.
# This may be replaced when dependencies are built.
