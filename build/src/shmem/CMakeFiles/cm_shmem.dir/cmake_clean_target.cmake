file(REMOVE_RECURSE
  "libcm_shmem.a"
)
