
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shmem/cache.cc" "src/shmem/CMakeFiles/cm_shmem.dir/cache.cc.o" "gcc" "src/shmem/CMakeFiles/cm_shmem.dir/cache.cc.o.d"
  "/root/repo/src/shmem/coherent_memory.cc" "src/shmem/CMakeFiles/cm_shmem.dir/coherent_memory.cc.o" "gcc" "src/shmem/CMakeFiles/cm_shmem.dir/coherent_memory.cc.o.d"
  "/root/repo/src/shmem/sync.cc" "src/shmem/CMakeFiles/cm_shmem.dir/sync.cc.o" "gcc" "src/shmem/CMakeFiles/cm_shmem.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/cm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cm_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
