file(REMOVE_RECURSE
  "CMakeFiles/cm_shmem.dir/cache.cc.o"
  "CMakeFiles/cm_shmem.dir/cache.cc.o.d"
  "CMakeFiles/cm_shmem.dir/coherent_memory.cc.o"
  "CMakeFiles/cm_shmem.dir/coherent_memory.cc.o.d"
  "CMakeFiles/cm_shmem.dir/sync.cc.o"
  "CMakeFiles/cm_shmem.dir/sync.cc.o.d"
  "libcm_shmem.a"
  "libcm_shmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cm_shmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
