# Empty compiler generated dependencies file for cm_sim.
# This may be replaced when dependencies are built.
