# Empty dependencies file for mobile_objects.
# This may be replaced when dependencies are built.
