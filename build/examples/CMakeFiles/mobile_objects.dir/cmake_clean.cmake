file(REMOVE_RECURSE
  "CMakeFiles/mobile_objects.dir/mobile_objects.cpp.o"
  "CMakeFiles/mobile_objects.dir/mobile_objects.cpp.o.d"
  "mobile_objects"
  "mobile_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
