# Empty dependencies file for btree_demo.
# This may be replaced when dependencies are built.
