file(REMOVE_RECURSE
  "CMakeFiles/btree_demo.dir/btree_demo.cpp.o"
  "CMakeFiles/btree_demo.dir/btree_demo.cpp.o.d"
  "btree_demo"
  "btree_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
