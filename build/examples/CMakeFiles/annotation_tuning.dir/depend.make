# Empty dependencies file for annotation_tuning.
# This may be replaced when dependencies are built.
