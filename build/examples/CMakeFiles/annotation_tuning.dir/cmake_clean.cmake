file(REMOVE_RECURSE
  "CMakeFiles/annotation_tuning.dir/annotation_tuning.cpp.o"
  "CMakeFiles/annotation_tuning.dir/annotation_tuning.cpp.o.d"
  "annotation_tuning"
  "annotation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
