# Empty dependencies file for counting_network_demo.
# This may be replaced when dependencies are built.
