file(REMOVE_RECURSE
  "CMakeFiles/counting_network_demo.dir/counting_network_demo.cpp.o"
  "CMakeFiles/counting_network_demo.dir/counting_network_demo.cpp.o.d"
  "counting_network_demo"
  "counting_network_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counting_network_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
